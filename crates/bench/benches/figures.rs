//! One benchmark per table/figure of the paper's evaluation.
//!
//! Each bench runs a miniature instance of the corresponding experiment
//! through the discrete-event driver; the measured quantity is the harness
//! cost of regenerating that experiment (simulated results are printed by
//! the `repro` binary, which runs the full-size versions). Keeping the
//! per-figure configurations here means a `cargo bench` sweep exercises
//! every code path the evaluation depends on.

use fluentps_util::bench::{BenchmarkId, Criterion};
use fluentps_util::{criterion_group, criterion_main};

use fluentps_baseline::pslite::PsLiteMode;
use fluentps_bench::bench_inventory;
use fluentps_core::condition::SyncModel;
use fluentps_core::dpr::DprPolicy;
use fluentps_experiments::driver::{run, DriverConfig, EngineKind, ModelKind, SlicerKind};
use fluentps_experiments::figures::{fig10, fig9, table4, Scale};
use fluentps_ml::data::SyntheticSpec;
use fluentps_simnet::compute::StragglerSpec;
use fluentps_simnet::net::LinkModel;

const QUICK: Scale = Scale { full: false };

fn timing_cfg(engine: EngineKind, slicer: SlicerKind, n: u32) -> DriverConfig {
    DriverConfig {
        engine,
        num_workers: n,
        num_servers: 4,
        slicer,
        max_iters: 10,
        model: ModelKind::TimingOnly {
            params: bench_inventory(),
        },
        dataset: None,
        compute_base: 4.0,
        compute_jitter: 0.2,
        stragglers: StragglerSpec::random_slowdowns(),
        link: LinkModel::gbe(),
        eval_every: 0,
        seed: 5,
        ..DriverConfig::default()
    }
}

fn tiny_training_cfg(engine: EngineKind, n: u32) -> DriverConfig {
    DriverConfig {
        engine,
        num_workers: n,
        num_servers: 2,
        max_iters: 30,
        model: ModelKind::Softmax,
        dataset: Some(SyntheticSpec {
            dim: 16,
            classes: 4,
            n_train: 400,
            n_test: 100,
            margin: 3.0,
            modes: 1,
            label_noise: 0.0,
            seed: 2,
        }),
        batch_size: 8,
        compute_base: 1.0,
        eval_every: 0,
        seed: 2,
        ..DriverConfig::default()
    }
}

/// Figure 1: SSPtable accuracy degradation sweep.
fn fig1_ssptable_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_ssptable_scaling");
    g.sample_size(10);
    for n in [2u32, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| run(&tiny_training_cfg(EngineKind::SspTable { s: 3 }, n)))
        });
    }
    g.finish();
}

/// Figure 6: PS-Lite vs FluentPS vs FluentPS+EPS.
fn fig6_overlap_sync(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_overlap_sync");
    g.sample_size(10);
    g.bench_function("ps-lite", |b| {
        b.iter(|| {
            run(&timing_cfg(
                EngineKind::PsLite {
                    mode: PsLiteMode::Bsp,
                },
                SlicerKind::Default,
                8,
            ))
        })
    });
    g.bench_function("fluentps", |b| {
        b.iter(|| {
            run(&timing_cfg(
                EngineKind::FluentPs {
                    model: SyncModel::Bsp,
                    policy: DprPolicy::LazyExecution,
                },
                SlicerKind::Default,
                8,
            ))
        })
    });
    g.bench_function("fluentps+eps", |b| {
        b.iter(|| {
            run(&timing_cfg(
                EngineKind::FluentPs {
                    model: SyncModel::Bsp,
                    policy: DprPolicy::LazyExecution,
                },
                SlicerKind::Eps { max_chunk: 8192 },
                8,
            ))
        })
    });
    g.finish();
}

/// Figure 7: FluentPS vs SSPtable at two cluster sizes.
fn fig7_scalability(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_scalability");
    g.sample_size(10);
    for n in [4u32, 16] {
        g.bench_with_input(BenchmarkId::new("fluentps", n), &n, |b, &n| {
            b.iter(|| {
                run(&tiny_training_cfg(
                    EngineKind::FluentPs {
                        model: SyncModel::Ssp { s: 3 },
                        policy: DprPolicy::LazyExecution,
                    },
                    n,
                ))
            })
        });
        g.bench_with_input(BenchmarkId::new("ssptable", n), &n, |b, &n| {
            b.iter(|| run(&tiny_training_cfg(EngineKind::SspTable { s: 3 }, n)))
        });
    }
    g.finish();
}

/// Figure 8: soft barrier vs lazy execution.
fn fig8_lazy_vs_soft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_lazy_vs_soft");
    g.sample_size(10);
    for (name, policy) in [
        ("soft", DprPolicy::SoftBarrier),
        ("lazy", DprPolicy::LazyExecution),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = timing_cfg(
                    EngineKind::FluentPs {
                        model: SyncModel::Ssp { s: 2 },
                        policy,
                    },
                    SlicerKind::Eps { max_chunk: 8192 },
                    8,
                );
                cfg.stragglers = StragglerSpec {
                    transient_prob: 0.05,
                    transient_factor: 2.0,
                    persistent_count: 1,
                    persistent_factor: 1.6,
                };
                run(&cfg)
            })
        });
    }
    g.finish();
}

/// Figure 9: the regret-equivalent PSSP/SSP pairs (first group), miniature.
fn fig9_dpr_counts(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_dpr_counts");
    g.sample_size(10);
    for (label, model) in fig9::models().into_iter().take(2) {
        let name = label.split(':').next().unwrap_or(label).to_string();
        g.bench_function(&name, |b| {
            b.iter(|| {
                let mut cfg = timing_cfg(
                    EngineKind::FluentPs {
                        model,
                        policy: DprPolicy::SoftBarrier,
                    },
                    SlicerKind::Eps { max_chunk: 8192 },
                    8,
                );
                cfg.stragglers = StragglerSpec {
                    transient_prob: 0.05,
                    transient_factor: 2.0,
                    persistent_count: 1,
                    persistent_factor: 1.6,
                };
                run(&cfg)
            })
        });
    }
    g.finish();
}

/// Figures 10/11: the sync-model sweep at one worker count.
fn fig10_sync_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_sync_models");
    g.sample_size(10);
    for (label, model) in fig10::models().into_iter().take(3) {
        let name = label.replace([' ', '='], "_");
        g.bench_function(&name, |b| {
            b.iter(|| {
                run(&tiny_training_cfg(
                    EngineKind::FluentPs {
                        model,
                        policy: DprPolicy::LazyExecution,
                    },
                    8,
                ))
            })
        });
    }
    g.finish();
}

/// Table IV: one cell per policy on the first combo.
fn table4_grand_comparison(c: &mut Criterion) {
    let mut g = c.benchmark_group("table4_grand_comparison");
    g.sample_size(10);
    let combos = table4::combos(QUICK);
    let combo = &combos[0];
    for (label, model) in table4::sync_models(combo.s).into_iter().take(2) {
        let name = label.replace([' ', '=', '(', ')'], "_");
        g.bench_function(&name, |b| {
            b.iter(|| {
                run(&tiny_training_cfg(
                    EngineKind::FluentPs {
                        model,
                        policy: DprPolicy::LazyExecution,
                    },
                    8,
                ))
            })
        });
    }
    g.finish();
}

criterion_group!(
    figures,
    fig1_ssptable_scaling,
    fig6_overlap_sync,
    fig7_scalability,
    fig8_lazy_vs_soft,
    fig9_dpr_counts,
    fig10_sync_models,
    table4_grand_comparison
);
criterion_main!(figures);
