//! Microbenchmarks of the substrate hot paths: wire codec, server state
//! machine, EPS slicing, DPR buffer, GEMM and the event queue.

use fluentps_util::bench::{BenchmarkId, Criterion, Throughput};
use fluentps_util::{criterion_group, criterion_main};

use fluentps_core::condition::SyncModel;
use fluentps_core::dpr::{DeferredPull, DprBuffer, DprPolicy};
use fluentps_core::eps::{EpsSlicer, ParamSpec, Slicer};
use fluentps_core::server::{GradScale, ServerShard, ShardConfig};
use fluentps_ml::linalg::matmul;
use fluentps_simnet::event::EventQueue;
use fluentps_transport::codec::{decode, encode};
use fluentps_transport::{KvPairs, Message};

/// Codec encode/decode throughput on a gradient-sized push.
fn codec_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    for vals in [256usize, 16_384] {
        let msg = Message::SPush {
            worker: 3,
            progress: 42,
            kv: KvPairs::single(7, vec![0.5; vals]),
        };
        g.throughput(Throughput::Bytes((vals * 4) as u64));
        g.bench_with_input(BenchmarkId::new("encode", vals), &msg, |b, msg| {
            b.iter(|| encode(msg))
        });
        let bytes = encode(&msg);
        g.bench_with_input(BenchmarkId::new("decode", vals), &bytes, |b, bytes| {
            b.iter(|| decode(bytes.clone()).unwrap())
        });
    }
    g.finish();
}

/// Server state machine: push+pull cycle throughput.
fn shard_push_pull(c: &mut Criterion) {
    let mut g = c.benchmark_group("shard");
    for vals in [256usize, 4096] {
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(
            BenchmarkId::new("push_pull_cycle", vals),
            &vals,
            |b, &vals| {
                let mut shard = ServerShard::new(ShardConfig {
                    server_id: 0,
                    num_workers: 1,
                    model: SyncModel::Asp,
                    policy: DprPolicy::LazyExecution,
                    grad_scale: GradScale::DivideByN,
                });
                shard.init_param(0, vec![0.0; vals]);
                let kv = KvPairs::single(0, vec![1e-4; vals]);
                let mut i = 0u64;
                b.iter(|| {
                    shard.on_push(0, i, &kv);
                    let out = shard.on_pull(0, i, &[0], 0.5, None);
                    i += 1;
                    out
                })
            },
        );
    }
    g.finish();
}

/// EPS slicing cost on increasingly large models.
fn eps_slicing(c: &mut Criterion) {
    let mut g = c.benchmark_group("eps");
    for layers in [64usize, 512] {
        let params: Vec<ParamSpec> = (0..layers as u64)
            .map(|k| ParamSpec {
                key: k,
                len: if k == 0 { 1_000_000 } else { 10_000 },
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("slice", layers), &params, |b, params| {
            let slicer = EpsSlicer { max_chunk: 16_384 };
            b.iter(|| slicer.slice(params, 8))
        });
    }
    g.finish();
}

/// DPR buffer defer/release round.
fn dpr_buffer(c: &mut Criterion) {
    c.bench_function("dpr_defer_release_100", |b| {
        let model = SyncModel::Ssp { s: 2 }.into_policy();
        b.iter(|| {
            let mut buf = DprBuffer::new();
            for w in 0..100u32 {
                buf.defer(
                    DprPolicy::LazyExecution,
                    DeferredPull {
                        worker: w,
                        progress: (w % 10) as u64,
                        keys: vec![0],
                        deferred_at: 0,
                        ctx: None,
                    },
                );
            }
            let mut out = 0;
            for v in 1..12u64 {
                let st = fluentps_core::condition::SyncState {
                    v_train: v,
                    count_at_v_train: 0,
                    num_workers: 100,
                    fastest: v,
                    slowest: v,
                };
                out += buf.release(DprPolicy::LazyExecution, &model, &st).len();
            }
            out
        })
    });
}

/// Blocked GEMM throughput (the training hot loop).
fn gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    for n in [32usize, 128] {
        let a = vec![0.5f32; n * n];
        let bm = vec![0.25f32; n * n];
        let mut out = vec![0.0f32; n * n];
        g.throughput(Throughput::Elements((n * n * n) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bch, &n| {
            bch.iter(|| matmul(&a, &bm, &mut out, n, n, n))
        });
    }
    g.finish();
}

/// Event queue schedule/pop churn.
fn event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_churn_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u32 {
                q.schedule((i % 17) as f64, i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum += v as u64;
            }
            sum
        })
    });
}

/// f16 quantization throughput.
fn quantization(c: &mut Criterion) {
    use fluentps_transport::quant::QuantizedKv;
    let mut g = c.benchmark_group("quant");
    let kv = KvPairs::single(0, (0..16_384).map(|i| (i as f32 * 0.01).sin()).collect());
    g.throughput(Throughput::Bytes((16_384 * 4) as u64));
    g.bench_function("compress_16k", |b| b.iter(|| QuantizedKv::compress(&kv)));
    let q = QuantizedKv::compress(&kv);
    g.bench_function("decompress_16k", |b| b.iter(|| q.decompress()));
    g.finish();
}

/// Significance-filter offer throughput.
fn significance_filter(c: &mut Criterion) {
    use fluentps_core::filter::SignificanceFilter;
    c.bench_function("filter_offer_1k_params", |b| {
        let mut f = SignificanceFilter::new(0.01, 16);
        let update = vec![1e-4f32; 1024];
        let param = vec![1.0f32; 1024];
        b.iter(|| f.offer(0, &update, &param))
    });
}

/// Parallel vs serial gradient computation on one batch.
fn parallel_gradients(c: &mut Criterion) {
    use fluentps_ml::data::{synthetic, SyntheticSpec};
    use fluentps_ml::models::{Mlp, Model};
    use fluentps_ml::par::parallel_loss_and_grad;
    let spec = SyntheticSpec {
        dim: 64,
        classes: 10,
        n_train: 512,
        n_test: 16,
        margin: 2.0,
        modes: 1,
        label_noise: 0.0,
        seed: 1,
    };
    let (train, _) = synthetic(spec);
    let model = Mlp {
        dims: vec![64, 128, 10],
    };
    let params = model.init_params(1);
    let batch = train.batch(&(0..256).collect::<Vec<_>>());
    let mut g = c.benchmark_group("gradients");
    g.sample_size(20);
    g.bench_function("serial_256x64", |b| {
        b.iter(|| model.loss_and_grad(&params, &batch))
    });
    g.bench_function("parallel4_256x64", |b| {
        b.iter(|| parallel_loss_and_grad(&model, &params, &batch, 4))
    });
    g.finish();
}

criterion_group!(
    micro,
    codec_roundtrip,
    shard_push_pull,
    eps_slicing,
    dpr_buffer,
    gemm,
    event_queue,
    quantization,
    significance_filter,
    parallel_gradients
);
criterion_main!(micro);
