//! Observability overhead benchmarks.
//!
//! The contract from DESIGN.md is that tracing is *free when disabled*: the
//! disabled-record benchmarks measure exactly that hot path, next to the
//! enabled-path cost and the end-to-end threaded-engine overhead of running
//! a cluster with a collector attached vs without one (`scripts/bench.sh`
//! collects both into `BENCH_obs.json`).

use std::collections::HashMap;

use fluentps_util::bench::{Criterion, Throughput};
use fluentps_util::{criterion_group, criterion_main};

use fluentps_core::condition::SyncModel;
use fluentps_core::engine::{Cluster, EngineConfig};
use fluentps_core::eps::{EpsSlicer, ParamSpec, Slicer};
use fluentps_obs::{
    analyze, export, EventKind, MetricsRegistry, ProfCollector, Profiler, RecordArgs,
    TraceCollector, Tracer,
};

/// Disabled tracer: one branch, no clock read, no allocation.
fn tracer_disabled(c: &mut Criterion) {
    let mut g = c.benchmark_group("tracer");
    g.throughput(Throughput::Elements(1));
    let tracer = Tracer::disabled();
    g.bench_function("disabled_record", |b| {
        b.iter(|| {
            tracer.record(
                EventKind::PushApplied,
                RecordArgs::new().shard(0).worker(1).progress(2).v_train(3),
            )
        })
    });
    g.finish();
}

/// Enabled tracer: clock read + ring-buffer push under a (thread-local,
/// uncontended) mutex.
fn tracer_enabled(c: &mut Criterion) {
    let mut g = c.benchmark_group("tracer");
    g.throughput(Throughput::Elements(1));
    let collector = TraceCollector::wall(4096);
    let tracer = collector.tracer();
    g.bench_function("enabled_record", |b| {
        b.iter(|| {
            tracer.record(
                EventKind::PushApplied,
                RecordArgs::new().shard(0).worker(1).progress(2).v_train(3),
            )
        })
    });
    g.bench_function("enabled_record_span", |b| {
        b.iter(|| {
            let start = tracer.now();
            tracer.record_span(
                EventKind::BarrierWait,
                start,
                RecordArgs::new().shard(0).progress(2).v_train(3),
            )
        })
    });
    g.finish();
}

/// Disabled profiler: the `enter` hot path is a single branch — the same
/// free-when-off contract the tracer keeps (compare against
/// `tracer/disabled_record` in `BENCH_obs.json`).
fn prof_disabled(c: &mut Criterion) {
    let mut g = c.benchmark_group("prof");
    g.throughput(Throughput::Elements(1));
    let profiler = Profiler::disabled();
    g.bench_function("disabled", |b| b.iter(|| profiler.enter("bench/span")));
    g.finish();
}

/// Enabled profiler: one full span record — enter (clock + allocation
/// counter sample, thread-local stack push) plus the guard drop (second
/// sample, aggregation-map update keyed by the stack path).
fn prof_span_record(c: &mut Criterion) {
    let mut g = c.benchmark_group("prof");
    g.throughput(Throughput::Elements(1));
    let collector = ProfCollector::wall();
    let profiler = collector.profiler();
    // One enclosing span so the measured span exercises a non-root path.
    let _outer = profiler.enter("bench/outer");
    g.bench_function("span_record", |b| b.iter(|| profiler.enter("bench/span")));
    g.finish();
}

/// Metrics registry: labeled counter increment and histogram observation.
fn metrics(c: &mut Criterion) {
    let mut g = c.benchmark_group("metrics");
    g.throughput(Throughput::Elements(1));
    let registry = MetricsRegistry::new();
    let scope = registry.scope().with("shard", "3");
    g.bench_function("counter_inc", |b| b.iter(|| scope.inc("pulls", 1)));
    g.bench_function("histogram_observe", |b| {
        let mut v = 0u64;
        b.iter(|| {
            v = v.wrapping_add(7) % 1000;
            scope.observe("dpr_wait", v)
        })
    });
    g.finish();
}

/// Chrome-trace export of a populated collector.
fn export_chrome(c: &mut Criterion) {
    let collector = TraceCollector::wall(8192);
    let tracer = collector.tracer();
    for i in 0..4096u64 {
        tracer.record(
            EventKind::PushApplied,
            RecordArgs::new()
                .shard((i % 4) as u32)
                .worker((i % 8) as u32)
                .progress(i)
                .v_train(i)
                .bytes(64),
        );
    }
    c.bench_function("export/chrome_4k_events", |b| {
        b.iter(|| export::chrome_trace(&collector.snapshot()))
    });
}

/// One complete threaded-engine run: 2 servers, 2 workers, 5 iterations.
fn run_threaded_cluster(collector: Option<&TraceCollector>) -> u64 {
    let specs = vec![
        ParamSpec { key: 0, len: 256 },
        ParamSpec { key: 1, len: 128 },
    ];
    let mut init = HashMap::new();
    init.insert(0u64, vec![0.0f32; 256]);
    init.insert(1u64, vec![0.0f32; 128]);
    let map = EpsSlicer { max_chunk: 64 }.slice(&specs, 2);
    let cfg = EngineConfig {
        num_workers: 2,
        num_servers: 2,
        model: SyncModel::Ssp { s: 1 },
        ..EngineConfig::default()
    };
    let (cluster, mut workers) = match collector {
        Some(col) => Cluster::launch_with_collector(cfg, map, &init, col),
        None => Cluster::launch(cfg, map, &init),
    };
    let mut grads = HashMap::new();
    grads.insert(0u64, vec![1e-3f32; 256]);
    grads.insert(1u64, vec![1e-3f32; 128]);
    let handles: Vec<_> = workers
        .drain(..)
        .map(|mut w| {
            let grads = grads.clone();
            std::thread::spawn(move || {
                let mut params = HashMap::new();
                for i in 0..5u64 {
                    w.spush(i, &grads).unwrap();
                    w.spull_wait(i, &mut params).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = cluster.shutdown();
    stats.iter().map(|s| s.pulls_total).sum()
}

/// The headline comparison: the same threaded-engine workload with tracing
/// off vs on. The delta between these two entries in `BENCH_obs.json` is the
/// end-to-end tracing overhead.
fn engine_tracing_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.bench_function("threaded_tracing_off", |b| {
        b.iter(|| run_threaded_cluster(None))
    });
    g.bench_function("threaded_tracing_on", |b| {
        b.iter(|| {
            let collector = TraceCollector::wall(65536);
            let pulls = run_threaded_cluster(Some(&collector));
            (pulls, collector.snapshot().total())
        })
    });
    g.finish();
}

/// One complete TCP-engine run: 2 servers, 2 workers, 5 iterations, with or
/// without cluster-wide trace streaming to a collector service.
fn run_tcp_cluster(collect: Option<std::net::SocketAddr>) -> u64 {
    use fluentps_core::tcp_engine::TcpCluster;

    let specs = vec![
        ParamSpec { key: 0, len: 256 },
        ParamSpec { key: 1, len: 128 },
    ];
    let mut init = HashMap::new();
    init.insert(0u64, vec![0.0f32; 256]);
    init.insert(1u64, vec![0.0f32; 128]);
    let map = EpsSlicer { max_chunk: 64 }.slice(&specs, 2);
    let cfg = EngineConfig {
        num_workers: 2,
        num_servers: 2,
        model: SyncModel::Ssp { s: 1 },
        ..EngineConfig::default()
    };
    let (cluster, mut workers) = match collect {
        Some(addr) => TcpCluster::launch_collected(cfg, map, &init, addr, 1 << 12).unwrap(),
        None => TcpCluster::launch(cfg, map, &init).unwrap(),
    };
    let mut grads = HashMap::new();
    grads.insert(0u64, vec![1e-3f32; 256]);
    grads.insert(1u64, vec![1e-3f32; 128]);
    let handles: Vec<_> = workers
        .drain(..)
        .map(|mut w| {
            let grads = grads.clone();
            std::thread::spawn(move || {
                let mut params = HashMap::new();
                for i in 0..5u64 {
                    w.spush(i, &grads).unwrap();
                    w.spull_wait(i, &mut params).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = cluster.shutdown();
    stats.iter().map(|s| s.pulls_total).sum()
}

/// The streaming-path pair: the same TCP workload bare vs. with every node
/// shipping its trace rings to a collector service over loopback. The
/// delta is the full cost of cluster-wide collection — per-node collectors,
/// the clock handshake, batching and the collector-side merge — as seen by
/// the training loop.
fn collect_streaming_overhead(c: &mut Criterion) {
    use fluentps_transport::CollectorService;

    let mut g = c.benchmark_group("collect");
    g.sample_size(10);
    g.bench_function("tcp_streaming_off", |b| b.iter(|| run_tcp_cluster(None)));
    g.bench_function("tcp_streaming_on", |b| {
        b.iter(|| {
            let mut service =
                CollectorService::bind("127.0.0.1:0".parse().unwrap(), 1 << 14).unwrap();
            let pulls = run_tcp_cluster(Some(service.local_addr()));
            let merged = service.snapshot().events.len();
            service.stop();
            (pulls, merged)
        })
    });
    g.finish();
}

/// Zero-copy wire path: frames coalesced into one reused buffer on encode,
/// decoded in place by a streaming reader — the per-frame cost the TCP
/// transport and trace streamers pay at steady state (no allocations once
/// the buffers are warm).
fn wire_throughput(c: &mut Criterion) {
    use fluentps_transport::frame::{encode_frame_into, FrameReader};
    use fluentps_transport::{KvPairs, Message, NodeId};
    use fluentps_util::buf::BytesMut;

    const FRAMES: u64 = 64;
    let mut g = c.benchmark_group("wire");
    g.throughput(Throughput::Elements(FRAMES));

    // A gradient push of 64 f32s: the shape of the dominant hot-path frame.
    let push = Message::SPush {
        worker: 1,
        progress: 7,
        kv: KvPairs::single(3, vec![0.125f32; 64]),
    };
    g.bench_function("frames_per_s", |b| {
        let mut buf = BytesMut::new();
        let mut reader = FrameReader::new();
        b.iter(|| {
            buf.clear();
            for _ in 0..FRAMES {
                encode_frame_into(NodeId::Worker(1), &push, &mut buf);
            }
            let mut cursor = std::io::Cursor::new(buf.as_ref());
            for _ in 0..FRAMES {
                reader.read_from(&mut cursor).unwrap();
            }
            buf.len()
        })
    });

    // A pull round trip: the SPull request plus its PullResponse, encoded
    // and decoded as one element — FRAMES request/response pairs per iter.
    let pull = Message::SPull {
        worker: 0,
        progress: 3,
        keys: (0..16).collect(),
    };
    let resp = Message::PullResponse {
        server: 0,
        progress: 3,
        version: 9,
        kv: KvPairs::single(0, vec![1.0f32; 96]),
    };
    g.bench_function("pulls_per_s", |b| {
        let mut buf = BytesMut::new();
        let mut reader = FrameReader::new();
        b.iter(|| {
            buf.clear();
            for _ in 0..FRAMES {
                encode_frame_into(NodeId::Worker(0), &pull, &mut buf);
                encode_frame_into(NodeId::Server(0), &resp, &mut buf);
            }
            let mut cursor = std::io::Cursor::new(buf.as_ref());
            for _ in 0..FRAMES * 2 {
                reader.read_from(&mut cursor).unwrap();
            }
            buf.len()
        })
    });

    // The causal-context envelope's wire cost: the same gradient push
    // encoded and decoded bare vs. wrapped in a `Traced` frame. The pair
    // bounds what end-to-end request tracing adds to the hot path — the
    // envelope is 14 bytes plus one codec tag against a ~300-byte frame.
    let traced = push
        .clone()
        .with_ctx(fluentps_transport::CausalCtx::new((2u64 << 40) | 7).retry(1));
    for (name, msg) in [("ctx_overhead_off", &push), ("ctx_overhead_on", &traced)] {
        g.bench_function(name, |b| {
            let mut buf = BytesMut::new();
            let mut reader = FrameReader::new();
            b.iter(|| {
                buf.clear();
                for _ in 0..FRAMES {
                    encode_frame_into(NodeId::Worker(1), msg, &mut buf);
                }
                let mut cursor = std::io::Cursor::new(buf.as_ref());
                for _ in 0..FRAMES {
                    reader.read_from(&mut cursor).unwrap();
                }
                buf.len()
            })
        });
    }
    g.finish();
}

/// Analyzer throughput: a realistic mixed event stream (pull/defer/release
/// chains, pushes, V_train advances, wire pairs, barrier spans) through the
/// full `analyze::analyze` pass, reported as events/sec.
fn analyze_throughput(c: &mut Criterion) {
    const EVENTS_PER_ITER: u64 = 9;
    const ITERS: u64 = 1024;
    let collector = TraceCollector::wall((ITERS * EVENTS_PER_ITER) as usize * 2);
    let tracer = collector.tracer();
    for i in 0..ITERS {
        let shard = (i % 4) as u32;
        let worker = (i % 8) as u32;
        let at = RecordArgs::new()
            .shard(shard)
            .worker(worker)
            .progress(i)
            .v_train(i.saturating_sub(1));
        tracer.record(EventKind::WireSend, at.bytes(64));
        tracer.record(EventKind::WireRecv, at.bytes(64));
        tracer.record(EventKind::PullRequested, at.bytes(58));
        tracer.record(EventKind::PullDeferred, at);
        tracer.record(EventKind::PushApplied, at.bytes(128));
        tracer.record(
            EventKind::VTrainAdvanced,
            RecordArgs::new().shard(shard).v_train(i),
        );
        tracer.record(EventKind::DprReleased, at.v_train(i));
        let start = tracer.now();
        tracer.record_span(
            EventKind::BarrierWait,
            start,
            RecordArgs::new().worker(worker).progress(i),
        );
        tracer.record(EventKind::LatePushDropped, at.bytes(32));
    }
    let trace = collector.snapshot();
    let n = trace.events.len() as u64;
    let mut g = c.benchmark_group("analyze");
    g.throughput(Throughput::Elements(n));
    g.bench_function("mixed_9k_events", |b| b.iter(|| analyze::analyze(&trace)));
    g.finish();
}

/// Streaming analyzer: the same mixed event shape as `analyze_throughput`,
/// pushed one event at a time through `StreamAnalyzer` with small tumbling
/// windows (so window closes and histogram-ring rotation are on the
/// measured path), reported as events/sec.
fn stream_window(c: &mut Criterion) {
    use fluentps_obs::{StreamAnalyzer, StreamConfig, TraceEvent, NO_ID};

    const ITERS: u64 = 1024;
    let mut events: Vec<TraceEvent> = Vec::new();
    let mut ts = 0.0f64;
    let ev = |ts: f64, kind: EventKind, shard: u32, worker: u32, i: u64| TraceEvent {
        ts,
        dur: 0.0,
        kind,
        shard,
        worker,
        progress: i,
        v_train: i.saturating_sub(1),
        bytes: 64,
        seq: 0,
        ..Default::default()
    };
    for i in 0..ITERS {
        let shard = (i % 4) as u32;
        let worker = (i % 8) as u32;
        ts += 0.002; // ~20 events per 0.04s window
        events.push(ev(ts, EventKind::WireSend, shard, worker, i));
        events.push(ev(ts + 1e-4, EventKind::WireRecv, shard, worker, i));
        events.push(ev(ts + 2e-4, EventKind::PullRequested, shard, worker, i));
        events.push(ev(ts + 3e-4, EventKind::PullDeferred, shard, worker, i));
        events.push(ev(ts + 4e-4, EventKind::PushApplied, shard, worker, i));
        events.push(ev(ts + 5e-4, EventKind::VTrainAdvanced, shard, NO_ID, i));
        events.push(ev(ts + 6e-4, EventKind::DprReleased, shard, worker, i));
    }
    let n = events.len() as u64;
    let mut g = c.benchmark_group("stream");
    g.throughput(Throughput::Elements(n));
    g.bench_function("window_record", |b| {
        b.iter(|| {
            let mut s = StreamAnalyzer::new(StreamConfig {
                window_secs: 0.04,
                windows: 8,
            });
            for ev in &events {
                s.advance_to(ev.ts);
                s.ingest(ev);
            }
            (s.total(), s.windows_closed())
        })
    });
    g.finish();
}

criterion_group!(
    obs,
    tracer_disabled,
    tracer_enabled,
    prof_disabled,
    prof_span_record,
    metrics,
    export_chrome,
    engine_tracing_overhead,
    collect_streaming_overhead,
    wire_throughput,
    analyze_throughput,
    stream_window
);
criterion_main!(obs);
