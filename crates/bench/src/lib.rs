//! Shared helpers for the benchmark harness.
//!
//! The benches regenerate every table and figure of the paper's evaluation
//! at miniature scale (the timing harness runs each measurement many times),
//! plus microbenchmarks of the substrate hot paths. The full-size
//! reproductions live in the `repro` binary (`cargo run --release -p
//! fluentps-experiments --bin repro -- all`).

use fluentps_core::eps::ParamSpec;

/// A small skewed inventory for timing benches.
pub fn bench_inventory() -> Vec<ParamSpec> {
    let mut v = vec![ParamSpec {
        key: 0,
        len: 50_000,
    }];
    for k in 1..16 {
        v.push(ParamSpec { key: k, len: 2_000 });
    }
    v
}
