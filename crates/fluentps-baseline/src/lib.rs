//! Baseline comparator systems from the paper's evaluation.
//!
//! * [`pslite`] — a PS-Lite-style design: a **centralized scheduler** tracks
//!   every worker's progress and gates synchronization globally, producing
//!   the *non-overlap* behaviour of Figure 5(a): a fast worker may not even
//!   send its pull requests until the slowest worker has updated **all** M
//!   parameter shards. Combined with PS-Lite's default contiguous key
//!   slicing (`fluentps_core::eps::DefaultSlicer`), this is the Figure 6
//!   baseline.
//! * [`ssptable`] — a Bösen/SSPtable-style design: SSP enforced through a
//!   **client-side cached-parameter table** whose consistent staleness view
//!   becomes more expensive and less precise as workers are added. This is
//!   the PMLS-Caffe baseline whose accuracy collapses at N ≥ 8 in Figures 1
//!   and 7.

#![warn(missing_docs)]

pub mod pslite;
pub mod ssptable;

pub use pslite::{PsLiteMode, PsLiteScheduler};
pub use ssptable::{ClientCache, SspTableModel};
