//! PS-Lite-style centralized scheduler with non-overlap synchronization.
//!
//! In PS-Lite's synchronized-SGD recipe, one scheduler records the progress
//! of every worker and applies a single synchronization model to the whole
//! task. The consequence the paper attacks (Section III-D, Figure 5a): the
//! scheduler behaves like a global barrier across *all* parameter shards —
//! pull requests are withheld until the slowest worker has pushed to every
//! server, so the push of shard A never overlaps the pull of shard B.

/// Synchronization models PS-Lite supports (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PsLiteMode {
    /// Full barrier per iteration.
    Bsp,
    /// No barrier.
    Asp,
    /// Bounded delay: a worker may run at most `delay` iterations past the
    /// slowest one.
    BoundedDelay(u64),
}

/// The centralized progress tracker.
#[derive(Debug, Clone)]
pub struct PsLiteScheduler {
    mode: PsLiteMode,
    /// Iterations each worker has *completed* (pushed to all servers),
    /// encoded as "next iteration to run"; starts at 0.
    completed: Vec<u64>,
    /// Workers blocked at the barrier, by the iteration they wait to pull.
    waiting: Vec<Option<u64>>,
    barrier_count: u64,
}

impl PsLiteScheduler {
    /// Scheduler for `num_workers` workers under `mode`.
    pub fn new(num_workers: u32, mode: PsLiteMode) -> Self {
        PsLiteScheduler {
            mode,
            completed: vec![0; num_workers as usize],
            waiting: vec![None; num_workers as usize],
            barrier_count: 0,
        }
    }

    /// Record that `worker` has finished pushing iteration `iter` to every
    /// server. Returns the workers whose barrier is now released (they may
    /// send their pull requests).
    pub fn report_push_complete(&mut self, worker: u32, iter: u64) -> Vec<u32> {
        let slot = &mut self.completed[worker as usize];
        debug_assert_eq!(*slot, iter, "workers report in order");
        *slot = iter + 1;
        // Re-examine every waiting worker against the new global state.
        let mut released = Vec::new();
        for w in 0..self.waiting.len() {
            if let Some(want) = self.waiting[w] {
                if self.pull_admitted(want) {
                    self.waiting[w] = None;
                    released.push(w as u32);
                }
            }
        }
        released
    }

    /// May a worker that just completed iteration `iter` send its pulls now?
    /// If not, it is parked at the scheduler barrier until
    /// [`PsLiteScheduler::report_push_complete`] releases it.
    pub fn request_pull(&mut self, worker: u32, iter: u64) -> bool {
        if self.pull_admitted(iter) {
            true
        } else {
            self.waiting[worker as usize] = Some(iter);
            self.barrier_count += 1;
            false
        }
    }

    fn pull_admitted(&self, iter: u64) -> bool {
        let min = self.min_completed();
        match self.mode {
            // BSP: everyone must have completed this iteration.
            PsLiteMode::Bsp => min > iter,
            PsLiteMode::Asp => true,
            // Bounded delay: the slowest worker is at most `d` behind.
            PsLiteMode::BoundedDelay(d) => min + d > iter,
        }
    }

    /// Iterations completed by the slowest worker.
    pub fn min_completed(&self) -> u64 {
        self.completed.iter().copied().min().unwrap_or(0)
    }

    /// Iterations completed by the fastest worker.
    pub fn max_completed(&self) -> u64 {
        self.completed.iter().copied().max().unwrap_or(0)
    }

    /// How many times a worker hit the global barrier.
    pub fn barrier_count(&self) -> u64 {
        self.barrier_count
    }

    /// Workers currently parked at the barrier.
    pub fn waiting_workers(&self) -> Vec<u32> {
        self.waiting
            .iter()
            .enumerate()
            .filter(|(_, w)| w.is_some())
            .map(|(i, _)| i as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bsp_barrier_holds_until_everyone_pushed() {
        let mut s = PsLiteScheduler::new(3, PsLiteMode::Bsp);
        assert!(s.report_push_complete(0, 0).is_empty());
        // Worker 0 wants to pull for iteration 0; slowest hasn't finished.
        assert!(!s.request_pull(0, 0));
        assert!(s.report_push_complete(1, 0).is_empty());
        // The last worker's push releases the parked worker.
        let released = s.report_push_complete(2, 0);
        assert_eq!(released, vec![0]);
        // And a worker asking afterwards passes immediately.
        assert!(s.request_pull(1, 0));
        assert_eq!(s.barrier_count(), 1);
    }

    #[test]
    fn asp_never_parks() {
        let mut s = PsLiteScheduler::new(4, PsLiteMode::Asp);
        s.report_push_complete(0, 0);
        assert!(s.request_pull(0, 0));
        // Even far ahead.
        for i in 1..10 {
            s.report_push_complete(0, i);
            assert!(s.request_pull(0, i));
        }
        assert_eq!(s.barrier_count(), 0);
    }

    #[test]
    fn bounded_delay_allows_gap_up_to_d() {
        let mut s = PsLiteScheduler::new(2, PsLiteMode::BoundedDelay(2));
        // Worker 0 races: completes 0, 1, 2 while worker 1 sits at 0.
        s.report_push_complete(0, 0);
        assert!(s.request_pull(0, 0)); // gap 1 ≤ 2? min=0, 0+2>0 ✓
        s.report_push_complete(0, 1);
        assert!(s.request_pull(0, 1)); // 0+2>1 ✓
        s.report_push_complete(0, 2);
        assert!(!s.request_pull(0, 2)); // 0+2>2 ✗ → parked
        let released = s.report_push_complete(1, 0);
        assert_eq!(released, vec![0]); // min=1, 1+2>2 ✓
    }

    #[test]
    fn multiple_workers_released_together() {
        let mut s = PsLiteScheduler::new(3, PsLiteMode::Bsp);
        s.report_push_complete(0, 0);
        s.report_push_complete(1, 0);
        assert!(!s.request_pull(0, 0));
        assert!(!s.request_pull(1, 0));
        assert_eq!(s.waiting_workers(), vec![0, 1]);
        let released = s.report_push_complete(2, 0);
        assert_eq!(released, vec![0, 1]);
        assert!(s.waiting_workers().is_empty());
    }

    #[test]
    fn min_max_track_progress() {
        let mut s = PsLiteScheduler::new(2, PsLiteMode::Asp);
        s.report_push_complete(0, 0);
        s.report_push_complete(0, 1);
        s.report_push_complete(1, 0);
        assert_eq!(s.min_completed(), 1);
        assert_eq!(s.max_completed(), 2);
    }
}
