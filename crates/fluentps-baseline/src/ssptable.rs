//! Bösen/SSPtable-style client-cached SSP.
//!
//! Bösen implements SSP through SSPtable: a shared-memory table API where
//! each worker *caches* parameter entries locally and the table invalidates
//! entries whose version is older than `clock − s`. Two properties matter
//! for the reproduction:
//!
//! 1. **Client cache semantics** ([`ClientCache`]): a worker reads its cache
//!    as long as the cached version is within the staleness bound, touching
//!    the server only on a miss.
//! 2. **Consistency-view degradation at scale** ([`SspTableModel`]): keeping
//!    a consistent staleness view across N workers costs Θ(N) maintenance
//!    per clock tick; under load the view lags, so the *effective* staleness
//!    a worker experiences grows with N. This is the mechanism behind the
//!    accuracy collapse at N ≥ 8 the paper shows in Figures 1 and 7 — and
//!    the scalability argument for FluentPS's per-server progress tracking.
//!    The lag coefficient is a model parameter; the default (one iteration
//!    of effective extra staleness per worker) is calibrated so that N ≤ 4
//!    behaves close to honest SSP while N ≥ 8 reads badly outdated caches,
//!    matching the paper's observed accuracy cliff at that scale.

/// Scalability model of the SSPtable consistency view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SspTableModel {
    /// Nominal staleness threshold `s`.
    pub s: u64,
    /// Extra effective staleness contributed per worker by view-maintenance
    /// lag.
    pub lag_per_worker: f64,
}

impl SspTableModel {
    /// Cluster size the consistency view tracks without measurable lag.
    pub const FREE_WORKERS: u32 = 4;

    /// Default calibration (see module docs).
    pub fn new(s: u64) -> Self {
        SspTableModel {
            s,
            lag_per_worker: 1.0,
        }
    }

    /// The staleness bound workers *actually* experience at `num_workers`.
    /// Maintenance keeps up for small clusters (the paper sees no loss at
    /// 2–4 workers); past [`Self::FREE_WORKERS`] every extra worker adds
    /// `lag_per_worker` iterations of view lag.
    pub fn effective_staleness(&self, num_workers: u32) -> u64 {
        let excess = num_workers.saturating_sub(Self::FREE_WORKERS) as f64;
        self.s + (self.lag_per_worker * excess).round() as u64
    }

    /// Per-clock-tick maintenance cost in arbitrary work units (Θ(N) row
    /// invalidations) — used by the timing simulation to charge the server.
    pub fn maintenance_cost(&self, num_workers: u32) -> f64 {
        num_workers as f64
    }
}

/// A Bösen-style per-worker parameter cache with version-based invalidation.
#[derive(Debug, Clone)]
pub struct ClientCache {
    s: u64,
    /// Cached (version, values) per key.
    entries: std::collections::HashMap<u64, (u64, Vec<f32>)>,
    hits: u64,
    misses: u64,
}

impl ClientCache {
    /// Cache with staleness bound `s`.
    pub fn new(s: u64) -> Self {
        ClientCache {
            s,
            entries: std::collections::HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Read `key` at the worker's current `clock`. `Some(values)` when the
    /// cached version `v` satisfies `v + s >= clock` (SSPtable's validity
    /// rule); `None` forces a server fetch.
    pub fn read(&mut self, key: u64, clock: u64) -> Option<&[f32]> {
        // Split borrow: decide validity first, then hand out the reference.
        let valid = match self.entries.get(&key) {
            Some((version, _)) => version + self.s >= clock,
            None => false,
        };
        if valid {
            self.hits += 1;
            self.entries.get(&key).map(|(_, v)| v.as_slice())
        } else {
            self.misses += 1;
            None
        }
    }

    /// Install a fresh copy fetched from the server at `version`.
    pub fn install(&mut self, key: u64, version: u64, values: Vec<f32>) {
        self.entries.insert(key, (version, values));
    }

    /// Invalidate entries older than `clock − s` (the table's background
    /// maintenance pass). Returns how many entries were evicted — this count
    /// scales with model size and worker count, which is the maintenance
    /// burden [`SspTableModel`] charges for.
    pub fn invalidate_outdated(&mut self, clock: u64) -> usize {
        let bound = clock.saturating_sub(self.s);
        let before = self.entries.len();
        self.entries.retain(|_, (version, _)| *version >= bound);
        before - self.entries.len()
    }

    /// Cache-hit statistics `(hits, misses)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_staleness_grows_with_workers() {
        let m = SspTableModel::new(3);
        assert_eq!(m.effective_staleness(2), 3); // small clusters keep up
        assert_eq!(m.effective_staleness(4), 3);
        assert_eq!(m.effective_staleness(8), 7);
        assert_eq!(m.effective_staleness(16), 15);
        assert_eq!(m.effective_staleness(64), 63);
        // Monotone in N.
        let mut prev = 0;
        for n in [1u32, 2, 4, 8, 16, 32, 64, 128] {
            let e = m.effective_staleness(n);
            assert!(e >= prev);
            prev = e;
        }
    }

    #[test]
    fn maintenance_cost_is_linear_in_workers() {
        let m = SspTableModel::new(3);
        assert_eq!(m.maintenance_cost(64), 2.0 * m.maintenance_cost(32));
    }

    #[test]
    fn cache_serves_within_bound_and_misses_past_it() {
        let mut c = ClientCache::new(2);
        c.install(7, 10, vec![1.0, 2.0]);
        // clock 12: version 10 + s 2 >= 12 → hit.
        assert_eq!(c.read(7, 12), Some(&[1.0, 2.0][..]));
        // clock 13: 10 + 2 < 13 → miss.
        assert_eq!(c.read(7, 13), None);
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn unknown_keys_always_miss() {
        let mut c = ClientCache::new(5);
        assert_eq!(c.read(99, 0), None);
        assert_eq!(c.stats(), (0, 1));
    }

    #[test]
    fn invalidation_evicts_only_outdated() {
        let mut c = ClientCache::new(1);
        c.install(0, 5, vec![0.0]);
        c.install(1, 9, vec![0.0]);
        c.install(2, 10, vec![0.0]);
        let evicted = c.invalidate_outdated(10);
        assert_eq!(evicted, 1); // only version 5 < 10 − 1
        assert!(c.read(1, 10).is_some());
        assert!(c.read(0, 10).is_none());
    }

    #[test]
    fn reinstall_refreshes_version() {
        let mut c = ClientCache::new(0);
        c.install(3, 1, vec![1.0]);
        assert_eq!(c.read(3, 2), None);
        c.install(3, 2, vec![2.0]);
        assert_eq!(c.read(3, 2), Some(&[2.0][..]));
    }
}
