//! Ergonomic builder for standing up a FluentPS deployment.
//!
//! The low-level pieces ([`crate::engine::Cluster`], [`crate::eps`],
//! [`crate::worker::Router`]) compose manually; [`FluentPs`] wraps the
//! common path — pick a model, a policy and a slicer, hand over the initial
//! parameters, get a running in-process cluster plus one client per worker.

use std::collections::HashMap;

use crate::condition::SyncModel;
use crate::dpr::DprPolicy;
use crate::engine::{Cluster, EngineConfig, InprocWorker};
use crate::eps::{DefaultSlicer, EpsSlicer, ParamSpec, SliceMap, Slicer};
use crate::server::GradScale;

/// Which placement strategy the builder uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlicerChoice {
    /// PS-Lite-style contiguous ranges (kept for comparisons).
    Default,
    /// Elastic Parameter Slicing with a chunk bound.
    Eps {
        /// Maximum values per chunk.
        max_chunk: usize,
    },
}

/// Builder for an in-process FluentPS cluster.
///
/// ```
/// use std::collections::HashMap;
/// use fluentps_core::api::FluentPs;
/// use fluentps_core::condition::SyncModel;
///
/// let mut init = HashMap::new();
/// init.insert(0u64, vec![0.0f32; 16]);
/// let (cluster, mut workers) = FluentPs::builder()
///     .workers(1)
///     .servers(1)
///     .model(SyncModel::Asp)
///     .launch(&init);
/// let mut w = workers.pop().unwrap();
/// let grads: HashMap<u64, Vec<f32>> = [(0u64, vec![1.0f32; 16])].into();
/// w.spush(0, &grads).unwrap();
/// let mut params = HashMap::new();
/// w.spull_wait(0, &mut params).unwrap();
/// assert_eq!(params[&0], vec![1.0; 16]);
/// cluster.shutdown();
/// ```
#[derive(Debug, Clone)]
pub struct FluentPs {
    num_workers: u32,
    num_servers: u32,
    model: SyncModel,
    per_server_models: Option<Vec<SyncModel>>,
    policy: DprPolicy,
    grad_scale: GradScale,
    slicer: SlicerChoice,
    seed: u64,
}

impl Default for FluentPs {
    fn default() -> Self {
        FluentPs {
            num_workers: 1,
            num_servers: 1,
            model: SyncModel::Bsp,
            per_server_models: None,
            policy: DprPolicy::LazyExecution,
            grad_scale: GradScale::DivideByN,
            slicer: SlicerChoice::Eps { max_chunk: 4096 },
            seed: 0,
        }
    }
}

impl FluentPs {
    /// Start building a deployment.
    pub fn builder() -> Self {
        Self::default()
    }

    /// Number of workers (`N`).
    pub fn workers(mut self, n: u32) -> Self {
        self.num_workers = n;
        self
    }

    /// Number of servers (`M`).
    pub fn servers(mut self, m: u32) -> Self {
        self.num_servers = m;
        self
    }

    /// Synchronization model on every shard.
    pub fn model(mut self, model: SyncModel) -> Self {
        self.model = model;
        self
    }

    /// A different model per server — the paper's per-shard flexibility
    /// (Figure 2 runs SSP, PSSP and drop-stragglers side by side).
    pub fn per_server_models(mut self, models: Vec<SyncModel>) -> Self {
        self.per_server_models = Some(models);
        self
    }

    /// DPR execution policy (default: lazy execution).
    pub fn policy(mut self, policy: DprPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Gradient aggregation rule (default: `w += g/N`).
    pub fn grad_scale(mut self, scale: GradScale) -> Self {
        self.grad_scale = scale;
        self
    }

    /// Placement strategy (default: EPS).
    pub fn slicer(mut self, slicer: SlicerChoice) -> Self {
        self.slicer = slicer;
        self
    }

    /// Seed for PSSP probability draws.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Compute the placement this builder would use for `init`.
    pub fn plan(&self, init: &HashMap<u64, Vec<f32>>) -> SliceMap {
        let mut specs: Vec<ParamSpec> = init
            .iter()
            .map(|(&key, vals)| ParamSpec {
                key,
                len: vals.len(),
            })
            .collect();
        specs.sort_by_key(|s| s.key);
        match self.slicer {
            SlicerChoice::Default => DefaultSlicer.slice(&specs, self.num_servers),
            SlicerChoice::Eps { max_chunk } => {
                EpsSlicer { max_chunk }.slice(&specs, self.num_servers)
            }
        }
    }

    /// Launch the in-process cluster; returns the cluster handle (shutdown,
    /// statistics) and one client per worker.
    pub fn launch(self, init: &HashMap<u64, Vec<f32>>) -> (Cluster, Vec<InprocWorker>) {
        let map = self.plan(init);
        let cfg = EngineConfig {
            num_workers: self.num_workers,
            num_servers: self.num_servers,
            model: self.model,
            policy: self.policy,
            grad_scale: self.grad_scale,
            seed: self.seed,
        };
        match self.per_server_models {
            Some(models) => Cluster::launch_heterogeneous(cfg, models, map, init),
            None => Cluster::launch(cfg, map, init),
        }
    }

    /// [`FluentPs::launch`] with a [`TraceCollector`] attached: shards and
    /// worker clients record trace events into `collector`.
    pub fn launch_with_collector(
        self,
        init: &HashMap<u64, Vec<f32>>,
        collector: &fluentps_obs::TraceCollector,
    ) -> (Cluster, Vec<InprocWorker>) {
        let map = self.plan(init);
        let cfg = EngineConfig {
            num_workers: self.num_workers,
            num_servers: self.num_servers,
            model: self.model,
            policy: self.policy,
            grad_scale: self.grad_scale,
            seed: self.seed,
        };
        let models = self
            .per_server_models
            .unwrap_or_else(|| vec![cfg.model; cfg.num_servers as usize]);
        Cluster::launch_heterogeneous_with_collector(cfg, models, map, init, collector)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn init() -> HashMap<u64, Vec<f32>> {
        let mut m = HashMap::new();
        m.insert(0, vec![0.0; 100]);
        m.insert(1, vec![0.0; 10]);
        m
    }

    #[test]
    fn builder_plans_balanced_placement() {
        let b = FluentPs::builder()
            .workers(2)
            .servers(2)
            .slicer(SlicerChoice::Eps { max_chunk: 32 });
        let map = b.plan(&init());
        assert_eq!(map.num_servers(), 2);
        assert_eq!(map.total_values(), 110);
        assert!(map.imbalance() < 1.3);
    }

    #[test]
    fn builder_launches_and_round_trips() {
        let (cluster, mut workers) = FluentPs::builder()
            .workers(1)
            .servers(2)
            .model(SyncModel::Asp)
            .launch(&init());
        let mut w = workers.pop().unwrap();
        let grads: HashMap<u64, Vec<f32>> =
            [(0u64, vec![1.0f32; 100]), (1u64, vec![2.0f32; 10])].into();
        w.spush(0, &grads).unwrap();
        let mut params = HashMap::new();
        w.spull_wait(0, &mut params).unwrap();
        assert_eq!(params[&0], vec![1.0; 100]);
        assert_eq!(params[&1], vec![2.0; 10]);
        let stats = cluster.shutdown();
        assert_eq!(stats.len(), 2);
    }

    #[test]
    fn heterogeneous_models_flow_through() {
        let (cluster, mut workers) = FluentPs::builder()
            .workers(1)
            .servers(2)
            .per_server_models(vec![SyncModel::Asp, SyncModel::Ssp { s: 9 }])
            .launch(&init());
        let mut w = workers.pop().unwrap();
        let grads: HashMap<u64, Vec<f32>> =
            [(0u64, vec![0.0f32; 100]), (1u64, vec![0.0f32; 10])].into();
        for i in 0..3 {
            w.spush(i, &grads).unwrap();
            let mut params = HashMap::new();
            w.spull_wait(i, &mut params).unwrap();
        }
        cluster.shutdown();
    }
}
