//! Shard checkpointing: serialize a shard's parameters and training
//! progress so a replacement server can resume after a failure (the
//! fault-tolerance half of elasticity — EPS moves the *placement*, the
//! checkpoint moves the *state*).
//!
//! Format: a small header (version, v_train), the per-worker applied-push
//! watermarks, then the parameters as one codec-encoded `KvPairs`.
//! Synchronization state other than `V_train` (the DPR buffer,
//! per-iteration counts) is deliberately not checkpointed: buffered pulls
//! belong to connections that died with the old server; workers re-issue
//! them on reconnect, and replay their recent pushes so the replacement can
//! rebuild the push counts `V_train` needs to advance. The watermarks let
//! the replacement's server loop drop replayed pushes that were already
//! applied before the snapshot, keeping recovery effectively exactly-once.

use fluentps_util::buf::{Buf, BufMut, Bytes, BytesMut};

use fluentps_transport::codec;
use fluentps_transport::error::DecodeError;
use fluentps_transport::{KvPairs, Message};

use crate::server::ServerShard;

/// Version byte of the checkpoint format. Version 2 added the per-worker
/// applied-push watermarks; version-1 blobs are rejected with
/// [`DecodeError::VersionMismatch`].
pub const CHECKPOINT_VERSION: u8 = 2;

/// A serializable snapshot of a shard's durable state.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCheckpoint {
    /// Overall training progress at snapshot time.
    pub v_train: u64,
    /// Per-worker highest applied push progress, encoded as `progress + 1`
    /// (`0` = no push from that worker has been applied). A replacement
    /// server loop seeds its duplicate-push filter from these so replayed
    /// pushes that already contributed to `params` are not applied twice.
    pub applied: Vec<u64>,
    /// All parameters of the shard.
    pub params: KvPairs,
}

impl ShardCheckpoint {
    /// Capture a shard's durable state with no watermark information (all
    /// replayed pushes will re-apply — at-least-once recovery).
    pub fn capture(shard: &ServerShard, keys: &[u64]) -> Self {
        let n = shard.config().num_workers as usize;
        Self::capture_with_applied(shard, keys, &vec![None; n])
    }

    /// Capture a shard's durable state plus the caller's per-worker
    /// applied-push watermarks (kept by the serving loop, which sees the
    /// requests; the shard state machine does not track identity of
    /// duplicates).
    pub fn capture_with_applied(
        shard: &ServerShard,
        keys: &[u64],
        applied: &[Option<u64>],
    ) -> Self {
        let mut params = KvPairs::default();
        for &key in keys {
            if let Some(vals) = shard.read_param(key) {
                params.keys.push(key);
                params.lens.push(vals.len() as u32);
                params.vals.extend_from_slice(vals);
            }
        }
        ShardCheckpoint {
            v_train: shard.v_train(),
            applied: applied
                .iter()
                .map(|w| w.map(|p| p + 1).unwrap_or(0))
                .collect(),
            params,
        }
    }

    /// The applied-push watermarks in decoded form (`None` = worker had no
    /// applied push at snapshot time).
    pub fn applied_watermarks(&self) -> Vec<Option<u64>> {
        self.applied
            .iter()
            .map(|&x| if x == 0 { None } else { Some(x - 1) })
            .collect()
    }

    /// Serialize to bytes (reuses the wire codec for the payload).
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.params.payload_bytes() + 32);
        buf.put_u8(CHECKPOINT_VERSION);
        buf.put_u64_le(self.v_train);
        buf.put_u32_le(self.applied.len() as u32);
        for &w in &self.applied {
            buf.put_u64_le(w);
        }
        // Wrap the params in a PullResponse so the existing codec carries
        // them; progress/server fields are unused here.
        codec::encode_into(
            &Message::PullResponse {
                server: 0,
                progress: 0,
                version: self.v_train,
                kv: self.params.clone(),
            },
            &mut buf,
        );
        buf.freeze()
    }

    /// Deserialize from bytes.
    pub fn from_bytes(mut bytes: Bytes) -> Result<Self, DecodeError> {
        if bytes.remaining() < 13 {
            return Err(DecodeError::Truncated {
                needed: 13,
                available: bytes.remaining(),
            });
        }
        let version = bytes.get_u8();
        if version != CHECKPOINT_VERSION {
            return Err(DecodeError::VersionMismatch {
                expected: CHECKPOINT_VERSION,
                found: version,
            });
        }
        let v_train = bytes.get_u64_le();
        let n = bytes.get_u32_le() as usize;
        if bytes.remaining() < n * 8 {
            return Err(DecodeError::Truncated {
                needed: n * 8,
                available: bytes.remaining(),
            });
        }
        let applied = (0..n).map(|_| bytes.get_u64_le()).collect();
        match codec::decode(bytes)? {
            Message::PullResponse { kv, .. } => Ok(ShardCheckpoint {
                v_train,
                applied,
                params: kv,
            }),
            _ => Err(DecodeError::UnknownTag(0xFF)),
        }
    }

    /// Restore this snapshot into a fresh shard: installs every parameter
    /// and fast-forwards `V_train` by replaying synthetic empty iterations.
    pub fn restore_into(&self, shard: &mut ServerShard) {
        for (key, vals) in self.params.iter() {
            shard.init_param(key, vals.to_vec());
        }
        shard.fast_forward(self.v_train);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::SyncModel;
    use crate::dpr::DprPolicy;
    use crate::server::{GradScale, PullOutcome, ShardConfig};

    fn trained_shard() -> (ServerShard, Vec<u64>) {
        let mut shard = ServerShard::new(ShardConfig {
            server_id: 0,
            num_workers: 2,
            model: SyncModel::Ssp { s: 1 },
            policy: DprPolicy::LazyExecution,
            grad_scale: GradScale::DivideByN,
        });
        shard.init_param(0, vec![0.0; 4]);
        shard.init_param(1, vec![0.0; 2]);
        for i in 0..3u64 {
            for w in 0..2 {
                shard.on_push(w, i, &KvPairs::single(0, vec![1.0; 4]));
                shard.on_push(w, i, &KvPairs::single(1, vec![2.0; 2]));
            }
        }
        (shard, vec![0, 1])
    }

    #[test]
    fn capture_roundtrips_through_bytes() {
        let (shard, keys) = trained_shard();
        let cp = ShardCheckpoint::capture(&shard, &keys);
        let bytes = cp.to_bytes();
        let back = ShardCheckpoint::from_bytes(bytes).expect("decode");
        assert_eq!(back, cp);
        assert_eq!(back.v_train, 3);
        assert!(back.params.is_consistent());
    }

    #[test]
    fn restore_resumes_training_where_it_left_off() {
        let (shard, keys) = trained_shard();
        let cp = ShardCheckpoint::capture(&shard, &keys);

        let mut fresh = ServerShard::new(ShardConfig {
            server_id: 1,
            num_workers: 2,
            model: SyncModel::Ssp { s: 1 },
            policy: DprPolicy::LazyExecution,
            grad_scale: GradScale::DivideByN,
        });
        cp.restore_into(&mut fresh);
        assert_eq!(fresh.v_train(), 3);
        assert_eq!(fresh.read_param(0), shard.read_param(0));
        assert_eq!(fresh.read_param(1), shard.read_param(1));

        // Training continues: a pull within the bound answers with the
        // restored parameters; the staleness bound is relative to the
        // restored V_train.
        match fresh.on_pull(0, 3, &[0], 0.5, None) {
            PullOutcome::Respond { kv, version } => {
                assert_eq!(version, 3);
                assert_eq!(kv.vals, vec![3.0; 4]);
            }
            PullOutcome::Deferred => panic!("pull within bound after restore"),
        }
        // A pull far past the bound is still deferred (sync state intact).
        assert_eq!(fresh.on_pull(0, 10, &[0], 0.5, None), PullOutcome::Deferred);
    }

    #[test]
    fn corrupt_checkpoint_is_rejected() {
        let (shard, keys) = trained_shard();
        let bytes = ShardCheckpoint::capture(&shard, &keys).to_bytes();
        // Wrong version byte: the exact mismatch is reported.
        let mut v = bytes.to_vec();
        v[0] = 9;
        assert_eq!(
            ShardCheckpoint::from_bytes(Bytes::from(v)),
            Err(DecodeError::VersionMismatch {
                expected: CHECKPOINT_VERSION,
                found: 9,
            })
        );
        // Truncated payload.
        assert!(ShardCheckpoint::from_bytes(bytes.slice(0..bytes.len() - 3)).is_err());
        // Empty.
        assert_eq!(
            ShardCheckpoint::from_bytes(Bytes::new()),
            Err(DecodeError::Truncated {
                needed: 13,
                available: 0,
            })
        );
        // Every possible truncation errors; none may panic.
        for cut in 0..bytes.len() {
            assert!(
                ShardCheckpoint::from_bytes(bytes.slice(0..cut)).is_err(),
                "truncation at {cut} accepted"
            );
        }
        // A watermark count promising more entries than the blob holds.
        let mut v = bytes.to_vec();
        v[9..13].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            ShardCheckpoint::from_bytes(Bytes::from(v)),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn capture_skips_unknown_keys() {
        let (shard, _) = trained_shard();
        let cp = ShardCheckpoint::capture(&shard, &[0, 99]);
        assert_eq!(cp.params.keys, vec![0]);
    }
}
