//! Condition-aware synchronization control (Sections III-A/III-B, Table III).
//!
//! FluentPS's unifying observation: every synchronization model is just a
//! pair of predicates evaluated on the server —
//!
//! | Model            | Pull condition                        | Push condition            |
//! |------------------|---------------------------------------|---------------------------|
//! | BSP              | `progress < V_train`                  | `Count[V_train] == N`     |
//! | ASP              | `progress < V_train + ∞`              | `Count[V_train] == N`     |
//! | SSP              | `progress < V_train + s`              | `Count[V_train] == N`     |
//! | DSPS             | `progress < V_train + s(t)`           | `Count[V_train] == N`     |
//! | Drop stragglers  | `progress < V_train`                  | `Count[V_train] == N_t`   |
//! | PSSP             | `progress < V_train + s` **or** `rand(0,1) > P` | `Count[V_train] == N` |
//!
//! [`SyncPolicy`] is the programmable `SetcondPull`/`SetcondPush` interface;
//! [`SyncModel`] provides all six built-in rows. Custom models plug in by
//! implementing the trait (see `tests/sync_models.rs` for an example that
//! builds a brand-new model out of the exposed synchronization state).

use crate::pssp::{constant_probability, dynamic_probability, Alpha};

/// The synchronization state a server shard exposes to its conditions —
/// exactly the details the paper says the `Setcond*` interfaces expose: the
/// overall progress, the per-iteration push count, and the progress of the
/// fastest/slowest worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncState {
    /// Overall training progress of this shard (`V_train`).
    pub v_train: u64,
    /// `Count[V_train]` — workers that pushed gradients for the current
    /// overall iteration.
    pub count_at_v_train: u32,
    /// Total number of workers.
    pub num_workers: u32,
    /// Fastest progress any worker has reported to this shard.
    pub fastest: u64,
    /// Slowest progress any worker has reported to this shard.
    pub slowest: u64,
}

/// A synchronization model expressed as a pull condition plus a push
/// condition — the `SetcondPull`/`SetcondPush` programming interface.
pub trait SyncPolicy: Send {
    /// Pull condition (Algorithm 1, server line 3). `true` means the server
    /// may answer the pull immediately; `false` defers it into the DPR
    /// buffer. `draw` is a uniform `[0,1)` sample for probabilistic models;
    /// `significance` is the optional gradient-significance hint.
    fn pull_permitted(
        &mut self,
        st: &SyncState,
        progress: u64,
        draw: f64,
        significance: Option<f64>,
    ) -> bool;

    /// Push condition (Algorithm 1, server line 17). `true` means enough
    /// gradients have been aggregated to advance `V_train` and execute
    /// buffered pulls.
    fn push_fires(&mut self, st: &SyncState) -> bool;

    /// Deterministic release check used by the soft-barrier policy when
    /// `V_train` advances: may a DPR with this progress be answered now?
    /// Probabilistic models use only their deterministic part here — a DPR
    /// was already "charged" its probability when it was deferred.
    fn release_permitted(&self, st: &SyncState, progress: u64) -> bool;

    /// Whether a push for an iteration *older* than `V_train` should still be
    /// folded into the parameters. Only the drop-stragglers model rejects
    /// late gradients.
    fn accept_late_push(&self) -> bool {
        true
    }

    /// Adaptation hook invoked after every applied push (used by DSPS to
    /// retune its staleness threshold at runtime).
    fn after_push(&mut self, _st: &SyncState) {}

    /// Short human-readable name (for reports and stats).
    fn name(&self) -> &'static str;
}

/// Runtime controller for DSPS (Dynamic Synchronous Parallel Strategy): the
/// staleness threshold follows the observed progress spread, clamped to
/// `[s_min, s_max]`. A persistently large spread widens `s` (don't stall the
/// cluster for a chronic straggler); a tight cluster narrows it (keep
/// parameters fresh).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DspsConfig {
    /// Lower bound for the adaptive threshold.
    pub s_min: u64,
    /// Upper bound for the adaptive threshold.
    pub s_max: u64,
    /// Initial threshold.
    pub s0: u64,
}

impl Default for DspsConfig {
    fn default() -> Self {
        DspsConfig {
            s_min: 1,
            s_max: 8,
            s0: 3,
        }
    }
}

/// The built-in synchronization models of Table III.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SyncModel {
    /// Bulk Synchronous Parallel: full barrier each iteration.
    Bsp,
    /// Asynchronous Parallel: never block a fast worker.
    Asp,
    /// Stale Synchronous Parallel with staleness threshold `s`.
    Ssp {
        /// Maximum progress gap before the fast worker is paused.
        s: u64,
    },
    /// DSPS: SSP whose threshold adapts to the observed spread at runtime.
    Dsps(DspsConfig),
    /// Drop stragglers: advance once any `n_t` of the `N` workers have
    /// pushed; late gradients are discarded.
    DropStragglers {
        /// Number of (fastest) workers whose pushes complete an iteration.
        n_t: u32,
    },
    /// Constant PSSP: past the threshold, block with fixed probability `c`.
    PsspConst {
        /// Staleness threshold.
        s: u64,
        /// Blocking probability once the gap reaches `s`.
        c: f64,
    },
    /// Dynamic PSSP: blocking probability grows with the gap via
    /// `α / (1 + e^(s−k))`.
    PsspDynamic {
        /// Staleness threshold.
        s: u64,
        /// How `α` is obtained.
        alpha: Alpha,
    },
}

impl SyncModel {
    /// Current effective staleness threshold (∞ encoded as `u64::MAX` for
    /// ASP). For DSPS this is the *initial* threshold; the live value is
    /// tracked by [`ModelRuntime`].
    pub fn nominal_s(&self) -> u64 {
        match self {
            SyncModel::Bsp | SyncModel::DropStragglers { .. } => 0,
            SyncModel::Asp => u64::MAX,
            SyncModel::Ssp { s } => *s,
            SyncModel::Dsps(cfg) => cfg.s0,
            SyncModel::PsspConst { s, .. } => *s,
            SyncModel::PsspDynamic { s, .. } => *s,
        }
    }

    /// Wrap into a stateful [`SyncPolicy`] (DSPS needs mutable state; the
    /// rest are pure).
    pub fn into_policy(self) -> ModelRuntime {
        let s_live = self.nominal_s();
        ModelRuntime {
            model: self,
            s_live,
        }
    }
}

/// Stateful runtime for a [`SyncModel`]; implements [`SyncPolicy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelRuntime {
    model: SyncModel,
    /// Live threshold; differs from `model.nominal_s()` only for DSPS.
    s_live: u64,
}

impl ModelRuntime {
    /// The wrapped model.
    pub fn model(&self) -> SyncModel {
        self.model
    }

    /// The current effective staleness threshold.
    pub fn live_s(&self) -> u64 {
        self.s_live
    }

    /// Progress gap of a request relative to the overall shard progress.
    #[inline]
    fn gap(st: &SyncState, progress: u64) -> u64 {
        progress.saturating_sub(st.v_train)
    }

    /// The deterministic "within staleness bound" test `progress < V_train + s`.
    #[inline]
    fn within_bound(&self, st: &SyncState, progress: u64) -> bool {
        match self.model {
            SyncModel::Bsp | SyncModel::DropStragglers { .. } => progress < st.v_train,
            SyncModel::Asp => true,
            SyncModel::Ssp { .. }
            | SyncModel::Dsps(_)
            | SyncModel::PsspConst { .. }
            | SyncModel::PsspDynamic { .. } => {
                // `V_train + s` may overflow for huge s; saturate.
                progress < st.v_train.saturating_add(self.s_live)
            }
        }
    }
}

impl SyncPolicy for ModelRuntime {
    fn pull_permitted(
        &mut self,
        st: &SyncState,
        progress: u64,
        draw: f64,
        significance: Option<f64>,
    ) -> bool {
        if self.within_bound(st, progress) {
            return true;
        }
        // Past the deterministic bound: PSSP may still let the pull through.
        let k = Self::gap(st, progress);
        let p_block = match self.model {
            SyncModel::PsspConst { s, c } => constant_probability(c, s, k),
            SyncModel::PsspDynamic { s, alpha } => {
                dynamic_probability(alpha.resolve(significance), s, k)
            }
            _ => return false,
        };
        // Table III: permitted when rand(0,1) > P, i.e. blocked w.p. P.
        draw > p_block
    }

    fn push_fires(&mut self, st: &SyncState) -> bool {
        match self.model {
            SyncModel::DropStragglers { n_t } => st.count_at_v_train >= n_t,
            _ => st.count_at_v_train >= st.num_workers,
        }
    }

    fn release_permitted(&self, st: &SyncState, progress: u64) -> bool {
        self.within_bound(st, progress)
    }

    fn accept_late_push(&self) -> bool {
        !matches!(self.model, SyncModel::DropStragglers { .. })
    }

    fn after_push(&mut self, st: &SyncState) {
        if let SyncModel::Dsps(cfg) = self.model {
            // Track the observed spread with a one-step relaxation toward it:
            // a chronically slow worker widens the window instead of stalling
            // the cluster; a tight cluster narrows it to keep staleness low.
            let spread = st.fastest.saturating_sub(st.slowest);
            // Tolerating a spread of k requires a threshold of k+1 (the
            // pull condition is strict: progress < V_train + s).
            let target = (spread + 1).clamp(cfg.s_min, cfg.s_max);
            self.s_live = match self.s_live.cmp(&target) {
                std::cmp::Ordering::Less => self.s_live + 1,
                std::cmp::Ordering::Greater => self.s_live - 1,
                std::cmp::Ordering::Equal => self.s_live,
            };
        }
    }

    fn name(&self) -> &'static str {
        match self.model {
            SyncModel::Bsp => "bsp",
            SyncModel::Asp => "asp",
            SyncModel::Ssp { .. } => "ssp",
            SyncModel::Dsps(_) => "dsps",
            SyncModel::DropStragglers { .. } => "drop-stragglers",
            SyncModel::PsspConst { .. } => "pssp-const",
            SyncModel::PsspDynamic { .. } => "pssp-dynamic",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn st(v_train: u64, count: u32, n: u32) -> SyncState {
        SyncState {
            v_train,
            count_at_v_train: count,
            num_workers: n,
            fastest: v_train,
            slowest: v_train,
        }
    }

    #[test]
    fn bsp_pull_condition_is_full_barrier() {
        let mut m = SyncModel::Bsp.into_policy();
        // Worker at progress 0 must wait until V_train = 1.
        assert!(!m.pull_permitted(&st(0, 0, 4), 0, 0.5, None));
        assert!(m.pull_permitted(&st(1, 0, 4), 0, 0.5, None));
    }

    #[test]
    fn asp_never_blocks() {
        let mut m = SyncModel::Asp.into_policy();
        assert!(m.pull_permitted(&st(0, 0, 4), 1_000_000, 0.0, None));
    }

    #[test]
    fn ssp_blocks_exactly_at_threshold() {
        let mut m = SyncModel::Ssp { s: 3 }.into_policy();
        let state = st(2, 0, 4);
        assert!(m.pull_permitted(&state, 4, 0.0, None)); // gap 2 < 3
        assert!(!m.pull_permitted(&state, 5, 0.0, None)); // gap 3 == s → block
    }

    #[test]
    fn ssp_with_s_zero_equals_bsp() {
        let mut ssp = SyncModel::Ssp { s: 0 }.into_policy();
        let mut bsp = SyncModel::Bsp.into_policy();
        for v in 0..4u64 {
            for p in 0..6u64 {
                let state = st(v, 0, 4);
                assert_eq!(
                    ssp.pull_permitted(&state, p, 0.3, None),
                    bsp.pull_permitted(&state, p, 0.3, None),
                    "v={v} p={p}"
                );
            }
        }
    }

    #[test]
    fn pssp_const_blocks_with_probability_c() {
        let mut m = SyncModel::PsspConst { s: 2, c: 0.4 }.into_policy();
        let state = st(0, 0, 4);
        // Gap 3 ≥ s: blocked iff draw ≤ 0.4.
        assert!(!m.pull_permitted(&state, 3, 0.39, None));
        assert!(m.pull_permitted(&state, 3, 0.41, None));
        // Below threshold: always permitted regardless of draw.
        assert!(m.pull_permitted(&state, 1, 0.0, None));
    }

    #[test]
    fn pssp_c_one_is_ssp_and_c_zero_is_asp() {
        let mut pssp1 = SyncModel::PsspConst { s: 2, c: 1.0 }.into_policy();
        let mut pssp0 = SyncModel::PsspConst { s: 2, c: 0.0 }.into_policy();
        let mut ssp = SyncModel::Ssp { s: 2 }.into_policy();
        for p in 0..10u64 {
            let state = st(1, 0, 4);
            // draw < 1.0 strictly, so `draw > 1.0` is always false → SSP.
            assert_eq!(
                pssp1.pull_permitted(&state, p, 0.999, None),
                ssp.pull_permitted(&state, p, 0.999, None)
            );
            // `draw > 0.0` is true for any positive draw → ASP.
            assert!(pssp0.pull_permitted(&state, p, 1e-9, None));
        }
    }

    #[test]
    fn pssp_dynamic_blocks_faster_workers_harder() {
        let mut m = SyncModel::PsspDynamic {
            s: 2,
            alpha: Alpha::Constant(1.0),
        }
        .into_policy();
        let state = st(0, 0, 4);
        // P(k=2) = 0.5, P(k=8) ≈ 1/(1+e^-6) ≈ 0.9975.
        let mid_draw = 0.9; // above P(2), below P(8)
        assert!(m.pull_permitted(&state, 2, mid_draw, None));
        assert!(!m.pull_permitted(&state, 8, mid_draw, None));
    }

    #[test]
    fn pssp_dynamic_uses_significance_for_alpha() {
        let mut m = SyncModel::PsspDynamic {
            s: 1,
            alpha: Alpha::Significance {
                floor: 0.0,
                cap: 1.0,
            },
        }
        .into_policy();
        let state = st(0, 0, 4);
        // Significance 0 → α 0 → never blocks.
        assert!(m.pull_permitted(&state, 5, 0.0001, Some(0.0)));
        // Significance 1 → α 1 → blocks at large gap for small draws.
        assert!(!m.pull_permitted(&state, 5, 0.5, Some(1.0)));
    }

    #[test]
    fn push_condition_counts() {
        let mut full = SyncModel::Ssp { s: 1 }.into_policy();
        assert!(!full.push_fires(&st(0, 3, 4)));
        assert!(full.push_fires(&st(0, 4, 4)));

        let mut drop = SyncModel::DropStragglers { n_t: 3 }.into_policy();
        assert!(!drop.push_fires(&st(0, 2, 4)));
        assert!(drop.push_fires(&st(0, 3, 4)));
        assert!(!drop.accept_late_push());
        assert!(full.accept_late_push());
    }

    #[test]
    fn dsps_threshold_tracks_spread() {
        let cfg = DspsConfig {
            s_min: 1,
            s_max: 10,
            s0: 3,
        };
        let mut m = SyncModel::Dsps(cfg).into_policy();
        // Large persistent spread widens the threshold one step per push.
        let wide = SyncState {
            v_train: 0,
            count_at_v_train: 0,
            num_workers: 4,
            fastest: 9,
            slowest: 0,
        };
        for _ in 0..20 {
            m.after_push(&wide);
        }
        assert_eq!(m.live_s(), 10); // spread 9 tolerated needs s = 10
                                    // A tight cluster narrows it again, bounded below by s_min.
        let tight = SyncState {
            v_train: 9,
            count_at_v_train: 0,
            num_workers: 4,
            fastest: 9,
            slowest: 9,
        };
        for _ in 0..20 {
            m.after_push(&tight);
        }
        assert_eq!(m.live_s(), cfg.s_min);
    }

    #[test]
    fn release_uses_only_deterministic_part() {
        let m = SyncModel::PsspConst { s: 2, c: 0.5 }.into_policy();
        // Released once within the bound, no fresh probability draw involved.
        assert!(m.release_permitted(&st(4, 0, 4), 5)); // gap 1 < 2
        assert!(!m.release_permitted(&st(4, 0, 4), 6)); // gap 2 == s
    }

    #[test]
    fn asp_bound_does_not_overflow() {
        let mut m = SyncModel::Asp.into_policy();
        assert!(m.pull_permitted(&st(u64::MAX - 1, 0, 2), u64::MAX, 0.0, None));
    }
}
