//! Replicated control-plane log: a Raft-style consensus core for the
//! supervisor quorum.
//!
//! The PR-4 supervisor owned membership, routing and checkpoint metadata as
//! a single process — kill it and no dead server could ever be replaced or
//! remapped. This module replicates that state machine across `R`
//! supervisor replicas with a compact Raft subset:
//!
//! - **Leader election** with per-replica seeded randomized timeouts.
//!   Replica 0 draws the shortest *initial* timeout, so the first election
//!   is deterministic (replica 0 wins term 1); later elections stay safe
//!   under any interleaving because a replica votes at most once per term.
//! - **Log replication** via `AppendEntries`/`AppendAck` with the classic
//!   consistency check at `prev_index` and next-index backoff.
//! - **Single-leader-commit rule**: a leader only advances the commit index
//!   over entries *of its own term* once a quorum of `match_index`es cover
//!   them, which (with the vote-once rule and the up-to-date vote check)
//!   guarantees committed prefixes never diverge across replicas.
//! - **Leadership leases**: a leader that cannot hear acks from a quorum
//!   within `leader_lease` steps down instead of acting on stale authority,
//!   so quorum loss degrades explicitly (no leader ⇒ `/healthz` 503)
//!   rather than split-braining.
//!
//! The replica is a *pure* state machine: no threads, no sockets, no wall
//! clock. Time is an explicit `now: Duration` argument and every call
//! returns the messages to transmit, which makes the whole protocol
//! deterministic under a seeded scheduler and directly property-testable
//! (see `tests/consensus_proptest.rs`). The driving loop in
//! [`crate::recovery`] owns the actual transport.

use std::collections::BTreeSet;
use std::time::Duration;

use fluentps_transport::{Message, NodeId, WireLogEntry, NO_LEADER};
use fluentps_util::rng::StdRng;

/// Max log entries shipped in one `AppendEntries`; keeps frames small while
/// still letting a lagging follower catch up in a few round trips.
const MAX_ENTRIES_PER_APPEND: usize = 64;

/// A command of the replicated control-plane state machine. Commands travel
/// on the wire as opaque bytes inside [`WireLogEntry`]; the transport never
/// learns this vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlCommand {
    /// Leader lease renewal / commit clock. Proposed periodically by the
    /// leader; commits of ticks both renew the lease evidence and give
    /// chaos scenarios a deterministic logical clock to key kill triggers
    /// on (`--kill-supervisor M@V` fires when replica M applies commit V).
    Tick,
    /// Liveness verdict: server `server` is declared dead. Recovery actions
    /// (replacement or remap) only run *after* this entry commits.
    DeclareDead {
        /// The dead server's id.
        server: u32,
    },
    /// A replacement for server `server` was spawned and seeded from its
    /// checkpoint; the verdict is resolved.
    Replaced {
        /// The replaced server's id.
        server: u32,
    },
    /// Server `server`'s slices were remapped onto survivors via
    /// `EpsSlicer::remap_dead`; replicas apply the same deterministic remap
    /// to their route-table mirror.
    Remapped {
        /// The remapped (permanently dead) server's id.
        server: u32,
    },
}

impl ControlCommand {
    /// Encode to the opaque wire form: one tag byte plus an optional LE
    /// server id.
    pub fn to_bytes(self) -> Vec<u8> {
        match self {
            ControlCommand::Tick => vec![0],
            ControlCommand::DeclareDead { server } => Self::tagged(1, server),
            ControlCommand::Replaced { server } => Self::tagged(2, server),
            ControlCommand::Remapped { server } => Self::tagged(3, server),
        }
    }

    fn tagged(tag: u8, server: u32) -> Vec<u8> {
        let mut v = Vec::with_capacity(5);
        v.push(tag);
        v.extend_from_slice(&server.to_le_bytes());
        v
    }

    /// Decode from the opaque wire form; `None` on malformed bytes.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        match bytes {
            [0] => Some(ControlCommand::Tick),
            [tag @ 1..=3, rest @ ..] if rest.len() == 4 => {
                let server = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
                Some(match tag {
                    1 => ControlCommand::DeclareDead { server },
                    2 => ControlCommand::Replaced { server },
                    _ => ControlCommand::Remapped { server },
                })
            }
            _ => None,
        }
    }
}

/// One entry of the replicated log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogEntry {
    /// Term the entry was appended in by a leader.
    pub term: u64,
    /// 1-based log position.
    pub index: u64,
    /// The state-machine command.
    pub cmd: ControlCommand,
}

/// A replica's role in the current term.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Passive: applies committed entries, votes, follows the leader.
    Follower,
    /// Campaigning for leadership of the current term.
    Candidate,
    /// Owns the log for the current term; the only replica allowed to
    /// propose commands and act on committed verdicts.
    Leader,
}

/// Static parameters of one consensus replica.
#[derive(Debug, Clone)]
pub struct ConsensusConfig {
    /// This replica's id, in `0..replicas`.
    pub id: u32,
    /// Total replica count (1 = solo mode: instant leadership, instant
    /// commit — the degenerate case that keeps single-supervisor clusters
    /// on the exact same code path).
    pub replicas: u32,
    /// Leader's `AppendEntries` cadence.
    pub heartbeat_every: Duration,
    /// A leader that cannot hear acks from a quorum within this window
    /// steps down. Must be strictly shorter than `election_timeout`.
    pub leader_lease: Duration,
    /// Base election timeout; the effective timeout adds a seeded jitter in
    /// `[0, 50%)` to break repeated split votes deterministically.
    pub election_timeout: Duration,
    /// Seed for the jitter RNG (salted per replica id by the caller or
    /// internally — two replicas with the same seed still diverge).
    pub seed: u64,
}

/// Per-peer replication bookkeeping held by a leader.
#[derive(Debug, Clone, Copy)]
struct PeerState {
    /// Next log index to ship to this peer.
    next_index: u64,
    /// Highest index known replicated on this peer.
    match_index: u64,
    /// Time of the peer's last ack (lease evidence).
    last_ack: Duration,
}

/// One supervisor replica's consensus state. Drive it with [`Replica::tick`]
/// on a timer and [`Replica::handle`] on every inbound consensus message;
/// both return the messages to send, addressed by [`NodeId::Supervisor`].
#[derive(Debug)]
pub struct Replica {
    cfg: ConsensusConfig,
    role: Role,
    term: u64,
    voted_for: Option<u32>,
    votes: BTreeSet<u32>,
    log: Vec<LogEntry>,
    commit: u64,
    leader_hint: u32,
    next_election_at: Duration,
    last_heartbeat_out: Duration,
    became_leader_at: Duration,
    peers: Vec<PeerState>,
    rng: StdRng,
}

impl Replica {
    /// A fresh follower. The initial election timeout is staggered by
    /// replica id (replica 0 shortest) so the very first election has a
    /// deterministic winner; every later timeout is a seeded random draw.
    pub fn new(cfg: ConsensusConfig) -> Self {
        assert!(cfg.id < cfg.replicas, "replica id out of range");
        // Solo mode elects on the very first tick, so a single-supervisor
        // cluster behaves exactly like the pre-quorum runtime.
        let stagger = if cfg.replicas == 1 {
            Duration::ZERO
        } else {
            cfg.election_timeout + cfg.election_timeout * cfg.id / 2
        };
        let peers = vec![
            PeerState {
                next_index: 1,
                match_index: 0,
                last_ack: Duration::ZERO,
            };
            cfg.replicas as usize
        ];
        let rng =
            StdRng::seed_from_u64(cfg.seed ^ (cfg.id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Replica {
            next_election_at: stagger,
            role: Role::Follower,
            term: 0,
            voted_for: None,
            votes: BTreeSet::new(),
            log: Vec::new(),
            commit: 0,
            leader_hint: NO_LEADER,
            last_heartbeat_out: Duration::ZERO,
            became_leader_at: Duration::ZERO,
            peers,
            rng,
            cfg,
        }
    }

    /// This replica's id.
    pub fn id(&self) -> u32 {
        self.cfg.id
    }

    /// Current term.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// True when this replica believes it is the leader.
    pub fn is_leader(&self) -> bool {
        self.role == Role::Leader
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Commit index (number of committed entries).
    pub fn commit_index(&self) -> u64 {
        self.commit
    }

    /// Where this replica believes the leader lives, if anywhere.
    pub fn leader_hint(&self) -> Option<u32> {
        if self.leader_hint == NO_LEADER {
            None
        } else {
            Some(self.leader_hint)
        }
    }

    /// Committed entries with index in `(applied, commit]` — the caller
    /// advances its own `applied` cursor as it executes them.
    pub fn committed_since(&self, applied: u64) -> &[LogEntry] {
        &self.log[applied as usize..self.commit as usize]
    }

    fn quorum(&self) -> usize {
        self.cfg.replicas as usize / 2 + 1
    }

    fn last_log_index(&self) -> u64 {
        self.log.len() as u64
    }

    fn last_log_term(&self) -> u64 {
        self.log.last().map_or(0, |e| e.term)
    }

    fn peer_ids(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.cfg.replicas).filter(move |&p| p != self.cfg.id)
    }

    fn reset_election_timer(&mut self, now: Duration) {
        let jitter = self.cfg.election_timeout * self.rng.gen_range(0..1000u32) / 2000;
        self.next_election_at = now + self.cfg.election_timeout + jitter;
    }

    /// Periodic driver: fires elections on timeout, leader heartbeats on
    /// cadence, and the leadership-lease check. Call at least every
    /// `heartbeat_every / 2`.
    pub fn tick(&mut self, now: Duration) -> Vec<(NodeId, Message)> {
        let mut out = Vec::new();
        match self.role {
            Role::Leader => {
                if self.cfg.replicas > 1
                    && now.saturating_sub(self.became_leader_at) > self.cfg.leader_lease
                {
                    let alive = 1 + self
                        .peer_ids()
                        .filter(|&p| {
                            now.saturating_sub(self.peers[p as usize].last_ack)
                                <= self.cfg.leader_lease
                        })
                        .count();
                    if alive < self.quorum() {
                        // Lost the lease: stop acting on stale authority.
                        self.role = Role::Follower;
                        self.leader_hint = NO_LEADER;
                        self.reset_election_timer(now);
                        return out;
                    }
                }
                if now.saturating_sub(self.last_heartbeat_out) >= self.cfg.heartbeat_every {
                    self.last_heartbeat_out = now;
                    for p in self.peer_ids().collect::<Vec<_>>() {
                        out.push((NodeId::Supervisor(p), self.append_for(p)));
                    }
                }
            }
            Role::Follower | Role::Candidate => {
                if now >= self.next_election_at {
                    out.extend(self.start_election(now));
                }
            }
        }
        out
    }

    fn start_election(&mut self, now: Duration) -> Vec<(NodeId, Message)> {
        self.term += 1;
        self.role = Role::Candidate;
        self.voted_for = Some(self.cfg.id);
        self.votes = BTreeSet::from([self.cfg.id]);
        self.leader_hint = NO_LEADER;
        self.reset_election_timer(now);
        if self.votes.len() >= self.quorum() {
            return self.become_leader(now);
        }
        let req = Message::VoteRequest {
            term: self.term,
            candidate: self.cfg.id,
            last_log_index: self.last_log_index(),
            last_log_term: self.last_log_term(),
        };
        self.peer_ids()
            .map(|p| (NodeId::Supervisor(p), req.clone()))
            .collect()
    }

    fn become_leader(&mut self, now: Duration) -> Vec<(NodeId, Message)> {
        self.role = Role::Leader;
        self.leader_hint = self.cfg.id;
        self.became_leader_at = now;
        self.last_heartbeat_out = now;
        let next = self.last_log_index() + 1;
        for p in &mut self.peers {
            p.next_index = next;
            p.match_index = 0;
            p.last_ack = now;
        }
        // Raft's accession no-op: committing an own-term entry is the only
        // way prior-term entries may commit, so propose one immediately.
        self.propose(ControlCommand::Tick, now);
        self.peer_ids()
            .collect::<Vec<_>>()
            .into_iter()
            .map(|p| (NodeId::Supervisor(p), self.append_for(p)))
            .collect()
    }

    /// Leader-only: append a command to the log. Returns its index, or
    /// `None` when this replica is not the leader (callers must then route
    /// the request to the leader instead). In solo mode the entry commits
    /// immediately.
    pub fn propose(&mut self, cmd: ControlCommand, _now: Duration) -> Option<u64> {
        if self.role != Role::Leader {
            return None;
        }
        let index = self.last_log_index() + 1;
        self.log.push(LogEntry {
            term: self.term,
            index,
            cmd,
        });
        self.advance_commit();
        Some(index)
    }

    fn append_for(&self, peer: u32) -> Message {
        let next = self.peers[peer as usize].next_index.max(1);
        let prev_index = next - 1;
        let prev_term = if prev_index == 0 {
            0
        } else {
            self.log[prev_index as usize - 1].term
        };
        let entries = self
            .log
            .get(prev_index as usize..)
            .unwrap_or(&[])
            .iter()
            .take(MAX_ENTRIES_PER_APPEND)
            .map(|e| WireLogEntry {
                term: e.term,
                index: e.index,
                cmd: e.cmd.to_bytes(),
            })
            .collect();
        Message::AppendEntries {
            term: self.term,
            leader: self.cfg.id,
            prev_index,
            prev_term,
            commit: self.commit,
            entries,
        }
    }

    fn advance_commit(&mut self) {
        for n in (self.commit + 1)..=self.last_log_index() {
            let replicated = 1 + self
                .peer_ids()
                .filter(|&p| self.peers[p as usize].match_index >= n)
                .count();
            // Single-leader-commit rule: only entries of the current term
            // commit by counting; older entries commit transitively.
            if replicated >= self.quorum() && self.log[n as usize - 1].term == self.term {
                self.commit = n;
            }
        }
    }

    fn step_down(&mut self, term: u64) {
        self.term = term;
        self.role = Role::Follower;
        self.voted_for = None;
        self.votes.clear();
        self.leader_hint = NO_LEADER;
    }

    /// Feed one inbound consensus message; non-consensus messages are
    /// ignored. Returns the replies to send.
    pub fn handle(&mut self, msg: &Message, now: Duration) -> Vec<(NodeId, Message)> {
        match msg {
            Message::VoteRequest {
                term,
                candidate,
                last_log_index,
                last_log_term,
            } => {
                if *term > self.term {
                    self.step_down(*term);
                }
                let up_to_date = (*last_log_term, *last_log_index)
                    >= (self.last_log_term(), self.last_log_index());
                let granted = *term == self.term
                    && up_to_date
                    && (self.voted_for.is_none() || self.voted_for == Some(*candidate));
                if granted {
                    self.voted_for = Some(*candidate);
                    self.reset_election_timer(now);
                }
                vec![(
                    NodeId::Supervisor(*candidate),
                    Message::VoteResponse {
                        term: self.term,
                        voter: self.cfg.id,
                        granted,
                    },
                )]
            }
            Message::VoteResponse {
                term,
                voter,
                granted,
            } => {
                if *term > self.term {
                    self.step_down(*term);
                } else if self.role == Role::Candidate && *term == self.term && *granted {
                    self.votes.insert(*voter);
                    if self.votes.len() >= self.quorum() {
                        return self.become_leader(now);
                    }
                }
                Vec::new()
            }
            Message::AppendEntries {
                term,
                leader,
                prev_index,
                prev_term,
                commit,
                entries,
            } => {
                if *term < self.term {
                    return vec![(
                        NodeId::Supervisor(*leader),
                        Message::AppendAck {
                            term: self.term,
                            follower: self.cfg.id,
                            ok: false,
                            match_index: self.last_log_index(),
                        },
                    )];
                }
                if *term > self.term {
                    self.step_down(*term);
                }
                self.role = Role::Follower;
                self.leader_hint = *leader;
                self.reset_election_timer(now);
                let prev_ok = *prev_index <= self.last_log_index()
                    && (*prev_index == 0 || self.log[*prev_index as usize - 1].term == *prev_term);
                if !prev_ok {
                    let hint = self.last_log_index().min(prev_index.saturating_sub(1));
                    return vec![(
                        NodeId::Supervisor(*leader),
                        Message::AppendAck {
                            term: self.term,
                            follower: self.cfg.id,
                            ok: false,
                            match_index: hint,
                        },
                    )];
                }
                let mut ok = true;
                for e in entries {
                    let Some(cmd) = ControlCommand::from_bytes(&e.cmd) else {
                        ok = false;
                        break;
                    };
                    if e.index <= self.last_log_index() {
                        if self.log[e.index as usize - 1].term != e.term {
                            // Conflict: a committed entry never conflicts, so
                            // truncating here only discards uncommitted tail.
                            self.log.truncate(e.index as usize - 1);
                            self.log.push(LogEntry {
                                term: e.term,
                                index: e.index,
                                cmd,
                            });
                        }
                    } else {
                        self.log.push(LogEntry {
                            term: e.term,
                            index: e.index,
                            cmd,
                        });
                    }
                }
                let matched = if ok {
                    prev_index + entries.len() as u64
                } else {
                    self.last_log_index()
                };
                self.commit = self.commit.max((*commit).min(matched));
                vec![(
                    NodeId::Supervisor(*leader),
                    Message::AppendAck {
                        term: self.term,
                        follower: self.cfg.id,
                        ok,
                        match_index: matched,
                    },
                )]
            }
            Message::AppendAck {
                term,
                follower,
                ok,
                match_index,
            } => {
                if *term > self.term {
                    self.step_down(*term);
                } else if self.role == Role::Leader
                    && *term == self.term
                    && *follower < self.cfg.replicas
                    && *follower != self.cfg.id
                {
                    let p = &mut self.peers[*follower as usize];
                    p.last_ack = now;
                    if *ok {
                        p.match_index = p.match_index.max(*match_index);
                        p.next_index = p.match_index + 1;
                        self.advance_commit();
                    } else {
                        p.next_index = p.next_index.saturating_sub(1).min(match_index + 1).max(1);
                    }
                }
                Vec::new()
            }
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    fn cfg(id: u32, replicas: u32) -> ConsensusConfig {
        ConsensusConfig {
            id,
            replicas,
            heartbeat_every: Duration::from_millis(10),
            leader_lease: Duration::from_millis(60),
            election_timeout: Duration::from_millis(150),
            seed: 42,
        }
    }

    /// Step a cluster of replicas forward in 1 ms increments, delivering
    /// messages instantly between alive replicas. Returns the time reached.
    fn run(
        replicas: &mut [Replica],
        alive: &[bool],
        mut now: Duration,
        until: Duration,
        stop: impl Fn(&[Replica]) -> bool,
    ) -> Duration {
        let mut queue: VecDeque<(u32, Message)> = VecDeque::new();
        while now < until {
            now += Duration::from_millis(1);
            for (i, r) in replicas.iter_mut().enumerate() {
                if !alive[i] {
                    continue;
                }
                for (to, msg) in r.tick(now) {
                    if let NodeId::Supervisor(k) = to {
                        queue.push_back((k, msg));
                    }
                }
            }
            while let Some((to, msg)) = queue.pop_front() {
                if !alive[to as usize] {
                    continue;
                }
                for (next_to, reply) in replicas[to as usize].handle(&msg, now) {
                    if let NodeId::Supervisor(k) = next_to {
                        if alive[k as usize] {
                            queue.push_back((k, reply));
                        }
                    }
                }
            }
            if stop(replicas) {
                break;
            }
        }
        now
    }

    #[test]
    fn control_command_codec_roundtrips_and_rejects_garbage() {
        for cmd in [
            ControlCommand::Tick,
            ControlCommand::DeclareDead { server: 7 },
            ControlCommand::Replaced { server: 0 },
            ControlCommand::Remapped { server: u32::MAX },
        ] {
            assert_eq!(ControlCommand::from_bytes(&cmd.to_bytes()), Some(cmd));
        }
        assert_eq!(ControlCommand::from_bytes(&[]), None);
        assert_eq!(ControlCommand::from_bytes(&[9]), None);
        assert_eq!(ControlCommand::from_bytes(&[1, 0]), None);
        assert_eq!(ControlCommand::from_bytes(&[0, 0]), None);
    }

    #[test]
    fn solo_replica_is_instant_leader_with_instant_commit() {
        let mut r = Replica::new(cfg(0, 1));
        assert!(!r.is_leader());
        let out = r.tick(Duration::from_millis(200));
        assert!(out.is_empty(), "solo election sends nothing");
        assert!(r.is_leader());
        assert_eq!(r.term(), 1);
        // Accession tick already committed.
        assert_eq!(r.commit_index(), 1);
        let idx = r
            .propose(
                ControlCommand::DeclareDead { server: 3 },
                Duration::from_millis(201),
            )
            .unwrap();
        assert_eq!(idx, 2);
        assert_eq!(r.commit_index(), 2);
        assert_eq!(
            r.committed_since(1),
            &[LogEntry {
                term: 1,
                index: 2,
                cmd: ControlCommand::DeclareDead { server: 3 }
            }]
        );
    }

    #[test]
    fn replica_zero_wins_the_first_election_deterministically() {
        let mut rs: Vec<Replica> = (0..3).map(|i| Replica::new(cfg(i, 3))).collect();
        let now = run(
            &mut rs,
            &[true; 3],
            Duration::ZERO,
            Duration::from_secs(2),
            |rs| rs.iter().any(|r| r.is_leader()),
        );
        assert!(rs[0].is_leader());
        assert_eq!(rs[0].term(), 1);
        assert!(!rs[1].is_leader() && !rs[2].is_leader());
        // Followers learn the leader via AppendEntries.
        run(
            &mut rs,
            &[true; 3],
            now,
            now + Duration::from_secs(1),
            |rs| rs.iter().all(|r| r.leader_hint() == Some(0)),
        );
        assert_eq!(rs[1].leader_hint(), Some(0));
        assert_eq!(rs[2].leader_hint(), Some(0));
    }

    #[test]
    fn leader_replicates_commands_to_a_quorum_before_commit() {
        let mut rs: Vec<Replica> = (0..3).map(|i| Replica::new(cfg(i, 3))).collect();
        let now = run(
            &mut rs,
            &[true; 3],
            Duration::ZERO,
            Duration::from_secs(2),
            |rs| rs.iter().any(|r| r.is_leader()),
        );
        let idx = rs[0]
            .propose(ControlCommand::DeclareDead { server: 1 }, now)
            .unwrap();
        assert!(
            rs[0].commit_index() < idx,
            "entry must not commit before replication"
        );
        run(
            &mut rs,
            &[true; 3],
            now,
            now + Duration::from_secs(1),
            |rs| rs.iter().all(|r| r.commit_index() >= idx),
        );
        for r in &rs {
            assert!(r.commit_index() >= idx);
            assert_eq!(
                r.committed_since(idx - 1).first().map(|e| e.cmd),
                Some(ControlCommand::DeclareDead { server: 1 })
            );
        }
    }

    #[test]
    fn followers_elect_a_new_leader_when_the_leader_dies() {
        let mut rs: Vec<Replica> = (0..3).map(|i| Replica::new(cfg(i, 3))).collect();
        let now = run(
            &mut rs,
            &[true; 3],
            Duration::ZERO,
            Duration::from_secs(2),
            |rs| rs[0].is_leader(),
        );
        // Kill the leader; a follower must take over in a higher term.
        run(
            &mut rs,
            &[false, true, true],
            now,
            now + Duration::from_secs(5),
            |rs| rs[1].is_leader() || rs[2].is_leader(),
        );
        let new_leader = if rs[1].is_leader() { 1 } else { 2 };
        assert!(rs[new_leader as usize].is_leader());
        assert!(rs[new_leader as usize].term() > 1);
    }

    #[test]
    fn quorum_loss_makes_the_survivor_step_down_and_stay_leaderless() {
        let mut rs: Vec<Replica> = (0..3).map(|i| Replica::new(cfg(i, 3))).collect();
        let now = run(
            &mut rs,
            &[true; 3],
            Duration::ZERO,
            Duration::from_secs(2),
            |rs| rs[0].is_leader(),
        );
        // Kill two of three: the survivor can campaign forever but never win.
        let end = run(
            &mut rs,
            &[false, false, true],
            now,
            now + Duration::from_secs(3),
            |_| false,
        );
        assert!(end >= now + Duration::from_secs(3));
        assert!(!rs[2].is_leader());
        assert_eq!(rs[2].leader_hint(), None);
    }

    #[test]
    fn at_most_one_vote_per_term() {
        let mut r = Replica::new(cfg(2, 3));
        let now = Duration::from_millis(1);
        let req = |candidate: u32| Message::VoteRequest {
            term: 5,
            candidate,
            last_log_index: 0,
            last_log_term: 0,
        };
        let first = r.handle(&req(0), now);
        let second = r.handle(&req(1), now);
        assert!(matches!(
            first[0].1,
            Message::VoteResponse { granted: true, .. }
        ));
        assert!(matches!(
            second[0].1,
            Message::VoteResponse { granted: false, .. }
        ));
        // Re-request from the same candidate is idempotent.
        let again = r.handle(&req(0), now);
        assert!(matches!(
            again[0].1,
            Message::VoteResponse { granted: true, .. }
        ));
    }

    #[test]
    fn stale_candidate_with_short_log_is_rejected() {
        let mut r = Replica::new(cfg(1, 3));
        // Give the voter a longer, newer log than the candidate claims.
        r.term = 3;
        r.log.push(LogEntry {
            term: 3,
            index: 1,
            cmd: ControlCommand::Tick,
        });
        let out = r.handle(
            &Message::VoteRequest {
                term: 4,
                candidate: 0,
                last_log_index: 0,
                last_log_term: 0,
            },
            Duration::from_millis(1),
        );
        assert!(matches!(
            out[0].1,
            Message::VoteResponse { granted: false, .. }
        ));
    }
}
