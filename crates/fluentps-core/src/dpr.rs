//! Delayed pull requests and the lazy pull buffer (Section III-C).
//!
//! A pull that fails the pull condition becomes a *delayed pull request*
//! (DPR). How and when DPRs are answered is the [`DprPolicy`]:
//!
//! * [`DprPolicy::SoftBarrier`] — the classical SSP behaviour: the DPR is
//!   released as soon as the staleness bound is satisfied again, i.e. on the
//!   first `V_train` advance that brings the requester back within range. The
//!   returned parameters may still be missing gradients of in-flight slower
//!   iterations ("stale parameters"), and because the slowest worker remains
//!   `s−1` iterations behind, the barrier re-triggers almost every iteration.
//! * [`DprPolicy::LazyExecution`] — FluentPS's policy: the DPR is indexed by
//!   the *requester's progress* and executed only when `V_train` catches up
//!   with it, i.e. when every worker has pushed all gradients the requester
//!   is missing. The response is fully updated, and after release the
//!   requester restarts with a zero progress gap, so the pause frequency
//!   collapses (the paper measures up to 131× fewer DPRs).

use std::collections::BTreeMap;

use fluentps_transport::CausalCtx;

use crate::condition::{SyncPolicy, SyncState};

/// Execution policy for delayed pull requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DprPolicy {
    /// Release a DPR as soon as the pull condition holds again (classical
    /// SSP soft barrier).
    SoftBarrier,
    /// Release a DPR only when `V_train` has caught up with the requester's
    /// progress (FluentPS lazy execution). This is the default.
    #[default]
    LazyExecution,
}

/// A buffered pull awaiting release.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeferredPull {
    /// Requesting worker.
    pub worker: u32,
    /// The requester's progress when it sent the pull.
    pub progress: u64,
    /// Keys the pull asked for.
    pub keys: Vec<u64>,
    /// `V_train` at deferral time (diagnostics: how long the DPR waited in
    /// iterations is `release_v_train − deferred_at`).
    pub deferred_at: u64,
    /// Causal context of the originating `sPull`, carried through the buffer
    /// so the eventual release (and its `DprReleased` event) joins the same
    /// request waterfall as the deferral.
    pub ctx: Option<CausalCtx>,
}

/// The lazy pull buffer: DPRs indexed by the progress value their release is
/// keyed on.
#[derive(Debug, Default)]
pub struct DprBuffer {
    entries: BTreeMap<u64, Vec<DeferredPull>>,
    len: usize,
    total_deferred: u64,
    peak_pending: usize,
}

impl DprBuffer {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffer a deferred pull under `policy`.
    pub fn defer(&mut self, policy: DprPolicy, pull: DeferredPull) {
        // Lazy execution indexes by the requester's progress (Algorithm 1,
        // line 7); the soft barrier conceptually indexes by V_train, but we
        // store by requester progress in both cases and let the release scan
        // apply the policy-specific condition — this keeps a single buffer
        // type and makes release conditions explicit rather than positional.
        let _ = policy;
        self.entries.entry(pull.progress).or_default().push(pull);
        self.len += 1;
        self.total_deferred += 1;
        self.peak_pending = self.peak_pending.max(self.len);
    }

    /// Number of DPRs currently waiting.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no DPR is waiting.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total DPRs ever deferred (the paper's headline synchronization-
    /// frequency metric, reported per 100 iterations).
    pub fn total_deferred(&self) -> u64 {
        self.total_deferred
    }

    /// High-water mark of simultaneously buffered DPRs — how many workers
    /// were parked at once at the worst moment (observability: bounds the
    /// blast radius a slow shard inflicts on the cluster).
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// Release every DPR that `policy` allows to run now. Called after each
    /// `V_train` advance (Algorithm 1, lines 18–21).
    ///
    /// * Lazy execution releases entries with `progress < v_train`: the
    ///   overall progress has caught up, so the response carries all the
    ///   gradients the requester was missing.
    /// * Soft barrier releases entries the model's deterministic pull bound
    ///   now admits (`release_permitted`), which happens `s` iterations
    ///   earlier than lazy execution.
    pub fn release(
        &mut self,
        policy: DprPolicy,
        model: &dyn SyncPolicy,
        st: &SyncState,
    ) -> Vec<DeferredPull> {
        let mut out = Vec::new();
        match policy {
            DprPolicy::LazyExecution => {
                // BTreeMap range drain: all indices strictly below V_train.
                let ready: Vec<u64> = self.entries.range(..st.v_train).map(|(&k, _)| k).collect();
                for k in ready {
                    if let Some(mut v) = self.entries.remove(&k) {
                        self.len -= v.len();
                        out.append(&mut v);
                    }
                }
            }
            DprPolicy::SoftBarrier => {
                let ready: Vec<u64> = self
                    .entries
                    .keys()
                    .copied()
                    .filter(|&p| model.release_permitted(st, p))
                    .collect();
                for k in ready {
                    if let Some(mut v) = self.entries.remove(&k) {
                        self.len -= v.len();
                        out.append(&mut v);
                    }
                }
            }
        }
        out
    }

    /// Drain every remaining DPR regardless of condition (used at shutdown
    /// so no worker is left blocked forever).
    pub fn drain_all(&mut self) -> Vec<DeferredPull> {
        let mut out = Vec::new();
        for (_, mut v) in std::mem::take(&mut self.entries) {
            out.append(&mut v);
        }
        self.len = 0;
        out
    }

    /// Iterate waiting DPRs (diagnostics).
    pub fn iter(&self) -> impl Iterator<Item = &DeferredPull> {
        self.entries.values().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::SyncModel;

    fn pull(worker: u32, progress: u64) -> DeferredPull {
        DeferredPull {
            worker,
            progress,
            keys: vec![0],
            deferred_at: 0,
            ctx: None,
        }
    }

    fn st(v_train: u64) -> SyncState {
        SyncState {
            v_train,
            count_at_v_train: 0,
            num_workers: 4,
            fastest: v_train,
            slowest: v_train,
        }
    }

    #[test]
    fn lazy_releases_only_on_full_catch_up() {
        let model = SyncModel::Ssp { s: 2 }.into_policy();
        let mut buf = DprBuffer::new();
        buf.defer(DprPolicy::LazyExecution, pull(0, 5));
        // V_train reaching 5 is not enough: lazy wants progress < v_train.
        assert!(buf
            .release(DprPolicy::LazyExecution, &model, &st(5))
            .is_empty());
        let released = buf.release(DprPolicy::LazyExecution, &model, &st(6));
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].progress, 5);
        assert!(buf.is_empty());
    }

    #[test]
    fn soft_barrier_releases_within_staleness_bound() {
        let model = SyncModel::Ssp { s: 2 }.into_policy();
        let mut buf = DprBuffer::new();
        buf.defer(DprPolicy::SoftBarrier, pull(0, 5));
        // gap = 5 − 3 = 2 == s → still blocked.
        assert!(buf
            .release(DprPolicy::SoftBarrier, &model, &st(3))
            .is_empty());
        // gap = 5 − 4 = 1 < s → released, s−1 iterations earlier than lazy.
        let released = buf.release(DprPolicy::SoftBarrier, &model, &st(4));
        assert_eq!(released.len(), 1);
    }

    #[test]
    fn soft_barrier_releases_strictly_earlier_than_lazy() {
        let model = SyncModel::Ssp { s: 3 }.into_policy();
        let mut soft = DprBuffer::new();
        let mut lazy = DprBuffer::new();
        soft.defer(DprPolicy::SoftBarrier, pull(0, 10));
        lazy.defer(DprPolicy::LazyExecution, pull(0, 10));
        let mut soft_release = None;
        let mut lazy_release = None;
        for v in 0..=12u64 {
            if soft_release.is_none()
                && !soft
                    .release(DprPolicy::SoftBarrier, &model, &st(v))
                    .is_empty()
            {
                soft_release = Some(v);
            }
            if lazy_release.is_none()
                && !lazy
                    .release(DprPolicy::LazyExecution, &model, &st(v))
                    .is_empty()
            {
                lazy_release = Some(v);
            }
        }
        assert_eq!(soft_release, Some(8)); // 10 < v + 3 → v ≥ 8
        assert_eq!(lazy_release, Some(11)); // 10 < v → v ≥ 11
    }

    #[test]
    fn multiple_entries_at_same_progress_all_release() {
        let model = SyncModel::Bsp.into_policy();
        let mut buf = DprBuffer::new();
        for w in 0..3 {
            buf.defer(DprPolicy::LazyExecution, pull(w, 2));
        }
        assert_eq!(buf.len(), 3);
        let out = buf.release(DprPolicy::LazyExecution, &model, &st(3));
        assert_eq!(out.len(), 3);
        assert_eq!(buf.total_deferred(), 3);
    }

    #[test]
    fn release_conserves_entries() {
        // Every deferred pull is released exactly once over increasing V_train.
        let model = SyncModel::Ssp { s: 1 }.into_policy();
        let mut buf = DprBuffer::new();
        for (w, p) in [(0u32, 1u64), (1, 3), (2, 5), (3, 5), (0, 7)] {
            buf.defer(DprPolicy::LazyExecution, pull(w, p));
        }
        let mut seen = 0;
        for v in 0..10u64 {
            seen += buf.release(DprPolicy::LazyExecution, &model, &st(v)).len();
        }
        assert_eq!(seen, 5);
        assert!(buf.is_empty());
    }

    #[test]
    fn drain_all_flushes_everything() {
        let mut buf = DprBuffer::new();
        buf.defer(DprPolicy::LazyExecution, pull(0, 100));
        buf.defer(DprPolicy::LazyExecution, pull(1, 200));
        assert_eq!(buf.drain_all().len(), 2);
        assert!(buf.is_empty());
        assert_eq!(buf.total_deferred(), 2);
    }

    #[test]
    fn peak_pending_is_a_high_water_mark() {
        let model = SyncModel::Bsp.into_policy();
        let mut buf = DprBuffer::new();
        for w in 0..3 {
            buf.defer(DprPolicy::LazyExecution, pull(w, 2));
        }
        assert_eq!(buf.peak_pending(), 3);
        buf.release(DprPolicy::LazyExecution, &model, &st(3));
        assert!(buf.is_empty());
        // Draining does not lower the peak; a later smaller wave keeps it.
        buf.defer(DprPolicy::LazyExecution, pull(0, 5));
        assert_eq!(buf.peak_pending(), 3);
    }
}
