//! Threaded in-process runtime: one thread per server shard, worker clients
//! on the caller's threads.
//!
//! Overlap synchronization (Section III-D) is not a special code path — it
//! *falls out* of this architecture: every server answers pulls for its own
//! shard the moment its own push condition fires, so the push of one shard
//! overlaps the pulls of another. The non-overlap behaviour of PS-Lite (a
//! scheduler-level global barrier across all shards) is implemented in
//! `fluentps-baseline` for comparison.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::thread::JoinHandle;

use fluentps_obs::{
    http, EventKind, HealthEngine, HealthTap, IntrospectionServer, MetricsRegistry, ProfCollector,
    Profiler, RecordArgs, StreamConfig, TraceCollector, TraceSource, Tracer, NO_ID,
};
use fluentps_util::rng::StdRng;

use fluentps_transport::inproc::{Endpoint, Fabric, InprocPostman};
use fluentps_transport::{frame, CausalCtx, Mailbox, Message, NodeId, Postman};

use crate::dpr::DprPolicy;
use crate::eps::SliceMap;
use crate::server::{stamp_ctx, GradScale, PullOutcome, ServerShard, ShardConfig};
use crate::stats::ShardStats;
use crate::worker::{Router, WorkerClient};
use crate::SyncModel;

/// Configuration of an in-process cluster.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Number of workers (`N`).
    pub num_workers: u32,
    /// Number of servers (`M`).
    pub num_servers: u32,
    /// Synchronization model applied on every shard. (Per-shard models are
    /// possible through [`Cluster::launch_heterogeneous`].)
    pub model: SyncModel,
    /// DPR execution policy.
    pub policy: DprPolicy,
    /// Gradient aggregation rule.
    pub grad_scale: GradScale,
    /// Seed for the servers' probability draws (PSSP); each server derives
    /// its own stream.
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            num_workers: 1,
            num_servers: 1,
            model: SyncModel::Bsp,
            policy: DprPolicy::LazyExecution,
            grad_scale: GradScale::DivideByN,
            seed: 0,
        }
    }
}

/// Handle to a running in-process cluster.
pub struct Cluster {
    fabric: Fabric,
    servers: Vec<JoinHandle<ShardStats>>,
    num_servers: u32,
    // Live health engine + the tap feeding it from the run's collector,
    // when launched introspected; the tap drains and the engine is
    // finalized at shutdown.
    health: Option<(HealthEngine, HealthTap)>,
    // Span-profile collector, when launched introspected: server loops and
    // worker clients profile into it, and `/profile` serves its snapshots.
    prof: Option<ProfCollector>,
}

/// The worker client type served by the in-process engine.
pub type InprocWorker = WorkerClient<InprocPostman, Endpoint>;

impl Cluster {
    /// Launch servers and build one [`WorkerClient`] per worker. `init` maps
    /// original parameter keys to initial values (`w_0`); `map` decides the
    /// placement.
    pub fn launch(
        cfg: EngineConfig,
        map: SliceMap,
        init: &HashMap<u64, Vec<f32>>,
    ) -> (Cluster, Vec<InprocWorker>) {
        let models = vec![cfg.model; cfg.num_servers as usize];
        Self::launch_heterogeneous(cfg, models, map, init)
    }

    /// [`Cluster::launch`] with a [`TraceCollector`]: every server shard and
    /// worker client records trace events (wall clock) into `collector`.
    pub fn launch_with_collector(
        cfg: EngineConfig,
        map: SliceMap,
        init: &HashMap<u64, Vec<f32>>,
        collector: &TraceCollector,
    ) -> (Cluster, Vec<InprocWorker>) {
        let models = vec![cfg.model; cfg.num_servers as usize];
        Self::launch_inner(cfg, models, map, init, Some(collector), None)
    }

    /// [`Cluster::launch_with_collector`] plus a live introspection
    /// endpoint: `registry` is served at `addr` as Prometheus text on
    /// `/metrics`, next to `/healthz` and `/trace` (the collector's live
    /// JSONL tail). Cluster-shape gauges are published into `registry` at
    /// launch. Bind loopback (`127.0.0.1:0`) unless the endpoint is
    /// deliberately exposed. The endpoint outlives the cluster until the
    /// returned [`IntrospectionServer`] is stopped or dropped.
    ///
    /// A streaming [`HealthEngine`] with the default alert rules is fed
    /// from `collector` for the lifetime of the run, so the endpoint also
    /// serves `/slo` and `/alerts`; [`Cluster::health_engine`] exposes the
    /// same engine in-process. The engine is finalized (last window closed,
    /// state frozen) by [`Cluster::shutdown`].
    pub fn launch_introspected(
        cfg: EngineConfig,
        map: SliceMap,
        init: &HashMap<u64, Vec<f32>>,
        collector: &TraceCollector,
        registry: &MetricsRegistry,
        addr: SocketAddr,
    ) -> std::io::Result<(Cluster, Vec<InprocWorker>, IntrospectionServer)> {
        let models = vec![cfg.model; cfg.num_servers as usize];
        let prof = ProfCollector::wall();
        let (mut cluster, workers) =
            Self::launch_inner(cfg, models, map, init, Some(collector), Some(&prof));
        publish_cluster_gauges(registry, "threaded", cfg.num_workers, cfg.num_servers);
        let engine = HealthEngine::with_default_rules(StreamConfig::default());
        let tap = engine.attach_to(collector, std::time::Duration::from_millis(20));
        let server = http::serve_profiled(
            addr,
            registry.clone(),
            Some(TraceSource::Local(collector.clone())),
            None,
            Some(engine.clone()),
            Some(prof.clone()),
        )?;
        cluster.health = Some((engine, tap));
        cluster.prof = Some(prof);
        Ok((cluster, workers, server))
    }

    /// The span-profile collector attached by
    /// [`Cluster::launch_introspected`] (`None` for the other launch paths).
    /// Snapshot it any time — including mid-run — for folded-stack or
    /// speedscope exports of where server and worker threads spend time.
    pub fn prof_collector(&self) -> Option<&ProfCollector> {
        self.prof.as_ref()
    }

    /// The live [`HealthEngine`] attached by [`Cluster::launch_introspected`]
    /// (`None` for the other launch paths).
    pub fn health_engine(&self) -> Option<&HealthEngine> {
        self.health.as_ref().map(|(engine, _)| engine)
    }

    /// Like [`Cluster::launch`] but with a per-server synchronization model —
    /// the paper's headline flexibility: "each parameter server can choose
    /// the adaptive synchronization model to update its parameter shard".
    pub fn launch_heterogeneous(
        cfg: EngineConfig,
        models: Vec<SyncModel>,
        map: SliceMap,
        init: &HashMap<u64, Vec<f32>>,
    ) -> (Cluster, Vec<InprocWorker>) {
        Self::launch_inner(cfg, models, map, init, None, None)
    }

    /// [`Cluster::launch_heterogeneous`] with a [`TraceCollector`] attached,
    /// so per-shard models and tracing compose.
    pub fn launch_heterogeneous_with_collector(
        cfg: EngineConfig,
        models: Vec<SyncModel>,
        map: SliceMap,
        init: &HashMap<u64, Vec<f32>>,
        collector: &TraceCollector,
    ) -> (Cluster, Vec<InprocWorker>) {
        Self::launch_inner(cfg, models, map, init, Some(collector), None)
    }

    fn launch_inner(
        cfg: EngineConfig,
        models: Vec<SyncModel>,
        map: SliceMap,
        init: &HashMap<u64, Vec<f32>>,
        collector: Option<&TraceCollector>,
        prof: Option<&ProfCollector>,
    ) -> (Cluster, Vec<InprocWorker>) {
        assert_eq!(map.num_servers(), cfg.num_servers, "map/server mismatch");
        assert_eq!(models.len(), cfg.num_servers as usize);
        let fabric = Fabric::new();

        // Register workers first so servers can respond from the start.
        let mut worker_endpoints = Vec::with_capacity(cfg.num_workers as usize);
        for n in 0..cfg.num_workers {
            worker_endpoints.push(fabric.register(NodeId::Worker(n)));
        }

        let mut servers = Vec::with_capacity(cfg.num_servers as usize);
        for m in 0..cfg.num_servers {
            let endpoint = fabric.register(NodeId::Server(m));
            let mut shard = ServerShard::new(ShardConfig {
                server_id: m,
                num_workers: cfg.num_workers,
                model: models[m as usize],
                policy: cfg.policy,
                grad_scale: cfg.grad_scale,
            });
            for p in map.placements().iter().filter(|p| p.server == m) {
                let vals = init
                    .get(&p.orig_key)
                    .map(|v| v[p.offset..p.offset + p.len].to_vec())
                    .unwrap_or_else(|| vec![0.0; p.len]);
                shard.init_param(p.new_key, vals);
            }
            let tracer = collector.map(|c| c.tracer()).unwrap_or_default();
            // The shard and its server loop run on one thread; a clone
            // shares the same ring.
            shard.set_tracer(tracer.clone());
            let rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(m as u64 + 1));
            let profiler = prof.map(|p| p.profiler()).unwrap_or_default();
            let handle = std::thread::Builder::new()
                .name(format!("fluentps-server-{m}"))
                .spawn(move || server_loop(shard, endpoint, rng, tracer, profiler))
                .expect("spawn server thread");
            servers.push(handle);
        }

        let router = Router::new(map);
        let workers = worker_endpoints
            .into_iter()
            .enumerate()
            .map(|(n, ep)| {
                let postman = ep.postman();
                let mut w = WorkerClient::new(n as u32, postman, ep, router.clone());
                if let Some(c) = collector {
                    w.set_tracer(c.tracer());
                }
                if let Some(p) = prof {
                    w.set_profiler(p.profiler());
                }
                w
            })
            .collect();

        (
            Cluster {
                fabric,
                servers,
                num_servers: cfg.num_servers,
                health: None,
                prof: None,
            },
            workers,
        )
    }

    /// Send shutdown to every server, join their threads and return their
    /// per-shard statistics (index = server id).
    pub fn shutdown(self) -> Vec<ShardStats> {
        // A synthetic scheduler identity delivers the shutdown.
        let ctl = self.fabric.register(NodeId::Scheduler);
        for m in 0..self.num_servers {
            // Ignore failures: the server may already be gone.
            let _ = ctl.postman().send(NodeId::Server(m), Message::Shutdown);
        }
        let stats: Vec<ShardStats> = self
            .servers
            .into_iter()
            .map(|h| h.join().expect("server thread panicked"))
            .collect();
        // Drain the last recorded events into the health engine, then close
        // its final window so `/slo` reflects the completed run.
        if let Some((engine, tap)) = self.health {
            tap.stop();
            engine.finish();
        }
        stats
    }
}

/// Static cluster-shape gauges every introspected engine publishes, so a
/// bare `/metrics` scrape identifies what is running before any traffic.
pub(crate) fn publish_cluster_gauges(
    registry: &MetricsRegistry,
    engine: &str,
    workers: u32,
    servers: u32,
) {
    let scope = registry.scope().with("engine", engine);
    scope.set_gauge("cluster_workers", workers as f64);
    scope.set_gauge("cluster_servers", servers as f64);
    scope.set_gauge("cluster_up", 1.0);
}

fn server_loop(
    mut shard: ServerShard,
    endpoint: Endpoint,
    mut rng: StdRng,
    tracer: Tracer,
    profiler: Profiler,
) -> ShardStats {
    let postman = endpoint.postman();
    let server_id = shard.config().server_id;
    // All outgoing messages funnel through here so WireSend events carry the
    // exact framed size the TCP transport would put on the wire. Replies to
    // context-carrying requests are wrapped back in the request's envelope,
    // so the worker-side `WireRecv` closes the request's wire edge.
    let send = |worker: u32, msg: Message, ctx: Option<CausalCtx>| {
        let msg = match ctx {
            Some(c) => msg.with_ctx(c),
            None => msg,
        };
        tracer.record(
            EventKind::WireSend,
            stamp_ctx(
                RecordArgs::new()
                    .shard(server_id)
                    .worker(worker)
                    .bytes(frame::wire_len(&msg) as u64),
                ctx,
            ),
        );
        let _ = postman.send(NodeId::Worker(worker), msg);
    };
    while let Ok((_, msg)) = endpoint.recv() {
        let wire_bytes = frame::wire_len(&msg) as u64;
        let (ctx, msg) = msg.split_ctx();
        if tracer.is_enabled() {
            let worker = match &msg {
                Message::SPush { worker, .. } | Message::SPull { worker, .. } => *worker,
                _ => NO_ID,
            };
            tracer.record(
                EventKind::WireRecv,
                stamp_ctx(
                    RecordArgs::new()
                        .shard(server_id)
                        .worker(worker)
                        .bytes(wire_bytes),
                    ctx,
                ),
            );
        }
        match msg {
            Message::SPush {
                worker,
                progress,
                kv,
            } => {
                let released = {
                    let _span = profiler.enter("server/apply_push");
                    let released = shard.on_push_ctx(worker, progress, &kv, ctx);
                    send(
                        worker,
                        Message::PushAck {
                            server: server_id,
                            progress,
                        },
                        ctx,
                    );
                    released
                };
                if !released.is_empty() {
                    let _span = profiler.enter("server/release_dprs");
                    for r in released {
                        send(
                            r.worker,
                            Message::PullResponse {
                                server: server_id,
                                progress: r.progress,
                                kv: r.kv,
                                version: r.version,
                            },
                            r.ctx,
                        );
                    }
                }
            }
            Message::SPull {
                worker,
                progress,
                keys,
            } => {
                let _span = profiler.enter("server/handle_pull");
                let draw: f64 = rng.gen();
                match shard.on_pull_ctx(worker, progress, &keys, draw, None, ctx) {
                    PullOutcome::Respond { kv, version } => {
                        send(
                            worker,
                            Message::PullResponse {
                                server: server_id,
                                progress,
                                kv,
                                version,
                            },
                            ctx,
                        );
                    }
                    PullOutcome::Deferred => {}
                }
            }
            Message::Shutdown => {
                for r in shard.drain_shutdown() {
                    send(
                        r.worker,
                        Message::PullResponse {
                            server: server_id,
                            progress: r.progress,
                            kv: r.kv,
                            version: r.version,
                        },
                        r.ctx,
                    );
                }
                break;
            }
            _ => {}
        }
    }
    shard.stats().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eps::{EpsSlicer, ParamSpec, Slicer};

    fn model_params() -> (Vec<ParamSpec>, HashMap<u64, Vec<f32>>) {
        let specs = vec![ParamSpec { key: 0, len: 8 }, ParamSpec { key: 1, len: 4 }];
        let mut init = HashMap::new();
        init.insert(0, vec![0.0; 8]);
        init.insert(1, vec![0.0; 4]);
        (specs, init)
    }

    #[test]
    fn bsp_cluster_runs_lockstep_iterations() {
        let (specs, init) = model_params();
        let map = EpsSlicer { max_chunk: 4 }.slice(&specs, 2);
        let cfg = EngineConfig {
            num_workers: 2,
            num_servers: 2,
            model: SyncModel::Bsp,
            ..EngineConfig::default()
        };
        let (cluster, mut workers) = Cluster::launch(cfg, map, &init);

        let mut grads = HashMap::new();
        grads.insert(0u64, vec![1.0f32; 8]);
        grads.insert(1u64, vec![2.0f32; 4]);

        // Run both workers in lockstep from two threads (BSP requires it).
        let handles: Vec<_> = workers
            .drain(..)
            .map(|mut w| {
                let grads = grads.clone();
                std::thread::spawn(move || {
                    let mut params = HashMap::new();
                    for i in 0..3u64 {
                        w.spush(i, &grads).unwrap();
                        let report = w.spull_wait(i, &mut params).unwrap();
                        assert_eq!(report.responses, 2);
                        assert!(report.min_version > i);
                    }
                    params
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // After 3 iterations with 2 workers pushing 1.0 each: w = 3·(2·1/2) = 3.
        for params in &results {
            assert_eq!(params[&0], vec![3.0; 8]);
            assert_eq!(params[&1], vec![6.0; 4]);
        }
        let stats = cluster.shutdown();
        assert_eq!(stats.len(), 2);
        let total_pushes: u64 = stats.iter().map(|s| s.pushes).sum();
        assert_eq!(total_pushes, 2 * 3 * 2); // 2 workers × 3 iters × 2 servers
    }

    #[test]
    fn heterogeneous_models_per_server() {
        let (specs, init) = model_params();
        let map = EpsSlicer { max_chunk: 4 }.slice(&specs, 2);
        let cfg = EngineConfig {
            num_workers: 1,
            num_servers: 2,
            ..EngineConfig::default()
        };
        let (cluster, mut workers) = Cluster::launch_heterogeneous(
            cfg,
            vec![SyncModel::Asp, SyncModel::Ssp { s: 5 }],
            map,
            &init,
        );
        let mut w = workers.pop().unwrap();
        let grads: HashMap<u64, Vec<f32>> =
            [(0u64, vec![0.5f32; 8]), (1u64, vec![0.5f32; 4])].into();
        let mut params = HashMap::new();
        for i in 0..4u64 {
            w.spush(i, &grads).unwrap();
            w.spull_wait(i, &mut params).unwrap();
        }
        let stats = cluster.shutdown();
        assert_eq!(stats.iter().map(|s| s.pushes).sum::<u64>(), 8);
    }

    #[test]
    fn traced_cluster_counts_reconcile_with_stats() {
        let (specs, init) = model_params();
        let map = EpsSlicer { max_chunk: 4 }.slice(&specs, 2);
        let cfg = EngineConfig {
            num_workers: 2,
            num_servers: 2,
            model: SyncModel::Bsp,
            ..EngineConfig::default()
        };
        let collector = TraceCollector::wall(4096);
        let (cluster, mut workers) = Cluster::launch_with_collector(cfg, map, &init, &collector);

        let mut grads = HashMap::new();
        grads.insert(0u64, vec![1.0f32; 8]);
        grads.insert(1u64, vec![2.0f32; 4]);
        let handles: Vec<_> = workers
            .drain(..)
            .map(|mut w| {
                let grads = grads.clone();
                std::thread::spawn(move || {
                    let mut params = HashMap::new();
                    for i in 0..3u64 {
                        w.spush(i, &grads).unwrap();
                        w.spull_wait(i, &mut params).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = cluster.shutdown();
        let trace = collector.snapshot();

        let pulls: u64 = stats.iter().map(|s| s.pulls_total).sum();
        let dprs: u64 = stats.iter().map(|s| s.dprs).sum();
        let released: u64 = stats.iter().map(|s| s.dprs_released).sum();
        let pushes: u64 = stats.iter().map(|s| s.pushes).sum();
        let dropped: u64 = stats.iter().map(|s| s.late_pushes_dropped).sum();
        let advances: u64 = stats.iter().map(|s| s.v_train_advances).sum();

        assert_eq!(trace.count(EventKind::PullRequested), pulls);
        assert_eq!(trace.count(EventKind::PullDeferred), dprs);
        assert_eq!(trace.count(EventKind::DprReleased), released);
        assert_eq!(
            trace.count(EventKind::PushApplied) + trace.count(EventKind::LatePushDropped),
            pushes
        );
        assert_eq!(trace.count(EventKind::LatePushDropped), dropped);
        assert_eq!(trace.count(EventKind::VTrainAdvanced), advances);
        assert!(trace.count(EventKind::WireSend) > 0);
        assert!(trace.count(EventKind::WireRecv) > 0);
        assert!(trace.count(EventKind::BarrierWait) > 0);
    }

    #[test]
    fn shutdown_releases_blocked_workers() {
        let (specs, init) = model_params();
        let map = EpsSlicer { max_chunk: 4 }.slice(&specs, 1);
        let cfg = EngineConfig {
            num_workers: 2,
            num_servers: 1,
            model: SyncModel::Bsp,
            ..EngineConfig::default()
        };
        let (cluster, mut workers) = Cluster::launch(cfg, map, &init);
        let mut w0 = workers.remove(0);
        // Worker 0 pushes and pulls; worker 1 never shows up → the pull is
        // parked as a DPR. Shutdown must flush it so the thread unblocks.
        let blocked = std::thread::spawn(move || {
            let grads: HashMap<u64, Vec<f32>> =
                [(0u64, vec![1.0f32; 8]), (1u64, vec![1.0f32; 4])].into();
            w0.spush(0, &grads).unwrap();
            let mut params = HashMap::new();
            w0.spull_wait(0, &mut params).unwrap();
        });
        // Give the pull time to get parked, then shut down.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let stats = cluster.shutdown();
        blocked.join().unwrap();
        assert_eq!(stats[0].dprs, 1);
        assert_eq!(stats[0].dprs_released, 1);
    }
}
