//! Elastic Parameter Slicing (EPS), Section III-A.
//!
//! PS-Lite's default slicing splits the raw key space into contiguous
//! per-server ranges. Because neural-network parameters are wildly
//! different in size (a fully-connected layer can be 1000× a bias vector),
//! range slicing routinely lands most of the *bytes* on one server. EPS
//! remaps original keys to new keys such that the byte load divides evenly
//! over all key ranges, chunking oversized parameters across servers, and
//! rebalances with minimal movement when the server set changes.

use std::collections::HashMap;

use crate::key::{chunk_key, Key};

/// Description of one application-level parameter: its key and its value
/// length (number of f32 elements).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamSpec {
    /// Application key.
    pub key: Key,
    /// Number of values under this key.
    pub len: usize,
}

/// Where one slice of one parameter lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Original application key.
    pub orig_key: Key,
    /// Remapped wire key (encodes the chunk index).
    pub new_key: Key,
    /// Owning server.
    pub server: u32,
    /// Offset of this slice inside the original parameter.
    pub offset: usize,
    /// Number of values in this slice.
    pub len: usize,
}

/// The complete placement of a model onto `M` servers.
#[derive(Debug, Clone, Default)]
pub struct SliceMap {
    placements: Vec<Placement>,
    by_orig: HashMap<Key, Vec<usize>>,
    by_new: HashMap<Key, usize>,
    num_servers: u32,
}

impl SliceMap {
    fn from_placements(mut placements: Vec<Placement>, num_servers: u32) -> Self {
        // Deterministic iteration order: by original key then offset.
        placements.sort_by_key(|p| (p.orig_key, p.offset));
        let mut by_orig: HashMap<Key, Vec<usize>> = HashMap::new();
        let mut by_new = HashMap::new();
        for (i, p) in placements.iter().enumerate() {
            by_orig.entry(p.orig_key).or_default().push(i);
            let prev = by_new.insert(p.new_key, i);
            assert!(prev.is_none(), "duplicate new key {:#x}", p.new_key);
        }
        SliceMap {
            placements,
            by_orig,
            by_new,
            num_servers,
        }
    }

    /// All placements, ordered by `(orig_key, offset)`.
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Number of servers this map targets.
    pub fn num_servers(&self) -> u32 {
        self.num_servers
    }

    /// The slices of one original parameter, in offset order.
    pub fn slices_of(&self, orig_key: Key) -> impl Iterator<Item = &Placement> {
        self.by_orig
            .get(&orig_key)
            .into_iter()
            .flatten()
            .map(move |&i| &self.placements[i])
    }

    /// Owning server of a wire key.
    pub fn server_of(&self, new_key: Key) -> Option<u32> {
        self.by_new
            .get(&new_key)
            .map(|&i| self.placements[i].server)
    }

    /// Placement of a wire key.
    pub fn placement_of(&self, new_key: Key) -> Option<&Placement> {
        self.by_new.get(&new_key).map(|&i| &self.placements[i])
    }

    /// Value-count load per server.
    pub fn server_loads(&self) -> Vec<usize> {
        let mut loads = vec![0usize; self.num_servers as usize];
        for p in &self.placements {
            loads[p.server as usize] += p.len;
        }
        loads
    }

    /// Load imbalance: max server load divided by mean server load (1.0 is
    /// perfect balance). Returns 1.0 for an empty model.
    pub fn imbalance(&self) -> f64 {
        let loads = self.server_loads();
        let total: usize = loads.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / loads.len() as f64;
        let max = *loads.iter().max().expect("at least one server") as f64;
        max / mean
    }

    /// Total number of values placed.
    pub fn total_values(&self) -> usize {
        self.placements.iter().map(|p| p.len).sum()
    }

    /// Rebuild a map from an explicit placement list — used by workers that
    /// receive a `RouteUpdate` after a failure remap. `num_servers` stays
    /// the cluster's full width so per-server indexing remains stable even
    /// when a (dead) server owns nothing.
    pub fn from_raw(placements: Vec<Placement>, num_servers: u32) -> Self {
        Self::from_placements(placements, num_servers)
    }
}

/// A strategy for placing parameters on servers.
pub trait Slicer {
    /// Compute the placement of `params` onto `num_servers` servers.
    fn slice(&self, params: &[ParamSpec], num_servers: u32) -> SliceMap;
}

/// PS-Lite's default slicing: contiguous key ranges balanced by *key count*.
/// Kept as the baseline that exhibits the load-imbalance problem EPS fixes.
#[derive(Debug, Clone, Copy, Default)]
pub struct DefaultSlicer;

impl Slicer for DefaultSlicer {
    fn slice(&self, params: &[ParamSpec], num_servers: u32) -> SliceMap {
        assert!(num_servers > 0);
        let n = params.len();
        let m = num_servers as usize;
        // Keys sorted, then split into M contiguous groups of near-equal
        // *key count*; whole parameters are never chunked.
        let mut sorted: Vec<ParamSpec> = params.to_vec();
        sorted.sort_by_key(|p| p.key);
        let base = n / m;
        let extra = n % m;
        let mut placements = Vec::with_capacity(n);
        let mut idx = 0usize;
        for server in 0..m {
            let take = base + usize::from(server < extra);
            for p in &sorted[idx..idx + take] {
                placements.push(Placement {
                    orig_key: p.key,
                    new_key: chunk_key(p.key, 0),
                    server: server as u32,
                    offset: 0,
                    len: p.len,
                });
            }
            idx += take;
        }
        SliceMap::from_placements(placements, num_servers)
    }
}

/// Elastic Parameter Slicing: chunk parameters to at most `max_chunk` values
/// and assign chunks to servers with LPT (longest-processing-time) greedy
/// packing, yielding near-perfect byte balance.
#[derive(Debug, Clone, Copy)]
pub struct EpsSlicer {
    /// Maximum values per chunk. Smaller chunks balance better but cost more
    /// keys; the paper's goal is only that no single layer pins a server.
    pub max_chunk: usize,
}

impl Default for EpsSlicer {
    fn default() -> Self {
        EpsSlicer { max_chunk: 4096 }
    }
}

impl EpsSlicer {
    fn chunks(&self, params: &[ParamSpec]) -> Vec<Placement> {
        let mut out = Vec::new();
        for p in params {
            let mut offset = 0usize;
            let mut chunk_idx = 0u32;
            while offset < p.len {
                let len = (p.len - offset).min(self.max_chunk);
                out.push(Placement {
                    orig_key: p.key,
                    new_key: chunk_key(p.key, chunk_idx),
                    server: u32::MAX, // assigned below
                    offset,
                    len,
                });
                offset += len;
                chunk_idx += 1;
            }
            if p.len == 0 {
                out.push(Placement {
                    orig_key: p.key,
                    new_key: chunk_key(p.key, 0),
                    server: u32::MAX,
                    offset: 0,
                    len: 0,
                });
            }
        }
        out
    }

    /// Rebalance an existing map onto a new server count with minimal
    /// movement: placements on still-alive servers stay put unless their
    /// server is overloaded; orphaned or surplus chunks move to the least
    /// loaded server. Returns the new map and the number of values moved.
    pub fn rebalance(&self, map: &SliceMap, new_num_servers: u32) -> (SliceMap, usize) {
        assert!(new_num_servers > 0);
        let mut placements: Vec<Placement> = map.placements().to_vec();
        let total: usize = placements.iter().map(|p| p.len).sum();
        let target = (total as f64 / new_num_servers as f64).ceil() as usize + self.max_chunk;
        let mut loads = vec![0usize; new_num_servers as usize];
        let mut moved = 0usize;

        // Pass 1: keep placements whose server survives and has room.
        let mut homeless: Vec<usize> = Vec::new();
        for (i, p) in placements.iter().enumerate() {
            if p.server < new_num_servers && loads[p.server as usize] + p.len <= target {
                loads[p.server as usize] += p.len;
            } else {
                homeless.push(i);
            }
        }
        // Pass 2: LPT-place the rest.
        homeless.sort_by_key(|&i| std::cmp::Reverse(placements[i].len));
        for i in homeless {
            let (server, _) = loads
                .iter()
                .enumerate()
                .min_by_key(|(_, &l)| l)
                .expect("at least one server");
            if placements[i].server != server as u32 {
                moved += placements[i].len;
            }
            placements[i].server = server as u32;
            loads[server] += placements[i].len;
        }
        (
            SliceMap::from_placements(placements, new_num_servers),
            moved,
        )
    }

    /// Remap only the slices owned by `dead` onto the surviving servers,
    /// preserving every surviving server's id and placements. This is the
    /// degraded-mode counterpart of [`EpsSlicer::rebalance`], which
    /// renumbers servers and therefore cannot be applied to a live cluster
    /// whose survivors keep their identities. Returns the new map and the
    /// number of values moved.
    ///
    /// Panics if `dead` is the only server in the map.
    pub fn remap_dead(&self, map: &SliceMap, dead: u32) -> (SliceMap, usize) {
        let num_servers = map.num_servers();
        let survivors: Vec<u32> = (0..num_servers).filter(|&m| m != dead).collect();
        assert!(
            !survivors.is_empty(),
            "cannot remap: server {dead} was the only one"
        );
        let mut placements: Vec<Placement> = map.placements().to_vec();
        let mut loads = vec![0usize; num_servers as usize];
        for p in &placements {
            if p.server != dead {
                loads[p.server as usize] += p.len;
            }
        }
        // LPT-place the orphans on the least-loaded survivor.
        let mut orphans: Vec<usize> = (0..placements.len())
            .filter(|&i| placements[i].server == dead)
            .collect();
        orphans.sort_by_key(|&i| (std::cmp::Reverse(placements[i].len), placements[i].new_key));
        let mut moved = 0usize;
        for i in orphans {
            let &target = survivors
                .iter()
                .min_by_key(|&&m| (loads[m as usize], m))
                .expect("at least one survivor");
            placements[i].server = target;
            loads[target as usize] += placements[i].len;
            moved += placements[i].len;
        }
        (SliceMap::from_placements(placements, num_servers), moved)
    }
}

impl Slicer for EpsSlicer {
    fn slice(&self, params: &[ParamSpec], num_servers: u32) -> SliceMap {
        assert!(num_servers > 0);
        let mut chunks = self.chunks(params);
        // LPT: biggest chunk first onto the least-loaded server.
        let mut order: Vec<usize> = (0..chunks.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(chunks[i].len), chunks[i].new_key));
        let mut loads = vec![0usize; num_servers as usize];
        for i in order {
            let (server, _) = loads
                .iter()
                .enumerate()
                .min_by_key(|(s, &l)| (l, *s))
                .expect("at least one server");
            chunks[i].server = server as u32;
            loads[server] += chunks[i].len;
        }
        SliceMap::from_placements(chunks, num_servers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A ResNet-style skew: one huge layer plus many small ones.
    fn skewed_model() -> Vec<ParamSpec> {
        let mut params = vec![ParamSpec {
            key: 0,
            len: 100_000,
        }];
        for k in 1..32 {
            params.push(ParamSpec { key: k, len: 500 });
        }
        params
    }

    #[test]
    fn default_slicer_is_imbalanced_on_skewed_models() {
        let map = DefaultSlicer.slice(&skewed_model(), 8);
        // The huge key 0 lands wholly on server 0 → severe imbalance.
        assert!(
            map.imbalance() > 4.0,
            "expected severe imbalance, got {}",
            map.imbalance()
        );
        assert_eq!(map.total_values(), 100_000 + 31 * 500);
    }

    #[test]
    fn eps_slicer_balances_within_chunk_granularity() {
        let slicer = EpsSlicer { max_chunk: 2048 };
        let map = slicer.slice(&skewed_model(), 8);
        assert!(
            map.imbalance() < 1.2,
            "EPS should balance, got {}",
            map.imbalance()
        );
        assert_eq!(map.total_values(), 100_000 + 31 * 500);
    }

    #[test]
    fn eps_preserves_every_value_exactly_once() {
        let params = skewed_model();
        let map = EpsSlicer { max_chunk: 1000 }.slice(&params, 5);
        for p in &params {
            let mut covered = 0usize;
            let mut expected_offset = 0usize;
            for slice in map.slices_of(p.key) {
                assert_eq!(slice.offset, expected_offset, "gap in key {}", p.key);
                expected_offset += slice.len;
                covered += slice.len;
            }
            assert_eq!(covered, p.len, "key {} not fully covered", p.key);
        }
    }

    #[test]
    fn new_keys_route_back_to_their_server() {
        let map = EpsSlicer::default().slice(&skewed_model(), 4);
        for p in map.placements() {
            assert_eq!(map.server_of(p.new_key), Some(p.server));
            assert_eq!(map.placement_of(p.new_key).unwrap(), p);
        }
        assert_eq!(map.server_of(0xDEAD_BEEF_0000), None);
    }

    #[test]
    fn rebalance_after_server_loss_moves_only_orphans() {
        let slicer = EpsSlicer { max_chunk: 2048 };
        let map = slicer.slice(&skewed_model(), 8);
        let before_loads = map.server_loads();
        let lost_load = before_loads[7];
        let (new_map, moved) = slicer.rebalance(&map, 7);
        assert_eq!(new_map.total_values(), map.total_values());
        assert!(new_map.imbalance() < 1.35, "got {}", new_map.imbalance());
        // Moved volume should be close to what the dead server held, not a
        // full reshuffle.
        assert!(
            moved <= lost_load + 3 * 2048,
            "moved {moved} vs lost {lost_load}"
        );
    }

    #[test]
    fn rebalance_onto_more_servers_spreads_load() {
        let slicer = EpsSlicer { max_chunk: 1024 };
        let map = slicer.slice(&skewed_model(), 4);
        let (grown, _moved) = slicer.rebalance(&map, 8);
        assert_eq!(grown.num_servers(), 8);
        let loads = grown.server_loads();
        assert!(loads.iter().all(|&l| l > 0), "all servers used: {loads:?}");
    }

    #[test]
    fn zero_length_params_still_get_a_placement() {
        let params = vec![ParamSpec { key: 9, len: 0 }];
        let map = EpsSlicer::default().slice(&params, 2);
        assert_eq!(map.placements().len(), 1);
        assert_eq!(map.placements()[0].len, 0);
    }

    #[test]
    fn single_server_gets_everything() {
        let map = EpsSlicer::default().slice(&skewed_model(), 1);
        assert_eq!(map.server_loads(), vec![map.total_values()]);
        assert_eq!(map.imbalance(), 1.0);
    }

    #[test]
    fn remap_dead_moves_only_the_dead_servers_slices() {
        let slicer = EpsSlicer { max_chunk: 1024 };
        let map = slicer.slice(&skewed_model(), 4);
        let dead = 1u32;
        let dead_load = map.server_loads()[dead as usize];
        let (remapped, moved) = slicer.remap_dead(&map, dead);

        // Exactly the dead server's values moved; survivors kept their ids
        // and their own placements byte for byte.
        assert_eq!(moved, dead_load);
        assert_eq!(remapped.num_servers(), 4);
        assert_eq!(remapped.server_loads()[dead as usize], 0);
        for p in map.placements() {
            if p.server == dead {
                continue;
            }
            let q = remapped.placement_of(p.new_key).expect("survivor slice");
            assert_eq!(q, p, "surviving placement changed");
        }
        // Every orphan landed on a survivor.
        assert_eq!(remapped.total_values(), map.total_values());
    }

    #[test]
    #[should_panic(expected = "only one")]
    fn remap_dead_panics_with_no_survivors() {
        let map = EpsSlicer::default().slice(&skewed_model(), 1);
        EpsSlicer::default().remap_dead(&map, 0);
    }

    #[test]
    fn from_raw_roundtrips_placements() {
        let map = EpsSlicer::default().slice(&skewed_model(), 3);
        let rebuilt = SliceMap::from_raw(map.placements().to_vec(), 3);
        assert_eq!(rebuilt.placements(), map.placements());
        assert_eq!(rebuilt.num_servers(), 3);
    }
}
