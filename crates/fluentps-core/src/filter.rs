//! Gaia-style significance filtering (Hsieh et al., NSDI'17), the mechanism
//! the paper borrows for dynamic PSSP's `α = SF(g, w)` and discusses as the
//! complementary communication reducer: "over 95% of updates produce
//! insignificant gradients ... these gradients generated from several
//! iterations can be aggregated" before being synchronized.
//!
//! [`SignificanceFilter`] lives on the worker: each iteration's update is
//! folded into a local accumulator; only when the accumulated update's
//! significance `‖acc‖/‖w‖` crosses the threshold (or a staleness cap
//! forces it) is the accumulator flushed as one push. The ablation harness
//! (`repro ablation-filter`) measures the bytes saved against the accuracy
//! cost.

use std::collections::HashMap;

/// Per-key significance filter state.
///
/// ```
/// use fluentps_core::filter::{FilterDecision, SignificanceFilter};
/// let mut f = SignificanceFilter::new(0.5, 100);
/// let param = vec![1.0f32; 4];
/// // Tiny update: held locally.
/// assert_eq!(f.offer(0, &[0.1, 0.0, 0.0, 0.0], &param), FilterDecision::Hold);
/// // A big one flushes the accumulator in one push.
/// match f.offer(0, &[1.0, 0.0, 0.0, 0.0], &param) {
///     FilterDecision::Push(u) => assert!((u[0] - 1.1).abs() < 1e-6),
///     FilterDecision::Hold => unreachable!(),
/// }
/// ```
#[derive(Debug, Clone)]
pub struct SignificanceFilter {
    /// Minimum `‖accumulated‖ / ‖param‖` to trigger a push.
    threshold: f64,
    /// Force a flush after this many suppressed iterations, bounding the
    /// age of withheld gradients (Gaia's correctness condition).
    max_hold: u32,
    acc: HashMap<u64, Vec<f32>>,
    held: HashMap<u64, u32>,
    /// Pushes suppressed so far (for reporting).
    pub suppressed: u64,
    /// Pushes emitted so far.
    pub emitted: u64,
}

/// What to do with this iteration's update for one key.
#[derive(Debug, Clone, PartialEq)]
pub enum FilterDecision {
    /// Push the returned (accumulated) update now and reset the accumulator.
    Push(Vec<f32>),
    /// Keep accumulating locally; nothing goes on the wire.
    Hold,
}

impl SignificanceFilter {
    /// Filter with a significance `threshold` and a `max_hold` staleness cap
    /// (in iterations). `threshold = 0` pushes every iteration (filter off).
    pub fn new(threshold: f64, max_hold: u32) -> Self {
        assert!(threshold >= 0.0 && max_hold >= 1);
        SignificanceFilter {
            threshold,
            max_hold,
            acc: HashMap::new(),
            held: HashMap::new(),
            suppressed: 0,
            emitted: 0,
        }
    }

    /// Offer one key's update for this iteration; `param` is the worker's
    /// current view of the parameter (used for the significance test).
    pub fn offer(&mut self, key: u64, update: &[f32], param: &[f32]) -> FilterDecision {
        let acc = self
            .acc
            .entry(key)
            .or_insert_with(|| vec![0.0; update.len()]);
        if acc.is_empty() {
            // A previous push or flush drained the accumulator.
            acc.resize(update.len(), 0.0);
        }
        debug_assert_eq!(acc.len(), update.len(), "update shape changed");
        for (a, u) in acc.iter_mut().zip(update) {
            *a += u;
        }
        let held = self.held.entry(key).or_insert(0);
        *held += 1;

        let sig = crate::pssp::significance(acc, param);
        if sig >= self.threshold || *held >= self.max_hold {
            let out = std::mem::take(acc);
            *held = 0;
            self.emitted += 1;
            FilterDecision::Push(out)
        } else {
            self.suppressed += 1;
            FilterDecision::Hold
        }
    }

    /// Flush every accumulator unconditionally (end of training, or before
    /// an evaluation that must see all local updates).
    pub fn flush_all(&mut self) -> Vec<(u64, Vec<f32>)> {
        let mut out: Vec<(u64, Vec<f32>)> = self
            .acc
            .iter_mut()
            .filter(|(_, v)| v.iter().any(|&x| x != 0.0))
            .map(|(&k, v)| (k, std::mem::take(v)))
            .collect();
        out.sort_by_key(|(k, _)| *k);
        self.held.clear();
        self.emitted += out.len() as u64;
        out
    }

    /// Fraction of offers that were suppressed.
    pub fn suppression_rate(&self) -> f64 {
        let total = self.suppressed + self.emitted;
        if total == 0 {
            0.0
        } else {
            self.suppressed as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn significant_updates_push_immediately() {
        let mut f = SignificanceFilter::new(0.01, 100);
        let param = vec![1.0f32; 4];
        // ‖update‖/‖param‖ = 0.5 ≥ 0.01 → push.
        match f.offer(0, &[1.0, 0.0, 0.0, 0.0], &param) {
            FilterDecision::Push(u) => assert_eq!(u, vec![1.0, 0.0, 0.0, 0.0]),
            FilterDecision::Hold => panic!("should push"),
        }
        assert_eq!(f.emitted, 1);
        assert_eq!(f.suppressed, 0);
    }

    #[test]
    fn insignificant_updates_accumulate_until_significant() {
        let mut f = SignificanceFilter::new(0.01, 100);
        let param = vec![100.0f32; 4]; // ‖w‖ = 200
        let tiny = vec![0.5f32, 0.0, 0.0, 0.0]; // sig per offer = 0.0025
                                                // Four tiny updates accumulate to sig 0.01 → fourth one pushes.
        for i in 0..3 {
            assert_eq!(f.offer(0, &tiny, &param), FilterDecision::Hold, "offer {i}");
        }
        match f.offer(0, &tiny, &param) {
            FilterDecision::Push(u) => assert_eq!(u[0], 2.0), // 4 × 0.5 preserved
            FilterDecision::Hold => panic!("accumulated enough"),
        }
        assert_eq!(f.suppressed, 3);
    }

    #[test]
    fn max_hold_bounds_withheld_staleness() {
        let mut f = SignificanceFilter::new(1e9, 3); // threshold unreachable
        let param = vec![1.0f32];
        assert_eq!(f.offer(0, &[1e-6], &param), FilterDecision::Hold);
        assert_eq!(f.offer(0, &[1e-6], &param), FilterDecision::Hold);
        // Third offer hits max_hold → forced flush with all three folded in.
        match f.offer(0, &[1e-6], &param) {
            FilterDecision::Push(u) => assert!((u[0] - 3e-6).abs() < 1e-12),
            FilterDecision::Hold => panic!("max_hold must force a push"),
        }
    }

    #[test]
    fn nothing_is_lost_across_hold_and_flush() {
        let mut f = SignificanceFilter::new(1e9, 1000);
        let param = vec![1.0f32; 2];
        let mut total = [0.0f32; 2];
        for i in 0..10 {
            let u = [0.1 * i as f32, 0.2];
            total[0] += u[0];
            total[1] += u[1];
            assert_eq!(f.offer(7, &u, &param), FilterDecision::Hold);
        }
        let flushed = f.flush_all();
        assert_eq!(flushed.len(), 1);
        let (k, v) = &flushed[0];
        assert_eq!(*k, 7);
        assert!((v[0] - total[0]).abs() < 1e-5);
        assert!((v[1] - total[1]).abs() < 1e-5);
    }

    #[test]
    fn zero_threshold_disables_filtering() {
        let mut f = SignificanceFilter::new(0.0, 100);
        let param = vec![1.0f32];
        for _ in 0..5 {
            assert!(matches!(
                f.offer(0, &[0.0], &param),
                FilterDecision::Push(_)
            ));
        }
        assert_eq!(f.suppression_rate(), 0.0);
    }

    #[test]
    fn suppression_rate_reflects_traffic_saved() {
        let mut f = SignificanceFilter::new(0.5, 10);
        let param = vec![10.0f32; 4];
        for _ in 0..9 {
            let _ = f.offer(0, &[0.1, 0.0, 0.0, 0.0], &param);
        }
        assert!(f.suppression_rate() > 0.8, "rate {}", f.suppression_rate());
    }

    #[test]
    fn independent_keys_have_independent_accumulators() {
        let mut f = SignificanceFilter::new(0.4, 100);
        let param = vec![1.0f32];
        assert_eq!(f.offer(0, &[0.1], &param), FilterDecision::Hold);
        // Key 1 is significant on its own; key 0's accumulator is untouched.
        assert!(matches!(
            f.offer(1, &[0.9], &param),
            FilterDecision::Push(_)
        ));
        assert_eq!(f.offer(0, &[0.1], &param), FilterDecision::Hold);
    }
}
