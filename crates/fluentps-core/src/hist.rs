//! A small fixed-bucket histogram for synchronization wait times.
//!
//! The implementation lives in `fluentps-obs` (the metrics registry shares
//! it); this module re-exports it at its original path so existing
//! `fluentps_core::hist::Histogram` users keep compiling.
//!
//! ```
//! use fluentps_core::hist::Histogram;
//! let mut h = Histogram::new();
//! for v in [1u64, 2, 4, 100] { h.record(v); }
//! assert_eq!(h.count(), 4);
//! assert!(h.quantile_upper(0.5) <= 4);
//! assert_eq!(h.max(), 100);
//! ```

pub use fluentps_obs::hist::Histogram;
