//! Parameter keys and key ranges.
//!
//! The scheduler divides the whole key space into per-server key ranges
//! (Section III-A). EPS additionally remaps application keys to balance the
//! *byte* load, so a "key" seen by a server may be a chunk of an original
//! parameter; [`chunk_key`]/[`split_chunk_key`] define that embedding.

/// A parameter key as seen on the wire.
pub type Key = u64;

/// Number of low bits reserved for the chunk index when EPS splits one
/// oversized parameter across servers.
pub const CHUNK_BITS: u32 = 16;

/// Compose a chunked key from an original key and a chunk index.
///
/// Panics in debug builds if the original key would collide with the chunk
/// field (application keys must fit in `64 - CHUNK_BITS` bits).
#[inline]
pub fn chunk_key(orig: Key, chunk: u32) -> Key {
    debug_assert!(orig < (1u64 << (64 - CHUNK_BITS)), "key too large to chunk");
    debug_assert!(chunk < (1u32 << CHUNK_BITS), "chunk index overflow");
    (orig << CHUNK_BITS) | chunk as u64
}

/// Decompose a chunked key into `(original key, chunk index)`.
#[inline]
pub fn split_chunk_key(key: Key) -> (Key, u32) {
    (key >> CHUNK_BITS, (key & ((1 << CHUNK_BITS) - 1)) as u32)
}

/// A half-open range `[begin, end)` of keys owned by one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyRange {
    /// First key in the range.
    pub begin: Key,
    /// One past the last key in the range.
    pub end: Key,
}

impl KeyRange {
    /// Construct a range; `begin <= end` is required.
    pub fn new(begin: Key, end: Key) -> Self {
        assert!(begin <= end, "invalid key range [{begin}, {end})");
        KeyRange { begin, end }
    }

    /// Whether `key` falls inside the range.
    #[inline]
    pub fn contains(&self, key: Key) -> bool {
        key >= self.begin && key < self.end
    }

    /// Number of keys covered.
    pub fn len(&self) -> u64 {
        self.end - self.begin
    }

    /// True when the range covers no keys.
    pub fn is_empty(&self) -> bool {
        self.begin == self.end
    }

    /// Split the whole range into `n` contiguous sub-ranges whose sizes
    /// differ by at most one key. This is PS-Lite's default slicing: it
    /// balances *key counts*, not byte loads, which is exactly the imbalance
    /// EPS fixes (Section III-A).
    pub fn split(&self, n: u32) -> Vec<KeyRange> {
        assert!(n > 0, "cannot split into zero ranges");
        let total = self.len();
        let n64 = n as u64;
        let base = total / n64;
        let extra = total % n64;
        let mut out = Vec::with_capacity(n as usize);
        let mut cursor = self.begin;
        for i in 0..n64 {
            let size = base + u64::from(i < extra);
            out.push(KeyRange::new(cursor, cursor + size));
            cursor += size;
        }
        debug_assert_eq!(cursor, self.end);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_key_roundtrip() {
        for orig in [0u64, 1, 500, (1 << 40) - 1] {
            for chunk in [0u32, 1, 7, (1 << CHUNK_BITS) - 1] {
                let k = chunk_key(orig, chunk);
                assert_eq!(split_chunk_key(k), (orig, chunk));
            }
        }
    }

    #[test]
    fn range_contains_and_len() {
        let r = KeyRange::new(10, 20);
        assert!(r.contains(10));
        assert!(r.contains(19));
        assert!(!r.contains(20));
        assert!(!r.contains(9));
        assert_eq!(r.len(), 10);
        assert!(!r.is_empty());
        assert!(KeyRange::new(5, 5).is_empty());
    }

    #[test]
    fn split_covers_everything_without_overlap() {
        let r = KeyRange::new(0, 103);
        let parts = r.split(8);
        assert_eq!(parts.len(), 8);
        let mut cursor = 0;
        for p in &parts {
            assert_eq!(p.begin, cursor);
            cursor = p.end;
        }
        assert_eq!(cursor, 103);
        // Sizes differ by at most one.
        let sizes: Vec<u64> = parts.iter().map(|p| p.len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1);
    }

    #[test]
    fn split_more_parts_than_keys_yields_empty_tails() {
        let parts = KeyRange::new(0, 3).split(5);
        assert_eq!(parts.iter().filter(|p| !p.is_empty()).count(), 3);
        assert_eq!(parts.iter().map(|p| p.len()).sum::<u64>(), 3);
    }

    #[test]
    #[should_panic(expected = "invalid key range")]
    fn inverted_range_panics() {
        let _ = KeyRange::new(5, 4);
    }
}
