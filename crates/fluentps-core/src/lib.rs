//! # FluentPS core
//!
//! The paper's primary contribution (Yao, Wu & Wang, *FluentPS: A Parameter
//! Server Design with Low-frequency Synchronization for Distributed Deep
//! Learning*, IEEE CLUSTER 2019): a parameter server in which **each server
//! controls the synchronization of its own parameter shard** through a pair
//! of predicates — the *pull condition* and the *push condition* — instead of
//! deferring to a centralized scheduler.
//!
//! The pieces, mirroring the paper's Section III:
//!
//! * [`condition`] — the condition-aware synchronization controller. The
//!   [`condition::SyncPolicy`] trait is the `SetcondPull`/`SetcondPush` API:
//!   every classical model (BSP, ASP, SSP, DSPS, dropping stragglers) and the
//!   paper's PSSP come down to choosing these two predicates (Table III).
//! * [`dpr`] — the lazy pull buffer. A pull that fails the pull condition
//!   becomes a *delayed pull request* (DPR). Two execution policies exist:
//!   the classical SSP **soft barrier** (release as soon as the staleness
//!   bound is re-satisfied; may return stale parameters) and the paper's
//!   **lazy execution** (release only when `V_train` catches up with the
//!   requester, returning fully updated parameters) — Section III-C.
//! * [`pssp`] — the Probabilistic SSP model: block a too-fast worker only
//!   with probability `P`, constant or dynamically scaled by the progress
//!   gap and gradient significance — Section III-E.
//! * [`regret`] — the regret-bound math of Theorems 1 and 2, including the
//!   equivalence `PSSP(s, c) ≡ SSP(s + 1/c − 1)`.
//! * [`eps`] — Elastic Parameter Slicing: remap parameters onto servers so
//!   shards are evenly loaded, and rebalance when the server set changes.
//! * [`server`] — the per-shard state machine of Algorithm 1 (`PullHandler`
//!   / `PushHandler`). Deliberately free of clocks, threads and sockets so
//!   the threaded engine, the TCP engine and the discrete-event simulator
//!   all drive the *same* synchronization logic.
//! * [`worker`] — the worker-side client (`sPush`/`sPull`/`wait`).
//! * [`engine`] — a threaded in-process runtime gluing transports to shards
//!   (overlap synchronization falls out of servers answering independently).
//! * [`scheduler`] — the minimal scheduler: liveness and key ranges only.
//!
//! ## Quick start
//!
//! ```
//! use fluentps_core::condition::SyncModel;
//! use fluentps_core::dpr::DprPolicy;
//! use fluentps_core::server::{PullOutcome, ServerShard, ShardConfig};
//! use fluentps_transport::KvPairs;
//!
//! // One shard, two workers, SSP with staleness 1, lazy execution.
//! let mut shard = ServerShard::new(ShardConfig {
//!     server_id: 0,
//!     num_workers: 2,
//!     model: SyncModel::Ssp { s: 1 },
//!     policy: DprPolicy::LazyExecution,
//!     ..ShardConfig::default()
//! });
//! shard.init_param(0, vec![0.0; 4]);
//!
//! // Both workers push iteration-0 gradients; the second push completes the
//! // iteration and V_train advances.
//! shard.on_push(0, 0, &KvPairs::single(0, vec![1.0; 4]));
//! shard.on_push(1, 0, &KvPairs::single(0, vec![1.0; 4]));
//! assert_eq!(shard.v_train(), 1);
//!
//! // A pull within the staleness bound is answered immediately.
//! match shard.on_pull(0, 1, &[0], 0.0, None) {
//!     PullOutcome::Respond { kv, .. } => assert_eq!(kv.vals, vec![1.0; 4]),
//!     PullOutcome::Deferred => unreachable!("within bound"),
//! }
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod checkpoint;
pub mod condition;
pub mod consensus;
pub mod dpr;
pub mod engine;
pub mod eps;
pub mod filter;
pub mod hist;
pub mod key;
pub mod progress;
pub mod pssp;
pub mod recovery;
pub mod regret;
pub mod scheduler;
pub mod server;
pub mod stats;
pub mod tcp_engine;
pub mod worker;

pub use condition::{SyncModel, SyncPolicy, SyncState};
pub use dpr::DprPolicy;
pub use eps::{ParamSpec, Placement, SliceMap, Slicer};
pub use server::{PullOutcome, ReleasedPull, ServerShard, ShardConfig};
