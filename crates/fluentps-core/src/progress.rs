//! Worker-progress bookkeeping on a server shard.
//!
//! FluentPS distributes progress tracking: each worker reports its iteration
//! with every `sPush`/`sPull`, and each server maintains its own view for its
//! shard — there is no centralized consistent staleness table (that is the
//! SSPtable design whose scalability collapse motivates the paper, Fig. 1).

use std::collections::HashMap;

/// Per-shard view of worker progress plus the `Count[i]` push table of
/// Algorithm 1.
#[derive(Debug, Clone)]
pub struct ProgressTable {
    /// Latest progress reported by each worker (push or pull). `None` until
    /// the worker is first heard from.
    progress: Vec<Option<u64>>,
    /// `Count[i]`: number of workers that finished pushing gradients in
    /// iteration `i`. Entries below `V_train` are pruned as `V_train`
    /// advances, keeping the map O(staleness window).
    count: HashMap<u64, u32>,
}

impl ProgressTable {
    /// Table for `num_workers` workers, all unheard-from.
    pub fn new(num_workers: u32) -> Self {
        ProgressTable {
            progress: vec![None; num_workers as usize],
            count: HashMap::new(),
        }
    }

    /// Number of workers tracked.
    pub fn num_workers(&self) -> u32 {
        self.progress.len() as u32
    }

    /// Record that `worker` reported `progress` (monotone per worker; stale
    /// reports are ignored so message reordering cannot move progress back).
    pub fn observe(&mut self, worker: u32, progress: u64) {
        let slot = &mut self.progress[worker as usize];
        match slot {
            Some(p) if *p >= progress => {}
            _ => *slot = Some(progress),
        }
    }

    /// Record a completed push for iteration `i`, returning the new count.
    pub fn record_push(&mut self, i: u64) -> u32 {
        let c = self.count.entry(i).or_insert(0);
        *c += 1;
        *c
    }

    /// `Count[i]` — pushes seen for iteration `i`.
    pub fn count_at(&self, i: u64) -> u32 {
        self.count.get(&i).copied().unwrap_or(0)
    }

    /// Drop count entries for iterations strictly below `v_train`; they can
    /// never satisfy a push condition again.
    pub fn prune_below(&mut self, v_train: u64) {
        self.count.retain(|&i, _| i >= v_train);
    }

    /// Progress of the slowest worker heard from so far (`None` when nobody
    /// has reported yet).
    pub fn slowest(&self) -> Option<u64> {
        self.progress.iter().filter_map(|p| *p).min()
    }

    /// Progress of the fastest worker heard from so far.
    pub fn fastest(&self) -> Option<u64> {
        self.progress.iter().filter_map(|p| *p).max()
    }

    /// Progress of a specific worker.
    pub fn of(&self, worker: u32) -> Option<u64> {
        self.progress[worker as usize]
    }

    /// Slowest progress with never-heard-from workers counted at 0 — the
    /// right notion for staleness decisions: a worker that has not reported
    /// yet has completed nothing.
    pub fn slowest_including_silent(&self) -> u64 {
        if self.progress.iter().any(|p| p.is_none()) {
            0
        } else {
            self.slowest().unwrap_or(0)
        }
    }

    /// Spread between fastest and slowest reported progress, 0 when fewer
    /// than two workers have reported.
    pub fn spread(&self) -> u64 {
        match (self.fastest(), self.slowest()) {
            (Some(f), Some(s)) => f - s,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_is_monotone_per_worker() {
        let mut t = ProgressTable::new(2);
        t.observe(0, 5);
        t.observe(0, 3); // stale report ignored
        assert_eq!(t.of(0), Some(5));
        t.observe(0, 6);
        assert_eq!(t.of(0), Some(6));
    }

    #[test]
    fn slowest_fastest_spread() {
        let mut t = ProgressTable::new(3);
        assert_eq!(t.slowest(), None);
        assert_eq!(t.spread(), 0);
        t.observe(0, 10);
        assert_eq!(t.spread(), 0);
        t.observe(1, 4);
        t.observe(2, 7);
        assert_eq!(t.slowest(), Some(4));
        assert_eq!(t.fastest(), Some(10));
        assert_eq!(t.spread(), 6);
    }

    #[test]
    fn slowest_including_silent_counts_unheard_workers_as_zero() {
        let mut t = ProgressTable::new(2);
        assert_eq!(t.slowest_including_silent(), 0);
        t.observe(0, 9);
        assert_eq!(t.slowest_including_silent(), 0, "worker 1 silent");
        t.observe(1, 4);
        assert_eq!(t.slowest_including_silent(), 4);
    }

    #[test]
    fn count_tracks_pushes_and_prunes() {
        let mut t = ProgressTable::new(4);
        assert_eq!(t.record_push(0), 1);
        assert_eq!(t.record_push(0), 2);
        assert_eq!(t.record_push(1), 1);
        assert_eq!(t.count_at(0), 2);
        t.prune_below(1);
        assert_eq!(t.count_at(0), 0);
        assert_eq!(t.count_at(1), 1);
    }
}
