//! Probabilistic Staleness Synchronous Parallel (PSSP), Section III-E.
//!
//! SSP pauses a fast worker *whenever* its progress gap reaches the staleness
//! threshold `s`. PSSP relaxes this: past the threshold the worker is paused
//! only with probability `P`. Two variants:
//!
//! * **Constant PSSP** — `P = c` for every gap `k ≥ s` (`P = 0` below the
//!   threshold). `c = 1` recovers SSP, `c = 0` recovers ASP.
//! * **Dynamic PSSP** — `P(s, k) = α / (1 + e^(s−k))`, monotonically rising
//!   with the gap, so the very fast worker (reading very stale parameters) is
//!   paused more aggressively than one just past the threshold. `α` is either
//!   a constant or the gradient-significance function `SF(g, w) = |g| / |w|`
//!   borrowed from Gaia.

/// Blocking probability of **constant PSSP** for progress gap `k` under
/// threshold `s` with constant `c ∈ [0, 1]`.
#[inline]
pub fn constant_probability(c: f64, s: u64, k: u64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&c), "c must be a probability");
    if k < s {
        0.0
    } else {
        c
    }
}

/// Blocking probability of **dynamic PSSP**: `α / (1 + e^(s−k))` for `k ≥ s`,
/// `0` below the threshold.
///
/// At `k = s` this is `α/2` (the minimum over the active region, used in
/// Theorem 2's bound); as `k → ∞` it approaches `α`.
#[inline]
pub fn dynamic_probability(alpha: f64, s: u64, k: u64) -> f64 {
    debug_assert!(alpha >= 0.0, "alpha must be non-negative");
    if k < s {
        0.0
    } else {
        let gap = s as f64 - k as f64; // ≤ 0 in the active region
        (alpha / (1.0 + gap.exp())).min(1.0)
    }
}

/// Gradient-significance function `SF(g, w) = |g| / |w|` (L2 norms), the
/// Gaia-style measure the paper suggests for `α` in dynamic PSSP.
///
/// Returns 0 when the parameter norm is 0 (untrained parameters are treated
/// as insignificant rather than infinitely significant, avoiding a divide by
/// zero at initialization).
#[inline]
pub fn significance(grad: &[f32], param: &[f32]) -> f64 {
    let g: f64 = grad
        .iter()
        .map(|&x| (x as f64) * (x as f64))
        .sum::<f64>()
        .sqrt();
    let w: f64 = param
        .iter()
        .map(|&x| (x as f64) * (x as f64))
        .sum::<f64>()
        .sqrt();
    if w == 0.0 {
        0.0
    } else {
        g / w
    }
}

/// How `α` is determined for dynamic PSSP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Alpha {
    /// A fixed initial threshold.
    Constant(f64),
    /// Use the pull-time gradient significance reported by the caller,
    /// clamped to `[floor, cap]`. Before the cost function reaches a local
    /// optimum the gradient norm is positive, so `α > 0` (Theorem 2's
    /// function case relies on this lower bound).
    Significance {
        /// Lower bound ensuring a nonzero pause probability.
        floor: f64,
        /// Upper bound keeping `P ≤ 1` meaningful.
        cap: f64,
    },
}

impl Alpha {
    /// Resolve `α` given the caller-supplied significance (if any).
    pub fn resolve(&self, significance: Option<f64>) -> f64 {
        match *self {
            Alpha::Constant(a) => a,
            Alpha::Significance { floor, cap } => significance.unwrap_or(floor).clamp(floor, cap),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_zero_below_threshold() {
        assert_eq!(constant_probability(0.7, 3, 0), 0.0);
        assert_eq!(constant_probability(0.7, 3, 2), 0.0);
        assert_eq!(constant_probability(0.7, 3, 3), 0.7);
        assert_eq!(constant_probability(0.7, 3, 100), 0.7);
    }

    #[test]
    fn constant_extremes_recover_ssp_and_asp() {
        // c = 1 → always block past the threshold (SSP).
        assert_eq!(constant_probability(1.0, 2, 2), 1.0);
        // c = 0 → never block (ASP).
        assert_eq!(constant_probability(0.0, 2, 50), 0.0);
    }

    #[test]
    fn dynamic_is_zero_below_threshold_and_half_alpha_at_it() {
        let alpha = 0.8;
        assert_eq!(dynamic_probability(alpha, 3, 2), 0.0);
        let at = dynamic_probability(alpha, 3, 3);
        assert!((at - alpha / 2.0).abs() < 1e-12, "P(s,s) = α/2, got {at}");
    }

    #[test]
    fn dynamic_is_monotone_in_gap_and_approaches_alpha() {
        let alpha = 0.9;
        let mut prev = 0.0;
        for k in 3..30 {
            let p = dynamic_probability(alpha, 3, k);
            assert!(p >= prev, "monotone failed at k={k}");
            prev = p;
        }
        assert!((prev - alpha).abs() < 1e-9, "limit should be α, got {prev}");
    }

    #[test]
    fn dynamic_probability_is_clamped_to_one() {
        assert_eq!(dynamic_probability(5.0, 0, 100), 1.0);
    }

    #[test]
    fn significance_matches_norm_ratio() {
        let g = [3.0f32, 4.0]; // |g| = 5
        let w = [0.0f32, 10.0]; // |w| = 10
        assert!((significance(&g, &w) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn significance_of_zero_params_is_zero() {
        assert_eq!(significance(&[1.0, 1.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn alpha_resolution() {
        assert_eq!(Alpha::Constant(0.4).resolve(Some(9.0)), 0.4);
        let a = Alpha::Significance {
            floor: 0.1,
            cap: 1.0,
        };
        assert_eq!(a.resolve(None), 0.1);
        assert_eq!(a.resolve(Some(0.5)), 0.5);
        assert_eq!(a.resolve(Some(7.0)), 1.0);
        assert_eq!(a.resolve(Some(0.001)), 0.1);
    }
}
