//! Fault-tolerant TCP runtime: the [`crate::tcp_engine`] server loop plus
//! everything needed to survive a server death mid-training.
//!
//! Three pieces cooperate:
//!
//! * A **resilient server loop** that (1) deduplicates replayed pushes by a
//!   per-worker applied-progress window so client retries never
//!   double-apply gradients or perturb [`ShardStats`], (2) answers
//!   duplicate pulls from a per-worker reply cache without re-running the
//!   synchronization condition, (3) heartbeats a supervisor, (4)
//!   periodically captures a [`ShardCheckpoint`] into a shared store, and
//!   (5) can self-terminate at a configured logical time (`V_train`
//!   threshold) to simulate a crash deterministically.
//! * A **supervisor** owning a [`LivenessMonitor`]: when a server misses
//!   its heartbeats it is declared dead and either *replaced* — a fresh
//!   shard restored from the latest checkpoint, rebound on a new port,
//!   with workers redialing through the shared [`AddressBook`] — or, when
//!   replacement is disabled, the cluster enters *degraded mode*: the dead
//!   server's slices are remapped onto survivors
//!   ([`EpsSlicer::remap_dead`]), orphaned parameters are installed from
//!   the checkpoint, and workers receive a `RouteUpdate`.
//! * The **worker retry layer** ([`crate::worker::RetryPolicy`]): bounded
//!   timeouts, seeded backoff, push replay and pull re-issue.
//!
//! Since the control plane was replicated, "the supervisor" is really a
//! **quorum of supervisor replicas** driving the consensus log in
//! [`crate::consensus`]: every liveness verdict, replacement and remap
//! commits through the replicated log *before* any `Install`/`RouteUpdate`
//! goes out, servers heartbeat the replica they believe leads and get a
//! `LeaderRedirect` when they are wrong, and killing the leader
//! (`kill_supervisors`) is just another chaos scenario — a follower wins
//! the next election and finishes any half-done recovery. With
//! `num_supervisors == 1` the consensus layer degenerates to an instant
//! solo leader and the runtime behaves exactly like the pre-quorum design.
//!
//! All messaging runs through a [`FaultInjector`], so chaos schedules
//! (drops, delays, duplicates, severed nodes) apply to a live TCP cluster
//! and — because fault rules are content-matched, not timing-matched —
//! replay bit-for-bit across runs.

use std::collections::{BTreeSet, HashMap};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fluentps_obs::{
    ConsensusHealth, EventKind, HealthEngine, HealthTap, HealthView, MetricsRegistry, NodeHealth,
    RecordArgs, TraceCollector, Tracer, NO_ID,
};
use fluentps_util::buf::Bytes;
use fluentps_util::rng::StdRng;
use fluentps_util::sync::Mutex;

use fluentps_transport::collect::{StreamerConfig, TraceStreamer};
use fluentps_transport::fault::{FaultInjector, FaultPlan, FaultyMailbox, FaultyPostman};
use fluentps_transport::tcp::{AddressBook, TcpNode, TcpPostman};
use fluentps_transport::{
    frame, CausalCtx, KvPairs, Mailbox, Message, NodeId, Postman, TransportError, WirePlacement,
    NO_LEADER,
};

use crate::checkpoint::ShardCheckpoint;
use crate::consensus::{ConsensusConfig, ControlCommand, LogEntry, Replica};
use crate::engine::EngineConfig;
use crate::eps::{EpsSlicer, SliceMap};
use crate::scheduler::LivenessMonitor;
use crate::server::{stamp_ctx, PullOutcome, ServerShard, ShardConfig};
use crate::stats::ShardStats;
use crate::worker::{RetryPolicy, Router, WorkerClient};

/// Worker client type of the resilient runtime: TCP halves wrapped in the
/// cluster's fault injector.
pub type ResilientWorker = WorkerClient<FaultyPostman<TcpPostman>, FaultyMailbox<TcpNode>>;

/// Latest checkpoint per server id, shared between server loops (writers)
/// and the supervisor (reader at recovery time).
type CheckpointStore = Arc<Mutex<HashMap<u32, Bytes>>>;

/// Server thread handles plus the shutdown latch, shared across supervisor
/// replicas: whichever live replica first receives `Shutdown` drains the
/// servers; a replacement spawned by the current leader lands here too.
///
/// `stop` is the out-of-band counterpart of the `Shutdown` *message*: the
/// drain path sends `Shutdown` with best effort and then joins the server
/// threads unconditionally, so a lost frame (chaos drop, racing socket
/// teardown) would hang the join forever. Every server loop already wakes
/// on a heartbeat-interval timeout and checks this flag, guaranteeing exit
/// even when the message never arrives.
#[derive(Debug, Default)]
struct SharedServers {
    handles: Vec<(u32, JoinHandle<ShardStats>)>,
    drained: bool,
    stop: Arc<AtomicBool>,
}

type SharedState = Arc<Mutex<SharedServers>>;

/// Per-replica consensus standing, shared for introspection: every live
/// replica writes its own slot; `/healthz` and the consensus gauges render
/// the merged view (a fresh leader slot wins; no live leader slot at all
/// means quorum loss). A replica that crashes — simulated or real exit —
/// marks its slot `exited`, mirroring what a process death looks like to a
/// same-process introspection endpoint.
#[derive(Debug, Clone, Default)]
struct ConsensusBoard {
    slots: Arc<Mutex<Vec<BoardSlot>>>,
}

#[derive(Debug, Clone, Copy, Default)]
struct BoardSlot {
    term: u64,
    is_leader: bool,
    commit: u64,
    exited: bool,
}

impl ConsensusBoard {
    fn new(replicas: u32) -> Self {
        ConsensusBoard {
            slots: Arc::new(Mutex::new(vec![BoardSlot::default(); replicas as usize])),
        }
    }

    fn update(&self, id: u32, term: u64, is_leader: bool, commit: u64) {
        let mut slots = self.slots.lock();
        slots[id as usize] = BoardSlot {
            term,
            is_leader,
            commit,
            exited: false,
        };
    }

    fn mark_exited(&self, id: u32) {
        self.slots.lock()[id as usize].exited = true;
    }

    /// `(max term, leader replica id if any, max commit)` across live slots.
    fn view(&self) -> (u64, Option<u32>, u64) {
        let slots = self.slots.lock();
        let mut term = 0;
        let mut commit = 0;
        let mut leader: Option<(u64, u32)> = None;
        for (k, s) in slots.iter().enumerate() {
            if s.exited {
                continue;
            }
            term = term.max(s.term);
            commit = commit.max(s.commit);
            if s.is_leader && leader.is_none_or(|(t, _)| s.term > t) {
                leader = Some((s.term, k as u32));
            }
        }
        (term, leader.map(|(_, k)| k), commit)
    }
}

/// Derive `/healthz`'s consensus line and the Prometheus consensus gauges
/// from the board. Every live replica publishes the same merged view, so
/// writes race benignly.
fn publish_consensus(
    board: &ConsensusBoard,
    health: &HealthView,
    metrics: Option<&MetricsRegistry>,
    replicas: u32,
) {
    let (term, leader, commit) = board.view();
    health.set_consensus(Some(ConsensusHealth {
        term,
        leader: leader.map(|k| format!("supervisor{k}")),
        replicas,
    }));
    if let Some(reg) = metrics {
        reg.set_gauge("consensus_term", term as f64);
        reg.set_gauge(
            "consensus_is_leader",
            if leader.is_some() { 1.0 } else { 0.0 },
        );
        reg.set_gauge("consensus_commits_total", commit as f64);
    }
}

/// Fault-tolerance knobs of the resilient runtime.
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// How often each server heartbeats the supervisor.
    pub heartbeat_every: Duration,
    /// Silence after which the supervisor declares a server dead. Should be
    /// several heartbeat intervals.
    pub liveness_timeout: Duration,
    /// Capture a checkpoint every this many `V_train` advances (and once at
    /// startup, so recovery always has something to restore).
    pub checkpoint_every: u64,
    /// Deterministic crash: server `m` exits (without drain or farewell) as
    /// soon as its shard's `V_train` reaches the threshold. One-shot — the
    /// replacement does not inherit the switch.
    pub kill_server: Option<(u32, u64)>,
    /// `true`: a dead server is replaced from its latest checkpoint.
    /// `false`: degraded mode — survivors adopt the dead server's keys.
    pub spawn_replacement: bool,
    /// Client-side resilience policy installed on every worker.
    pub retry: RetryPolicy,
    /// Seeded fault schedule applied to all worker/server messaging.
    pub fault_plan: FaultPlan,
    /// When set, every node — each server loop, each worker client, the
    /// supervisor — records into its *own* wall-clock [`TraceCollector`]
    /// and streams its ring to the trace collector service at this
    /// address (see `fluentps_transport::collect`). Distinct per-node
    /// epochs are the point: the collection protocol's clock-offset
    /// handshake aligns them onto one cluster timeline. When a collector
    /// address is set, any in-process collector passed to
    /// [`ResilientTcpCluster::launch`] is ignored.
    pub collector_addr: Option<SocketAddr>,
    /// Per-node ring capacity (events) when `collector_addr` is set.
    pub trace_ring_capacity: usize,
    /// Number of supervisor replicas forming the control-plane quorum.
    /// 1 (the default) is solo mode — instant leadership, instant commit,
    /// the exact pre-quorum behavior on the same code path. 3+ survives
    /// leader death by election.
    pub num_supervisors: u32,
    /// Deterministic supervisor crashes: replica `k` exits (without drain
    /// or farewell) as soon as it has applied commit index `v`. Repeatable:
    /// killing the leader exercises failover; killing a quorum (2 of 3)
    /// exercises explicit leaderless degradation.
    pub kill_supervisors: Vec<(u32, u64)>,
    /// Base election timeout of the consensus layer (effective timeouts add
    /// seeded jitter). Must be strictly longer than `leader_lease`.
    pub election_timeout: Duration,
    /// Leadership lease: a leader that cannot hear acks from a quorum
    /// within this window steps down instead of acting on stale authority.
    pub leader_lease: Duration,
    /// When set, supervisor replicas publish the `consensus_term`,
    /// `consensus_is_leader` and `consensus_commits_total` gauges (with
    /// HELP lines) into this registry.
    pub metrics: Option<MetricsRegistry>,
    /// Streaming health engine to feed with this run's trace events. With
    /// an in-process collector (`collector_addr` unset, a collector passed
    /// to [`ResilientTcpCluster::launch`]) the cluster spawns a
    /// [`HealthTap`] draining that collector into the engine and stops it
    /// at shutdown. With `collector_addr` set, feeding is the collector
    /// service's job — attach the same engine there (see
    /// `fluentps_transport::CollectorService::attach_health`); the cluster
    /// never double-feeds.
    pub health_engine: Option<HealthEngine>,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            heartbeat_every: Duration::from_millis(25),
            liveness_timeout: Duration::from_millis(150),
            checkpoint_every: 2,
            kill_server: None,
            spawn_replacement: true,
            retry: RetryPolicy::default(),
            fault_plan: FaultPlan::passthrough(),
            collector_addr: None,
            trace_ring_capacity: 1 << 14,
            num_supervisors: 1,
            kill_supervisors: Vec::new(),
            election_timeout: Duration::from_millis(300),
            leader_lease: Duration::from_millis(150),
            metrics: None,
            health_engine: None,
        }
    }
}

impl RecoveryConfig {
    /// Check the timing invariants a non-flapping configuration must hold:
    /// a liveness timeout no longer than the heartbeat interval would
    /// declare healthy servers dead between two heartbeats, and an election
    /// timeout not strictly longer than the leader lease would let a
    /// follower depose a leader that is still inside its lease.
    /// [`ResilientTcpCluster::launch`] rejects invalid configurations up
    /// front by panicking with the returned message.
    pub fn validate(&self) -> Result<(), String> {
        if self.liveness_timeout <= self.heartbeat_every {
            return Err(format!(
                "liveness_timeout ({:?}) must be strictly longer than heartbeat_every ({:?}): \
                 anything shorter declares servers dead between two heartbeats",
                self.liveness_timeout, self.heartbeat_every
            ));
        }
        if self.election_timeout <= self.leader_lease {
            return Err(format!(
                "election_timeout ({:?}) must be strictly longer than leader_lease ({:?}): \
                 anything shorter lets followers depose a leader still inside its lease",
                self.election_timeout, self.leader_lease
            ));
        }
        if self.num_supervisors == 0 {
            return Err("num_supervisors must be at least 1".to_string());
        }
        Ok(())
    }
}

/// Per-node tracing setup: either a handle into the shared in-process
/// collector, or (when streaming) a private collector plus the streamer
/// shipping its ring to the collection service.
fn node_tracing(
    rcfg: &RecoveryConfig,
    shared: &Tracer,
    node: NodeId,
) -> (Tracer, Option<TraceStreamer>) {
    match rcfg.collector_addr {
        Some(addr) => {
            let col = TraceCollector::wall(rcfg.trace_ring_capacity);
            let tracer = col.tracer();
            let streamer = TraceStreamer::start(node, &col, addr, StreamerConfig::default());
            (tracer, Some(streamer))
        }
        None => (shared.clone(), None),
    }
}

/// Handle to a running fault-tolerant TCP cluster.
pub struct ResilientTcpCluster {
    supervisors: Vec<JoinHandle<Vec<ShardStats>>>,
    control: TcpPostman,
    _control_node: TcpNode,
    injector: FaultInjector,
    health: HealthView,
    /// Streamers for the worker clients' trace rings; stopped (with a
    /// final flush) at shutdown, after the caller's worker threads are
    /// done recording.
    worker_streamers: Vec<TraceStreamer>,
    /// Streamers for the supervisor replicas' own events (deaths,
    /// restores, remaps, elections); stopped after the replica threads are
    /// joined but *before* any join result is unwrapped, so a panicking
    /// replica cannot leak its streamer thread.
    supervisor_streamers: Vec<TraceStreamer>,
    /// Server thread handles, shared with the supervisor replicas so any
    /// live replica (or [`ResilientTcpCluster::shutdown`] itself, when
    /// every replica crashed) can drain them exactly once.
    shared: SharedState,
    num_servers: u32,
    num_supervisors: u32,
    /// Tap feeding [`RecoveryConfig::health_engine`] from the in-process
    /// collector (only when `collector_addr` is unset); drained at
    /// shutdown, before the engine is finalized.
    health_tap: Option<(HealthEngine, HealthTap)>,
    /// Where each node listens; shared live with every postman, so a
    /// replacement server becomes reachable the moment it rebinds.
    pub addresses: AddressBook,
}

impl ResilientTcpCluster {
    /// Launch servers, a supervisor and fault-wrapped worker clients.
    pub fn launch(
        cfg: EngineConfig,
        rcfg: RecoveryConfig,
        map: SliceMap,
        init: &HashMap<u64, Vec<f32>>,
        collector: Option<&TraceCollector>,
    ) -> Result<(ResilientTcpCluster, Vec<ResilientWorker>), TransportError> {
        assert_eq!(map.num_servers(), cfg.num_servers, "map/server mismatch");
        if let Err(e) = rcfg.validate() {
            panic!("invalid RecoveryConfig: {e}");
        }
        let loopback: SocketAddr = "127.0.0.1:0".parse().expect("loopback");
        let tracer = collector.map(|c| c.tracer()).unwrap_or_default();
        let injector = FaultInjector::new(rcfg.fault_plan.clone());
        let store: CheckpointStore = Arc::new(Mutex::new(HashMap::new()));
        let health = HealthView::new();

        let book = AddressBook::new();
        // The supervisor replicas' endpoints first, so server heartbeats
        // always have an address to dial.
        let mut supervisor_nodes = Vec::new();
        for k in 0..rcfg.num_supervisors {
            let node = TcpNode::bind(NodeId::Supervisor(k), loopback, book.clone())?;
            book.insert(NodeId::Supervisor(k), node.local_addr());
            supervisor_nodes.push(node);
        }

        let mut server_rx = Vec::new();
        for m in 0..cfg.num_servers {
            let node = TcpNode::bind(NodeId::Server(m), loopback, book.clone())?;
            book.insert(NodeId::Server(m), node.local_addr());
            server_rx.push(node);
        }
        let mut worker_nodes = Vec::new();
        for n in 0..cfg.num_workers {
            let node = TcpNode::bind(NodeId::Worker(n), loopback, book.clone())?;
            book.insert(NodeId::Worker(n), node.local_addr());
            worker_nodes.push(node);
        }

        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::with_capacity(cfg.num_servers as usize);
        for (m, rx) in server_rx.into_iter().enumerate() {
            let m = m as u32;
            let mut shard = fresh_shard(&cfg, m);
            let mut keys: Vec<u64> = Vec::new();
            for p in map.placements().iter().filter(|p| p.server == m) {
                let vals = init
                    .get(&p.orig_key)
                    .map(|v| v[p.offset..p.offset + p.len].to_vec())
                    .unwrap_or_else(|| vec![0.0; p.len]);
                shard.init_param(p.new_key, vals);
                keys.push(p.new_key);
            }
            keys.sort_unstable();
            let (server_tracer, server_streamer) = node_tracing(&rcfg, &tracer, NodeId::Server(m));
            shard.set_tracer(server_tracer.clone());
            let handle = spawn_server_loop(
                ServerLoop {
                    shard,
                    keys,
                    seen: vec![WorkerWindow::default(); cfg.num_workers as usize],
                    last_reply: vec![None; cfg.num_workers as usize],
                    pending_pull: vec![None; cfg.num_workers as usize],
                    rng: StdRng::seed_from_u64(cfg.seed.wrapping_add(m as u64 + 1)),
                    tracer: server_tracer,
                    rcfg: rcfg.clone(),
                    store: Arc::clone(&store),
                    stop: Arc::clone(&stop),
                },
                rx,
                TcpNode::bind(
                    NodeId::Server(cfg.num_servers + 1 + m),
                    loopback,
                    book.clone(),
                )?,
                &injector,
                server_streamer,
            );
            handles.push((m, handle));
        }

        let router = Router::new(map.clone());
        let mut worker_streamers = Vec::new();
        let workers: Vec<ResilientWorker> = worker_nodes
            .into_iter()
            .enumerate()
            .map(|(n, node)| {
                let n = n as u32;
                let postman = injector.postman(NodeId::Worker(n), node.postman());
                let mailbox = injector.mailbox(NodeId::Worker(n), node);
                let mut w = WorkerClient::new(n, postman, mailbox, router.clone());
                let (worker_tracer, worker_streamer) =
                    node_tracing(&rcfg, &tracer, NodeId::Worker(n));
                worker_streamers.extend(worker_streamer);
                w.set_tracer(worker_tracer);
                w.set_retry_policy(rcfg.retry.clone());
                w
            })
            .collect();

        let control_node = TcpNode::bind(NodeId::Worker(u32::MAX), loopback, book.clone())?;
        let control = control_node.postman();

        // Feed the health engine from the shared in-process collector. When
        // streaming to a collector service instead, that service owns the
        // feed (ClusterCollector::attach_health) — spawning a second tap
        // here would double-count every event.
        let health_tap = match (&rcfg.health_engine, collector, rcfg.collector_addr) {
            (Some(engine), Some(col), None) => {
                let tap = engine.attach_to(col, Duration::from_millis(10));
                Some((engine.clone(), tap))
            }
            _ => None,
        };

        // Consensus gauges: HELP text once at launch, values published by
        // every live replica from the shared board.
        if let Some(reg) = &rcfg.metrics {
            reg.set_help(
                "consensus_term",
                "Highest consensus term observed across live supervisor replicas.",
            );
            reg.set_help(
                "consensus_is_leader",
                "1 when a live supervisor replica holds control-plane leadership, 0 when leaderless.",
            );
            reg.set_help(
                "consensus_commits_total",
                "Highest committed control-plane log index across live supervisor replicas.",
            );
        }
        let board = ConsensusBoard::new(rcfg.num_supervisors);
        // Published before any election: /healthz honestly reports the
        // control plane as not-yet-established until the first leader wins.
        publish_consensus(&board, &health, rcfg.metrics.as_ref(), rcfg.num_supervisors);

        let shared: SharedState = Arc::new(Mutex::new(SharedServers {
            handles,
            drained: false,
            stop,
        }));
        let mut supervisors = Vec::with_capacity(rcfg.num_supervisors as usize);
        let mut supervisor_streamers = Vec::new();
        for (k, node) in supervisor_nodes.into_iter().enumerate() {
            let k = k as u32;
            // Replica 0 keeps the historical `scheduler` trace identity so
            // merged timelines stay comparable across cluster flavors;
            // extra replicas stream under their own supervisor id.
            let trace_id = if k == 0 {
                NodeId::Scheduler
            } else {
                NodeId::Supervisor(k)
            };
            let (sup_tracer, sup_streamer) = node_tracing(&rcfg, &tracer, trace_id);
            supervisor_streamers.extend(sup_streamer);
            let replica = SupervisorReplica {
                id: k,
                cfg: cfg.clone(),
                rcfg: rcfg.clone(),
                book: book.clone(),
                map: map.clone(),
                injector: injector.clone(),
                tracer: sup_tracer,
                store: Arc::clone(&store),
                shared: Arc::clone(&shared),
                loopback,
                generation: 0,
                health: health.clone(),
                board: board.clone(),
                consensus: Replica::new(ConsensusConfig {
                    id: k,
                    replicas: rcfg.num_supervisors,
                    heartbeat_every: rcfg.heartbeat_every,
                    leader_lease: rcfg.leader_lease,
                    election_timeout: rcfg.election_timeout,
                    seed: cfg.seed ^ 0x5EED_C0DE,
                }),
                applied: 0,
                pending_dead: BTreeSet::new(),
                dead_for_good: BTreeSet::new(),
                was_leader: false,
                next_request: 0,
            };
            let handle = std::thread::Builder::new()
                .name(format!("fluentps-supervisor-{k}"))
                .spawn(move || replica.run(node))
                .expect("spawn supervisor replica");
            supervisors.push(handle);
        }

        Ok((
            ResilientTcpCluster {
                supervisors,
                control,
                _control_node: control_node,
                injector,
                health,
                worker_streamers,
                supervisor_streamers,
                shared,
                num_servers: cfg.num_servers,
                num_supervisors: rcfg.num_supervisors,
                health_tap,
                addresses: book,
            },
            workers,
        ))
    }

    /// The cluster's fault injector — tests use it to sever nodes or read
    /// fault statistics.
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// The readiness view fed by the supervisor's liveness monitor; attach
    /// it to an introspection endpoint via
    /// `fluentps_obs::http::serve_with_health`.
    pub fn health(&self) -> HealthView {
        self.health.clone()
    }

    /// Stop the supervisor replicas and every server; returns per-server
    /// statistics (a replaced server's incarnations are merged under its
    /// id).
    ///
    /// Call after the worker threads have finished: the workers' trace
    /// streamers final-flush here, so events recorded later would be lost.
    pub fn shutdown(self) -> Vec<ShardStats> {
        // Workers are done recording by contract; flush their rings first.
        for s in self.worker_streamers {
            s.stop();
        }
        for k in 0..self.num_supervisors {
            let _ = self.control.send(NodeId::Supervisor(k), Message::Shutdown);
        }
        // Collect every replica's join *result* before unwrapping any of
        // them: the supervisor streamers must be latch-stopped even when a
        // replica thread panicked, or the panic would propagate here first
        // and leak the streamer threads.
        let joined: Vec<std::thread::Result<Vec<ShardStats>>> =
            self.supervisors.into_iter().map(|h| h.join()).collect();
        for s in self.supervisor_streamers {
            s.stop();
        }
        let mut merged = vec![ShardStats::default(); self.num_servers as usize];
        // Fallback drain: when every replica crashed (quorum-loss chaos
        // kills all of them) nobody drained the server threads — do it
        // here so they exit and their statistics are not lost.
        let leftovers = {
            let mut shared = self.shared.lock();
            if shared.drained {
                Vec::new()
            } else {
                shared.drained = true;
                shared.stop.store(true, Ordering::Relaxed);
                std::mem::take(&mut shared.handles)
            }
        };
        if !leftovers.is_empty() {
            for m in 0..self.num_servers {
                let _ = self.control.send(NodeId::Server(m), Message::Shutdown);
            }
            for (m, handle) in leftovers {
                if let Ok(stats) = handle.join() {
                    merged[m as usize].merge(&stats);
                }
            }
        }
        // Drain the final events (including the replicas' recovery
        // records) into the health engine and freeze it.
        if let Some((engine, tap)) = self.health_tap {
            tap.stop();
            engine.finish();
        }
        for res in joined {
            let stats = res.expect("supervisor replica thread");
            for (m, s) in stats.iter().enumerate() {
                merged[m].merge(s);
            }
        }
        merged
    }
}

fn fresh_shard(cfg: &EngineConfig, m: u32) -> ServerShard {
    ServerShard::new(ShardConfig {
        server_id: m,
        num_workers: cfg.num_workers,
        model: cfg.model,
        policy: cfg.policy,
        grad_scale: cfg.grad_scale,
    })
}

/// Per-worker applied-push window: a watermark (everything at or below is
/// applied) plus the out-of-order progresses above it. The window — rather
/// than a bare watermark — matters because a dropped push can arrive
/// *after* a later one was applied; a bare watermark would then reject the
/// replay forever and stall `V_train`.
#[derive(Debug, Clone, Default)]
struct WorkerWindow {
    watermark: Option<u64>,
    ahead: BTreeSet<u64>,
}

impl WorkerWindow {
    fn is_applied(&self, progress: u64) -> bool {
        self.watermark.is_some_and(|w| progress <= w) || self.ahead.contains(&progress)
    }

    fn apply(&mut self, progress: u64) {
        self.ahead.insert(progress);
        loop {
            let next = self.watermark.map(|w| w + 1).unwrap_or(0);
            if self.ahead.remove(&next) {
                self.watermark = Some(next);
            } else {
                break;
            }
        }
    }

    /// True when every applied push is covered by the watermark — the only
    /// state in which the watermark alone describes the applied set, and
    /// therefore the only state safe to checkpoint.
    fn gapless(&self) -> bool {
        self.ahead.is_empty()
    }
}

/// State owned by one incarnation of a resilient server loop.
struct ServerLoop {
    shard: ServerShard,
    /// Wire keys this shard owns, sorted (checkpoint capture order).
    keys: Vec<u64>,
    seen: Vec<WorkerWindow>,
    /// Last pull answered per worker: `(progress, requested keys, full
    /// response)`. Keys are part of the match because a worker re-pulls
    /// the *same* progress with a *different* key set after a
    /// `RouteUpdate`; answering that from the cache would silently omit
    /// newly adopted parameters.
    last_reply: Vec<Option<(u64, Vec<u64>, Message)>>,
    /// Pull currently parked in the DPR buffer per worker.
    pending_pull: Vec<Option<u64>>,
    rng: StdRng,
    tracer: Tracer,
    rcfg: RecoveryConfig,
    store: CheckpointStore,
    /// Out-of-band shutdown latch (see [`SharedServers`]): checked every
    /// loop wake-up so a lost `Shutdown` frame cannot strand the thread.
    stop: Arc<AtomicBool>,
}

fn spawn_server_loop(
    state: ServerLoop,
    rx: TcpNode,
    tx: TcpNode,
    injector: &FaultInjector,
    streamer: Option<TraceStreamer>,
) -> JoinHandle<ShardStats> {
    let m = state.shard.config().server_id;
    // The tx node's id is an implementation detail; faults match on the
    // *logical* sender, so wrap with `Server(m)`.
    let postman = injector.postman(NodeId::Server(m), tx.postman());
    let mailbox = injector.mailbox(NodeId::Server(m), rx);
    std::thread::Builder::new()
        .name(format!("fluentps-rts-server-{m}"))
        .spawn(move || {
            let stats = resilient_server_loop(state, mailbox, postman, tx);
            // Final-flush this server's trace stream from its own thread so a
            // killed server still ships everything it recorded before exiting.
            if let Some(s) = streamer {
                s.stop();
            }
            stats
        })
        .expect("spawn resilient server")
}

fn resilient_server_loop<M: Mailbox, P: Postman>(
    mut s: ServerLoop,
    rx: M,
    postman: P,
    _tx_keepalive: TcpNode,
) -> ShardStats {
    let server_id = s.shard.config().server_id;
    let supervisors = s.rcfg.num_supervisors.max(1);
    // The supervisor replica this server believes currently leads. Wrong
    // guesses are cheap: a live follower answers with a `LeaderRedirect`,
    // and a crashed replica fails the send, rotating to the next one.
    let mut leader: u32 = 0;
    let mut hb_seq = 0u64;
    let mut last_hb = Instant::now() - s.rcfg.heartbeat_every;
    let mut checkpoint_due = true; // capture once at startup
    let mut last_cp_v = None::<u64>;

    loop {
        // Out-of-band shutdown: the drain path sets this flag before it
        // sends `Shutdown` and joins, so even a lost frame lets the loop
        // exit at the next heartbeat-interval wake-up.
        if s.stop.load(Ordering::Relaxed) {
            drain_pending_replies(&mut s, &postman, server_id);
            break;
        }
        // Heartbeat on schedule, even under load.
        if last_hb.elapsed() >= s.rcfg.heartbeat_every {
            hb_seq += 1;
            let hb = Message::Heartbeat {
                node: NodeId::Server(server_id),
                seq: hb_seq,
            };
            if postman.send(NodeId::Supervisor(leader), hb).is_err() {
                leader = (leader + 1) % supervisors;
            }
            last_hb = Instant::now();
        }
        // Deterministic crash at a logical time. Checked before the
        // checkpoint block so state reached at the kill threshold dies
        // uncaptured — recovery genuinely replays from an older snapshot.
        if let Some((kill_m, threshold)) = s.rcfg.kill_server {
            if kill_m == server_id && s.shard.v_train() >= threshold {
                return s.shard.stats().clone();
            }
        }
        // Checkpoint when due and the applied windows are gapless (a gap
        // means the watermark under-describes the applied set).
        if checkpoint_due && s.seen.iter().all(WorkerWindow::gapless) {
            let applied: Vec<Option<u64>> = s.seen.iter().map(|w| w.watermark).collect();
            let cp = ShardCheckpoint::capture_with_applied(&s.shard, &s.keys, &applied);
            let bytes = cp.to_bytes();
            s.tracer.record(
                EventKind::CheckpointCaptured,
                RecordArgs::new()
                    .shard(server_id)
                    .v_train(cp.v_train)
                    .bytes(bytes.len() as u64),
            );
            s.store.lock().insert(server_id, bytes);
            last_cp_v = Some(cp.v_train);
            checkpoint_due = false;
        }
        let msg = match rx.recv_timeout(s.rcfg.heartbeat_every) {
            Ok(Some((_, msg))) => msg,
            Ok(None) => continue,
            Err(_) => break,
        };
        let wire_bytes = frame::wire_len(&msg) as u64;
        let (ctx, msg) = msg.split_ctx();
        if s.tracer.is_enabled() {
            let worker = match &msg {
                Message::SPush { worker, .. } | Message::SPull { worker, .. } => *worker,
                _ => NO_ID,
            };
            s.tracer.record(
                EventKind::WireRecv,
                stamp_ctx(
                    RecordArgs::new()
                        .shard(server_id)
                        .worker(worker)
                        .bytes(wire_bytes),
                    ctx,
                ),
            );
        }
        // Wrap replies back in the request's envelope (when it carried one)
        // so every hop of the request's round trip shares a waterfall.
        let wrap = |msg: Message, ctx: Option<CausalCtx>| match ctx {
            Some(c) => msg.with_ctx(c),
            None => msg,
        };
        match msg {
            Message::SPush {
                worker,
                progress,
                kv,
            } => {
                let w = worker as usize;
                let ack = wrap(
                    Message::PushAck {
                        server: server_id,
                        progress,
                    },
                    ctx,
                );
                if s.seen[w].is_applied(progress) {
                    // Replay of an already-applied push: re-ack only, the
                    // shard (and its statistics) never sees it.
                    send_traced(&postman, &s.tracer, server_id, worker, ack);
                    continue;
                }
                let before = s.shard.v_train();
                let released = s.shard.on_push_ctx(worker, progress, &kv, ctx);
                s.seen[w].apply(progress);
                send_traced(&postman, &s.tracer, server_id, worker, ack);
                for r in released {
                    let rkeys = r.kv.keys.clone();
                    let resp = wrap(
                        Message::PullResponse {
                            server: server_id,
                            progress: r.progress,
                            kv: r.kv,
                            version: r.version,
                        },
                        r.ctx,
                    );
                    s.last_reply[r.worker as usize] = Some((r.progress, rkeys, resp.clone()));
                    s.pending_pull[r.worker as usize] = None;
                    send_traced(&postman, &s.tracer, server_id, r.worker, resp);
                }
                let after = s.shard.v_train();
                if after > before
                    && s.rcfg.checkpoint_every > 0
                    && after >= last_cp_v.unwrap_or(0) + s.rcfg.checkpoint_every
                {
                    checkpoint_due = true;
                }
            }
            Message::SPull {
                worker,
                progress,
                keys,
            } => {
                let w = worker as usize;
                if s.pending_pull[w] == Some(progress) {
                    // Re-issued pull for a round already parked in the DPR
                    // buffer; the release will answer it.
                    continue;
                }
                if let Some((p, pkeys, resp)) = &s.last_reply[w] {
                    if *p == progress && *pkeys == keys {
                        // Duplicate of an answered pull: re-send the cached
                        // response verbatim — no condition re-evaluation,
                        // no rng draw, no statistics drift.
                        let resp = resp.clone();
                        send_traced(&postman, &s.tracer, server_id, worker, resp);
                        continue;
                    }
                    if *p > progress {
                        // Stale retransmit of a round the worker has
                        // already finished.
                        continue;
                    }
                }
                if keys.iter().any(|k| s.keys.binary_search(k).is_err()) {
                    // The worker's routing ran ahead of our Install (the
                    // supervisor's recovery messages race on separate
                    // streams); its retry will re-issue the pull once the
                    // parameters have arrived.
                    continue;
                }
                let draw: f64 = s.rng.gen();
                match s
                    .shard
                    .on_pull_ctx(worker, progress, &keys, draw, None, ctx)
                {
                    PullOutcome::Respond { kv, version } => {
                        let resp = wrap(
                            Message::PullResponse {
                                server: server_id,
                                progress,
                                kv,
                                version,
                            },
                            ctx,
                        );
                        s.last_reply[w] = Some((progress, keys, resp.clone()));
                        send_traced(&postman, &s.tracer, server_id, worker, resp);
                    }
                    PullOutcome::Deferred => {
                        s.pending_pull[w] = Some(progress);
                    }
                }
            }
            Message::Install { kv } => {
                // Recovery: adopt parameters verbatim (degraded-mode
                // hand-off of a dead server's keys).
                for (key, vals) in kv.iter() {
                    s.shard.init_param(key, vals.to_vec());
                    if let Err(i) = s.keys.binary_search(&key) {
                        s.keys.insert(i, key);
                    }
                }
                checkpoint_due = true;
            }
            Message::LeaderRedirect { leader: l, .. } => {
                // A follower replica told us who leads. `NO_LEADER` means
                // an election is in progress — keep the current target
                // rather than thrash between candidates.
                if l != NO_LEADER && l < supervisors {
                    leader = l;
                }
            }
            Message::Shutdown => {
                drain_pending_replies(&mut s, &postman, server_id);
                break;
            }
            _ => {}
        }
    }
    s.shard.stats().clone()
}

/// Flush every reply parked in the DPR buffer back to its worker, wrapped
/// in the request's causal envelope when it carried one. Shared by the
/// `Shutdown` message arm and the out-of-band stop-flag exit.
fn drain_pending_replies<P: Postman>(s: &mut ServerLoop, postman: &P, server_id: u32) {
    for r in s.shard.drain_shutdown() {
        let resp = Message::PullResponse {
            server: server_id,
            progress: r.progress,
            kv: r.kv,
            version: r.version,
        };
        let resp = match r.ctx {
            Some(c) => resp.with_ctx(c),
            None => resp,
        };
        send_traced(postman, &s.tracer, server_id, r.worker, resp);
    }
}

fn send_traced<P: Postman>(
    postman: &P,
    tracer: &Tracer,
    server_id: u32,
    worker: u32,
    msg: Message,
) {
    tracer.record(
        EventKind::WireSend,
        stamp_ctx(
            RecordArgs::new()
                .shard(server_id)
                .worker(worker)
                .bytes(frame::wire_len(&msg) as u64),
            msg.ctx(),
        ),
    );
    let _ = postman.send(NodeId::Worker(worker), msg);
}

/// Ship a batch of consensus messages; unreachable replicas (crashed ones)
/// simply fail the send and are skipped — the protocol tolerates loss.
fn send_consensus(postman: &TcpPostman, out: Vec<(NodeId, Message)>) {
    for (to, msg) in out {
        let _ = postman.send(to, msg);
    }
}

/// One supervisor replica: drives its consensus [`Replica`], observes
/// server heartbeats while leading, and applies committed control commands
/// to the recovery state machine.
///
/// Every recovery decision — death verdict, replacement, remap — flows
/// through the replicated log: the leader *proposes* (`DeclareDead`, then
/// `Replaced` or `Remapped`), and the effect (spawning the replacement,
/// sending `Install`/`RouteUpdate`) runs only when the entry *commits*.
/// A leader deposed mid-decision therefore cannot leave effects its
/// successor does not know about, and an un-replicated verdict simply
/// vanishes with the old term. Followers mirror the committed route table
/// by replaying `Remapped` entries through the same deterministic
/// [`EpsSlicer::remap_dead`], so whichever replica wins the next election
/// resumes from identical control-plane state.
struct SupervisorReplica {
    id: u32,
    cfg: EngineConfig,
    rcfg: RecoveryConfig,
    book: AddressBook,
    /// This replica's mirror of the route table; mutated only when a
    /// committed `Remapped` entry is applied, so all replicas hold
    /// identical maps at equal applied indices.
    map: SliceMap,
    injector: FaultInjector,
    tracer: Tracer,
    store: CheckpointStore,
    shared: SharedState,
    loopback: SocketAddr,
    generation: u64,
    health: HealthView,
    board: ConsensusBoard,
    consensus: Replica,
    /// Log index up to which this replica has applied committed entries.
    applied: u64,
    /// Committed `DeclareDead` verdicts not yet resolved by a committed
    /// `Replaced`/`Remapped` entry.
    pending_dead: BTreeSet<u32>,
    /// Servers whose death resolved to degraded mode — permanently dead.
    dead_for_good: BTreeSet<u32>,
    was_leader: bool,
    /// Counter for this replica's causal request ids; see
    /// [`SupervisorReplica::next_request_id`].
    next_request: u64,
}

impl SupervisorReplica {
    fn run(mut self, node: TcpNode) -> Vec<ShardStats> {
        let start = Instant::now();
        let timeout_ms = self.rcfg.liveness_timeout.as_millis() as u64;
        let mut liveness = LivenessMonitor::new(timeout_ms.max(1));
        for m in 0..self.cfg.num_servers {
            liveness.observe(NodeId::Server(m), 0);
        }
        let postman = node.postman();
        let tick = self.rcfg.heartbeat_every;
        let mut last_noop = Instant::now();

        loop {
            let now = start.elapsed();
            let now_ms = now.as_millis() as u64;
            // Drive the consensus state machine: elections, leader
            // heartbeats, lease checks.
            let out = self.consensus.tick(now);
            send_consensus(&postman, out);
            if self.consensus.is_leader() && !self.was_leader {
                self.on_accession(&mut liveness, now_ms);
            }
            self.was_leader = self.consensus.is_leader();

            if self.consensus.is_leader() {
                // A periodic no-op keeps the applied index advancing like a
                // clock, which is what gives `kill_supervisors` thresholds
                // ("die after applying index v") a deterministic meaning
                // even in runs where no server ever fails.
                if last_noop.elapsed() >= tick {
                    self.consensus.propose(ControlCommand::Tick, now);
                    last_noop = Instant::now();
                }
                // Death verdicts are proposals, not actions: the effect
                // waits for the quorum commit.
                for dead in liveness.dead_nodes(now_ms) {
                    let NodeId::Server(m) = dead else { continue };
                    liveness.remove(dead);
                    if self.pending_dead.contains(&m) || self.dead_for_good.contains(&m) {
                        continue;
                    }
                    self.tracer.record(
                        EventKind::NodeDeclaredDead,
                        RecordArgs::new().shard(m).v_train(now_ms),
                    );
                    self.consensus
                        .propose(ControlCommand::DeclareDead { server: m }, now);
                }
            }
            self.apply_committed(now, &postman, &mut liveness);

            // Deterministic replica crash: exit without drain or farewell
            // once the configured applied index is reached.
            if let Some(&(_, v)) = self
                .rcfg
                .kill_supervisors
                .iter()
                .find(|&&(k, _)| k == self.id)
            {
                if self.applied >= v {
                    self.board.mark_exited(self.id);
                    publish_consensus(
                        &self.board,
                        &self.health,
                        self.rcfg.metrics.as_ref(),
                        self.rcfg.num_supervisors,
                    );
                    return Vec::new();
                }
            }

            self.board.update(
                self.id,
                self.consensus.term(),
                self.consensus.is_leader(),
                self.consensus.commit_index(),
            );
            publish_consensus(
                &self.board,
                &self.health,
                self.rcfg.metrics.as_ref(),
                self.rcfg.num_supervisors,
            );
            if self.consensus.is_leader() {
                self.publish_node_health(&liveness, now_ms);
            }

            match node.recv_timeout(tick) {
                Ok(Some((_, msg))) => match msg {
                    Message::Heartbeat { node: n, .. } => {
                        if self.consensus.is_leader() {
                            let ignore = matches!(n, NodeId::Server(m)
                                if self.pending_dead.contains(&m)
                                    || self.dead_for_good.contains(&m));
                            if !ignore {
                                liveness.observe(n, start.elapsed().as_millis() as u64);
                            }
                        } else if let NodeId::Server(m) = n {
                            // Redirect the server to whoever we believe
                            // leads; `NO_LEADER` while an election runs.
                            let _ = postman.send(
                                NodeId::Server(m),
                                Message::LeaderRedirect {
                                    term: self.consensus.term(),
                                    leader: self.consensus.leader_hint().unwrap_or(NO_LEADER),
                                },
                            );
                        }
                    }
                    Message::VoteRequest { .. }
                    | Message::VoteResponse { .. }
                    | Message::AppendEntries { .. }
                    | Message::AppendAck { .. } => {
                        let out = self.consensus.handle(&msg, start.elapsed());
                        send_consensus(&postman, out);
                    }
                    Message::Shutdown => break,
                    _ => {}
                },
                Ok(None) => {}
                Err(_) => break,
            }
        }
        self.drain_servers(&postman)
    }

    /// This replica just won an election. A follower's liveness view is
    /// cold — it was not the one observing heartbeats — so give every
    /// server that is not conclusively dead a fresh grace period, and put
    /// committed-but-unresolved death verdicts back under observation too:
    /// if the previous leader already spawned a replacement it will
    /// heartbeat within the grace period, otherwise the server is
    /// re-declared and resolved by *this* leader. Recovery is thereby
    /// at-least-once across leaders without ever double-spawning.
    fn on_accession(&mut self, liveness: &mut LivenessMonitor, now_ms: u64) {
        for m in 0..self.cfg.num_servers {
            if !self.dead_for_good.contains(&m) {
                liveness.observe(NodeId::Server(m), now_ms);
                self.pending_dead.remove(&m);
            }
        }
        let term = self.consensus.term();
        self.tracer.record(
            EventKind::LeaderElected,
            RecordArgs::new().shard(self.id).v_train(term),
        );
        if term > 1 && self.rcfg.num_supervisors > 1 {
            self.tracer.record(
                EventKind::SupervisorFailover,
                RecordArgs::new().shard(self.id).v_train(term),
            );
        }
    }

    /// Apply every newly committed log entry to the recovery state
    /// machine. Followers track verdicts and mirror the route table; only
    /// the current leader performs effects (spawning, installing,
    /// re-routing) — the single-leader-commit rule makes that safe.
    fn apply_committed(
        &mut self,
        now: Duration,
        postman: &TcpPostman,
        liveness: &mut LivenessMonitor,
    ) {
        // Copied out: resolving a verdict proposes follow-up entries,
        // which appends to the log being iterated.
        let entries: Vec<LogEntry> = self.consensus.committed_since(self.applied).to_vec();
        for e in entries {
            self.applied = e.index;
            let server = match e.cmd {
                ControlCommand::Tick => continue,
                ControlCommand::DeclareDead { server: m } => {
                    if !self.pending_dead.contains(&m) && !self.dead_for_good.contains(&m) {
                        self.pending_dead.insert(m);
                        if self.consensus.is_leader() {
                            self.resolve_dead(m, now);
                        }
                    }
                    m
                }
                ControlCommand::Replaced { server: m } => {
                    self.pending_dead.remove(&m);
                    if self.consensus.is_leader() {
                        if self.try_replace(m) {
                            // Fresh grace period for the replacement.
                            liveness.observe(NodeId::Server(m), now.as_millis() as u64);
                        } else {
                            // Checkpoint vanished or the bind failed —
                            // correct course through the log.
                            self.pending_dead.insert(m);
                            self.consensus
                                .propose(ControlCommand::Remapped { server: m }, now);
                        }
                    }
                    m
                }
                ControlCommand::Remapped { server: m } => {
                    self.pending_dead.remove(&m);
                    if self.dead_for_good.insert(m) {
                        let (remapped, moved) = EpsSlicer::default().remap_dead(&self.map, m);
                        if self.consensus.is_leader() {
                            self.degrade_effect(m, &remapped, moved, postman);
                        }
                        // Every replica mirrors the committed route table,
                        // so a successor leader remaps from identical
                        // state.
                        self.map = remapped;
                    }
                    m
                }
            };
            self.tracer.record(
                EventKind::ConsensusCommit,
                RecordArgs::new().shard(server).v_train(e.index),
            );
        }
    }

    /// Decide how a committed death verdict resolves and put the decision
    /// in the log; the effect runs when the resolution entry commits.
    fn resolve_dead(&mut self, m: u32, now: Duration) {
        let replaceable = self.rcfg.spawn_replacement
            && self
                .store
                .lock()
                .get(&m)
                .is_some_and(|b| ShardCheckpoint::from_bytes(b.clone()).is_ok());
        let cmd = if replaceable {
            ControlCommand::Replaced { server: m }
        } else {
            ControlCommand::Remapped { server: m }
        };
        self.consensus.propose(cmd, now);
    }

    fn publish_node_health(&self, liveness: &LivenessMonitor, now: u64) {
        let mut nodes = Vec::with_capacity(self.cfg.num_servers as usize);
        for m in 0..self.cfg.num_servers {
            let id = NodeId::Server(m);
            let (age, is_dead) =
                if self.dead_for_good.contains(&m) || self.pending_dead.contains(&m) {
                    (now, true)
                } else {
                    let last = liveness.last_seen(id);
                    (now.saturating_sub(last.unwrap_or(0)), last.is_none())
                };
            nodes.push(NodeHealth {
                name: format!("server{m}"),
                last_seen_age_ms: age,
                dead: is_dead,
            });
        }
        self.health.update(nodes);
    }

    /// Orderly server drain, performed exactly once across all replicas:
    /// whichever replica first reaches shutdown takes the shared handles;
    /// later replicas (and the cluster's own fallback) find `drained` set.
    fn drain_servers(&mut self, postman: &TcpPostman) -> Vec<ShardStats> {
        let handles = {
            let mut shared = self.shared.lock();
            if shared.drained {
                return Vec::new();
            }
            shared.drained = true;
            // Latch first: `Shutdown` below is best-effort, and the join
            // after it is unconditional — the flag guarantees the loops
            // exit even when a frame is lost.
            shared.stop.store(true, Ordering::Relaxed);
            std::mem::take(&mut shared.handles)
        };
        for m in 0..self.cfg.num_servers {
            let _ = postman.send(NodeId::Server(m), Message::Shutdown);
        }
        let mut merged: Vec<ShardStats> =
            vec![ShardStats::default(); self.cfg.num_servers as usize];
        for (m, handle) in handles {
            if let Ok(stats) = handle.join() {
                merged[m as usize].merge(&stats);
            }
        }
        merged
    }

    /// Spawn a replacement for dead server `m` from its latest checkpoint.
    /// Returns false when no usable checkpoint exists.
    fn try_replace(&mut self, m: u32) -> bool {
        let Some(bytes) = self.store.lock().get(&m).cloned() else {
            return false;
        };
        let Ok(cp) = ShardCheckpoint::from_bytes(bytes.clone()) else {
            return false;
        };
        let Ok(rx) = TcpNode::bind(NodeId::Server(m), self.loopback, self.book.clone()) else {
            return false;
        };
        let Ok(tx) = TcpNode::bind(
            NodeId::Server(self.cfg.num_servers + 1 + m),
            self.loopback,
            self.book.clone(),
        ) else {
            return false;
        };
        // Publishing the new address is what lets every worker's postman
        // redial the replacement after its old connection errors out.
        self.book.insert(NodeId::Server(m), rx.local_addr());

        let mut shard = fresh_shard(&self.cfg, m);
        // The replacement gets its own collector+streamer: on the merged
        // timeline it is a new incarnation of `serverM` (the collector folds
        // the restarted batch sequence into the same per-node accounting).
        let (rep_tracer, rep_streamer) = node_tracing(&self.rcfg, &self.tracer, NodeId::Server(m));
        shard.set_tracer(rep_tracer.clone());
        cp.restore_into(&mut shard);
        let keys = cp.params.keys.clone();
        let watermarks = cp.applied_watermarks();
        for (w, mark) in watermarks.iter().enumerate() {
            if let Some(mark) = mark {
                // Rebuild the push counts the conditions run on; without
                // this, deduplicated replays would never re-enter
                // `Count[i]` and `V_train` could stall (see
                // `ServerShard::seed_applied`).
                shard.seed_applied(w as u32, *mark);
            }
        }
        let seen = watermarks
            .into_iter()
            .map(|w| WorkerWindow {
                watermark: w,
                ahead: BTreeSet::new(),
            })
            .collect();
        // A replacement is a control-plane action like a remap: give it a
        // supervisor request id so the restoration shows up as a retained
        // (recovery-touched) waterfall even though it sends no messages.
        let restore_id = self.next_request_id();
        self.tracer.record(
            EventKind::CheckpointRestored,
            RecordArgs::new()
                .shard(m)
                .v_train(cp.v_train)
                .bytes(bytes.len() as u64)
                .request_id(restore_id),
        );
        self.generation += 1;
        let rng = StdRng::seed_from_u64(
            self.cfg
                .seed
                .wrapping_add(m as u64 + 1)
                .wrapping_add(self.generation.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        // The kill switch simulates *one* crash. A replacement inheriting it
        // would re-die the moment a replayed push brings `V_train` back to
        // the threshold, restoring the same checkpoint each time — a
        // permanent crash loop whenever the sync model lets workers run
        // ahead of `V_train` (SSP/PSSP).
        let mut rcfg = self.rcfg.clone();
        rcfg.kill_server = None;
        let handle = spawn_server_loop(
            ServerLoop {
                shard,
                keys,
                seen,
                last_reply: vec![None; self.cfg.num_workers as usize],
                pending_pull: vec![None; self.cfg.num_workers as usize],
                rng,
                tracer: rep_tracer,
                rcfg,
                store: Arc::clone(&self.store),
                stop: Arc::clone(&self.shared.lock().stop),
            },
            rx,
            tx,
            &self.injector,
            rep_streamer,
        );
        self.shared.lock().handles.push((m, handle));
        true
    }

    /// Degraded-mode effect, run by the leader when a `Remapped` entry
    /// commits: survivors adopt the dead server's keys. Orphaned
    /// parameters are installed from the latest checkpoint (when one
    /// exists; otherwise survivors re-initialize them at zero), then every
    /// worker gets the new routing. The route-table mutation itself
    /// happens in [`SupervisorReplica::apply_committed`] on every replica.
    fn degrade_effect(&mut self, m: u32, remapped: &SliceMap, moved: usize, postman: &TcpPostman) {
        let survivors: Vec<u32> = (0..self.cfg.num_servers).filter(|&s| s != m).collect();
        if survivors.is_empty() {
            return; // nothing to degrade onto
        }
        // One causal context covers the whole remap fan-out, so the
        // `Install`s and `RouteUpdate`s of a single recovery action — and
        // every `ShardRemapped`-adjacent event — share a waterfall. The tail
        // sampler always retains recovery-touched requests.
        let ctx = CausalCtx::new(self.next_request_id());
        self.tracer.record(
            EventKind::ShardRemapped,
            RecordArgs::new()
                .shard(m)
                .bytes(moved as u64)
                .request_id(ctx.request_id),
        );

        // Recover the orphaned parameter values from the dead server's
        // checkpoint where possible.
        let orphan_params: HashMap<u64, Vec<f32>> = self
            .store
            .lock()
            .get(&m)
            .cloned()
            .and_then(|b| ShardCheckpoint::from_bytes(b).ok())
            .map(|cp| cp.params.iter().map(|(k, v)| (k, v.to_vec())).collect())
            .unwrap_or_default();

        // Recovery control traffic bypasses the fault injector on purpose,
        // like the final shutdown: a chaos schedule must not be able to
        // blackhole the recovery protocol itself.
        let send = |to: NodeId, msg: Message| {
            let _ = postman.send(to, msg);
        };
        for &s in &survivors {
            let mut kv = KvPairs::default();
            for p in remapped
                .placements()
                .iter()
                .filter(|p| p.server == s && self.map.server_of(p.new_key) == Some(m))
            {
                let vals = orphan_params
                    .get(&p.new_key)
                    .cloned()
                    .unwrap_or_else(|| vec![0.0; p.len]);
                kv.keys.push(p.new_key);
                kv.lens.push(vals.len() as u32);
                kv.vals.extend_from_slice(&vals);
            }
            if !kv.is_empty() {
                send(NodeId::Server(s), Message::Install { kv }.with_ctx(ctx));
            }
        }

        let wire: Vec<WirePlacement> = remapped
            .placements()
            .iter()
            .map(|p| WirePlacement {
                orig_key: p.orig_key,
                new_key: p.new_key,
                server: p.server,
                offset: p.offset as u32,
                len: p.len as u32,
            })
            .collect();
        for n in 0..self.cfg.num_workers {
            send(
                NodeId::Worker(n),
                Message::RouteUpdate {
                    placements: wire.clone(),
                }
                .with_ctx(ctx),
            );
        }
    }

    /// Allocate a causal request id in the supervisor space: the top bit
    /// distinguishes control-plane requests from worker traffic, then the
    /// replica id above a 40-bit per-replica counter — deterministic and
    /// collision-free against [`WorkerClient`]'s id scheme.
    fn next_request_id(&mut self) -> u64 {
        self.next_request += 1;
        (1u64 << 63) | ((self.id as u64 + 1) << 40) | self.next_request
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::SyncModel;
    use crate::eps::{EpsSlicer, ParamSpec, Slicer};

    fn fast_recovery(kill: Option<(u32, u64)>, replace: bool) -> RecoveryConfig {
        RecoveryConfig {
            heartbeat_every: Duration::from_millis(10),
            liveness_timeout: Duration::from_millis(60),
            checkpoint_every: 1,
            kill_server: kill,
            spawn_replacement: replace,
            retry: RetryPolicy {
                timeout: Duration::from_millis(50),
                max_retries: 80,
                backoff_base: Duration::from_millis(2),
                backoff_cap: Duration::from_millis(40),
                jitter_seed: 7,
                replay_depth: 16,
            },
            fault_plan: FaultPlan::passthrough(),
            collector_addr: None,
            trace_ring_capacity: 1 << 10,
            election_timeout: Duration::from_millis(120),
            leader_lease: Duration::from_millis(60),
            ..RecoveryConfig::default()
        }
    }

    fn two_server_setup() -> (EngineConfig, SliceMap, HashMap<u64, Vec<f32>>) {
        let specs = vec![ParamSpec { key: 0, len: 4 }, ParamSpec { key: 1, len: 4 }];
        let mut init = HashMap::new();
        init.insert(0u64, vec![0.0; 4]);
        init.insert(1u64, vec![0.0; 4]);
        let map = EpsSlicer { max_chunk: 4 }.slice(&specs, 2);
        let cfg = EngineConfig {
            num_workers: 1,
            num_servers: 2,
            model: SyncModel::Bsp,
            ..EngineConfig::default()
        };
        (cfg, map, init)
    }

    #[test]
    fn killed_server_is_replaced_and_training_stays_exact() {
        let (cfg, map, init) = two_server_setup();
        let (cluster, mut workers) =
            ResilientTcpCluster::launch(cfg, fast_recovery(Some((0, 2)), true), map, &init, None)
                .expect("launch");
        let mut w = workers.remove(0);
        let grads: HashMap<u64, Vec<f32>> =
            [(0u64, vec![1.0f32; 4]), (1u64, vec![1.0f32; 4])].into();
        let mut params = HashMap::new();
        for i in 0..5u64 {
            w.spush(i, &grads).expect("push");
            let report = w
                .spull_wait(i, &mut params)
                .expect("pull survives the kill");
            assert!(report.min_version > i, "BSP version bound at iter {i}");
        }
        // Recovery is exact: the replacement restores the checkpoint and the
        // dedup windows apply every replayed gradient exactly once, so after
        // 5 iterations of +1.0 every value is 5.0 despite the crash.
        assert_eq!(params[&0], vec![5.0; 4]);
        assert_eq!(params[&1], vec![5.0; 4]);
        let health = cluster.health();
        let stats = cluster.shutdown();
        // Both the original incarnation's and the replacement's work land in
        // server 0's merged statistics.
        assert!(stats[0].pushes >= 5, "merged pushes: {}", stats[0].pushes);
        // After replacement the cluster is whole again.
        assert_eq!(health.dead_count(), 0);
    }

    #[test]
    fn dead_server_without_replacement_degrades_onto_survivors() {
        let (cfg, map, init) = two_server_setup();
        let (cluster, mut workers) =
            ResilientTcpCluster::launch(cfg, fast_recovery(Some((0, 2)), false), map, &init, None)
                .expect("launch");
        let mut w = workers.remove(0);
        let grads: HashMap<u64, Vec<f32>> =
            [(0u64, vec![1.0f32; 4]), (1u64, vec![1.0f32; 4])].into();
        let mut params = HashMap::new();
        for i in 0..6u64 {
            w.spush(i, &grads).expect("push");
            w.spull_wait(i, &mut params)
                .expect("pull survives degradation");
        }
        // Degraded mode is available but not exact: in-flight gradients to
        // the dead shard may be lost, so only check liveness properties —
        // all iterations completed and both parameters are still served.
        assert_eq!(params[&0].len(), 4);
        assert_eq!(params[&1].len(), 4);
        let health = cluster.health();
        assert_eq!(health.dead_count(), 1, "server 0 stays dead");
        let (ready, body) = health.render();
        assert!(!ready);
        assert!(body.contains("node server0 age_ms"));
        let stats = cluster.shutdown();
        // The survivor carried the tail of training.
        assert!(stats[1].pushes >= 6);
    }

    #[test]
    fn collected_kill_run_merges_every_node_with_exact_accounting() {
        use fluentps_transport::CollectorService;

        let (cfg, map, init) = two_server_setup();
        let mut service = CollectorService::bind("127.0.0.1:0".parse().unwrap(), 1 << 12)
            .expect("bind collector");
        let mut rcfg = fast_recovery(Some((0, 2)), true);
        rcfg.collector_addr = Some(service.local_addr());
        let (cluster, mut workers) =
            ResilientTcpCluster::launch(cfg, rcfg, map, &init, None).expect("launch");
        let mut w = workers.remove(0);
        let grads: HashMap<u64, Vec<f32>> =
            [(0u64, vec![1.0f32; 4]), (1u64, vec![1.0f32; 4])].into();
        let mut params = HashMap::new();
        for i in 0..5u64 {
            w.spush(i, &grads).expect("push");
            w.spull_wait(i, &mut params).expect("pull");
        }
        drop(w); // worker thread done recording before shutdown() flushes
        cluster.shutdown();

        // Every node appears exactly once, and the killed server's two
        // incarnations fold into one stream.
        let stats = service.node_stats();
        let names: Vec<&str> = stats.iter().map(|s| s.node.as_str()).collect();
        assert_eq!(names, ["scheduler", "server0", "server1", "worker0"]);
        let server0 = &stats[1];
        assert_eq!(server0.incarnations, 2, "kill + replacement");
        service
            .check_balance()
            .expect("received + dropped == emitted on every node");

        // The merged timeline is monotone and includes the recovery events
        // the supervisor and the replacement recorded in *their* streams.
        let trace = service.snapshot();
        assert!(trace
            .events
            .windows(2)
            .all(|w| w[0].ts <= w[1].ts && w[0].seq < w[1].seq));
        assert!(trace.counts[EventKind::CheckpointRestored.index()] >= 1);
        assert!(trace.counts[EventKind::CheckpointCaptured.index()] >= 1);
        assert!(trace.counts[EventKind::PushApplied.index()] >= 5);
        service.stop();
    }

    #[test]
    fn validate_rejects_flapping_timing_configs() {
        assert!(RecoveryConfig::default().validate().is_ok());
        assert!(fast_recovery(None, true).validate().is_ok());

        let mut r = RecoveryConfig::default();
        r.liveness_timeout = r.heartbeat_every; // equal is already too tight
        assert!(r.validate().unwrap_err().contains("liveness_timeout"));

        let mut r = RecoveryConfig::default();
        r.election_timeout = r.leader_lease;
        assert!(r.validate().unwrap_err().contains("election_timeout"));

        let mut r = RecoveryConfig::default();
        r.num_supervisors = 0;
        assert!(r.validate().unwrap_err().contains("num_supervisors"));
    }

    /// Poll the shared health view until `pred` holds or the deadline
    /// passes (supervisor replicas publish asynchronously).
    fn await_consensus(health: &HealthView, what: &str, pred: impl Fn(&ConsensusHealth) -> bool) {
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            if health.consensus().as_ref().is_some_and(&pred) {
                return;
            }
            assert!(
                Instant::now() < deadline,
                "timed out waiting for consensus state: {what} (last: {:?})",
                health.consensus()
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    #[test]
    fn leader_kill_fails_over_and_training_completes() {
        let (cfg, map, init) = two_server_setup();
        let mut rcfg = fast_recovery(None, true);
        rcfg.num_supervisors = 3;
        // Replica 0 deterministically wins term 1, then dies after
        // applying a handful of entries; a follower must win term 2+.
        rcfg.kill_supervisors = vec![(0, 6)];
        let (cluster, mut workers) =
            ResilientTcpCluster::launch(cfg, rcfg, map, &init, None).expect("launch");
        let health = cluster.health();
        await_consensus(&health, "initial leader", |c| {
            c.leader.as_deref() == Some("supervisor0")
        });

        let mut w = workers.remove(0);
        let grads: HashMap<u64, Vec<f32>> =
            [(0u64, vec![1.0f32; 4]), (1u64, vec![1.0f32; 4])].into();
        let mut params = HashMap::new();
        for i in 0..8u64 {
            w.spush(i, &grads).expect("push");
            w.spull_wait(i, &mut params)
                .expect("pull survives the supervisor failover");
        }
        // Training is untouched by the control-plane failover: BSP, no
        // faults, so every value is exactly the iteration count.
        assert_eq!(params[&0], vec![8.0; 4]);
        assert_eq!(params[&1], vec![8.0; 4]);

        // A follower won a later term; the dead replica 0 cannot lead.
        await_consensus(&health, "post-failover leader", |c| {
            c.term >= 2 && c.leader.as_deref().is_some_and(|l| l != "supervisor0")
        });
        let stats = cluster.shutdown();
        assert!(stats.iter().map(|s| s.pushes).sum::<u64>() >= 16);
        assert_eq!(health.dead_count(), 0, "no server ever died");
    }

    #[test]
    fn quorum_loss_degrades_explicitly_and_training_still_completes() {
        let (cfg, map, init) = two_server_setup();
        let mut rcfg = fast_recovery(None, true);
        rcfg.num_supervisors = 3;
        // Two of three replicas die: whoever remains can never assemble a
        // quorum again, so the control plane must report leaderless —
        // explicitly degraded — rather than hang or split-brain.
        rcfg.kill_supervisors = vec![(0, 4), (1, 8)];
        let (cluster, mut workers) =
            ResilientTcpCluster::launch(cfg, rcfg, map, &init, None).expect("launch");
        let health = cluster.health();

        let mut w = workers.remove(0);
        let grads: HashMap<u64, Vec<f32>> =
            [(0u64, vec![1.0f32; 4]), (1u64, vec![1.0f32; 4])].into();
        let mut params = HashMap::new();
        for i in 0..6u64 {
            w.spush(i, &grads).expect("push");
            w.spull_wait(i, &mut params)
                .expect("training needs no control plane while servers live");
        }
        assert_eq!(params[&0], vec![6.0; 4]);

        await_consensus(&health, "leaderless after quorum loss", |c| {
            c.term >= 2 && c.leader.is_none()
        });
        let (ready, body) = health.render();
        assert!(!ready, "quorum loss must degrade /healthz");
        assert!(body.starts_with("degraded\n"), "body: {body}");
        assert!(body.contains("leader none"), "body: {body}");

        // The fallback drain in shutdown() still collects every server.
        let stats = cluster.shutdown();
        assert!(stats.iter().map(|s| s.pushes).sum::<u64>() >= 12);
    }

    #[test]
    fn chaos_run_is_deterministic_for_a_single_worker() {
        let run = |seed: u64| {
            let (cfg, map, init) = two_server_setup();
            let mut rcfg = fast_recovery(None, true);
            rcfg.fault_plan = FaultPlan::chaos(seed, 1, 2, 6, 8);
            let (cluster, mut workers) =
                ResilientTcpCluster::launch(cfg, rcfg, map, &init, None).expect("launch");
            let mut w = workers.remove(0);
            let grads: HashMap<u64, Vec<f32>> =
                [(0u64, vec![1.0f32; 4]), (1u64, vec![1.0f32; 4])].into();
            let mut params = HashMap::new();
            for i in 0..6u64 {
                w.spush(i, &grads).expect("push");
                w.spull_wait(i, &mut params).expect("pull");
            }
            let stats = cluster.shutdown();
            (params[&0].clone(), params[&1].clone(), stats)
        };
        let (p0a, p1a, sa) = run(42);
        let (p0b, p1b, sb) = run(42);
        // Same seed, same fault schedule, same message content: parameters
        // and logical statistics are bit-identical across runs.
        assert_eq!(p0a, p0b);
        assert_eq!(p1a, p1b);
        assert_eq!(
            sa.iter()
                .map(|s| (s.pushes, s.v_train_advances))
                .collect::<Vec<_>>(),
            sb.iter()
                .map(|s| (s.pushes, s.v_train_advances))
                .collect::<Vec<_>>()
        );
    }
}
