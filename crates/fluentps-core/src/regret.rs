//! Regret bounds for SSP-style SGD (Section III-E, Theorems 1 and 2).
//!
//! Under the SSPSGD assumptions (L-Lipschitz convex components, diameter
//! bound F), the paper derives:
//!
//! * Proposition 1 (Ho et al.): `R[W](s, N) ≤ 4FL·sqrt(2(s+1)N/T)` for SSP.
//! * Theorem 1: constant PSSP with `(s, c)` satisfies
//!   `R[W](s, N, c) ≤ 4FL·sqrt(2(s + 1/c)N/T)` — the *same* bound as SSP with
//!   threshold `s' = s + 1/c − 1`, while causing far fewer synchronizations.
//!   Notably `s + 1/c − 1` ranges over the non-negative reals, so PSSP offers
//!   *fine-tuned* staleness control where SSP only has integers.
//! * Theorem 2: dynamic PSSP with constant `α` satisfies
//!   `R[W] ≤ 4FL·sqrt(2(s + 2/α)N/T)` — the constant-PSSP bound at
//!   `c = α/2 = min P(s, k)`.
//!
//! These functions back the experiment harness's construction of
//! "regret-equivalent" model pairs (Figure 9's A/B, C/D, E/F, G/H groups).

/// Problem constants shared by all the bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegretParams {
    /// Diameter bound: `D(w1 ‖ w2) ≤ F²`.
    pub f: f64,
    /// Lipschitz constant of the component functions.
    pub l: f64,
    /// Number of workers `N`.
    pub n: u32,
    /// Total parameter-sequence length `T = Max_Iter · N`.
    pub t: u64,
}

impl RegretParams {
    fn scale(&self) -> f64 {
        4.0 * self.f * self.l * (2.0 * self.n as f64 / self.t as f64).sqrt()
    }
}

/// Proposition 1 (SSPSGD): `4FL·sqrt(2(s+1)N/T)`.
pub fn ssp_bound(p: RegretParams, s: f64) -> f64 {
    assert!(s >= 0.0, "staleness must be non-negative");
    p.scale() * (s + 1.0).sqrt()
}

/// Theorem 1 (constant PSSP-SGD): `4FL·sqrt(2(s + 1/c)N/T)`.
pub fn pssp_const_bound(p: RegretParams, s: f64, c: f64) -> f64 {
    assert!(c > 0.0 && c <= 1.0, "c must be in (0, 1]");
    p.scale() * (s + 1.0 / c).sqrt()
}

/// Theorem 2 (dynamic PSSP-SGD, constant α): `4FL·sqrt(2(s + 2/α)N/T)`.
pub fn pssp_dynamic_bound(p: RegretParams, s: f64, alpha: f64) -> f64 {
    assert!(alpha > 0.0 && alpha <= 2.0, "alpha must be in (0, 2]");
    p.scale() * (s + 2.0 / alpha).sqrt()
}

/// The SSP threshold with the same regret bound as constant PSSP `(s, c)`:
/// `s' = s + 1/c − 1` (Section IV-B4 uses this to build the regret-equivalent
/// experiment groups of Figure 9).
pub fn equivalent_ssp_threshold(s: u64, c: f64) -> f64 {
    assert!(c > 0.0 && c <= 1.0, "c must be in (0, 1]");
    s as f64 + 1.0 / c - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: RegretParams = RegretParams {
        f: 1.0,
        l: 1.0,
        n: 32,
        t: 64_000,
    };

    #[test]
    fn pssp_bound_equals_ssp_bound_at_equivalent_threshold() {
        for &(s, c) in &[(3u64, 0.5f64), (3, 1.0 / 3.0), (3, 0.2), (3, 0.1), (1, 0.7)] {
            let s_prime = equivalent_ssp_threshold(s, c);
            let a = pssp_const_bound(P, s as f64, c);
            let b = ssp_bound(P, s_prime);
            assert!((a - b).abs() < 1e-12, "s={s} c={c}: {a} vs {b}");
        }
    }

    #[test]
    fn figure9_groups_are_regret_equivalent() {
        // A&B, C&D, E&F, G&H from Section IV-B4: s=3 with c ∈ {1/2,1/3,1/5,1/10}
        // pair with SSP s' ∈ {4, 5, 7, 12}.
        let groups = [(0.5, 4.0), (1.0 / 3.0, 5.0), (0.2, 7.0), (0.1, 12.0)];
        for (c, s_prime) in groups {
            assert!((equivalent_ssp_threshold(3, c) - s_prime).abs() < 1e-12);
            let a = pssp_const_bound(P, 3.0, c);
            let b = ssp_bound(P, s_prime);
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn dynamic_bound_matches_const_bound_at_half_alpha() {
        // Theorem 2: dynamic PSSP's bound equals constant PSSP's at c = α/2.
        for alpha in [0.2, 0.5, 1.0, 2.0] {
            let a = pssp_dynamic_bound(P, 2.0, alpha);
            let b = pssp_const_bound(P, 2.0, alpha / 2.0);
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn pssp_c_one_recovers_ssp() {
        // c = 1 → PSSP bound = SSP bound with the same s.
        let a = pssp_const_bound(P, 5.0, 1.0);
        let b = ssp_bound(P, 5.0);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn bounds_shrink_with_more_samples_and_grow_with_staleness() {
        let tighter = RegretParams { t: 640_000, ..P };
        assert!(ssp_bound(tighter, 3.0) < ssp_bound(P, 3.0));
        assert!(ssp_bound(P, 4.0) > ssp_bound(P, 3.0));
        assert!(pssp_const_bound(P, 3.0, 0.1) > pssp_const_bound(P, 3.0, 0.5));
    }

    #[test]
    #[should_panic(expected = "c must be in (0, 1]")]
    fn zero_c_rejected() {
        let _ = pssp_const_bound(P, 3.0, 0.0);
    }
}
