//! The (deliberately minimal) scheduler, Section III-A.
//!
//! In FluentPS the scheduler does **not** mediate synchronization — that is
//! the whole point of the design. It only (1) monitors node liveness via
//! heartbeats and (2) owns the key-space division, delegating the actual
//! placement to a [`Slicer`] and triggering an EPS rebalance when a server
//! dies or joins.

use std::collections::HashMap;

use fluentps_obs::MetricsRegistry;
use fluentps_transport::NodeId;

use crate::eps::{EpsSlicer, ParamSpec, SliceMap};

/// Heartbeat-based liveness tracking with a logical-time deadline (drivers
/// feed whatever clock they have: wall millis or simulated ticks).
#[derive(Debug, Clone)]
pub struct LivenessMonitor {
    last_seen: HashMap<NodeId, u64>,
    timeout: u64,
}

impl LivenessMonitor {
    /// Nodes not heard from for `timeout` time units are considered dead.
    ///
    /// The deadline is exclusive: a node is dead when `now - last_seen >
    /// timeout`, i.e. a heartbeat exactly `timeout` units old still counts
    /// as alive. Drivers sizing `timeout` as N heartbeat intervals get N
    /// full missed beats of grace, not N-1.
    pub fn new(timeout: u64) -> Self {
        assert!(timeout > 0, "timeout must be positive");
        LivenessMonitor {
            last_seen: HashMap::new(),
            timeout,
        }
    }

    /// Record a heartbeat (or any message) from `node` at time `now`.
    pub fn observe(&mut self, node: NodeId, now: u64) {
        let e = self.last_seen.entry(node).or_insert(now);
        *e = (*e).max(now);
    }

    /// Nodes whose last heartbeat is older than the timeout at time `now`,
    /// sorted for determinism.
    pub fn dead_nodes(&self, now: u64) -> Vec<NodeId> {
        let mut dead: Vec<NodeId> = self
            .last_seen
            .iter()
            .filter(|(_, &t)| now.saturating_sub(t) > self.timeout)
            .map(|(&n, _)| n)
            .collect();
        dead.sort();
        dead
    }

    /// Nodes currently believed alive at time `now`.
    pub fn alive_nodes(&self, now: u64) -> Vec<NodeId> {
        let mut alive: Vec<NodeId> = self
            .last_seen
            .iter()
            .filter(|(_, &t)| now.saturating_sub(t) <= self.timeout)
            .map(|(&n, _)| n)
            .collect();
        alive.sort();
        alive
    }

    /// Forget a node entirely (it was decommissioned on purpose).
    pub fn remove(&mut self, node: NodeId) {
        self.last_seen.remove(&node);
    }

    /// When `node` was last observed, if it is tracked at all.
    pub fn last_seen(&self, node: NodeId) -> Option<u64> {
        self.last_seen.get(&node).copied()
    }
}

/// Scheduler state: liveness plus the authoritative placement.
pub struct Scheduler {
    liveness: LivenessMonitor,
    slicer: EpsSlicer,
    params: Vec<ParamSpec>,
    placement: SliceMap,
    num_servers: u32,
    metrics: Option<MetricsRegistry>,
}

impl Scheduler {
    /// Create a scheduler managing `num_servers` servers with the given
    /// parameter inventory; computes the initial EPS placement.
    pub fn new(
        params: Vec<ParamSpec>,
        num_servers: u32,
        slicer: EpsSlicer,
        liveness_timeout: u64,
    ) -> Self {
        use crate::eps::Slicer as _;
        let placement = slicer.slice(&params, num_servers);
        Scheduler {
            liveness: LivenessMonitor::new(liveness_timeout),
            slicer,
            params,
            placement,
            num_servers,
            metrics: None,
        }
    }

    /// Publish scheduler activity into `registry`: `scheduler_rebalances` /
    /// `scheduler_values_moved` counters, `scheduler_heartbeats`, and the
    /// `live_servers` / `placement_imbalance` gauges.
    pub fn set_metrics(&mut self, registry: MetricsRegistry) {
        registry.set_gauge("live_servers", self.num_servers as f64);
        registry.set_gauge("placement_imbalance", self.placement.imbalance());
        self.metrics = Some(registry);
    }

    fn publish_placement(&self, moved: usize) {
        if let Some(m) = &self.metrics {
            m.inc("scheduler_rebalances", 1);
            m.inc("scheduler_values_moved", moved as u64);
            m.set_gauge("live_servers", self.num_servers as f64);
            m.set_gauge("placement_imbalance", self.placement.imbalance());
        }
    }

    /// Current placement.
    pub fn placement(&self) -> &SliceMap {
        &self.placement
    }

    /// The parameter inventory.
    pub fn params(&self) -> &[ParamSpec] {
        &self.params
    }

    /// Record a heartbeat.
    pub fn observe(&mut self, node: NodeId, now: u64) {
        if let Some(m) = &self.metrics {
            m.inc("scheduler_heartbeats", 1);
        }
        self.liveness.observe(node, now);
    }

    /// Check liveness at `now`; if any *server* died, shrink the server set
    /// and rebalance with EPS. Returns the dead servers and the number of
    /// values moved (0 when nothing changed).
    pub fn check_and_rebalance(&mut self, now: u64) -> (Vec<NodeId>, usize) {
        let dead = self.liveness.dead_nodes(now);
        let dead_servers: Vec<NodeId> = dead.into_iter().filter(|n| n.is_server()).collect();
        if dead_servers.is_empty() {
            return (dead_servers, 0);
        }
        let survivors = self.num_servers - dead_servers.len() as u32;
        assert!(survivors > 0, "all servers died");
        let (new_placement, moved) = self.slicer.rebalance(&self.placement, survivors);
        self.placement = new_placement;
        self.num_servers = survivors;
        for n in &dead_servers {
            self.liveness.remove(*n);
        }
        self.publish_placement(moved);
        (dead_servers, moved)
    }

    /// Grow the server set to `new_count` and rebalance (elastic scale-out).
    pub fn scale_to(&mut self, new_count: u32) -> usize {
        let (new_placement, moved) = self.slicer.rebalance(&self.placement, new_count);
        self.placement = new_placement;
        self.num_servers = new_count;
        self.publish_placement(moved);
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn liveness_tracks_heartbeats() {
        let mut m = LivenessMonitor::new(10);
        m.observe(NodeId::Server(0), 0);
        m.observe(NodeId::Server(1), 0);
        m.observe(NodeId::Server(0), 8);
        assert!(m.dead_nodes(10).is_empty());
        assert_eq!(m.dead_nodes(12), vec![NodeId::Server(1)]);
        assert_eq!(m.alive_nodes(12), vec![NodeId::Server(0)]);
    }

    #[test]
    fn liveness_deadline_is_exclusive() {
        // Pin the boundary contract documented on `new()`: death requires
        // `now - last_seen > timeout`, strictly greater.
        let mut m = LivenessMonitor::new(10);
        m.observe(NodeId::Server(0), 5);
        // Exactly `timeout` units of silence: still alive.
        assert!(m.dead_nodes(15).is_empty());
        assert_eq!(m.alive_nodes(15), vec![NodeId::Server(0)]);
        // One unit past the deadline: dead.
        assert_eq!(m.dead_nodes(16), vec![NodeId::Server(0)]);
        assert!(m.alive_nodes(16).is_empty());
        assert_eq!(m.last_seen(NodeId::Server(0)), Some(5));
        assert_eq!(m.last_seen(NodeId::Server(1)), None);
    }

    #[test]
    fn stale_observation_does_not_rewind() {
        let mut m = LivenessMonitor::new(5);
        m.observe(NodeId::Worker(0), 100);
        m.observe(NodeId::Worker(0), 50); // out-of-order heartbeat
        assert!(m.dead_nodes(104).is_empty());
    }

    fn test_params() -> Vec<ParamSpec> {
        (0..8)
            .map(|k| ParamSpec {
                key: k,
                len: if k == 0 { 50_000 } else { 1_000 },
            })
            .collect()
    }

    #[test]
    fn scheduler_rebalances_on_server_death() {
        let mut sched = Scheduler::new(test_params(), 4, EpsSlicer { max_chunk: 2048 }, 10);
        for s in 0..4 {
            sched.observe(NodeId::Server(s), 0);
        }
        // Server 3 stops heartbeating.
        for s in 0..3 {
            sched.observe(NodeId::Server(s), 20);
        }
        let (dead, moved) = sched.check_and_rebalance(20);
        assert_eq!(dead, vec![NodeId::Server(3)]);
        assert!(moved > 0);
        assert_eq!(sched.placement().num_servers(), 3);
        assert!(sched.placement().imbalance() < 1.35);
    }

    #[test]
    fn no_rebalance_when_everyone_alive() {
        let mut sched = Scheduler::new(test_params(), 4, EpsSlicer::default(), 10);
        for s in 0..4 {
            sched.observe(NodeId::Server(s), 0);
        }
        let (dead, moved) = sched.check_and_rebalance(5);
        assert!(dead.is_empty());
        assert_eq!(moved, 0);
        assert_eq!(sched.placement().num_servers(), 4);
    }

    #[test]
    fn scale_out_uses_new_servers() {
        let mut sched = Scheduler::new(test_params(), 2, EpsSlicer { max_chunk: 2048 }, 10);
        let moved = sched.scale_to(4);
        assert!(moved > 0);
        assert_eq!(sched.placement().num_servers(), 4);
        let loads = sched.placement().server_loads();
        assert!(loads.iter().all(|&l| l > 0), "{loads:?}");
    }

    #[test]
    fn metrics_follow_rebalance_and_scale() {
        let mut sched = Scheduler::new(test_params(), 4, EpsSlicer { max_chunk: 2048 }, 10);
        let registry = MetricsRegistry::new();
        sched.set_metrics(registry.clone());
        assert_eq!(registry.gauge_value("live_servers"), Some(4.0));
        for s in 0..4 {
            sched.observe(NodeId::Server(s), 0);
        }
        assert_eq!(registry.counter_value("scheduler_heartbeats"), 4);
        for s in 0..3 {
            sched.observe(NodeId::Server(s), 20);
        }
        sched.check_and_rebalance(20);
        assert_eq!(registry.counter_value("scheduler_rebalances"), 1);
        assert!(registry.counter_value("scheduler_values_moved") > 0);
        assert_eq!(registry.gauge_value("live_servers"), Some(3.0));
        sched.scale_to(5);
        assert_eq!(registry.counter_value("scheduler_rebalances"), 2);
        assert_eq!(registry.gauge_value("live_servers"), Some(5.0));
    }

    #[test]
    fn worker_death_does_not_trigger_rebalance() {
        let mut sched = Scheduler::new(test_params(), 2, EpsSlicer::default(), 10);
        sched.observe(NodeId::Worker(0), 0);
        sched.observe(NodeId::Server(0), 100);
        sched.observe(NodeId::Server(1), 100);
        let (dead, moved) = sched.check_and_rebalance(100);
        assert!(dead.is_empty());
        assert_eq!(moved, 0);
    }
}
