//! The per-shard server state machine (Algorithm 1).
//!
//! `ServerShard` implements `PullHandler`/`PushHandler` exactly as the paper
//! specifies, parameterized by a [`SyncPolicy`] (the pull/push conditions)
//! and a [`DprPolicy`] (soft barrier vs. lazy execution). It is a pure state
//! machine — no clocks, threads, sockets or RNGs — so the threaded engine,
//! the TCP engine and the discrete-event simulator all drive identical
//! synchronization logic, and properties like the staleness invariant can be
//! tested exhaustively.

use std::collections::HashMap;

use fluentps_obs::{EventKind, RecordArgs, Tracer};
use fluentps_transport::{codec, CausalCtx, KvPairs};

use crate::condition::{SyncModel, SyncPolicy, SyncState};
use crate::dpr::{DeferredPull, DprBuffer, DprPolicy};
use crate::progress::ProgressTable;
use crate::stats::ShardStats;

/// How pushed gradients are folded into the parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GradScale {
    /// `w += g / N` — Algorithm 1 line 15; workers send pre-scaled updates
    /// (e.g. `−lr·∇`) and the server averages across workers.
    DivideByN,
    /// `w += g` — workers send already-averaged updates.
    Raw,
    /// `w += factor · g` — custom server-side scaling.
    Fixed(f32),
}

/// Configuration of one server shard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardConfig {
    /// Index of the owning server (`m`).
    pub server_id: u32,
    /// Total number of workers (`N`).
    pub num_workers: u32,
    /// Synchronization model (Table III row).
    pub model: SyncModel,
    /// DPR execution policy (Section III-C).
    pub policy: DprPolicy,
    /// Gradient aggregation rule.
    pub grad_scale: GradScale,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            server_id: 0,
            num_workers: 1,
            model: SyncModel::Bsp,
            policy: DprPolicy::LazyExecution,
            grad_scale: GradScale::DivideByN,
        }
    }
}

/// Result of a pull request.
#[derive(Debug, Clone, PartialEq)]
pub enum PullOutcome {
    /// The pull condition held; parameters are returned immediately.
    Respond {
        /// Requested parameters.
        kv: KvPairs,
        /// Shard version (`V_train`) at response time.
        version: u64,
    },
    /// The pull condition failed; the request is now a DPR in the buffer and
    /// will surface later as a [`ReleasedPull`] from some `on_push` call.
    Deferred,
}

/// A previously deferred pull that the push condition has now released.
#[derive(Debug, Clone, PartialEq)]
pub struct ReleasedPull {
    /// Worker awaiting this response.
    pub worker: u32,
    /// The progress the worker reported with the original pull.
    pub progress: u64,
    /// Parameters to send.
    pub kv: KvPairs,
    /// Shard version at release time.
    pub version: u64,
    /// Iterations the DPR spent buffered.
    pub waited_iterations: u64,
    /// Causal context of the originating pull, so the engine can wrap the
    /// lazily-sent `PullResponse` in the same request's envelope.
    pub ctx: Option<CausalCtx>,
}

/// Stamp `args` with a causal context when one is present (the context-free
/// paths record exactly the events they always did).
pub(crate) fn stamp_ctx(args: RecordArgs, ctx: Option<CausalCtx>) -> RecordArgs {
    match ctx {
        Some(c) => args.ctx(c.request_id, c.attempt as u32, c.parent_span),
        None => args,
    }
}

/// One parameter shard plus its synchronization state machine.
pub struct ServerShard {
    cfg: ShardConfig,
    policy: Box<dyn SyncPolicy>,
    store: HashMap<u64, Vec<f32>>,
    v_train: u64,
    progress: ProgressTable,
    buffer: DprBuffer,
    stats: ShardStats,
    /// Gradient significance `SF(g, w) = |g|/|w|` of each worker's latest
    /// push, consumed by dynamic PSSP when the pull carries no explicit hint.
    last_significance: Vec<Option<f64>>,
    /// Trace event sink; `Tracer::disabled()` (the default) costs one branch
    /// per would-be event, keeping the state machine free of clocks.
    tracer: Tracer,
}

impl ServerShard {
    /// Shard with the built-in model named in `cfg`.
    pub fn new(cfg: ShardConfig) -> Self {
        let policy = Box::new(cfg.model.into_policy());
        Self::with_policy(cfg, policy)
    }

    /// Shard with a custom [`SyncPolicy`] — the `SetcondPull`/`SetcondPush`
    /// extension point (`cfg.model` is then only informational).
    pub fn with_policy(cfg: ShardConfig, policy: Box<dyn SyncPolicy>) -> Self {
        assert!(cfg.num_workers > 0, "need at least one worker");
        ServerShard {
            progress: ProgressTable::new(cfg.num_workers),
            policy,
            store: HashMap::new(),
            v_train: 0,
            buffer: DprBuffer::new(),
            stats: ShardStats::default(),
            last_significance: vec![None; cfg.num_workers as usize],
            tracer: Tracer::disabled(),
            cfg,
        }
    }

    /// Attach a tracer; events record against this shard's `server_id`.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Install the initial value of a parameter (`w_0`, Algorithm 1 line 1).
    pub fn init_param(&mut self, key: u64, vals: Vec<f32>) {
        self.store.insert(key, vals);
    }

    /// Jump `V_train` forward without gradient traffic — checkpoint restore
    /// only. Panics if training already progressed past the target (a
    /// restore must never rewind) or if DPRs are pending (they would index
    /// a progress space that no longer exists).
    pub fn fast_forward(&mut self, v_train: u64) {
        assert!(
            v_train >= self.v_train,
            "fast_forward would rewind {} -> {v_train}",
            self.v_train
        );
        assert!(self.buffer.is_empty(), "fast_forward with pending DPRs");
        self.v_train = v_train;
        self.progress.prune_below(v_train);
    }

    /// Re-seed progress bookkeeping from a checkpoint's applied-push
    /// watermark (recovery path). A gapless watermark means the applied
    /// set for `worker` is exactly `0..=watermark`, so this observes the
    /// worker at that progress and reconstructs `Count[i]` for every
    /// iteration at or above `V_train`. Without it, replayed pushes that a
    /// recovery layer deduplicates would never re-enter the counts and a
    /// worker that ran ahead pre-crash could stall `V_train` forever.
    pub fn seed_applied(&mut self, worker: u32, watermark: u64) {
        self.progress.observe(worker, watermark);
        for i in self.v_train..=watermark {
            self.progress.record_push(i);
        }
    }

    /// Current overall training progress of this shard.
    pub fn v_train(&self) -> u64 {
        self.v_train
    }

    /// Shard configuration.
    pub fn config(&self) -> &ShardConfig {
        &self.cfg
    }

    /// Synchronization statistics.
    pub fn stats(&self) -> &ShardStats {
        &self.stats
    }

    /// DPRs currently waiting in the buffer.
    pub fn pending_dprs(&self) -> usize {
        self.buffer.len()
    }

    /// Read a parameter (test/diagnostic access).
    pub fn read_param(&self, key: u64) -> Option<&[f32]> {
        self.store.get(&key).map(|v| v.as_slice())
    }

    /// Snapshot of the synchronization state exposed to conditions.
    pub fn sync_state(&self) -> SyncState {
        SyncState {
            v_train: self.v_train,
            count_at_v_train: self.progress.count_at(self.v_train),
            num_workers: self.cfg.num_workers,
            fastest: self.progress.fastest().unwrap_or(0),
            slowest: self.progress.slowest_including_silent(),
        }
    }

    /// `PullHandler` (Algorithm 1, server lines 2–13).
    ///
    /// `draw` is a uniform `[0,1)` sample consumed by probabilistic models;
    /// `significance` optionally carries the worker's latest gradient
    /// significance for dynamic PSSP.
    pub fn on_pull(
        &mut self,
        worker: u32,
        progress: u64,
        keys: &[u64],
        draw: f64,
        significance: Option<f64>,
    ) -> PullOutcome {
        self.on_pull_ctx(worker, progress, keys, draw, significance, None)
    }

    /// [`ServerShard::on_pull`] with the request's causal context: the
    /// `PullRequested`/`PullDeferred` events it records — and, if deferred,
    /// the eventual `DprReleased` — all join the request's waterfall.
    pub fn on_pull_ctx(
        &mut self,
        worker: u32,
        progress: u64,
        keys: &[u64],
        draw: f64,
        significance: Option<f64>,
        ctx: Option<CausalCtx>,
    ) -> PullOutcome {
        self.progress.observe(worker, progress);
        self.stats.pulls_total += 1;
        // Codec-measured request size: exactly what encode(SPull) produces.
        let req_bytes = codec::spull_wire_len(keys.len()) as u64;
        self.stats.bytes_in += req_bytes;
        self.tracer.record(
            EventKind::PullRequested,
            stamp_ctx(
                RecordArgs::new()
                    .shard(self.cfg.server_id)
                    .worker(worker)
                    .progress(progress)
                    .v_train(self.v_train)
                    .bytes(req_bytes),
                ctx,
            ),
        );
        let significance = significance.or(self.last_significance[worker as usize]);
        let st = self.sync_state();
        let deterministic_ok = self.policy.release_permitted(&st, progress);
        if self
            .policy
            .pull_permitted(&st, progress, draw, significance)
        {
            if !deterministic_ok {
                // Past the bound but admitted by a probability draw.
                self.stats.pssp_passes += 1;
            }
            self.stats.pulls_immediate += 1;
            let kv = self.gather(keys);
            self.stats.bytes_out += codec::pull_response_wire_len(&kv) as u64;
            PullOutcome::Respond {
                kv,
                version: self.v_train,
            }
        } else {
            self.stats.dprs += 1;
            self.tracer.record(
                EventKind::PullDeferred,
                stamp_ctx(
                    RecordArgs::new()
                        .shard(self.cfg.server_id)
                        .worker(worker)
                        .progress(progress)
                        .v_train(self.v_train),
                    ctx,
                ),
            );
            self.buffer.defer(
                self.cfg.policy,
                DeferredPull {
                    worker,
                    progress,
                    keys: keys.to_vec(),
                    deferred_at: self.v_train,
                    ctx,
                },
            );
            self.stats.dpr_buffer_peak = self.buffer.peak_pending() as u64;
            PullOutcome::Deferred
        }
    }

    /// `PushHandler` (Algorithm 1, server lines 14–25). Applies the
    /// gradients, updates `Count`, and — whenever the push condition fires —
    /// advances `V_train` and releases every DPR the [`DprPolicy`] admits.
    pub fn on_push(&mut self, worker: u32, progress: u64, kv: &KvPairs) -> Vec<ReleasedPull> {
        self.on_push_ctx(worker, progress, kv, None)
    }

    /// [`ServerShard::on_push`] with the push's causal context: the
    /// `PushApplied`/`LatePushDropped` event joins the pushing request's
    /// waterfall. Released DPRs keep their *own* original pull contexts.
    pub fn on_push_ctx(
        &mut self,
        worker: u32,
        progress: u64,
        kv: &KvPairs,
        ctx: Option<CausalCtx>,
    ) -> Vec<ReleasedPull> {
        debug_assert!(kv.is_consistent(), "inconsistent KvPairs in push");
        self.progress.observe(worker, progress);
        self.stats.pushes += 1;
        let push_bytes = codec::spush_wire_len(kv) as u64;
        self.stats.bytes_in += push_bytes;

        let late = progress < self.v_train;
        if late && !self.policy.accept_late_push() {
            self.stats.late_pushes_dropped += 1;
            self.tracer.record(
                EventKind::LatePushDropped,
                stamp_ctx(
                    RecordArgs::new()
                        .shard(self.cfg.server_id)
                        .worker(worker)
                        .progress(progress)
                        .v_train(self.v_train)
                        .bytes(push_bytes),
                    ctx,
                ),
            );
        } else {
            self.last_significance[worker as usize] = Some(self.push_significance(kv));
            self.apply_gradients(kv);
            self.tracer.record(
                EventKind::PushApplied,
                stamp_ctx(
                    RecordArgs::new()
                        .shard(self.cfg.server_id)
                        .worker(worker)
                        .progress(progress)
                        .v_train(self.v_train)
                        .bytes(push_bytes),
                    ctx,
                ),
            );
        }
        self.progress.record_push(progress);
        let st = self.sync_state();
        self.policy.after_push(&st);

        let mut released = Vec::new();
        // The push condition may fire repeatedly: counts for later iterations
        // can already be complete (workers running ahead under SSP/ASP).
        loop {
            let st = self.sync_state();
            if !self.policy.push_fires(&st) {
                break;
            }
            self.v_train += 1;
            self.stats.v_train_advances += 1;
            self.tracer.record(
                EventKind::VTrainAdvanced,
                RecordArgs::new()
                    .shard(self.cfg.server_id)
                    .v_train(self.v_train),
            );
            self.progress.prune_below(self.v_train);
            let st = self.sync_state();
            for dpr in self
                .buffer
                .release(self.cfg.policy, self.policy.as_ref(), &st)
            {
                released.push(self.answer_dpr(dpr));
            }
        }
        released
    }

    /// Flush every remaining DPR regardless of condition (engine shutdown so
    /// no worker blocks forever; responses carry the latest parameters).
    pub fn drain_shutdown(&mut self) -> Vec<ReleasedPull> {
        let drained = self.buffer.drain_all();
        drained.into_iter().map(|d| self.answer_dpr(d)).collect()
    }

    fn answer_dpr(&mut self, dpr: DeferredPull) -> ReleasedPull {
        let kv = self.gather(&dpr.keys);
        let resp_bytes = codec::pull_response_wire_len(&kv) as u64;
        self.stats.bytes_out += resp_bytes;
        self.stats.dprs_released += 1;
        let waited = self.v_train.saturating_sub(dpr.deferred_at);
        self.stats.dpr_wait_iterations += waited;
        self.stats.dpr_wait_hist.record(waited);
        self.tracer.record(
            EventKind::DprReleased,
            stamp_ctx(
                RecordArgs::new()
                    .shard(self.cfg.server_id)
                    .worker(dpr.worker)
                    .progress(dpr.progress)
                    .v_train(self.v_train)
                    .bytes(resp_bytes),
                dpr.ctx,
            ),
        );
        ReleasedPull {
            worker: dpr.worker,
            progress: dpr.progress,
            kv,
            version: self.v_train,
            waited_iterations: waited,
            ctx: dpr.ctx,
        }
    }

    /// Latest gradient significance observed for `worker`.
    pub fn significance_of(&self, worker: u32) -> Option<f64> {
        self.last_significance[worker as usize]
    }

    /// `SF(g, w) = |g|/|w|` across all keys of the push, measured against the
    /// *current* parameters (before applying the push).
    fn push_significance(&self, kv: &KvPairs) -> f64 {
        let mut g2 = 0.0f64;
        let mut w2 = 0.0f64;
        for (key, grad) in kv.iter() {
            g2 += grad.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>();
            if let Some(param) = self.store.get(&key) {
                w2 += param.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>();
            }
        }
        if w2 == 0.0 {
            0.0
        } else {
            (g2 / w2).sqrt()
        }
    }

    fn apply_gradients(&mut self, kv: &KvPairs) {
        let scale = match self.cfg.grad_scale {
            GradScale::DivideByN => 1.0 / self.cfg.num_workers as f32,
            GradScale::Raw => 1.0,
            GradScale::Fixed(f) => f,
        };
        for (key, grad) in kv.iter() {
            let Some(param) = self.store.get_mut(&key) else {
                debug_assert!(false, "push for unknown key {key:#x}");
                continue;
            };
            debug_assert_eq!(param.len(), grad.len(), "gradient shape mismatch");
            for (w, g) in param.iter_mut().zip(grad) {
                *w += g * scale;
            }
        }
    }

    fn gather(&self, keys: &[u64]) -> KvPairs {
        let mut kv = KvPairs::default();
        for &key in keys {
            if let Some(vals) = self.store.get(&key) {
                kv.keys.push(key);
                kv.lens.push(vals.len() as u32);
                kv.vals.extend_from_slice(vals);
            } else {
                debug_assert!(false, "pull for unknown key {key:#x}");
            }
        }
        kv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(n: u32, model: SyncModel, policy: DprPolicy) -> ServerShard {
        let mut s = ServerShard::new(ShardConfig {
            server_id: 0,
            num_workers: n,
            model,
            policy,
            grad_scale: GradScale::DivideByN,
        });
        s.init_param(0, vec![0.0; 2]);
        s
    }

    fn push1(vals: [f32; 2]) -> KvPairs {
        KvPairs::single(0, vals.to_vec())
    }

    #[test]
    fn bsp_lockstep_two_workers() {
        let mut s = shard(2, SyncModel::Bsp, DprPolicy::LazyExecution);
        // Worker 0 finishes iteration 0, pushes, pulls → deferred.
        assert!(s.on_push(0, 0, &push1([2.0, 0.0])).is_empty());
        assert_eq!(s.on_pull(0, 0, &[0], 0.5, None), PullOutcome::Deferred);
        assert_eq!(s.v_train(), 0);
        // Worker 1 completes the iteration: V_train advances and worker 0's
        // DPR is released with fully aggregated parameters.
        let released = s.on_push(1, 0, &push1([4.0, 0.0]));
        assert_eq!(s.v_train(), 1);
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].worker, 0);
        assert_eq!(released[0].kv.vals, vec![3.0, 0.0]); // (2+4)/2
        assert_eq!(released[0].version, 1);
    }

    #[test]
    fn asp_pull_always_immediate() {
        let mut s = shard(4, SyncModel::Asp, DprPolicy::LazyExecution);
        for i in 0..10u64 {
            s.on_push(0, i, &push1([1.0, 1.0]));
            match s.on_pull(0, i, &[0], 0.9, None) {
                PullOutcome::Respond { version, .. } => assert_eq!(version, 0),
                PullOutcome::Deferred => panic!("ASP must not defer"),
            }
        }
        assert_eq!(s.stats().dprs, 0);
        assert_eq!(s.stats().pulls_immediate, 10);
    }

    #[test]
    fn ssp_staleness_invariant_holds_for_immediate_pulls() {
        // No immediate pull response may ever be given to a worker whose
        // progress exceeds V_train + s.
        let s_threshold = 2u64;
        let mut s = shard(
            2,
            SyncModel::Ssp { s: s_threshold },
            DprPolicy::LazyExecution,
        );
        let mut deferred = 0;
        // Worker 0 races ahead; worker 1 lags.
        for i in 0..6u64 {
            s.on_push(0, i, &push1([1.0, 0.0]));
            match s.on_pull(0, i, &[0], 0.5, None) {
                PullOutcome::Respond { .. } => {
                    assert!(
                        i < s.v_train() + s_threshold,
                        "staleness violated at i={i}, v={}",
                        s.v_train()
                    );
                }
                PullOutcome::Deferred => deferred += 1,
            }
        }
        assert!(deferred > 0, "racing worker must eventually defer");
    }

    #[test]
    fn lazy_release_returns_fully_updated_params() {
        // Figure 3(b): the fast worker's DPR is answered only after the slow
        // worker has pushed ALL missing gradients.
        let mut s = shard(2, SyncModel::Ssp { s: 1 }, DprPolicy::LazyExecution);
        s.on_push(0, 0, &push1([2.0, 0.0]));
        // Worker 0 at progress 0, v_train 0, gap 0 < 1 → immediate.
        assert!(matches!(
            s.on_pull(0, 0, &[0], 0.5, None),
            PullOutcome::Respond { .. }
        ));
        s.on_push(0, 1, &push1([2.0, 0.0]));
        // gap = 1 − 0 = 1 == s → deferred.
        assert_eq!(s.on_pull(0, 1, &[0], 0.5, None), PullOutcome::Deferred);
        // Slow worker pushes iteration 0: v_train → 1, but lazy needs v > 1.
        assert!(s.on_push(1, 0, &push1([4.0, 0.0])).is_empty());
        // Slow worker pushes iteration 1: v_train → 2, DPR released with all
        // four gradients folded in: (2+2+4+4)/2 = 6.
        let released = s.on_push(1, 1, &push1([4.0, 0.0]));
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].kv.vals, vec![6.0, 0.0]);
        assert_eq!(released[0].waited_iterations, 2);
    }

    #[test]
    fn soft_barrier_release_may_return_stale_params() {
        // Figure 3(a): with the soft barrier the DPR is released as soon as
        // the bound is re-satisfied, BEFORE the slow worker pushed everything.
        let mut s = shard(2, SyncModel::Ssp { s: 1 }, DprPolicy::SoftBarrier);
        s.on_push(0, 0, &push1([2.0, 0.0]));
        s.on_push(0, 1, &push1([2.0, 0.0]));
        assert_eq!(s.on_pull(0, 1, &[0], 0.5, None), PullOutcome::Deferred);
        // Slow worker pushes iteration 0 only: v_train → 1, gap = 0 < s →
        // released already, with worker 1's iteration-1 gradient still absent.
        let released = s.on_push(1, 0, &push1([4.0, 0.0]));
        assert_eq!(released.len(), 1);
        assert_eq!(released[0].kv.vals, vec![4.0, 0.0]); // (2+2+4)/2, missing 4
        assert_eq!(released[0].waited_iterations, 1);
    }

    #[test]
    fn drop_stragglers_advances_without_everyone_and_drops_late_gradients() {
        let mut s = shard(
            3,
            SyncModel::DropStragglers { n_t: 2 },
            DprPolicy::LazyExecution,
        );
        s.on_push(0, 0, &push1([3.0, 0.0]));
        let rel = s.on_push(1, 0, &push1([3.0, 0.0]));
        assert!(rel.is_empty());
        assert_eq!(s.v_train(), 1, "advances after N_t = 2 pushes");
        // The straggler's late push for iteration 0 is rejected.
        s.on_push(2, 0, &push1([300.0, 0.0]));
        assert_eq!(s.stats().late_pushes_dropped, 1);
        assert_eq!(s.read_param(0).unwrap(), &[2.0, 0.0]); // (3+3)/3
    }

    #[test]
    fn pssp_pass_counted_when_probability_admits_past_bound() {
        let mut s = shard(
            2,
            SyncModel::PsspConst { s: 1, c: 0.3 },
            DprPolicy::LazyExecution,
        );
        s.on_push(0, 2, &push1([0.0, 0.0]));
        // gap 2 > s=1; draw 0.9 > c → admitted probabilistically.
        match s.on_pull(0, 2, &[0], 0.9, None) {
            PullOutcome::Respond { .. } => {}
            PullOutcome::Deferred => panic!("draw above c must pass"),
        }
        assert_eq!(s.stats().pssp_passes, 1);
        // draw 0.1 ≤ c → blocked.
        assert_eq!(s.on_pull(0, 3, &[0], 0.1, None), PullOutcome::Deferred);
    }

    #[test]
    fn push_condition_cascade_advances_multiple_iterations() {
        // Under ASP both workers can be several iterations ahead; when the
        // lagging counts complete, V_train must catch up in one push call.
        let mut s = shard(2, SyncModel::Asp, DprPolicy::LazyExecution);
        // Worker 0 pushes iterations 0..3; worker 1 silent → v_train stays 0.
        for i in 0..4u64 {
            s.on_push(0, i, &push1([1.0, 0.0]));
        }
        assert_eq!(s.v_train(), 0);
        // Worker 1 pushes 0..3 — each push should advance v_train once; the
        // final state has all counts complete.
        for i in 0..4u64 {
            s.on_push(1, i, &push1([1.0, 0.0]));
        }
        assert_eq!(s.v_train(), 4);
    }

    #[test]
    fn gradients_average_across_workers() {
        let mut s = shard(4, SyncModel::Asp, DprPolicy::LazyExecution);
        for w in 0..4 {
            s.on_push(w, 0, &push1([4.0, 8.0]));
        }
        assert_eq!(s.read_param(0).unwrap(), &[4.0, 8.0]); // 4·(x/4)
    }

    #[test]
    fn raw_scale_applies_gradients_unscaled() {
        let mut s = ServerShard::new(ShardConfig {
            num_workers: 4,
            model: SyncModel::Asp,
            grad_scale: GradScale::Raw,
            ..ShardConfig::default()
        });
        s.init_param(0, vec![0.0]);
        s.on_push(0, 0, &KvPairs::single(0, vec![2.5]));
        assert_eq!(s.read_param(0).unwrap(), &[2.5]);
    }

    #[test]
    fn drain_shutdown_flushes_all_pending() {
        let mut s = shard(2, SyncModel::Bsp, DprPolicy::LazyExecution);
        assert_eq!(s.on_pull(0, 5, &[0], 0.5, None), PullOutcome::Deferred);
        assert_eq!(s.on_pull(1, 9, &[0], 0.5, None), PullOutcome::Deferred);
        let out = s.drain_shutdown();
        assert_eq!(out.len(), 2);
        assert_eq!(s.pending_dprs(), 0);
    }

    #[test]
    fn stats_account_pulls_and_dprs() {
        let mut s = shard(2, SyncModel::Bsp, DprPolicy::LazyExecution);
        s.on_pull(0, 0, &[0], 0.5, None); // deferred
        s.on_push(0, 0, &push1([1.0, 1.0]));
        s.on_push(1, 0, &push1([1.0, 1.0])); // releases the DPR
        let st = s.stats();
        assert_eq!(st.pulls_total, 1);
        assert_eq!(st.dprs, 1);
        assert_eq!(st.dprs_released, 1);
        assert_eq!(st.pushes, 2);
        assert_eq!(st.v_train_advances, 1);
        assert!(st.bytes_in > 0 && st.bytes_out > 0);
    }
}
