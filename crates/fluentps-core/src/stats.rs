//! Per-shard synchronization statistics.
//!
//! The evaluation section reports three recurring metrics: training time,
//! final test accuracy, and the number of delayed pull requests (DPRs) per
//! 100 iterations (Table IV, Figure 9). `ShardStats` counts the event-level
//! quantities; timing lives in the drivers (wall clock for the engines,
//! virtual clock for the simulator).

use crate::hist::Histogram;

/// Counters maintained by a [`crate::server::ServerShard`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Distribution of DPR wait times in iterations (p50/p95 for reports).
    pub dpr_wait_hist: Histogram,
    /// Total `sPull` requests seen.
    pub pulls_total: u64,
    /// Pulls answered immediately (pull condition held).
    pub pulls_immediate: u64,
    /// Pulls deferred into the DPR buffer.
    pub dprs: u64,
    /// Pulls past the deterministic staleness bound that a PSSP probability
    /// draw let through anyway (the "unnecessary waits" PSSP removes).
    pub pssp_passes: u64,
    /// Sum over released DPRs of iterations spent waiting
    /// (`release V_train − deferral V_train`).
    pub dpr_wait_iterations: u64,
    /// DPRs released so far.
    pub dprs_released: u64,
    /// Total `sPush` requests seen.
    pub pushes: u64,
    /// Pushes for an iteration older than `V_train` that the model rejected
    /// (drop-stragglers).
    pub late_pushes_dropped: u64,
    /// Times `V_train` advanced.
    pub v_train_advances: u64,
    /// High-water mark of simultaneously buffered DPRs.
    pub dpr_buffer_peak: u64,
    /// Request payload bytes received (gradients + pull requests).
    pub bytes_in: u64,
    /// Response payload bytes sent (parameters + acks).
    pub bytes_out: u64,
}

impl ShardStats {
    /// DPRs per 100 iterations of overall progress — the paper's
    /// synchronization-frequency metric. Returns 0 before any progress.
    pub fn dprs_per_100_iters(&self) -> f64 {
        if self.v_train_advances == 0 {
            0.0
        } else {
            self.dprs as f64 * 100.0 / self.v_train_advances as f64
        }
    }

    /// Mean iterations a released DPR spent waiting.
    pub fn mean_dpr_wait(&self) -> f64 {
        if self.dprs_released == 0 {
            0.0
        } else {
            self.dpr_wait_iterations as f64 / self.dprs_released as f64
        }
    }

    /// Fold another shard's counters into this one (cluster-level totals).
    pub fn merge(&mut self, other: &ShardStats) {
        self.pulls_total += other.pulls_total;
        self.pulls_immediate += other.pulls_immediate;
        self.dprs += other.dprs;
        self.pssp_passes += other.pssp_passes;
        self.dpr_wait_iterations += other.dpr_wait_iterations;
        self.dprs_released += other.dprs_released;
        self.pushes += other.pushes;
        self.late_pushes_dropped += other.late_pushes_dropped;
        self.v_train_advances += other.v_train_advances;
        // A peak is a maximum, not a sum: cluster-level "worst moment" is
        // the worst single shard's moment.
        self.dpr_buffer_peak = self.dpr_buffer_peak.max(other.dpr_buffer_peak);
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.dpr_wait_hist.merge(&other.dpr_wait_hist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_zero_without_progress() {
        let s = ShardStats::default();
        assert_eq!(s.dprs_per_100_iters(), 0.0);
        assert_eq!(s.mean_dpr_wait(), 0.0);
    }

    #[test]
    fn dpr_rate_scales_to_100_iterations() {
        let s = ShardStats {
            dprs: 30,
            v_train_advances: 200,
            ..Default::default()
        };
        assert_eq!(s.dprs_per_100_iters(), 15.0);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = ShardStats {
            pulls_total: 3,
            dprs: 1,
            bytes_in: 100,
            ..Default::default()
        };
        let b = ShardStats {
            pulls_total: 7,
            dprs: 2,
            bytes_out: 50,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.pulls_total, 10);
        assert_eq!(a.dprs, 3);
        assert_eq!(a.bytes_in, 100);
        assert_eq!(a.bytes_out, 50);
    }

    #[test]
    fn merge_takes_max_of_buffer_peaks() {
        let mut a = ShardStats {
            dpr_buffer_peak: 2,
            ..Default::default()
        };
        let b = ShardStats {
            dpr_buffer_peak: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.dpr_buffer_peak, 7);
    }

    #[test]
    fn merge_combines_dpr_wait_histograms_with_quantiles() {
        // The dpr_wait_hist path through merge: two shards' wait
        // distributions fold into one, and the quantiles reflect the union.
        let mut a = ShardStats::default();
        for v in [1u64, 2, 3, 4] {
            a.dpr_wait_hist.record(v);
        }
        let mut b = ShardStats::default();
        for v in [100u64, 200] {
            b.dpr_wait_hist.record(v);
        }
        a.merge(&b);
        assert_eq!(a.dpr_wait_hist.count(), 6);
        assert_eq!(a.dpr_wait_hist.max(), 200);
        assert_eq!(a.dpr_wait_hist.mean(), 310.0 / 6.0);
        // Sorted union {1,2,3,4,100,200}: the p50 bucket upper bound is 4
        // (bucket [2,4) holds the 3rd value), the p99 caps at the max.
        assert_eq!(a.dpr_wait_hist.quantile_upper(0.5), 4);
        assert_eq!(a.dpr_wait_hist.quantile_upper(0.99), 200);
    }

    #[test]
    fn merging_shards_equals_recording_into_one_histogram() {
        use crate::hist::Histogram;
        let values: Vec<u64> = (0..50u64).map(|i| i * i % 37).collect();
        let mut combined = Histogram::new();
        let mut total = ShardStats::default();
        for chunk in values.chunks(10) {
            let mut shard = ShardStats::default();
            for &v in chunk {
                shard.dpr_wait_hist.record(v);
                combined.record(v);
            }
            total.merge(&shard);
        }
        assert_eq!(total.dpr_wait_hist, combined);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(
                total.dpr_wait_hist.quantile_upper(q),
                combined.quantile_upper(q)
            );
        }
    }
}
