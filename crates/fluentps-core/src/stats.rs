//! Per-shard synchronization statistics.
//!
//! The evaluation section reports three recurring metrics: training time,
//! final test accuracy, and the number of delayed pull requests (DPRs) per
//! 100 iterations (Table IV, Figure 9). `ShardStats` counts the event-level
//! quantities; timing lives in the drivers (wall clock for the engines,
//! virtual clock for the simulator).

use crate::hist::Histogram;

/// Counters maintained by a [`crate::server::ServerShard`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Distribution of DPR wait times in iterations (p50/p95 for reports).
    pub dpr_wait_hist: Histogram,
    /// Total `sPull` requests seen.
    pub pulls_total: u64,
    /// Pulls answered immediately (pull condition held).
    pub pulls_immediate: u64,
    /// Pulls deferred into the DPR buffer.
    pub dprs: u64,
    /// Pulls past the deterministic staleness bound that a PSSP probability
    /// draw let through anyway (the "unnecessary waits" PSSP removes).
    pub pssp_passes: u64,
    /// Sum over released DPRs of iterations spent waiting
    /// (`release V_train − deferral V_train`).
    pub dpr_wait_iterations: u64,
    /// DPRs released so far.
    pub dprs_released: u64,
    /// Total `sPush` requests seen.
    pub pushes: u64,
    /// Pushes for an iteration older than `V_train` that the model rejected
    /// (drop-stragglers).
    pub late_pushes_dropped: u64,
    /// Times `V_train` advanced.
    pub v_train_advances: u64,
    /// Request payload bytes received (gradients + pull requests).
    pub bytes_in: u64,
    /// Response payload bytes sent (parameters + acks).
    pub bytes_out: u64,
}

impl ShardStats {
    /// DPRs per 100 iterations of overall progress — the paper's
    /// synchronization-frequency metric. Returns 0 before any progress.
    pub fn dprs_per_100_iters(&self) -> f64 {
        if self.v_train_advances == 0 {
            0.0
        } else {
            self.dprs as f64 * 100.0 / self.v_train_advances as f64
        }
    }

    /// Mean iterations a released DPR spent waiting.
    pub fn mean_dpr_wait(&self) -> f64 {
        if self.dprs_released == 0 {
            0.0
        } else {
            self.dpr_wait_iterations as f64 / self.dprs_released as f64
        }
    }

    /// Fold another shard's counters into this one (cluster-level totals).
    pub fn merge(&mut self, other: &ShardStats) {
        self.pulls_total += other.pulls_total;
        self.pulls_immediate += other.pulls_immediate;
        self.dprs += other.dprs;
        self.pssp_passes += other.pssp_passes;
        self.dpr_wait_iterations += other.dpr_wait_iterations;
        self.dprs_released += other.dprs_released;
        self.pushes += other.pushes;
        self.late_pushes_dropped += other.late_pushes_dropped;
        self.v_train_advances += other.v_train_advances;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.dpr_wait_hist.merge(&other.dpr_wait_hist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_zero_without_progress() {
        let s = ShardStats::default();
        assert_eq!(s.dprs_per_100_iters(), 0.0);
        assert_eq!(s.mean_dpr_wait(), 0.0);
    }

    #[test]
    fn dpr_rate_scales_to_100_iterations() {
        let s = ShardStats {
            dprs: 30,
            v_train_advances: 200,
            ..Default::default()
        };
        assert_eq!(s.dprs_per_100_iters(), 15.0);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = ShardStats {
            pulls_total: 3,
            dprs: 1,
            bytes_in: 100,
            ..Default::default()
        };
        let b = ShardStats {
            pulls_total: 7,
            dprs: 2,
            bytes_out: 50,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.pulls_total, 10);
        assert_eq!(a.dprs, 3);
        assert_eq!(a.bytes_in, 100);
        assert_eq!(a.bytes_out, 50);
    }
}
