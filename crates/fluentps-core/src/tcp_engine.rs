//! TCP runtime: the same server loop as [`crate::engine`], but over real
//! sockets — a FluentPS cluster as separate OS threads bound to separate
//! ports, suitable for splitting across processes (each side only needs the
//! address book).
//!
//! The server loop is shared with the in-process engine conceptually: both
//! drive the identical [`ServerShard`] state machine; only the transport
//! differs. Workers use the same [`WorkerClient`] with TCP halves.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::thread::JoinHandle;

use fluentps_obs::{
    http, EventKind, HealthEngine, HealthTap, IntrospectionServer, MetricsRegistry, ProfCollector,
    Profiler, RecordArgs, StreamConfig, TraceCollector, TraceSource, Tracer, NO_ID,
};
use fluentps_util::rng::StdRng;

use fluentps_transport::collect::{StreamerConfig, TraceStreamer};
use fluentps_transport::tcp::{AddressBook, TcpNode, TcpPostman};
use fluentps_transport::{frame, CausalCtx, Mailbox, Message, NodeId, Postman, TransportError};

use crate::engine::EngineConfig;
use crate::eps::SliceMap;
use crate::server::{stamp_ctx, PullOutcome, ServerShard, ShardConfig};
use crate::stats::ShardStats;
use crate::worker::{Router, WorkerClient};

/// The worker client type served by the TCP engine.
pub type TcpWorker = WorkerClient<TcpPostman, TcpNode>;

/// Handle to a running TCP cluster (all nodes on loopback unless configured
/// otherwise).
pub struct TcpCluster {
    servers: Vec<JoinHandle<ShardStats>>,
    control: TcpPostman,
    // Keeps the control endpoint's connections alive; dropping the node
    // would mark its postman disconnected.
    _control_node: TcpNode,
    num_servers: u32,
    // Per-worker trace streamers when launched collected; final-flushed at
    // shutdown (after the worker threads are done recording).
    worker_streamers: Vec<TraceStreamer>,
    // Live health engine + its collector tap when launched introspected;
    // drained and finalized at shutdown.
    health: Option<(HealthEngine, HealthTap)>,
    // Span-profile collector when launched introspected: server loops,
    // worker clients and the nodes' wire encode/decode paths profile into
    // it, and `/profile` serves its snapshots.
    prof: Option<ProfCollector>,
    /// Where each node listens (exported so external processes could join).
    pub addresses: AddressBook,
}

impl TcpCluster {
    /// Launch servers on OS-chosen loopback ports and build TCP-backed
    /// worker clients. Mirrors [`crate::engine::Cluster::launch`].
    pub fn launch(
        cfg: EngineConfig,
        map: SliceMap,
        init: &HashMap<u64, Vec<f32>>,
    ) -> Result<(TcpCluster, Vec<TcpWorker>), TransportError> {
        Self::launch_inner(cfg, map, init, None, None)
    }

    /// [`TcpCluster::launch`] with a [`TraceCollector`]: shards, server
    /// loops and worker clients record trace events (wall clock).
    pub fn launch_with_collector(
        cfg: EngineConfig,
        map: SliceMap,
        init: &HashMap<u64, Vec<f32>>,
        collector: &TraceCollector,
    ) -> Result<(TcpCluster, Vec<TcpWorker>), TransportError> {
        Self::launch_inner(cfg, map, init, Some(collector), None)
    }

    /// Launch with *cluster-wide trace collection*: every server loop and
    /// worker client gets its own wall-clock [`TraceCollector`] of
    /// `ring_capacity` events and a [`TraceStreamer`] shipping them to the
    /// [`fluentps_transport::CollectorService`] at `collector_addr`, where
    /// they are clock-aligned and merged onto one timeline.
    pub fn launch_collected(
        cfg: EngineConfig,
        map: SliceMap,
        init: &HashMap<u64, Vec<f32>>,
        collector_addr: SocketAddr,
        ring_capacity: usize,
    ) -> Result<(TcpCluster, Vec<TcpWorker>), TransportError> {
        Self::launch_inner(cfg, map, init, None, Some((collector_addr, ring_capacity)))
    }

    /// [`TcpCluster::launch_with_collector`] plus a live introspection
    /// endpoint serving `registry` at `addr` (`/metrics`, `/healthz`,
    /// `/trace`, `/slo`, `/alerts`). Cluster-shape gauges are published at
    /// launch; bind loopback (`127.0.0.1:0`) unless the endpoint is
    /// deliberately exposed.
    ///
    /// A streaming [`HealthEngine`] with the default alert rules is fed
    /// from `collector` for the lifetime of the run and finalized by
    /// [`TcpCluster::shutdown`]; [`TcpCluster::health_engine`] exposes it
    /// in-process.
    pub fn launch_introspected(
        cfg: EngineConfig,
        map: SliceMap,
        init: &HashMap<u64, Vec<f32>>,
        collector: &TraceCollector,
        registry: &MetricsRegistry,
        addr: SocketAddr,
    ) -> Result<(TcpCluster, Vec<TcpWorker>, IntrospectionServer), TransportError> {
        let prof = ProfCollector::wall();
        let (mut cluster, workers) =
            Self::launch_profiled(cfg, map, init, Some(collector), None, Some(&prof))?;
        crate::engine::publish_cluster_gauges(registry, "tcp", cfg.num_workers, cfg.num_servers);
        let engine = HealthEngine::with_default_rules(StreamConfig::default());
        let tap = engine.attach_to(collector, std::time::Duration::from_millis(20));
        let server = http::serve_profiled(
            addr,
            registry.clone(),
            Some(TraceSource::Local(collector.clone())),
            None,
            Some(engine.clone()),
            Some(prof.clone()),
        )?;
        cluster.health = Some((engine, tap));
        cluster.prof = Some(prof);
        Ok((cluster, workers, server))
    }

    /// The span-profile collector attached by
    /// [`TcpCluster::launch_introspected`] (`None` for the other launch
    /// paths). Snapshot it any time — including mid-run — for folded-stack
    /// or speedscope exports covering server loop phases, worker client
    /// phases and frame encode/decode.
    pub fn prof_collector(&self) -> Option<&ProfCollector> {
        self.prof.as_ref()
    }

    /// The live [`HealthEngine`] attached by
    /// [`TcpCluster::launch_introspected`] (`None` for the other launch
    /// paths).
    pub fn health_engine(&self) -> Option<&HealthEngine> {
        self.health.as_ref().map(|(engine, _)| engine)
    }

    fn launch_inner(
        cfg: EngineConfig,
        map: SliceMap,
        init: &HashMap<u64, Vec<f32>>,
        collector: Option<&TraceCollector>,
        stream_to: Option<(SocketAddr, usize)>,
    ) -> Result<(TcpCluster, Vec<TcpWorker>), TransportError> {
        Self::launch_profiled(cfg, map, init, collector, stream_to, None)
    }

    fn launch_profiled(
        cfg: EngineConfig,
        map: SliceMap,
        init: &HashMap<u64, Vec<f32>>,
        collector: Option<&TraceCollector>,
        stream_to: Option<(SocketAddr, usize)>,
        prof: Option<&ProfCollector>,
    ) -> Result<(TcpCluster, Vec<TcpWorker>), TransportError> {
        // Per-node tracing when streaming to a cluster collector: each node
        // gets its own collector (distinct clock epochs make the offset
        // handshake meaningful) plus a streamer shipping its ring. With a
        // profile collector attached, the streamer's drains profile too.
        let node_tracing = |node: NodeId| -> (Tracer, Option<TraceStreamer>) {
            match stream_to {
                Some((addr, capacity)) => {
                    let col = TraceCollector::wall(capacity);
                    let tracer = col.tracer();
                    let streamer = TraceStreamer::start_profiled(
                        node,
                        &col,
                        addr,
                        StreamerConfig::default(),
                        prof.map(|p| p.profiler()).unwrap_or_default(),
                    );
                    (tracer, Some(streamer))
                }
                None => (collector.map(|c| c.tracer()).unwrap_or_default(), None),
            }
        };
        let loopback: SocketAddr = "127.0.0.1:0".parse().expect("loopback");
        // Every socket a profiled cluster binds shares the one profile
        // collector, so frame encode/decode shows up as `wire/*` spans.
        let bind_node = |node: NodeId, book: AddressBook| -> Result<TcpNode, TransportError> {
            match prof {
                Some(p) => {
                    TcpNode::bind_profiled(node, loopback, book, Tracer::disabled(), p.profiler())
                }
                None => TcpNode::bind(node, loopback, book),
            }
        };
        assert_eq!(map.num_servers(), cfg.num_servers, "map/server mismatch");

        // Bind every node first so the final address book is complete, then
        // hand each node the finished book (TcpNode snapshots it at bind, so
        // bind receive-only nodes first and sender nodes after).
        let book = AddressBook::new();
        let mut server_rx = Vec::new();
        for m in 0..cfg.num_servers {
            let node = bind_node(NodeId::Server(m), AddressBook::new())?;
            book.insert(NodeId::Server(m), node.local_addr());
            server_rx.push(node);
        }
        let mut worker_nodes = Vec::new();
        for n in 0..cfg.num_workers {
            let node = bind_node(NodeId::Worker(n), book.clone())?;
            book.insert(NodeId::Worker(n), node.local_addr());
            worker_nodes.push(node);
        }
        // Each server gets a sender identity with the complete book. Sender
        // ids live above the real server range so they never collide.
        let mut servers = Vec::with_capacity(cfg.num_servers as usize);
        for (m, rx) in server_rx.into_iter().enumerate() {
            let m = m as u32;
            let tx = bind_node(NodeId::Server(cfg.num_servers + 1 + m), book.clone())?;
            let mut shard = ServerShard::new(ShardConfig {
                server_id: m,
                num_workers: cfg.num_workers,
                model: cfg.model,
                policy: cfg.policy,
                grad_scale: cfg.grad_scale,
            });
            for p in map.placements().iter().filter(|p| p.server == m) {
                let vals = init
                    .get(&p.orig_key)
                    .map(|v| v[p.offset..p.offset + p.len].to_vec())
                    .unwrap_or_else(|| vec![0.0; p.len]);
                shard.init_param(p.new_key, vals);
            }
            let (tracer, streamer) = node_tracing(NodeId::Server(m));
            shard.set_tracer(tracer.clone());
            let rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(m as u64 + 1));
            let profiler = prof.map(|p| p.profiler()).unwrap_or_default();
            let handle = std::thread::Builder::new()
                .name(format!("fluentps-tcp-server-{m}"))
                .spawn(move || {
                    let stats = tcp_server_loop(shard, rx, tx, rng, tracer, profiler);
                    // Final-flush from the server's own thread so everything
                    // it recorded reaches the collector before it exits.
                    if let Some(s) = streamer {
                        s.stop();
                    }
                    stats
                })
                .expect("spawn tcp server");
            servers.push(handle);
        }

        let router = Router::new(map);
        let control_node = bind_node(NodeId::Scheduler, book.clone())?;
        let control = control_node.postman();

        let mut worker_streamers = Vec::new();
        let workers = worker_nodes
            .into_iter()
            .enumerate()
            .map(|(n, node)| {
                let postman = node.postman();
                let mut w = WorkerClient::new(n as u32, postman, node, router.clone());
                let (tracer, streamer) = node_tracing(NodeId::Worker(n as u32));
                worker_streamers.extend(streamer);
                w.set_tracer(tracer);
                if let Some(p) = prof {
                    w.set_profiler(p.profiler());
                }
                w
            })
            .collect();

        Ok((
            TcpCluster {
                servers,
                control,
                _control_node: control_node,
                num_servers: cfg.num_servers,
                worker_streamers,
                health: None,
                prof: None,
                addresses: book,
            },
            workers,
        ))
    }

    /// Send shutdown to every server and collect their statistics.
    ///
    /// For collected launches, call after the worker threads have finished:
    /// the workers' trace streamers final-flush here.
    pub fn shutdown(self) -> Vec<ShardStats> {
        for s in self.worker_streamers {
            s.stop();
        }
        for m in 0..self.num_servers {
            let _ = self.control.send(NodeId::Server(m), Message::Shutdown);
        }
        let stats: Vec<ShardStats> = self
            .servers
            .into_iter()
            .map(|h| h.join().expect("tcp server thread"))
            .collect();
        // Drain the servers' final events into the health engine, then
        // close its last window so `/slo` reflects the completed run.
        if let Some((engine, tap)) = self.health {
            tap.stop();
            engine.finish();
        }
        stats
    }
}

fn tcp_server_loop(
    mut shard: ServerShard,
    rx: TcpNode,
    tx: TcpNode,
    mut rng: StdRng,
    tracer: Tracer,
    profiler: Profiler,
) -> ShardStats {
    let postman = tx.postman();
    let server_id = shard.config().server_id;
    // Every reply a handled message produces (a PushAck plus any released
    // PullResponses, or the shutdown drain) is queued and handed to the
    // transport as one batch, so the TCP postman coalesces all frames for a
    // worker into a single write instead of one syscall per reply.
    let mut replies: Vec<(NodeId, Message)> = Vec::new();
    let send = |replies: &mut Vec<(NodeId, Message)>,
                worker: u32,
                msg: Message,
                ctx: Option<CausalCtx>| {
        let msg = match ctx {
            Some(c) => msg.with_ctx(c),
            None => msg,
        };
        tracer.record(
            EventKind::WireSend,
            stamp_ctx(
                RecordArgs::new()
                    .shard(server_id)
                    .worker(worker)
                    .bytes(frame::wire_len(&msg) as u64),
                ctx,
            ),
        );
        replies.push((NodeId::Worker(worker), msg));
    };
    while let Ok((_, msg)) = rx.recv() {
        let wire_bytes = frame::wire_len(&msg) as u64;
        let (ctx, msg) = msg.split_ctx();
        if tracer.is_enabled() {
            let worker = match &msg {
                Message::SPush { worker, .. } | Message::SPull { worker, .. } => *worker,
                _ => NO_ID,
            };
            tracer.record(
                EventKind::WireRecv,
                stamp_ctx(
                    RecordArgs::new()
                        .shard(server_id)
                        .worker(worker)
                        .bytes(wire_bytes),
                    ctx,
                ),
            );
        }
        let mut done = false;
        match msg {
            Message::SPush {
                worker,
                progress,
                kv,
            } => {
                let released = {
                    let _span = profiler.enter("server/apply_push");
                    let released = shard.on_push_ctx(worker, progress, &kv, ctx);
                    send(
                        &mut replies,
                        worker,
                        Message::PushAck {
                            server: server_id,
                            progress,
                        },
                        ctx,
                    );
                    released
                };
                if !released.is_empty() {
                    let _span = profiler.enter("server/release_dprs");
                    for r in released {
                        send(
                            &mut replies,
                            r.worker,
                            Message::PullResponse {
                                server: server_id,
                                progress: r.progress,
                                kv: r.kv,
                                version: r.version,
                            },
                            r.ctx,
                        );
                    }
                }
            }
            Message::SPull {
                worker,
                progress,
                keys,
            } => {
                let _span = profiler.enter("server/handle_pull");
                let draw: f64 = rng.gen();
                if let PullOutcome::Respond { kv, version } =
                    shard.on_pull_ctx(worker, progress, &keys, draw, None, ctx)
                {
                    send(
                        &mut replies,
                        worker,
                        Message::PullResponse {
                            server: server_id,
                            progress,
                            kv,
                            version,
                        },
                        ctx,
                    );
                }
            }
            Message::Shutdown => {
                for r in shard.drain_shutdown() {
                    send(
                        &mut replies,
                        r.worker,
                        Message::PullResponse {
                            server: server_id,
                            progress: r.progress,
                            kv: r.kv,
                            version: r.version,
                        },
                        r.ctx,
                    );
                }
                done = true;
            }
            _ => {}
        }
        if !replies.is_empty() {
            // The flush is its own phase: frame encoding inside it shows up
            // as a nested `wire/encode` under `server/reply`.
            let _span = profiler.enter("server/reply");
            let _ = postman.send_batch(std::mem::take(&mut replies));
        }
        if done {
            break;
        }
    }
    shard.stats().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::SyncModel;
    use crate::eps::{EpsSlicer, ParamSpec, Slicer};

    #[test]
    fn tcp_cluster_runs_bsp_training_round_trips() {
        let specs = vec![ParamSpec { key: 0, len: 6 }, ParamSpec { key: 1, len: 3 }];
        let mut init = HashMap::new();
        init.insert(0u64, vec![0.0; 6]);
        init.insert(1u64, vec![0.0; 3]);
        let map = EpsSlicer { max_chunk: 4 }.slice(&specs, 2);
        let cfg = EngineConfig {
            num_workers: 2,
            num_servers: 2,
            model: SyncModel::Bsp,
            ..EngineConfig::default()
        };
        let (cluster, workers) = TcpCluster::launch(cfg, map, &init).expect("launch");

        let handles: Vec<_> = workers
            .into_iter()
            .map(|mut w| {
                std::thread::spawn(move || {
                    let grads: HashMap<u64, Vec<f32>> =
                        [(0u64, vec![1.0f32; 6]), (1u64, vec![2.0f32; 3])].into();
                    let mut params = HashMap::new();
                    for i in 0..3u64 {
                        w.spush(i, &grads).unwrap();
                        let report = w.spull_wait(i, &mut params).unwrap();
                        assert!(report.min_version > i);
                    }
                    params
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for params in &results {
            assert_eq!(params[&0], vec![3.0; 6]);
            assert_eq!(params[&1], vec![6.0; 3]);
        }
        let stats = cluster.shutdown();
        assert_eq!(stats.iter().map(|s| s.pushes).sum::<u64>(), 2 * 3 * 2);
    }

    #[test]
    fn tcp_cluster_with_collector_records_wire_events() {
        let specs = vec![ParamSpec { key: 0, len: 4 }];
        let mut init = HashMap::new();
        init.insert(0u64, vec![0.0; 4]);
        let map = EpsSlicer { max_chunk: 8 }.slice(&specs, 1);
        let cfg = EngineConfig {
            num_workers: 1,
            num_servers: 1,
            model: SyncModel::Asp,
            ..EngineConfig::default()
        };
        let collector = TraceCollector::wall(1024);
        let (cluster, mut workers) =
            TcpCluster::launch_with_collector(cfg, map, &init, &collector).expect("launch");
        let mut w = workers.remove(0);
        let grads: HashMap<u64, Vec<f32>> = [(0u64, vec![1.0f32; 4])].into();
        let mut params = HashMap::new();
        for i in 0..3u64 {
            w.spush(i, &grads).unwrap();
            w.spull_wait(i, &mut params).unwrap();
        }
        let stats = cluster.shutdown();
        let trace = collector.snapshot();
        assert_eq!(trace.count(EventKind::PullRequested), stats[0].pulls_total);
        assert_eq!(
            trace.count(EventKind::PushApplied) + trace.count(EventKind::LatePushDropped),
            stats[0].pushes
        );
        // Worker sends 3 pushes + 3 pulls; server receives them and sends
        // acks + responses.
        assert!(trace.count(EventKind::WireSend) >= 6);
        assert!(trace.count(EventKind::WireRecv) >= 6);
        assert_eq!(trace.count(EventKind::BarrierWait), 3);
    }

    #[test]
    fn tcp_cluster_collected_run_merges_and_balances() {
        use fluentps_transport::CollectorService;

        let specs = vec![ParamSpec { key: 0, len: 6 }, ParamSpec { key: 1, len: 3 }];
        let mut init = HashMap::new();
        init.insert(0u64, vec![0.0; 6]);
        init.insert(1u64, vec![0.0; 3]);
        let map = EpsSlicer { max_chunk: 4 }.slice(&specs, 2);
        let cfg = EngineConfig {
            num_workers: 2,
            num_servers: 2,
            model: SyncModel::Bsp,
            ..EngineConfig::default()
        };
        let mut service = CollectorService::bind("127.0.0.1:0".parse().unwrap(), 1 << 12)
            .expect("bind collector");
        let (cluster, workers) =
            TcpCluster::launch_collected(cfg, map, &init, service.local_addr(), 1 << 10)
                .expect("launch");

        let handles: Vec<_> = workers
            .into_iter()
            .map(|mut w| {
                std::thread::spawn(move || {
                    let grads: HashMap<u64, Vec<f32>> =
                        [(0u64, vec![1.0f32; 6]), (1u64, vec![2.0f32; 3])].into();
                    let mut params = HashMap::new();
                    for i in 0..3u64 {
                        w.spush(i, &grads).unwrap();
                        w.spull_wait(i, &mut params).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        cluster.shutdown();

        let stats = service.node_stats();
        let names: Vec<&str> = stats.iter().map(|s| s.node.as_str()).collect();
        assert_eq!(names, ["server0", "server1", "worker0", "worker1"]);
        service.check_balance().expect("exact per-node accounting");
        let trace = service.snapshot();
        // Cross-process wire pairs land on the one merged timeline: both
        // directions of every push/pull appear.
        assert!(trace.count(EventKind::WireSend) >= 12);
        assert!(trace.count(EventKind::WireRecv) >= 12);
        assert!(trace.events.windows(2).all(|w| w[0].ts <= w[1].ts));
        service.stop();
    }

    #[test]
    fn tcp_cluster_shutdown_unblocks_parked_worker() {
        let specs = vec![ParamSpec { key: 0, len: 4 }];
        let mut init = HashMap::new();
        init.insert(0u64, vec![0.0; 4]);
        let map = EpsSlicer { max_chunk: 8 }.slice(&specs, 1);
        let cfg = EngineConfig {
            num_workers: 2,
            num_servers: 1,
            model: SyncModel::Bsp,
            ..EngineConfig::default()
        };
        let (cluster, mut workers) = TcpCluster::launch(cfg, map, &init).expect("launch");
        let mut w0 = workers.remove(0);
        let blocked = std::thread::spawn(move || {
            let grads: HashMap<u64, Vec<f32>> = [(0u64, vec![1.0f32; 4])].into();
            w0.spush(0, &grads).unwrap();
            let mut params = HashMap::new();
            w0.spull_wait(0, &mut params).unwrap();
        });
        std::thread::sleep(std::time::Duration::from_millis(100));
        let stats = cluster.shutdown();
        blocked.join().unwrap();
        assert_eq!(stats[0].dprs_released, 1);
    }
}
