//! Worker-side client: routing, `sPush`, `sPull` and `wait`.
//!
//! A worker holds the model as a map from original parameter key to a flat
//! value vector. The [`Router`] (built from an EPS [`SliceMap`]) scatters a
//! gradient across the per-server wire keys for `sPush`, and gathers the
//! per-server `PullResponse`s back into whole parameters after `sPull`.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::time::Duration;

use fluentps_obs::{EventKind, Profiler, RecordArgs, Tracer, NO_ID};
use fluentps_transport::{
    frame, CausalCtx, KvPairs, Mailbox, Message, NodeId, Postman, TransportError, WirePlacement,
};
use fluentps_util::rng::StdRng;

use crate::eps::{Placement, SliceMap};

/// Key routing derived from a [`SliceMap`].
#[derive(Debug, Clone)]
pub struct Router {
    map: SliceMap,
    per_server: Vec<Vec<u64>>,
}

impl Router {
    /// Build routing tables from a placement.
    pub fn new(map: SliceMap) -> Self {
        let mut per_server = vec![Vec::new(); map.num_servers() as usize];
        for p in map.placements() {
            per_server[p.server as usize].push(p.new_key);
        }
        for keys in &mut per_server {
            keys.sort_unstable();
        }
        Router { map, per_server }
    }

    /// Number of servers.
    pub fn num_servers(&self) -> u32 {
        self.map.num_servers()
    }

    /// Wire keys owned by server `m`.
    pub fn keys_for_server(&self, m: u32) -> &[u64] {
        &self.per_server[m as usize]
    }

    /// Servers that own at least one key (a pull expects one response from
    /// each of these).
    pub fn active_servers(&self) -> impl Iterator<Item = u32> + '_ {
        self.per_server
            .iter()
            .enumerate()
            .filter(|(_, keys)| !keys.is_empty())
            .map(|(m, _)| m as u32)
    }

    /// The underlying placement.
    pub fn slice_map(&self) -> &SliceMap {
        &self.map
    }

    /// Scatter per-parameter values into one [`KvPairs`] per server. Entries
    /// for servers owning nothing are empty.
    pub fn scatter(&self, values: &HashMap<u64, Vec<f32>>) -> Vec<KvPairs> {
        let mut out = vec![KvPairs::default(); self.map.num_servers() as usize];
        // Walk placements in deterministic order so wire batches are stable.
        for p in self.map.placements() {
            let Some(vals) = values.get(&p.orig_key) else {
                continue;
            };
            debug_assert!(
                p.offset + p.len <= vals.len(),
                "placement exceeds value length for key {}",
                p.orig_key
            );
            let kv = &mut out[p.server as usize];
            kv.keys.push(p.new_key);
            kv.lens.push(p.len as u32);
            kv.vals.extend_from_slice(&vals[p.offset..p.offset + p.len]);
        }
        out
    }

    /// Merge a server's pull response back into whole parameters. Unknown
    /// keys are ignored (debug-asserted).
    pub fn gather_into(&self, params: &mut HashMap<u64, Vec<f32>>, response: &KvPairs) {
        for (new_key, slice) in response.iter() {
            let Some(p) = self.map.placement_of(new_key) else {
                debug_assert!(false, "response for unknown key {new_key:#x}");
                continue;
            };
            let entry = params
                .entry(p.orig_key)
                .or_insert_with(|| vec![0.0; p.offset + p.len]);
            if entry.len() < p.offset + p.len {
                entry.resize(p.offset + p.len, 0.0);
            }
            entry[p.offset..p.offset + p.len].copy_from_slice(slice);
        }
    }
}

/// Client-side resilience policy: per-pull timeouts and bounded retries
/// with exponential backoff plus seeded jitter.
///
/// When attached to a [`WorkerClient`] via
/// [`WorkerClient::set_retry_policy`], each blocking pull wait uses
/// `timeout` instead of blocking forever; on expiry the client replays its
/// buffered recent pushes to every unresponsive server and re-issues the
/// pull (servers deduplicate replays by `(worker, progress)` watermark, so
/// retries never double-apply gradients). The jitter is drawn from a
/// [`StdRng`] seeded with `jitter_seed ^ worker_id`, keeping backoff
/// schedules reproducible run to run.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// How long a pull wait may go without any message before a retry fires.
    pub timeout: Duration,
    /// Retries per pull round before giving up with
    /// [`TransportError::Timeout`].
    pub max_retries: u32,
    /// First backoff delay; doubles each consecutive retry.
    pub backoff_base: Duration,
    /// Upper bound on the backoff delay.
    pub backoff_cap: Duration,
    /// Seed for the backoff jitter (xor-ed with the worker id).
    pub jitter_seed: u64,
    /// How many recent iterations of pushes to keep for replay. Must cover
    /// the staleness bound plus the checkpoint interval, or a recovering
    /// cluster may stall waiting for pushes nobody can replay.
    pub replay_depth: usize,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout: Duration::from_millis(250),
            max_retries: 12,
            backoff_base: Duration::from_millis(20),
            backoff_cap: Duration::from_secs(1),
            jitter_seed: 0xF1F0,
            replay_depth: 16,
        }
    }
}

/// Live retry state: the policy, the jitter rng and the push replay buffer
/// (most recent `replay_depth` iterations, each as one `KvPairs` per
/// server).
struct RetryState {
    policy: RetryPolicy,
    rng: StdRng,
    replay: VecDeque<(u64, Vec<KvPairs>)>,
}

impl RetryState {
    /// Backoff for retry number `attempt` (1-based): exponential from the
    /// base, capped, plus up to one base-interval of seeded jitter.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let base = self.policy.backoff_base.as_millis() as u64;
        let exp = base.saturating_mul(1u64 << attempt.saturating_sub(1).min(20));
        let capped = exp.min(self.policy.backoff_cap.as_millis() as u64);
        let jitter = if base > 0 {
            self.rng.gen_range(0..base)
        } else {
            0
        };
        Duration::from_millis(capped + jitter)
    }
}

/// Outcome of a completed `sPull` + `wait`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PullReport {
    /// Servers that answered.
    pub responses: u32,
    /// Highest shard version among the responses.
    pub max_version: u64,
    /// Lowest shard version among the responses.
    pub min_version: u64,
}

/// The worker client of Algorithm 1: `sPush(key, g, i)` then
/// `wait(sPull(key, &w, i))`.
pub struct WorkerClient<P, M> {
    worker_id: u32,
    postman: P,
    mailbox: M,
    router: Router,
    tracer: Tracer,
    profiler: Profiler,
    retry: Option<RetryState>,
    /// Per-worker causal request counter; see [`WorkerClient::next_request_id`].
    next_request: u64,
}

impl<P: Postman, M: Mailbox> WorkerClient<P, M> {
    /// Create a client for worker `worker_id`.
    pub fn new(worker_id: u32, postman: P, mailbox: M, router: Router) -> Self {
        WorkerClient {
            worker_id,
            postman,
            mailbox,
            router,
            tracer: Tracer::disabled(),
            profiler: Profiler::disabled(),
            retry: None,
            next_request: 0,
        }
    }

    /// Allocate the next causal request id: the worker id plus one (so `0`
    /// stays the "no context" sentinel) packed above a 40-bit per-worker
    /// counter. Ids are unique across workers and — the counter advances
    /// once per logical `sPush`/`sPull` round — identical across same-seed
    /// runs, which is what makes retained waterfall sets reproducible.
    fn next_request_id(&mut self) -> u64 {
        self.next_request += 1;
        ((self.worker_id as u64 + 1) << 40) | self.next_request
    }

    /// Wrap `msg` in a [`Message::Traced`] envelope when tracing is on; an
    /// untraced client sends the exact pre-context wire bytes.
    fn wrap(&self, msg: Message, ctx: CausalCtx) -> Message {
        if self.tracer.is_enabled() {
            msg.with_ctx(ctx)
        } else {
            msg
        }
    }

    /// Attach a tracer: `WireSend` per outgoing message and a `BarrierWait`
    /// span covering each blocking wait for pull responses.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Attach a span profiler: `worker/push` covers each `sPush` scatter +
    /// send, `worker/pull_wait` each blocking pull round, and
    /// `worker/retry` each timeout-triggered backoff + replay + re-issue.
    pub fn set_profiler(&mut self, profiler: Profiler) {
        self.profiler = profiler;
    }

    /// Enable the resilience layer. Without a policy (the default) the
    /// client blocks indefinitely on pulls and propagates send errors —
    /// exactly the pre-fault-tolerance behavior.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        let rng = StdRng::seed_from_u64(policy.jitter_seed ^ self.worker_id as u64);
        self.retry = Some(RetryState {
            policy,
            rng,
            replay: VecDeque::new(),
        });
    }

    /// This worker's id (`n`).
    pub fn worker_id(&self) -> u32 {
        self.worker_id
    }

    /// The router in use.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// `sPush`: send this iteration's gradients to every owning server.
    /// Returns the number of servers contacted.
    ///
    /// With a [`RetryPolicy`] attached the scattered shards are also kept in
    /// the replay buffer, and a transport-level send failure is absorbed
    /// (traced as `ConnectionLost`) instead of propagated: the buffered
    /// push is re-delivered when the next pull wait times out and replays.
    pub fn spush(
        &mut self,
        progress: u64,
        grads: &HashMap<u64, Vec<f32>>,
    ) -> Result<u32, TransportError> {
        let _span = self.profiler.enter("worker/push");
        let ctx = CausalCtx::new(self.next_request_id());
        let shards = self.router.scatter(grads);
        if let Some(retry) = &mut self.retry {
            retry.replay.push_back((progress, shards.clone()));
            while retry.replay.len() > retry.policy.replay_depth {
                retry.replay.pop_front();
            }
        }
        let mut sent = 0;
        if self.retry.is_none() {
            // No per-server failure handling needed, so hand all shards to
            // the transport as one batch: the TCP postman coalesces every
            // frame per server into a single write. Per-destination order
            // (and hence determinism) is unchanged.
            let mut batch = Vec::with_capacity(shards.len());
            for (m, kv) in shards.into_iter().enumerate() {
                if kv.is_empty() {
                    continue;
                }
                let msg = self.wrap(
                    Message::SPush {
                        worker: self.worker_id,
                        progress,
                        kv,
                    },
                    ctx,
                );
                self.trace_send(m as u32, progress, &msg);
                batch.push((NodeId::Server(m as u32), msg));
            }
            sent = batch.len() as u32;
            self.postman.send_batch(batch)?;
            return Ok(sent);
        }
        // Retry path keeps one send per server: a failure must be absorbed
        // and traced as ConnectionLost for that server alone.
        for (m, kv) in shards.into_iter().enumerate() {
            if kv.is_empty() {
                continue;
            }
            let msg = self.wrap(
                Message::SPush {
                    worker: self.worker_id,
                    progress,
                    kv,
                },
                ctx,
            );
            self.trace_send(m as u32, progress, &msg);
            match self.postman.send(NodeId::Server(m as u32), msg) {
                Ok(()) => sent += 1,
                Err(_) => {
                    self.tracer.record(
                        EventKind::ConnectionLost,
                        RecordArgs::new()
                            .shard(m as u32)
                            .worker(self.worker_id)
                            .progress(progress)
                            .request_id(ctx.request_id),
                    );
                }
            }
        }
        Ok(sent)
    }

    /// `sPull` + `wait`: request all parameters and block until every owning
    /// server has responded (immediately or lazily). Fresh parameters are
    /// merged into `params`. `PushAck`s arriving in between are absorbed.
    pub fn spull_wait(
        &mut self,
        progress: u64,
        params: &mut HashMap<u64, Vec<f32>>,
    ) -> Result<PullReport, TransportError> {
        let all: Vec<u64> = self
            .router
            .slice_map()
            .placements()
            .iter()
            .map(|p| p.orig_key)
            .collect();
        self.spull_keys_wait(progress, &all, params)
    }

    /// `sPull` a *subset* of the original parameter keys (e.g. only the
    /// layers the next computation touches) and wait for the owning
    /// servers' responses. Keys whose slices live on several servers fan
    /// out accordingly.
    pub fn spull_keys_wait(
        &mut self,
        progress: u64,
        orig_keys: &[u64],
        params: &mut HashMap<u64, Vec<f32>>,
    ) -> Result<PullReport, TransportError> {
        let _span = self.profiler.enter("worker/pull_wait");
        let ctx = CausalCtx::new(self.next_request_id());
        let groups = self.pull_groups(orig_keys);
        let mut report = PullReport {
            responses: 0,
            max_version: 0,
            min_version: u64::MAX,
        };
        let wait_start = self.tracer.now();

        if self.retry.is_none() {
            // Legacy path: no timeouts, any PullResponse counts, send
            // errors propagate. All pull requests go out as one batch so
            // the TCP postman writes one coalesced frame run per server.
            let mut batch = Vec::with_capacity(groups.len());
            for (m, keys) in &groups {
                let msg = self.wrap(
                    Message::SPull {
                        worker: self.worker_id,
                        progress,
                        keys: keys.clone(),
                    },
                    ctx,
                );
                self.trace_send(*m, progress, &msg);
                batch.push((NodeId::Server(*m), msg));
            }
            self.postman.send_batch(batch)?;
            let expected = groups.len() as u32;
            while report.responses < expected {
                let (_, msg) = self.mailbox.recv()?;
                match self.trace_recv(msg) {
                    Message::PullResponse { kv, version, .. } => {
                        self.router.gather_into(params, &kv);
                        report.responses += 1;
                        report.max_version = report.max_version.max(version);
                        report.min_version = report.min_version.min(version);
                    }
                    Message::PushAck { .. } => {}
                    Message::Shutdown => return Err(TransportError::Disconnected),
                    _ => {}
                }
            }
            if expected > 0 {
                self.trace_wait(wait_start, progress, report.max_version, ctx, 0);
            }
            return Ok(report);
        }

        // Resilient path: bounded timeouts; only responses echoing *this*
        // round's progress from a still-awaited server count, so stale
        // duplicates caused by earlier retries are absorbed silently.
        let mut groups = groups;
        let mut awaiting: BTreeSet<u32> = groups.iter().map(|(m, _)| *m).collect();
        for (m, keys) in &groups {
            self.try_send_pull(*m, progress, keys.clone(), ctx);
        }
        let mut attempt = 0u32;
        while !awaiting.is_empty() {
            let timeout = self.retry.as_ref().expect("retry on").policy.timeout;
            match self.mailbox.recv_timeout(timeout)? {
                Some((_, msg)) => match self.trace_recv(msg) {
                    Message::PullResponse {
                        server,
                        progress: echo,
                        kv,
                        version,
                    } => {
                        if echo == progress && awaiting.remove(&server) {
                            self.router.gather_into(params, &kv);
                            report.responses += 1;
                            report.max_version = report.max_version.max(version);
                            report.min_version = report.min_version.min(version);
                        }
                    }
                    Message::PushAck { .. } => {}
                    Message::RouteUpdate { placements } => {
                        // A server died and its keys moved. Rebuild the
                        // router and restart this round under the new
                        // routing; servers that already answered re-serve
                        // from their reply cache and gathering is
                        // idempotent, so the restart cannot double-apply.
                        // The attempt counter is NOT reset: the retry
                        // budget — and the timer the waterfall exposes —
                        // covers the whole logical pull, so a pull racing
                        // repeated RouteUpdates still gives up after
                        // `max_retries` timeouts total instead of earning a
                        // fresh budget per reroute.
                        self.apply_route_update(&placements);
                        groups = self.pull_groups(orig_keys);
                        awaiting = groups.iter().map(|(m, _)| *m).collect();
                        report.responses = 0;
                        report.max_version = 0;
                        report.min_version = u64::MAX;
                        for (m, keys) in &groups {
                            self.try_send_pull(
                                *m,
                                progress,
                                keys.clone(),
                                ctx.retry(attempt as u16),
                            );
                        }
                    }
                    Message::Shutdown => return Err(TransportError::Disconnected),
                    _ => {}
                },
                None => {
                    attempt += 1;
                    let retry = self.retry.as_mut().expect("retry on");
                    if attempt > retry.policy.max_retries {
                        return Err(TransportError::Timeout);
                    }
                    // The span covers backoff sleep + replay + re-issue: the
                    // full wall-clock penalty each retry round costs.
                    let _span = self.profiler.enter("worker/retry");
                    let backoff = retry.backoff(attempt);
                    let replay: Vec<(u64, Vec<KvPairs>)> = retry.replay.iter().cloned().collect();
                    for &m in &awaiting {
                        self.tracer.record(
                            EventKind::RetryScheduled,
                            RecordArgs::new()
                                .shard(m)
                                .worker(self.worker_id)
                                .progress(progress)
                                .bytes(backoff.as_millis() as u64)
                                .request_id(ctx.request_id)
                                .attempt(attempt),
                        );
                    }
                    std::thread::sleep(backoff);
                    // Reconnect-and-re-issue: replay recent pushes to each
                    // unresponsive server (a replacement rebuilt from a
                    // checkpoint needs them to advance `V_train`; servers
                    // that already applied them dedup by watermark), then
                    // re-send the pull. Replayed pushes travel under the
                    // pull's context at the current attempt, so the
                    // waterfall shows the replay traffic each retry cost.
                    let retry_ctx = ctx.retry(attempt as u16);
                    for &m in &awaiting {
                        for (p, shards) in &replay {
                            if let Some(kv) = shards.get(m as usize) {
                                if !kv.is_empty() {
                                    let msg = self.wrap(
                                        Message::SPush {
                                            worker: self.worker_id,
                                            progress: *p,
                                            kv: kv.clone(),
                                        },
                                        retry_ctx,
                                    );
                                    self.try_send(m, *p, msg);
                                }
                            }
                        }
                        if let Some((_, keys)) = groups.iter().find(|(s, _)| *s == m) {
                            self.try_send_pull(m, progress, keys.clone(), retry_ctx);
                        }
                    }
                }
            }
        }
        if report.responses > 0 {
            self.trace_wait(wait_start, progress, report.max_version, ctx, attempt);
        }
        Ok(report)
    }

    /// Group the slices of `orig_keys` by owning server: sorted
    /// `(server, wire keys)` pairs, keys sorted and deduplicated.
    fn pull_groups(&self, orig_keys: &[u64]) -> Vec<(u32, Vec<u64>)> {
        let mut per_server: HashMap<u32, Vec<u64>> = HashMap::new();
        for &orig in orig_keys {
            for p in self.router.slice_map().slices_of(orig) {
                per_server.entry(p.server).or_default().push(p.new_key);
            }
        }
        let mut groups: Vec<(u32, Vec<u64>)> = per_server.into_iter().collect();
        groups.sort_unstable_by_key(|(m, _)| *m);
        for (_, keys) in &mut groups {
            keys.sort_unstable();
            keys.dedup();
        }
        groups
    }

    /// Rebuild the router from a `RouteUpdate`'s placement table and drop
    /// the push replay buffer: its per-server layout described the old
    /// routing and survivors already hold those pushes.
    fn apply_route_update(&mut self, placements: &[WirePlacement]) {
        let num_servers = self.router.num_servers();
        let placements: Vec<Placement> = placements
            .iter()
            .map(|p| Placement {
                orig_key: p.orig_key,
                new_key: p.new_key,
                server: p.server,
                offset: p.offset as usize,
                len: p.len as usize,
            })
            .collect();
        self.router = Router::new(SliceMap::from_raw(placements, num_servers));
        if let Some(retry) = &mut self.retry {
            retry.replay.clear();
        }
    }

    fn trace_send(&self, m: u32, progress: u64, msg: &Message) {
        let mut args = RecordArgs::new()
            .shard(m)
            .worker(self.worker_id)
            .progress(progress)
            .bytes(frame::wire_len(msg) as u64);
        if let Some(c) = msg.ctx() {
            args = args.ctx(c.request_id, c.attempt as u32, c.parent_span);
        }
        self.tracer.record(EventKind::WireSend, args);
    }

    /// Record a worker-side `WireRecv` for a context-carrying reply and peel
    /// its envelope. Context-free messages pass through untouched, so this
    /// adds no events to an untraced or pre-context run.
    fn trace_recv(&self, msg: Message) -> Message {
        let bytes = frame::wire_len(&msg) as u64;
        let (ctx, inner) = msg.split_ctx();
        if let Some(c) = ctx {
            let (shard, progress) = match &inner {
                Message::PullResponse {
                    server, progress, ..
                }
                | Message::PushAck { server, progress } => (*server, *progress),
                _ => (NO_ID, 0),
            };
            self.tracer.record(
                EventKind::WireRecv,
                RecordArgs::new()
                    .shard(shard)
                    .worker(self.worker_id)
                    .progress(progress)
                    .bytes(bytes)
                    .ctx(c.request_id, c.attempt as u32, c.parent_span),
            );
        }
        inner
    }

    fn trace_wait(
        &self,
        wait_start: f64,
        progress: u64,
        max_version: u64,
        ctx: CausalCtx,
        attempt: u32,
    ) {
        self.tracer.record_span(
            EventKind::BarrierWait,
            wait_start,
            RecordArgs::new()
                .worker(self.worker_id)
                .progress(progress)
                .v_train(max_version)
                .request_id(ctx.request_id)
                .attempt(attempt),
        );
    }

    /// Send, absorbing transport errors (traced as `ConnectionLost`; the
    /// next retry re-issues after `TcpPostman` has dropped the dead
    /// connection and can redial).
    fn try_send(&self, m: u32, progress: u64, msg: Message) {
        self.trace_send(m, progress, &msg);
        if self.postman.send(NodeId::Server(m), msg).is_err() {
            self.tracer.record(
                EventKind::ConnectionLost,
                RecordArgs::new()
                    .shard(m)
                    .worker(self.worker_id)
                    .progress(progress),
            );
        }
    }

    fn try_send_pull(&self, m: u32, progress: u64, keys: Vec<u64>, ctx: CausalCtx) {
        let msg = self.wrap(
            Message::SPull {
                worker: self.worker_id,
                progress,
                keys,
            },
            ctx,
        );
        self.try_send(m, progress, msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eps::{EpsSlicer, ParamSpec, Slicer};

    fn router(max_chunk: usize, servers: u32) -> Router {
        let params = vec![
            ParamSpec { key: 0, len: 10 },
            ParamSpec { key: 1, len: 3 },
            ParamSpec { key: 2, len: 7 },
        ];
        Router::new(EpsSlicer { max_chunk }.slice(&params, servers))
    }

    fn values() -> HashMap<u64, Vec<f32>> {
        let mut v = HashMap::new();
        v.insert(0, (0..10).map(|x| x as f32).collect());
        v.insert(1, vec![100.0, 101.0, 102.0]);
        v.insert(2, (0..7).map(|x| 200.0 + x as f32).collect());
        v
    }

    #[test]
    fn scatter_then_gather_is_identity() {
        let r = router(4, 3);
        let vals = values();
        let shards = r.scatter(&vals);
        assert_eq!(shards.len(), 3);
        let mut rebuilt = HashMap::new();
        for kv in &shards {
            assert!(kv.is_consistent());
            r.gather_into(&mut rebuilt, kv);
        }
        assert_eq!(rebuilt, vals);
    }

    #[test]
    fn scatter_covers_every_value_exactly_once() {
        let r = router(3, 4);
        let vals = values();
        let shards = r.scatter(&vals);
        let total: usize = shards.iter().map(|kv| kv.vals.len()).sum();
        assert_eq!(total, 10 + 3 + 7);
    }

    #[test]
    fn active_servers_matches_nonempty_key_lists() {
        // Tiny model, many servers: some servers own nothing.
        let params = vec![ParamSpec { key: 0, len: 2 }];
        let r = Router::new(EpsSlicer { max_chunk: 16 }.slice(&params, 8));
        let active: Vec<u32> = r.active_servers().collect();
        assert_eq!(active.len(), 1);
        assert!(!r.keys_for_server(active[0]).is_empty());
    }

    #[test]
    fn gather_into_resizes_missing_params() {
        let r = router(4, 2);
        let vals = values();
        let shards = r.scatter(&vals);
        let mut fresh = HashMap::new();
        for kv in &shards {
            r.gather_into(&mut fresh, kv);
        }
        assert_eq!(fresh[&0].len(), 10);
        assert_eq!(fresh[&2][6], 206.0);
    }

    #[test]
    fn scatter_skips_absent_params() {
        let r = router(4, 2);
        let mut vals = values();
        vals.remove(&1);
        let shards = r.scatter(&vals);
        let total: usize = shards.iter().map(|kv| kv.vals.len()).sum();
        assert_eq!(total, 10 + 7);
    }

    // --- resilience layer -------------------------------------------------

    use fluentps_transport::Fabric;

    fn fast_policy(max_retries: u32) -> RetryPolicy {
        RetryPolicy {
            timeout: Duration::from_millis(30),
            max_retries,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(4),
            jitter_seed: 7,
            replay_depth: 4,
        }
    }

    /// Echo a pull: one `PullResponse` carrying `1.0` per requested key.
    fn echo_response(server: u32, progress: u64, keys: &[u64]) -> Message {
        let mut kv = KvPairs::default();
        for &k in keys {
            kv.keys.push(k);
            kv.lens.push(1);
            kv.vals.push(1.0);
        }
        Message::PullResponse {
            server,
            progress,
            version: progress,
            kv,
        }
    }

    #[test]
    fn timeout_replays_pushes_and_reissues_pull() {
        let fabric = Fabric::new();
        let worker_ep = fabric.register(NodeId::Worker(0));
        let server_ep = fabric.register(NodeId::Server(0));
        let params = vec![ParamSpec { key: 0, len: 1 }];
        let r = Router::new(EpsSlicer { max_chunk: 16 }.slice(&params, 1));

        // Server: swallow the first pull; answer from the second onward.
        // Count pushes to show the replay actually re-delivered them.
        let server = std::thread::spawn(move || {
            let mut pulls = 0u32;
            let mut pushes = 0u32;
            loop {
                let (_, msg) = server_ep.recv().expect("server recv");
                match msg {
                    Message::SPush { .. } => pushes += 1,
                    Message::SPull {
                        worker,
                        progress,
                        keys,
                    } => {
                        pulls += 1;
                        if pulls >= 2 {
                            server_ep
                                .postman()
                                .send(NodeId::Worker(worker), echo_response(0, progress, &keys))
                                .expect("respond");
                        }
                    }
                    Message::Shutdown => return (pulls, pushes),
                    _ => {}
                }
            }
        });

        let postman = worker_ep.postman();
        let mut client = WorkerClient::new(0, postman.clone(), worker_ep, r);
        client.set_retry_policy(fast_policy(5));
        let mut grads = HashMap::new();
        grads.insert(0u64, vec![0.5f32]);
        client.spush(0, &grads).expect("push");
        let mut out = HashMap::new();
        let report = client
            .spull_wait(0, &mut out)
            .expect("pull succeeds via retry");
        assert_eq!(report.responses, 1);
        assert_eq!(out[&0], vec![1.0]);

        postman.send(NodeId::Server(0), Message::Shutdown).unwrap();
        let (pulls, pushes) = server.join().unwrap();
        assert!(pulls >= 2, "retry re-issued the pull (saw {pulls})");
        assert!(
            pushes >= 2,
            "retry replayed the buffered push (saw {pushes})"
        );
    }

    #[test]
    fn stale_progress_echo_is_ignored() {
        let fabric = Fabric::new();
        let worker_ep = fabric.register(NodeId::Worker(0));
        let server_ep = fabric.register(NodeId::Server(0));
        let params = vec![ParamSpec { key: 0, len: 1 }];
        let r = Router::new(EpsSlicer { max_chunk: 16 }.slice(&params, 1));

        let server = std::thread::spawn(move || loop {
            let (_, msg) = server_ep.recv().expect("server recv");
            match msg {
                Message::SPull {
                    worker,
                    progress,
                    keys,
                } => {
                    // A late response from a previous round first…
                    server_ep
                        .postman()
                        .send(
                            NodeId::Worker(worker),
                            echo_response(0, progress.wrapping_sub(1), &keys),
                        )
                        .unwrap();
                    // …then the real one.
                    server_ep
                        .postman()
                        .send(NodeId::Worker(worker), echo_response(0, progress, &keys))
                        .unwrap();
                }
                Message::Shutdown => return,
                _ => {}
            }
        });

        let postman = worker_ep.postman();
        let mut client = WorkerClient::new(0, postman.clone(), worker_ep, r);
        client.set_retry_policy(fast_policy(5));
        let mut out = HashMap::new();
        let report = client.spull_wait(3, &mut out).expect("pull");
        // Exactly one response counted, and it is the matching round's.
        assert_eq!(report.responses, 1);
        assert_eq!(report.max_version, 3);
        postman.send(NodeId::Server(0), Message::Shutdown).unwrap();
        server.join().unwrap();
    }

    #[test]
    fn exhausted_retries_surface_a_timeout() {
        let fabric = Fabric::new();
        let worker_ep = fabric.register(NodeId::Worker(0));
        let _server_ep = fabric.register(NodeId::Server(0)); // never reads
        let params = vec![ParamSpec { key: 0, len: 1 }];
        let r = Router::new(EpsSlicer { max_chunk: 16 }.slice(&params, 1));
        let postman = worker_ep.postman();
        let mut client = WorkerClient::new(0, postman, worker_ep, r);
        client.set_retry_policy(RetryPolicy {
            timeout: Duration::from_millis(5),
            max_retries: 2,
            ..fast_policy(2)
        });
        let mut out = HashMap::new();
        let err = client.spull_wait(0, &mut out).unwrap_err();
        assert!(matches!(err, TransportError::Timeout), "got {err:?}");
    }

    #[test]
    fn route_update_restarts_the_round_on_the_new_routing() {
        let fabric = Fabric::new();
        let worker_ep = fabric.register(NodeId::Worker(0));
        let s0 = fabric.register(NodeId::Server(0));
        let _s1 = fabric.register(NodeId::Server(1)); // dead: never reads
        let ctl = fabric.register(NodeId::Scheduler);
        // Four single-value params over two servers: both own something.
        let params: Vec<ParamSpec> = (0..4).map(|k| ParamSpec { key: k, len: 1 }).collect();
        let map = EpsSlicer { max_chunk: 16 }.slice(&params, 2);
        assert!(map.server_loads().iter().all(|&l| l > 0));
        let r = Router::new(map.clone());

        // Server 0 answers any pull for exactly the requested keys.
        let server0 = std::thread::spawn(move || loop {
            let (_, msg) = s0.recv().expect("server0 recv");
            match msg {
                Message::SPull {
                    worker,
                    progress,
                    keys,
                } => {
                    s0.postman()
                        .send(NodeId::Worker(worker), echo_response(0, progress, &keys))
                        .unwrap();
                }
                Message::Shutdown => return,
                _ => {}
            }
        });

        // After a beat, announce that server 1 is gone: everything now
        // lives on server 0.
        let (remapped, _moved) = EpsSlicer { max_chunk: 16 }.remap_dead(&map, 1);
        let wire: Vec<WirePlacement> = remapped
            .placements()
            .iter()
            .map(|p| WirePlacement {
                orig_key: p.orig_key,
                new_key: p.new_key,
                server: p.server,
                offset: p.offset as u32,
                len: p.len as u32,
            })
            .collect();
        let ctl_postman = ctl.postman();
        let announcer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            ctl_postman
                .send(NodeId::Worker(0), Message::RouteUpdate { placements: wire })
                .unwrap();
        });

        let postman = worker_ep.postman();
        let mut client = WorkerClient::new(0, postman.clone(), worker_ep, r);
        client.set_retry_policy(RetryPolicy {
            timeout: Duration::from_millis(100),
            ..fast_policy(10)
        });
        let mut out = HashMap::new();
        let report = client.spull_wait(0, &mut out).expect("pull after remap");
        // One responder (everything on server 0 now) and all params present.
        assert_eq!(report.responses, 1);
        assert_eq!(out.len(), 4);
        assert!(client.router().keys_for_server(1).is_empty());
        assert_eq!(client.router().keys_for_server(0).len(), 4);

        postman.send(NodeId::Server(0), Message::Shutdown).unwrap();
        server0.join().unwrap();
        announcer.join().unwrap();
    }

    #[test]
    fn route_update_does_not_reset_the_retry_budget() {
        use fluentps_obs::TraceCollector;

        let fabric = Fabric::new();
        let worker_ep = fabric.register(NodeId::Worker(0));
        let _s0 = fabric.register(NodeId::Server(0)); // alive but never answers
        let _s1 = fabric.register(NodeId::Server(1)); // dead: remapped away
        let ctl = fabric.register(NodeId::Scheduler);
        let params: Vec<ParamSpec> = (0..4).map(|k| ParamSpec { key: k, len: 1 }).collect();
        let map = EpsSlicer { max_chunk: 16 }.slice(&params, 2);
        let r = Router::new(map.clone());

        let (remapped, _moved) = EpsSlicer { max_chunk: 16 }.remap_dead(&map, 1);
        let wire: Vec<WirePlacement> = remapped
            .placements()
            .iter()
            .map(|p| WirePlacement {
                orig_key: p.orig_key,
                new_key: p.new_key,
                server: p.server,
                offset: p.offset as u32,
                len: p.len as u32,
            })
            .collect();

        let collector = TraceCollector::wall(1 << 10);
        let postman = worker_ep.postman();
        let mut client = WorkerClient::new(0, postman, worker_ep, r);
        client.set_tracer(collector.tracer());
        client.set_retry_policy(RetryPolicy {
            timeout: Duration::from_millis(20),
            max_retries: 3,
            ..fast_policy(3)
        });

        // Fire the RouteUpdate only once the first retry is observably
        // scheduled, so at least one attempt pre-dates the reroute.
        let ctl_postman = ctl.postman();
        let watch = collector.clone();
        let announcer = std::thread::spawn(move || {
            while watch.snapshot().count(EventKind::RetryScheduled) == 0 {
                std::thread::sleep(Duration::from_millis(2));
            }
            ctl_postman
                .send(NodeId::Worker(0), Message::RouteUpdate { placements: wire })
                .unwrap();
        });

        let mut out = HashMap::new();
        let err = client.spull_wait(0, &mut out).unwrap_err();
        assert!(matches!(err, TransportError::Timeout), "got {err:?}");
        announcer.join().unwrap();

        // The budget is cumulative across the reroute: the attempt ordinals
        // stamped on shard 0's RetryScheduled events increase strictly and
        // end at exactly `max_retries`. Before the fix the reroute reset
        // the counter, re-emitting attempt 1 and granting the round a whole
        // fresh budget (unbounded total wait under repeated reroutes).
        let trace = collector.snapshot();
        let attempts: Vec<u32> = trace
            .events
            .iter()
            .filter(|ev| ev.kind == EventKind::RetryScheduled && ev.shard == 0)
            .map(|ev| ev.attempt)
            .collect();
        assert!(!attempts.is_empty());
        assert!(
            attempts.windows(2).all(|w| w[0] < w[1]),
            "attempt counter reset across RouteUpdate: {attempts:?}"
        );
        assert_eq!(
            *attempts.last().unwrap(),
            3,
            "full budget spent: {attempts:?}"
        );
    }
}
