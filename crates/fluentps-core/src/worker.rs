//! Worker-side client: routing, `sPush`, `sPull` and `wait`.
//!
//! A worker holds the model as a map from original parameter key to a flat
//! value vector. The [`Router`] (built from an EPS [`SliceMap`]) scatters a
//! gradient across the per-server wire keys for `sPush`, and gathers the
//! per-server `PullResponse`s back into whole parameters after `sPull`.

use std::collections::HashMap;

use fluentps_obs::{EventKind, RecordArgs, Tracer};
use fluentps_transport::{frame, KvPairs, Mailbox, Message, NodeId, Postman, TransportError};

use crate::eps::SliceMap;

/// Key routing derived from a [`SliceMap`].
#[derive(Debug, Clone)]
pub struct Router {
    map: SliceMap,
    per_server: Vec<Vec<u64>>,
}

impl Router {
    /// Build routing tables from a placement.
    pub fn new(map: SliceMap) -> Self {
        let mut per_server = vec![Vec::new(); map.num_servers() as usize];
        for p in map.placements() {
            per_server[p.server as usize].push(p.new_key);
        }
        for keys in &mut per_server {
            keys.sort_unstable();
        }
        Router { map, per_server }
    }

    /// Number of servers.
    pub fn num_servers(&self) -> u32 {
        self.map.num_servers()
    }

    /// Wire keys owned by server `m`.
    pub fn keys_for_server(&self, m: u32) -> &[u64] {
        &self.per_server[m as usize]
    }

    /// Servers that own at least one key (a pull expects one response from
    /// each of these).
    pub fn active_servers(&self) -> impl Iterator<Item = u32> + '_ {
        self.per_server
            .iter()
            .enumerate()
            .filter(|(_, keys)| !keys.is_empty())
            .map(|(m, _)| m as u32)
    }

    /// The underlying placement.
    pub fn slice_map(&self) -> &SliceMap {
        &self.map
    }

    /// Scatter per-parameter values into one [`KvPairs`] per server. Entries
    /// for servers owning nothing are empty.
    pub fn scatter(&self, values: &HashMap<u64, Vec<f32>>) -> Vec<KvPairs> {
        let mut out = vec![KvPairs::default(); self.map.num_servers() as usize];
        // Walk placements in deterministic order so wire batches are stable.
        for p in self.map.placements() {
            let Some(vals) = values.get(&p.orig_key) else {
                continue;
            };
            debug_assert!(
                p.offset + p.len <= vals.len(),
                "placement exceeds value length for key {}",
                p.orig_key
            );
            let kv = &mut out[p.server as usize];
            kv.keys.push(p.new_key);
            kv.lens.push(p.len as u32);
            kv.vals.extend_from_slice(&vals[p.offset..p.offset + p.len]);
        }
        out
    }

    /// Merge a server's pull response back into whole parameters. Unknown
    /// keys are ignored (debug-asserted).
    pub fn gather_into(&self, params: &mut HashMap<u64, Vec<f32>>, response: &KvPairs) {
        for (new_key, slice) in response.iter() {
            let Some(p) = self.map.placement_of(new_key) else {
                debug_assert!(false, "response for unknown key {new_key:#x}");
                continue;
            };
            let entry = params
                .entry(p.orig_key)
                .or_insert_with(|| vec![0.0; p.offset + p.len]);
            if entry.len() < p.offset + p.len {
                entry.resize(p.offset + p.len, 0.0);
            }
            entry[p.offset..p.offset + p.len].copy_from_slice(slice);
        }
    }
}

/// Outcome of a completed `sPull` + `wait`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PullReport {
    /// Servers that answered.
    pub responses: u32,
    /// Highest shard version among the responses.
    pub max_version: u64,
    /// Lowest shard version among the responses.
    pub min_version: u64,
}

/// The worker client of Algorithm 1: `sPush(key, g, i)` then
/// `wait(sPull(key, &w, i))`.
pub struct WorkerClient<P, M> {
    worker_id: u32,
    postman: P,
    mailbox: M,
    router: Router,
    tracer: Tracer,
}

impl<P: Postman, M: Mailbox> WorkerClient<P, M> {
    /// Create a client for worker `worker_id`.
    pub fn new(worker_id: u32, postman: P, mailbox: M, router: Router) -> Self {
        WorkerClient {
            worker_id,
            postman,
            mailbox,
            router,
            tracer: Tracer::disabled(),
        }
    }

    /// Attach a tracer: `WireSend` per outgoing message and a `BarrierWait`
    /// span covering each blocking wait for pull responses.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// This worker's id (`n`).
    pub fn worker_id(&self) -> u32 {
        self.worker_id
    }

    /// The router in use.
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// `sPush`: send this iteration's gradients to every owning server.
    /// Returns the number of servers contacted.
    pub fn spush(
        &self,
        progress: u64,
        grads: &HashMap<u64, Vec<f32>>,
    ) -> Result<u32, TransportError> {
        let shards = self.router.scatter(grads);
        let mut sent = 0;
        for (m, kv) in shards.into_iter().enumerate() {
            if kv.is_empty() {
                continue;
            }
            let msg = Message::SPush {
                worker: self.worker_id,
                progress,
                kv,
            };
            self.tracer.record(
                EventKind::WireSend,
                RecordArgs::new()
                    .shard(m as u32)
                    .worker(self.worker_id)
                    .progress(progress)
                    .bytes(frame::wire_len(&msg) as u64),
            );
            self.postman.send(NodeId::Server(m as u32), msg)?;
            sent += 1;
        }
        Ok(sent)
    }

    /// `sPull` + `wait`: request all parameters and block until every owning
    /// server has responded (immediately or lazily). Fresh parameters are
    /// merged into `params`. `PushAck`s arriving in between are absorbed.
    pub fn spull_wait(
        &mut self,
        progress: u64,
        params: &mut HashMap<u64, Vec<f32>>,
    ) -> Result<PullReport, TransportError> {
        let all: Vec<u64> = self
            .router
            .slice_map()
            .placements()
            .iter()
            .map(|p| p.orig_key)
            .collect();
        self.spull_keys_wait(progress, &all, params)
    }

    /// `sPull` a *subset* of the original parameter keys (e.g. only the
    /// layers the next computation touches) and wait for the owning
    /// servers' responses. Keys whose slices live on several servers fan
    /// out accordingly.
    pub fn spull_keys_wait(
        &mut self,
        progress: u64,
        orig_keys: &[u64],
        params: &mut HashMap<u64, Vec<f32>>,
    ) -> Result<PullReport, TransportError> {
        // Group the requested slices by owning server.
        let mut per_server: HashMap<u32, Vec<u64>> = HashMap::new();
        for &orig in orig_keys {
            for p in self.router.slice_map().slices_of(orig) {
                per_server.entry(p.server).or_default().push(p.new_key);
            }
        }
        let mut servers: Vec<u32> = per_server.keys().copied().collect();
        servers.sort_unstable();
        let mut expected = 0u32;
        for m in servers {
            let mut keys = per_server.remove(&m).expect("grouped");
            keys.sort_unstable();
            keys.dedup();
            let msg = Message::SPull {
                worker: self.worker_id,
                progress,
                keys,
            };
            self.tracer.record(
                EventKind::WireSend,
                RecordArgs::new()
                    .shard(m)
                    .worker(self.worker_id)
                    .progress(progress)
                    .bytes(frame::wire_len(&msg) as u64),
            );
            self.postman.send(NodeId::Server(m), msg)?;
            expected += 1;
        }
        let mut report = PullReport {
            responses: 0,
            max_version: 0,
            min_version: u64::MAX,
        };
        let wait_start = self.tracer.now();
        while report.responses < expected {
            let (_, msg) = self.mailbox.recv()?;
            match msg {
                Message::PullResponse { kv, version, .. } => {
                    self.router.gather_into(params, &kv);
                    report.responses += 1;
                    report.max_version = report.max_version.max(version);
                    report.min_version = report.min_version.min(version);
                }
                Message::PushAck { .. } => {}
                Message::Shutdown => return Err(TransportError::Disconnected),
                _ => {}
            }
        }
        if expected > 0 {
            self.tracer.record_span(
                EventKind::BarrierWait,
                wait_start,
                RecordArgs::new()
                    .worker(self.worker_id)
                    .progress(progress)
                    .v_train(report.max_version),
            );
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eps::{EpsSlicer, ParamSpec, Slicer};

    fn router(max_chunk: usize, servers: u32) -> Router {
        let params = vec![
            ParamSpec { key: 0, len: 10 },
            ParamSpec { key: 1, len: 3 },
            ParamSpec { key: 2, len: 7 },
        ];
        Router::new(EpsSlicer { max_chunk }.slice(&params, servers))
    }

    fn values() -> HashMap<u64, Vec<f32>> {
        let mut v = HashMap::new();
        v.insert(0, (0..10).map(|x| x as f32).collect());
        v.insert(1, vec![100.0, 101.0, 102.0]);
        v.insert(2, (0..7).map(|x| 200.0 + x as f32).collect());
        v
    }

    #[test]
    fn scatter_then_gather_is_identity() {
        let r = router(4, 3);
        let vals = values();
        let shards = r.scatter(&vals);
        assert_eq!(shards.len(), 3);
        let mut rebuilt = HashMap::new();
        for kv in &shards {
            assert!(kv.is_consistent());
            r.gather_into(&mut rebuilt, kv);
        }
        assert_eq!(rebuilt, vals);
    }

    #[test]
    fn scatter_covers_every_value_exactly_once() {
        let r = router(3, 4);
        let vals = values();
        let shards = r.scatter(&vals);
        let total: usize = shards.iter().map(|kv| kv.vals.len()).sum();
        assert_eq!(total, 10 + 3 + 7);
    }

    #[test]
    fn active_servers_matches_nonempty_key_lists() {
        // Tiny model, many servers: some servers own nothing.
        let params = vec![ParamSpec { key: 0, len: 2 }];
        let r = Router::new(EpsSlicer { max_chunk: 16 }.slice(&params, 8));
        let active: Vec<u32> = r.active_servers().collect();
        assert_eq!(active.len(), 1);
        assert!(!r.keys_for_server(active[0]).is_empty());
    }

    #[test]
    fn gather_into_resizes_missing_params() {
        let r = router(4, 2);
        let vals = values();
        let shards = r.scatter(&vals);
        let mut fresh = HashMap::new();
        for kv in &shards {
            r.gather_into(&mut fresh, kv);
        }
        assert_eq!(fresh[&0].len(), 10);
        assert_eq!(fresh[&2][6], 206.0);
    }

    #[test]
    fn scatter_skips_absent_params() {
        let r = router(4, 2);
        let mut vals = values();
        vals.remove(&1);
        let shards = r.scatter(&vals);
        let total: usize = shards.iter().map(|kv| kv.vals.len()).sum();
        assert_eq!(total, 10 + 7);
    }
}
