//! Property tests for the checkpoint format: `capture → encode → decode →
//! restore_into` must preserve parameters and `v_train` bit-exactly (a
//! recovery that perturbs either would silently corrupt training), and no
//! corrupted input may panic the decoder.

use fluentps_core::checkpoint::ShardCheckpoint;
use fluentps_core::condition::SyncModel;
use fluentps_core::dpr::DprPolicy;
use fluentps_core::server::{GradScale, ServerShard, ShardConfig};
use fluentps_util::buf::Bytes;
use fluentps_util::proptest::prelude::*;

fn shard(num_workers: u32) -> ServerShard {
    ServerShard::new(ShardConfig {
        server_id: 0,
        num_workers,
        model: SyncModel::Ssp { s: 2 },
        policy: DprPolicy::LazyExecution,
        grad_scale: GradScale::DivideByN,
    })
}

/// `(key, value-bits)` pairs: arbitrary bit patterns cover NaN, infinities
/// and signed zero, which must survive the round trip bitwise.
fn arb_params() -> impl Strategy<Value = Vec<(u64, Vec<u32>)>> {
    prop::collection::vec((0u64..32, prop::collection::vec(any::<u32>(), 1..8)), 1..5).prop_map(
        |mut kv| {
            kv.sort_by_key(|(k, _)| *k);
            kv.dedup_by_key(|(k, _)| *k);
            kv
        },
    )
}

proptest! {
    /// The full recovery path is lossless: parameters, `v_train` and the
    /// applied-push watermarks all survive bit-exactly.
    #[test]
    fn capture_encode_decode_restore_is_bit_exact(
        params in arb_params(),
        v_train in 0u64..100,
        workers in 1u32..5,
        raw_marks in prop::collection::vec(0u64..100, 1..5),
    ) {
        // 0 = no applied push from that worker, n = applied at progress n-1.
        let watermarks: Vec<Option<u64>> =
            raw_marks.iter().map(|&x| x.checked_sub(1)).collect();
        let mut src = shard(workers);
        for (key, bits) in &params {
            src.init_param(*key, bits.iter().map(|b| f32::from_bits(*b)).collect());
        }
        src.fast_forward(v_train);
        let keys: Vec<u64> = params.iter().map(|(k, _)| *k).collect();

        let cp = ShardCheckpoint::capture_with_applied(&src, &keys, &watermarks);
        let decoded = ShardCheckpoint::from_bytes(cp.to_bytes()).expect("decode");
        // Field-by-field, with values compared bitwise: NaN payloads must
        // survive but defeat `PartialEq`.
        prop_assert_eq!(decoded.v_train, cp.v_train);
        prop_assert_eq!(&decoded.params.keys, &cp.params.keys);
        prop_assert_eq!(&decoded.params.lens, &cp.params.lens);
        let decoded_bits: Vec<u32> = decoded.params.vals.iter().map(|v| v.to_bits()).collect();
        let cp_bits: Vec<u32> = cp.params.vals.iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(decoded_bits, cp_bits);
        prop_assert_eq!(decoded.applied_watermarks(), watermarks);

        let mut restored = shard(workers);
        decoded.restore_into(&mut restored);
        prop_assert_eq!(restored.v_train(), v_train);
        for (key, bits) in &params {
            let vals = restored.read_param(*key).expect("restored param");
            let got: Vec<u32> = vals.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(&got, bits, "key {} drifted", key);
        }
    }

    /// Decoding arbitrary garbage returns `DecodeError`, never panics.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = ShardCheckpoint::from_bytes(Bytes::from(bytes));
    }

    /// Every truncation of a valid checkpoint is rejected with an error.
    #[test]
    fn truncations_are_rejected(
        v_train in 0u64..50,
        cut_frac in 0.0f64..1.0,
    ) {
        let mut src = shard(2);
        src.init_param(3, vec![1.5, -2.5, 0.25]);
        src.fast_forward(v_train);
        let full = ShardCheckpoint::capture(&src, &[3]).to_bytes();
        let cut = ((full.len() - 1) as f64 * cut_frac) as usize;
        prop_assert!(ShardCheckpoint::from_bytes(full.slice(0..cut)).is_err());
    }
}
