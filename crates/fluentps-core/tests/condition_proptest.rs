//! Property tests on the synchronization conditions themselves.

use fluentps_core::condition::{SyncModel, SyncPolicy, SyncState};
use fluentps_core::pssp::Alpha;
use fluentps_core::regret::{equivalent_ssp_threshold, pssp_const_bound, ssp_bound, RegretParams};
use fluentps_util::proptest::prelude::*;

fn arb_state() -> impl Strategy<Value = SyncState> {
    (0u64..50, 0u32..8, 1u32..8).prop_map(|(v_train, count, n)| SyncState {
        v_train,
        count_at_v_train: count.min(n),
        num_workers: n,
        fastest: v_train + 5,
        slowest: v_train,
    })
}

fn arb_model() -> impl Strategy<Value = SyncModel> {
    prop_oneof![
        Just(SyncModel::Bsp),
        Just(SyncModel::Asp),
        (0u64..6).prop_map(|s| SyncModel::Ssp { s }),
        (0u64..6, 0.01f64..1.0).prop_map(|(s, c)| SyncModel::PsspConst { s, c }),
        (0u64..6, 0.01f64..2.0).prop_map(|(s, alpha)| SyncModel::PsspDynamic {
            s,
            alpha: Alpha::Constant(alpha),
        }),
    ]
}

proptest! {
    /// Monotonicity in the probability draw: if a pull is permitted at draw
    /// d, it is permitted at every larger draw (blocking happens at draws
    /// BELOW the probability, so increasing the draw can only help).
    #[test]
    fn pull_permission_monotone_in_draw(
        model in arb_model(),
        st in arb_state(),
        progress in 0u64..60,
        d1 in 0.0f64..1.0,
        d2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let mut m = model.into_policy();
        let at_lo = m.pull_permitted(&st, progress, lo, None);
        let mut m = model.into_policy();
        let at_hi = m.pull_permitted(&st, progress, hi, None);
        prop_assert!(!at_lo || at_hi, "permitted at {lo} but not at {hi}");
    }

    /// Monotonicity in progress: a slower requester is never blocked when a
    /// faster one is admitted (same state, same draw).
    #[test]
    fn pull_permission_antitone_in_progress(
        model in arb_model(),
        st in arb_state(),
        p1 in 0u64..60,
        p2 in 0u64..60,
        draw in 0.0f64..1.0,
    ) {
        let (slow, fast) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        // Dynamic PSSP's probability grows with the gap, so a fixed draw
        // admits the slow request whenever it admits the fast one.
        let mut m = model.into_policy();
        let fast_ok = m.pull_permitted(&st, fast, draw, None);
        let mut m = model.into_policy();
        let slow_ok = m.pull_permitted(&st, slow, draw, None);
        prop_assert!(!fast_ok || slow_ok, "fast {fast} admitted but slow {slow} blocked");
    }

    /// The push condition depends only on the count reaching its target:
    /// once it fires for a count, it fires for any larger count.
    #[test]
    fn push_condition_monotone_in_count(
        model in arb_model(),
        st in arb_state(),
    ) {
        let mut m = model.into_policy();
        if m.push_fires(&st) {
            let more = SyncState {
                count_at_v_train: st.count_at_v_train + 1,
                ..st
            };
            prop_assert!(m.push_fires(&more));
        }
    }

    /// Theorem 1 equivalence holds for arbitrary parameters, not just the
    /// paper's groups.
    #[test]
    fn regret_equivalence_universal(
        s in 0u64..20,
        c in 0.02f64..1.0,
        n in 1u32..256,
        t in 1_000u64..10_000_000,
    ) {
        let p = RegretParams { f: 2.0, l: 0.5, n, t };
        let a = pssp_const_bound(p, s as f64, c);
        let b = ssp_bound(p, equivalent_ssp_threshold(s, c));
        prop_assert!((a - b).abs() < 1e-9 * a.max(1.0), "{a} vs {b}");
    }

    /// PSSP's bound interpolates between SSP (c→1) and looser-than-SSP as c
    /// shrinks; it is monotone decreasing in c.
    #[test]
    fn pssp_bound_monotone_in_c(
        s in 0u64..10,
        c1 in 0.05f64..1.0,
        c2 in 0.05f64..1.0,
    ) {
        let p = RegretParams { f: 1.0, l: 1.0, n: 16, t: 100_000 };
        let (lo, hi) = if c1 <= c2 { (c1, c2) } else { (c2, c1) };
        prop_assert!(
            pssp_const_bound(p, s as f64, lo) >= pssp_const_bound(p, s as f64, hi)
        );
    }
}
