//! Property tests for consensus safety under message-level chaos.
//!
//! Three supervisor replicas exchange consensus traffic over the in-process
//! fabric, wrapped in the same [`FaultInjector`] the resilient runtime
//! uses, with a generated schedule of drops, delays (reordering) and
//! duplicates on the supervisor links. Whatever the schedule:
//!
//! * **Election safety** — no term ever has two leaders.
//! * **Log matching** — no two replicas ever commit divergent prefixes.
//!
//! The harness is single-threaded and fully deterministic: virtual time
//! advances in fixed steps, each replica ticks, and inboxes are drained to
//! quiescence, so a failing schedule shrinks and replays exactly.

use std::collections::HashMap;
use std::time::Duration;

use fluentps_core::consensus::{ConsensusConfig, ControlCommand, Replica};
use fluentps_transport::fault::{
    FaultAction, FaultInjector, FaultPlan, FaultRule, MsgClass, MsgPattern,
};
use fluentps_transport::{Fabric, Mailbox, NodeId, Postman};
use fluentps_util::proptest::prelude::*;

const REPLICAS: u32 = 3;
const STEP: Duration = Duration::from_millis(5);
const STEPS: u64 = 300;

/// Generated fault schedules over the supervisor links: each rule picks a
/// directed link, an action (drop / delay-by-n / duplicate) and how many
/// matching messages it consumes. Rules target the `Control` class — the
/// class every consensus message belongs to.
fn arb_rules() -> impl Strategy<Value = Vec<FaultRule>> {
    prop::collection::vec(
        (0u32..REPLICAS, 0u32..REPLICAS, 0u32..3, 1u32..3, 1u32..4),
        0..24,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(from, to, kind, n, count)| FaultRule {
                pattern: MsgPattern {
                    from: Some(NodeId::Supervisor(from)),
                    to: Some(NodeId::Supervisor(to)),
                    class: Some(MsgClass::Control),
                    progress: None,
                },
                action: match kind {
                    0 => FaultAction::Drop,
                    1 => FaultAction::Delay(n),
                    _ => FaultAction::Duplicate,
                },
                count,
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn chaos_never_yields_two_leaders_or_divergent_commits(
        rules in arb_rules(),
        seed in 0u64..1_000,
    ) {
        let fabric = Fabric::new();
        let injector = FaultInjector::new(FaultPlan { rules });
        let mut replicas = Vec::new();
        let mut mailboxes = Vec::new();
        let mut postmen = Vec::new();
        for k in 0..REPLICAS {
            let ep = fabric.register(NodeId::Supervisor(k));
            postmen.push(injector.postman(NodeId::Supervisor(k), ep.postman()));
            mailboxes.push(injector.mailbox(NodeId::Supervisor(k), ep));
            replicas.push(Replica::new(ConsensusConfig {
                id: k,
                replicas: REPLICAS,
                heartbeat_every: Duration::from_millis(10),
                leader_lease: Duration::from_millis(40),
                election_timeout: Duration::from_millis(100),
                seed,
            }));
        }

        let mut leader_of_term: HashMap<u64, u32> = HashMap::new();
        for step in 0..STEPS {
            let now = STEP * (step as u32 + 1);
            for k in 0..REPLICAS as usize {
                for (to, msg) in replicas[k].tick(now) {
                    let _ = postmen[k].send(to, msg);
                }
                // A leader proposes now and then so commits actually flow
                // (pure heartbeats would leave the log at the accession
                // no-op and the log-matching check vacuous).
                if replicas[k].is_leader() && step % 7 == 0 {
                    replicas[k].propose(ControlCommand::Tick, now);
                }
            }
            // Drain every inbox to quiescence, bounded so a protocol bug
            // that ping-pongs forever fails the test instead of hanging it.
            let mut hops = 0;
            loop {
                let mut delivered = false;
                for k in 0..REPLICAS as usize {
                    while let Ok(Some((_, msg))) = mailboxes[k].try_recv() {
                        delivered = true;
                        for (to, out) in replicas[k].handle(&msg, now) {
                            let _ = postmen[k].send(to, out);
                        }
                    }
                }
                hops += 1;
                prop_assert!(hops < 100, "message storm: consensus never quiesced");
                if !delivered {
                    break;
                }
            }

            // Election safety: at most one leader per term, ever.
            for k in 0..REPLICAS as usize {
                if replicas[k].is_leader() {
                    let term = replicas[k].term();
                    let prev = leader_of_term.insert(term, k as u32);
                    prop_assert!(
                        prev.is_none_or(|p| p == k as u32),
                        "two leaders in term {}: {:?} and {}", term, prev, k
                    );
                }
            }
            // Log matching: committed prefixes agree pairwise.
            for a in 0..REPLICAS as usize {
                for b in a + 1..REPLICAS as usize {
                    let la = replicas[a].committed_since(0);
                    let lb = replicas[b].committed_since(0);
                    let n = la.len().min(lb.len());
                    prop_assert_eq!(&la[..n], &lb[..n], "divergent committed prefixes");
                }
            }
        }

        // The run must have made progress despite the chaos: some replica
        // won an election and committed at least its accession entry.
        prop_assert!(!leader_of_term.is_empty(), "no leader was ever elected");
        prop_assert!(
            replicas.iter().any(|r| r.commit_index() >= 1),
            "nothing ever committed"
        );
    }
}
