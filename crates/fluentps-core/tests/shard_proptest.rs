//! Property tests for the server-shard state machine and EPS.
//!
//! These drive the shard with *arbitrary* interleavings — including ones a
//! real worker could never produce (racing ahead without waiting for pulls)
//! — and check that the server still enforces its invariants. The server is
//! the only line of defence in FluentPS: there is no client-side staleness
//! check like SSPtable's.

use std::collections::HashMap;

use fluentps_core::condition::SyncModel;
use fluentps_core::dpr::DprPolicy;
use fluentps_core::eps::{EpsSlicer, ParamSpec, Slicer};
use fluentps_core::server::{GradScale, PullOutcome, ServerShard, ShardConfig};
use fluentps_transport::KvPairs;
use fluentps_util::proptest::prelude::*;

/// One step of a schedule: worker `w` either pushes iteration `i` or pulls
/// with progress `i`.
#[derive(Debug, Clone, Copy)]
enum Op {
    Push(u32, u64),
    Pull(u32, u64),
}

/// Arbitrary interleaving: each worker contributes pushes 0..its horizon in
/// order (a worker cannot push iteration 3 before 2 in any real execution),
/// with pulls sprinkled at its current progress, and the streams of distinct
/// workers shuffled together arbitrarily.
fn arb_schedule(num_workers: u32, max_iters: u64) -> impl Strategy<Value = Vec<Op>> {
    let per_worker =
        prop::collection::vec((0..num_workers, 1..=max_iters, any::<bool>()), 1..200usize);
    per_worker.prop_map(move |seeds| {
        let mut next_iter = vec![0u64; num_workers as usize];
        let mut ops = Vec::new();
        for (w, _, is_pull) in seeds {
            let i = next_iter[w as usize];
            if is_pull {
                ops.push(Op::Pull(w, i.saturating_sub(1)));
            } else {
                ops.push(Op::Push(w, i));
                next_iter[w as usize] += 1;
            }
        }
        ops
    })
}

fn run_schedule(
    model: SyncModel,
    policy: DprPolicy,
    num_workers: u32,
    ops: &[Op],
) -> (ServerShard, Vec<(u64, f32)>) {
    let mut shard = ServerShard::new(ShardConfig {
        server_id: 0,
        num_workers,
        model,
        policy,
        grad_scale: GradScale::DivideByN,
    });
    shard.init_param(0, vec![0.0]);
    // Every response we ever see: (version, value-at-response).
    let mut responses = Vec::new();
    for &op in ops {
        match op {
            Op::Push(w, i) => {
                for r in shard.on_push(w, i, &KvPairs::single(0, vec![1.0])) {
                    responses.push((r.version, r.kv.vals[0]));
                }
            }
            Op::Pull(w, i) => {
                if let PullOutcome::Respond { kv, version } = shard.on_pull(w, i, &[0], 0.5, None) {
                    responses.push((version, kv.vals[0]));
                }
            }
        }
    }
    (shard, responses)
}

proptest! {
    /// With `w += g/N` and unit gradients, the parameter value equals
    /// (pushes applied)/N. A response at version `v` must therefore carry a
    /// value ≥ v: all N workers' gradients for iterations < v are folded in.
    /// This is the *content-level* meaning of `V_train` — not just a counter.
    #[test]
    fn responses_contain_all_gradients_up_to_their_version(
        ops in arb_schedule(3, 8),
        lazy in any::<bool>(),
    ) {
        let policy = if lazy { DprPolicy::LazyExecution } else { DprPolicy::SoftBarrier };
        let (_, responses) = run_schedule(SyncModel::Ssp { s: 2 }, policy, 3, &ops);
        for (version, value) in responses {
            // value = applied/N with N=3; tolerate f32 rounding.
            prop_assert!(
                value + 1e-4 >= version as f32,
                "version {version} but value {value}"
            );
        }
    }

    /// V_train never exceeds the shortest prefix of completed iterations
    /// across workers (for Count == N models).
    #[test]
    fn v_train_bounded_by_slowest_complete_prefix(ops in arb_schedule(3, 8)) {
        let (shard, _) = run_schedule(
            SyncModel::Ssp { s: 3 },
            DprPolicy::LazyExecution,
            3,
            &ops,
        );
        let mut prefix = [0u64; 3];
        let mut pushed: Vec<HashMap<u64, bool>> = vec![HashMap::new(); 3];
        for &op in &ops {
            if let Op::Push(w, i) = op {
                pushed[w as usize].insert(i, true);
                while pushed[w as usize].contains_key(&prefix[w as usize]) {
                    prefix[w as usize] += 1;
                }
            }
        }
        let slowest = *prefix.iter().min().unwrap();
        prop_assert!(
            shard.v_train() <= slowest,
            "v_train {} > slowest complete prefix {slowest}",
            shard.v_train()
        );
    }

    /// Bookkeeping conservation: every pull is either answered immediately
    /// or deferred; every deferral is eventually released or still pending.
    #[test]
    fn pull_accounting_conserves(ops in arb_schedule(4, 6), lazy in any::<bool>()) {
        let policy = if lazy { DprPolicy::LazyExecution } else { DprPolicy::SoftBarrier };
        let (shard, _) = run_schedule(SyncModel::Ssp { s: 1 }, policy, 4, &ops);
        let st = shard.stats();
        prop_assert_eq!(st.pulls_total, st.pulls_immediate + st.dprs);
        prop_assert_eq!(st.dprs, st.dprs_released + shard.pending_dprs() as u64);
    }

    /// When every worker completes the same horizon, no lazy DPR can be left
    /// behind: all deferred pulls with progress < horizon get released as
    /// V_train reaches the horizon.
    #[test]
    fn complete_run_leaves_no_pending_lazy_dprs(
        horizon in 1u64..6,
        pulls_per_iter in 1usize..3,
    ) {
        let num_workers = 3u32;
        let mut shard = ServerShard::new(ShardConfig {
            server_id: 0,
            num_workers,
            model: SyncModel::Ssp { s: 2 },
            policy: DprPolicy::LazyExecution,
            grad_scale: GradScale::DivideByN,
        });
        shard.init_param(0, vec![0.0]);
        // Workers complete iterations in a skewed order: worker 0 finishes
        // everything first, then worker 1, then worker 2.
        for w in 0..num_workers {
            for i in 0..horizon {
                shard.on_push(w, i, &KvPairs::single(0, vec![1.0]));
                if i + 1 < horizon {
                    for _ in 0..pulls_per_iter {
                        let _ = shard.on_pull(w, i, &[0], 0.5, None);
                    }
                }
            }
        }
        prop_assert_eq!(shard.v_train(), horizon);
        prop_assert_eq!(shard.pending_dprs(), 0, "stats: {:?}", shard.stats());
    }

    /// Determinism: replaying the same schedule yields identical stats and
    /// parameters (the shard has no hidden nondeterminism).
    #[test]
    fn replay_is_deterministic(ops in arb_schedule(3, 6)) {
        let (a, ra) = run_schedule(SyncModel::PsspConst { s: 2, c: 0.5 },
                                   DprPolicy::LazyExecution, 3, &ops);
        let (b, rb) = run_schedule(SyncModel::PsspConst { s: 2, c: 0.5 },
                                   DprPolicy::LazyExecution, 3, &ops);
        prop_assert_eq!(a.stats(), b.stats());
        prop_assert_eq!(a.v_train(), b.v_train());
        prop_assert_eq!(ra, rb);
    }

    /// EPS balance bound: imbalance ≤ 1 + (max_chunk · M) / total values
    /// (LPT with bounded item size), and every value is placed exactly once.
    #[test]
    fn eps_balances_arbitrary_models(
        lens in prop::collection::vec(1usize..20_000, 1..40),
        servers in 1u32..12,
        max_chunk in 256usize..4096,
    ) {
        let params: Vec<ParamSpec> = lens
            .iter()
            .enumerate()
            .map(|(k, &len)| ParamSpec { key: k as u64, len })
            .collect();
        let map = EpsSlicer { max_chunk }.slice(&params, servers);
        let total: usize = lens.iter().sum();
        prop_assert_eq!(map.total_values(), total);
        let bound = 1.0 + (max_chunk as f64 * servers as f64) / total as f64;
        prop_assert!(
            map.imbalance() <= bound + 1e-9,
            "imbalance {} > bound {bound}",
            map.imbalance()
        );
        // Coverage: each parameter fully reassembles.
        for p in &params {
            let covered: usize = map.slices_of(p.key).map(|s| s.len).sum();
            prop_assert_eq!(covered, p.len);
        }
    }
}
