//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage:
//!   repro <fig1|fig3|fig6|fig7|fig8|fig9|fig10|fig11|table4|all> [--full] [--csv DIR]
//!   repro --trace FILE [--full] [--metrics-addr ADDR]
//!   repro analyze FILE [--md] [--ssp S | --pssp-const S C]
//!   repro validate-json FILE
//!   repro chaos [--seed N] [--workers N] [--servers N] [--iters N]
//!               [--staleness S] [--faults N] [--kill M@V]
//!               [--supervisors N] [--kill-supervisor K@V]... [--metrics-addr ADDR]
//!   repro collect FILE [chaos flags] [--ring N]
//!   repro watch [chaos flags]
//!   repro waterfall [chaos flags] [--top N]
//!   repro profile [--workers N] [--servers N] [--iters N] [--seed N]
//!                 [--metrics-addr ADDR] [--out FILE] [--top N]
//!
//! Quick mode (default) finishes each experiment in seconds-to-minutes;
//! `--full` uses paper-like worker counts and iteration budgets.
//! `--trace FILE` runs a traced FluentPS demo and writes the event trace to
//! FILE — Chrome trace-event JSON (open in Perfetto or `chrome://tracing`),
//! or JSONL when FILE ends in `.jsonl`. With `--metrics-addr` the run also
//! serves `/metrics`, `/healthz` and `/trace` on ADDR while it executes.
//! `analyze` reads a JSONL trace back and prints the full analytics report
//! (straggler scoreboard, time breakdowns, staleness histogram, block-rate
//! curve, critical path); `--ssp`/`--pssp-const` add the analytical
//! `Pr[blocked | gap=k]` column to compare against the empirical one.
//! `validate-json` checks a file parses under the in-tree JSON validator.
//! `watch` runs a chaos job while tailing its streaming health engine: a
//! refreshing summary (windowed tail latencies, progress rates, alert
//! states) goes to stderr, and the final `/slo` text plus the
//! deterministic alert fingerprint go to stdout when the run ends.
//! `waterfall` runs a chaos job with its local trace kept and assembles
//! exact per-request causal waterfalls from the propagated request ids:
//! stable `waterfall-request` / `waterfall-balance` / `waterfall-gapless`
//! lines go to stdout for CI (logical shape only — same-seed single-worker
//! runs without `--kill` diff bit-identical; see DESIGN.md §17), followed
//! by the `--top N` slowest requests as aligned text waterfalls and a
//! per-stage transition latency table. Exits non-zero when the collector
//! balance (`retained + sampled_out == observed`) or any retained
//! waterfall's gapless check fails.
//! `profile` runs a live TCP training job under the cooperative span
//! profiler and prints the top-N spans by self time (calls, self/total
//! time, attributed allocations); `--out FILE` additionally writes the
//! full profile — speedscope JSON when FILE ends in `.json`, folded
//! stacks otherwise — and `--metrics-addr` serves the same snapshots live
//! on `/profile?format=folded|speedscope`.

use std::io::Write as _;

use fluentps_core::pssp;
use fluentps_experiments::figures::{self, Scale};
use fluentps_experiments::report::{self, Table};
use fluentps_experiments::tracerun;
use fluentps_obs::analyze;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => run_analyze(&args[1..]),
        Some("validate-json") => run_validate_json(&args[1..]),
        Some("chaos") => run_chaos_cmd(&args[1..]),
        Some("collect") => run_collect_cmd(&args[1..]),
        Some("watch") => run_watch_cmd(&args[1..]),
        Some("waterfall") => run_waterfall_cmd(&args[1..]),
        Some("profile") => run_profile_cmd(&args[1..]),
        _ => run_figures(&args),
    }
}

/// Parse the shared chaos/collect flags into `cfg`; bare arguments land in
/// `file` when `file_ok` (the collect output path), otherwise error out.
fn parse_chaos_args(
    args: &[String],
    cfg: &mut fluentps_experiments::live::ChaosConfig,
    file: &mut Option<String>,
    file_ok: bool,
) {
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                cfg.seed = parse_arg(args.get(i), "--seed N");
            }
            "--workers" => {
                i += 1;
                cfg.num_workers = parse_arg(args.get(i), "--workers N");
            }
            "--servers" => {
                i += 1;
                cfg.num_servers = parse_arg(args.get(i), "--servers N");
            }
            "--iters" => {
                i += 1;
                cfg.max_iters = parse_arg(args.get(i), "--iters N");
            }
            "--staleness" => {
                i += 1;
                cfg.staleness = parse_arg(args.get(i), "--staleness S");
            }
            "--faults" => {
                i += 1;
                cfg.faults = parse_arg(args.get(i), "--faults N");
            }
            "--ring" => {
                i += 1;
                cfg.trace_ring_capacity = parse_arg(args.get(i), "--ring N");
            }
            "--kill" => {
                i += 1;
                let raw = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("[repro] missing value for --kill M@V");
                    std::process::exit(2);
                });
                let (m, v) = raw.split_once('@').unwrap_or_else(|| {
                    eprintln!("[repro] bad --kill {raw:?}: expected M@V (e.g. 0@10)");
                    std::process::exit(2);
                });
                cfg.kill_server = Some((
                    parse_arg(Some(&m.to_string()), "--kill M@V"),
                    parse_arg(Some(&v.to_string()), "--kill M@V"),
                ));
            }
            "--supervisors" => {
                i += 1;
                cfg.num_supervisors = parse_arg(args.get(i), "--supervisors N");
            }
            "--kill-supervisor" => {
                i += 1;
                let raw = args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("[repro] missing value for --kill-supervisor K@V");
                    std::process::exit(2);
                });
                let (k, v) = raw.split_once('@').unwrap_or_else(|| {
                    eprintln!("[repro] bad --kill-supervisor {raw:?}: expected K@V (e.g. 0@8)");
                    std::process::exit(2);
                });
                // Repeatable: each occurrence schedules one replica crash.
                cfg.kill_supervisors.push((
                    parse_arg(Some(&k.to_string()), "--kill-supervisor K@V"),
                    parse_arg(Some(&v.to_string()), "--kill-supervisor K@V"),
                ));
            }
            "--metrics-addr" => {
                i += 1;
                let raw = args.get(i).cloned().unwrap_or_else(|| usage());
                cfg.metrics_addr = Some(raw.parse().unwrap_or_else(|e| {
                    eprintln!("[repro] bad --metrics-addr {raw:?}: {e}");
                    std::process::exit(2);
                }));
            }
            other if file_ok && file.is_none() && !other.starts_with('-') => {
                *file = Some(other.to_string());
            }
            other => {
                eprintln!("[repro] unknown argument {other:?}");
                usage();
            }
        }
        i += 1;
    }
}

/// `repro chaos`: a seeded fault-injection run on the live resilient TCP
/// engine. Prints stable `chaos-stats` / `chaos-fingerprint` lines to
/// stdout so CI can diff two same-seed runs, and exits non-zero if any
/// worker fails to finish its iterations.
fn run_chaos_cmd(args: &[String]) {
    let mut cfg = fluentps_experiments::live::ChaosConfig::default();
    parse_chaos_args(args, &mut cfg, &mut None, false);
    eprintln!(
        "[repro] chaos: {}w x {}s x {}sup, {} iters, seed {}, faults {}, kill {:?}, kill-sup {:?}",
        cfg.num_workers,
        cfg.num_servers,
        cfg.num_supervisors,
        cfg.max_iters,
        cfg.seed,
        cfg.faults,
        cfg.kill_server,
        cfg.kill_supervisors
    );
    // A worker that exhausts its retries panics its thread; run_chaos
    // propagates the panic, which exits this process non-zero.
    let r = fluentps_experiments::live::run_chaos(&cfg);
    print_chaos_result(&cfg, &r);
}

fn print_chaos_result(
    cfg: &fluentps_experiments::live::ChaosConfig,
    r: &fluentps_experiments::live::ChaosResult,
) {
    for (m, s) in r.stats.iter().enumerate() {
        println!(
            "chaos-stats server={m} pushes={} pulls={} v_train={} dprs={} released={}",
            s.pushes, s.pulls_total, s.v_train_advances, s.dprs, s.dprs_released
        );
    }
    println!("chaos-dead-at-end {}", r.dead_at_end);
    println!("chaos-fingerprint {}", r.fingerprint);
    // Alert lines only when a health engine observed the run (so the plain
    // chaos output CI diffs across same-seed runs stays byte-identical).
    if let Some(alerts) = &r.alerts {
        for t in alerts {
            println!(
                "chaos-alert rule={} transition={} at={} logical={}",
                t.rule,
                if t.firing { "firing" } else { "resolved" },
                t.at,
                t.logical
            );
        }
    }
    if let Some(fp) = &r.alert_fingerprint {
        println!("chaos-alert-fingerprint {fp}");
    }
    eprintln!(
        "[repro] chaos done in {:.2}s, accuracy {:.3}",
        r.wall_seconds, r.accuracy
    );
    if cfg.kill_server.is_some() && r.dead_at_end > 0 {
        eprintln!("[repro] chaos: server still dead at end of run");
        std::process::exit(1);
    }
}

/// `repro collect FILE`: a chaos run with cluster-wide trace collection —
/// every node (workers, servers, supervisor) streams its ring-buffered
/// events to an in-process collector service, which clock-aligns and
/// merges them onto one timeline. The merged trace is written to FILE
/// (JSONL when it ends in `.jsonl`, Chrome trace-event JSON otherwise) so
/// `repro analyze FILE` can chew on the whole cluster at once. Prints
/// stable `collect-node` / `collect-balanced` / `collect-recovery` lines
/// for CI, and exits non-zero when any node's accounting does not balance.
fn run_collect_cmd(args: &[String]) {
    use fluentps_obs::EventKind;
    use fluentps_transport::CollectorService;

    let mut cfg = fluentps_experiments::live::ChaosConfig::default();
    let mut file = None;
    parse_chaos_args(args, &mut cfg, &mut file, true);
    let path = file.unwrap_or_else(|| {
        eprintln!("[repro] collect needs an output FILE");
        usage();
    });

    let mut service = CollectorService::bind(
        "127.0.0.1:0".parse().expect("loopback"),
        // The merged view keeps up to 4 rings' worth per node; the
        // streamers drained the rings live, so this bounds collector
        // memory, not what the nodes could record.
        cfg.trace_ring_capacity * 4,
    )
    .unwrap_or_else(|e| {
        eprintln!("[repro] cannot bind trace collector: {e}");
        std::process::exit(1);
    });
    cfg.collector_addr = Some(service.local_addr());
    // The streaming health engine rides the collector's merged, clock-
    // aligned event stream — the one place every node's events converge.
    let engine = fluentps_obs::HealthEngine::with_default_rules(fluentps_obs::StreamConfig {
        window_secs: 0.5,
        windows: 8,
    });
    service.attach_health(&engine);
    cfg.health_engine = Some(engine.clone());
    // In collect mode the introspection endpoint serves the *merged*
    // cluster timeline (and per-node collection counters on /metrics), so
    // take the address over from the chaos run's own endpoint.
    let introspection = cfg.metrics_addr.take().map(|addr| {
        let registry = fluentps_obs::MetricsRegistry::new();
        let scope = registry.scope().with("engine", "resilient-tcp");
        scope.set_gauge("cluster_workers", cfg.num_workers as f64);
        scope.set_gauge("cluster_servers", cfg.num_servers as f64);
        scope.set_gauge("cluster_up", 1.0);
        eprintln!("[repro] serving merged /trace, /slo, /alerts and /metrics on http://{addr}/");
        fluentps_obs::http::serve_observed(
            addr,
            registry,
            Some(fluentps_obs::TraceSource::Cluster(service.cluster())),
            None,
            Some(engine.clone()),
        )
        .expect("bind introspection endpoint")
    });
    eprintln!(
        "[repro] collect: {}w x {}s, {} iters, seed {}, faults {}, kill {:?}, collector {}",
        cfg.num_workers,
        cfg.num_servers,
        cfg.max_iters,
        cfg.seed,
        cfg.faults,
        cfg.kill_server,
        service.local_addr()
    );

    let mut r = fluentps_experiments::live::run_chaos(&cfg);
    // Every streamer has final-flushed and passed its read barrier by the
    // time run_chaos returns, so the engine has seen the whole run: close
    // its final window and refresh the alert record before printing.
    engine.finish();
    r.alerts = Some(engine.transitions());
    r.alert_fingerprint = Some(format!("{:016x}", engine.fingerprint()));

    // The snapshot below is likewise the whole run.
    for s in service.node_stats() {
        println!(
            "collect-node {} emitted={} received={} dropped={} incarnations={}",
            s.node, s.emitted, s.received, s.dropped, s.incarnations
        );
    }
    match service.check_balance() {
        Ok(()) => println!("collect-balanced ok"),
        Err(bad) => {
            for s in &bad {
                eprintln!(
                    "[repro] unbalanced node {}: emitted {} != received {} + dropped {}",
                    s.node, s.emitted, s.received, s.dropped
                );
            }
            println!("collect-balanced FAILED");
            std::process::exit(1);
        }
    }
    let trace = service.snapshot();
    println!(
        "collect-recovery checkpoint_captured={} checkpoint_restored={} shard_remapped={} node_declared_dead={}",
        trace.count(EventKind::CheckpointCaptured),
        trace.count(EventKind::CheckpointRestored),
        trace.count(EventKind::ShardRemapped),
        trace.count(EventKind::NodeDeclaredDead),
    );
    let rendered = tracerun::render_for_path(&path, &trace);
    std::fs::write(&path, rendered).expect("write merged trace");
    eprintln!(
        "[repro] wrote {path} ({} events merged from {} nodes)",
        trace.events.len(),
        service.node_stats().len()
    );
    drop(introspection);
    service.stop();
    print_chaos_result(&cfg, &r);
}

/// `repro watch`: a chaos run with a live tail on its streaming health
/// engine. While the run executes, a compact health summary (events,
/// windows, progress rates, alert states) refreshes on stderr every 250ms;
/// when it finishes, the full final `/slo` text and the stable
/// `chaos-alert*` lines (including the deterministic alert fingerprint) go
/// to stdout. Accepts every `repro chaos` flag; with `--metrics-addr` the
/// same engine is also served on `/slo` and `/alerts`.
fn run_watch_cmd(args: &[String]) {
    let mut cfg = fluentps_experiments::live::ChaosConfig::default();
    parse_chaos_args(args, &mut cfg, &mut None, false);
    let engine = fluentps_obs::HealthEngine::with_default_rules(fluentps_obs::StreamConfig {
        window_secs: 0.5,
        windows: 8,
    });
    cfg.health_engine = Some(engine.clone());
    eprintln!(
        "[repro] watch: {}w x {}s, {} iters, seed {}, faults {}, kill {:?}",
        cfg.num_workers, cfg.num_servers, cfg.max_iters, cfg.seed, cfg.faults, cfg.kill_server
    );

    let run_cfg = cfg.clone();
    let run = std::thread::Builder::new()
        .name("fluentps-watch-run".to_string())
        .spawn(move || fluentps_experiments::live::run_chaos(&run_cfg))
        .expect("spawn watch run");
    while !run.is_finished() {
        std::thread::sleep(std::time::Duration::from_millis(250));
        let slo = engine.slo_text();
        eprintln!(
            "[watch] {}",
            if engine.any_firing() {
                "ALERTS FIRING"
            } else {
                "healthy"
            }
        );
        for line in slo.lines().filter(|l| {
            l.starts_with("slo windows_closed")
                || l.starts_with("slo events")
                || l.starts_with("slo drop_rate")
                || l.starts_with("slo worker")
                || (l.starts_with("alert ") && l.ends_with("firing"))
        }) {
            eprintln!("[watch]   {line}");
        }
    }
    let r = run.join().expect("watch run thread");
    // The cluster's shutdown finalized the engine; this is the run's
    // deterministic closing state.
    print!("{}", engine.slo_text());
    if let Some(alerts) = r.alerts.as_deref() {
        if !alerts.is_empty() {
            println!("{}", report::alert_section(alerts).render());
        }
    }
    print_chaos_result(&cfg, &r);
}

/// `repro waterfall`: a chaos run with its local trace kept, assembled
/// into exact per-request causal waterfalls (`fluentps_obs::waterfall`).
/// Prints deterministic `waterfall-` lines for CI, the top-N slowest
/// requests as aligned text waterfalls, and the per-stage p50/p99 table;
/// exits non-zero on a balance or gapless violation.
fn run_waterfall_cmd(args: &[String]) {
    use fluentps_obs::waterfall::{self, SamplerConfig};

    let mut top = 5usize;
    let mut rest: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--top" {
            i += 1;
            top = parse_arg(args.get(i), "--top N");
        } else {
            rest.push(args[i].clone());
        }
        i += 1;
    }
    let mut cfg = fluentps_experiments::live::ChaosConfig::default();
    parse_chaos_args(&rest, &mut cfg, &mut None, false);
    cfg.keep_trace = true;
    eprintln!(
        "[repro] waterfall: {}w x {}s, {} iters, seed {}, faults {}, kill {:?}, top {}",
        cfg.num_workers, cfg.num_servers, cfg.max_iters, cfg.seed, cfg.faults, cfg.kill_server, top
    );

    let r = fluentps_experiments::live::run_chaos(&cfg);
    let trace = r
        .trace
        .as_ref()
        .expect("keep_trace retains the local trace");
    let set = waterfall::assemble(trace);
    // Retain everything: the repro surface is for offline inspection, and
    // an all-retained set is a pure function of the seed (the tail sampler
    // proper is exercised by the live `/waterfall?top=` endpoint).
    let sampled = waterfall::tail_sample(&set, SamplerConfig::default());

    for w in &sampled.retained {
        println!("{}", w.stable_line());
    }
    println!(
        "waterfall-balance observed={} retained={} sampled_out={} unstamped={} dropped={}",
        sampled.observed,
        sampled.retained.len(),
        sampled.sampled_out,
        set.unstamped_events,
        trace.dropped
    );
    let balance_ok = match sampled.balance() {
        Ok(()) => true,
        Err(e) => {
            eprintln!("[repro] {e}");
            false
        }
    };
    let mut gapless_ok = true;
    for w in &sampled.retained {
        if let Err(e) = w.check_gapless() {
            eprintln!("[repro] gapless violation: {e}");
            gapless_ok = false;
        }
    }
    println!(
        "waterfall-gapless {}",
        if gapless_ok { "ok" } else { "FAILED" }
    );

    // Wall-clock output below this point: aligned waterfalls for the
    // slowest requests, then the per-stage transition latency table.
    let slowest = set.slowest(top);
    print!("{}", waterfall::render_text(&slowest));
    println!(
        "{:<42} {:>7} {:>9} {:>9} {:>9}",
        "stage transition", "count", "p50_us", "p99_us", "max_us"
    );
    for (name, h) in waterfall::stage_table(&sampled.retained) {
        println!(
            "{name:<42} {:>7} {:>9} {:>9} {:>9}",
            h.count(),
            h.quantile_upper(0.5),
            h.quantile_upper(0.99),
            h.max()
        );
    }
    // The exemplar-bearing histograms the live `/waterfall` endpoint
    // refreshes into `/metrics`, rendered once for the log.
    let registry = fluentps_obs::MetricsRegistry::new();
    waterfall::export_metrics(&registry, &sampled.retained);
    for line in registry.render_text().lines() {
        eprintln!("[repro] {line}");
    }

    print_chaos_result(&cfg, &r);
    if !(balance_ok && gapless_ok) {
        std::process::exit(1);
    }
}

/// `repro profile`: a live TCP training run under the span profiler.
/// Prints the top-N self-time table plus stable `profile-span` lines for
/// CI, and optionally writes the full profile to a file.
fn run_profile_cmd(args: &[String]) {
    use fluentps_experiments::profile::{run_profile, ProfileConfig};
    use fluentps_obs::ProfMetric;

    let mut cfg = ProfileConfig::default();
    let mut out: Option<String> = None;
    let mut top = 12usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workers" => {
                i += 1;
                cfg.num_workers = parse_arg(args.get(i), "--workers N");
            }
            "--servers" => {
                i += 1;
                cfg.num_servers = parse_arg(args.get(i), "--servers N");
            }
            "--iters" => {
                i += 1;
                cfg.max_iters = parse_arg(args.get(i), "--iters N");
            }
            "--seed" => {
                i += 1;
                cfg.seed = parse_arg(args.get(i), "--seed N");
            }
            "--top" => {
                i += 1;
                top = parse_arg(args.get(i), "--top N");
            }
            "--out" => {
                i += 1;
                out = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--metrics-addr" => {
                i += 1;
                let raw = args.get(i).cloned().unwrap_or_else(|| usage());
                cfg.metrics_addr = Some(raw.parse().unwrap_or_else(|e| {
                    eprintln!("[repro] bad --metrics-addr {raw:?}: {e}");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("[repro] unknown profile argument {other:?}");
                usage();
            }
        }
        i += 1;
    }
    eprintln!(
        "[repro] profile: {}w x {}s, {} iters, seed {}",
        cfg.num_workers, cfg.num_servers, cfg.max_iters, cfg.seed
    );
    if let Some(addr) = cfg.metrics_addr {
        eprintln!("[repro] serving /profile, /metrics and /trace on http://{addr}/");
    }
    let r = run_profile(&cfg);
    println!("{}", report::profile_section(&r.report, top).render());
    // Stable per-span lines so CI can grep for the instrumented layers.
    for (path, stat) in r.report.top_self(top) {
        println!(
            "profile-span path={path} calls={} self_ns={} total_ns={} self_allocs={} self_bytes={}",
            stat.count,
            (stat.self_secs * 1e9).round() as u64,
            (stat.total_secs * 1e9).round() as u64,
            stat.self_allocs,
            stat.self_alloc_bytes,
        );
    }
    if let Some(path) = out {
        let rendered = if path.ends_with(".json") {
            r.report.speedscope("fluentps profile")
        } else {
            r.report.folded(ProfMetric::SelfTime)
        };
        std::fs::write(&path, rendered).expect("write profile file");
        eprintln!("[repro] wrote {path}");
    }
    eprintln!(
        "[repro] profile done in {:.2}s, accuracy {:.3}, {} distinct span paths",
        r.wall_seconds,
        r.accuracy,
        r.report.spans.len()
    );
}

fn run_figures(args: &[String]) {
    let mut which: Vec<String> = Vec::new();
    let mut full = false;
    let mut csv_dir: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut metrics_addr: Option<std::net::SocketAddr> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => full = true,
            "--csv" => {
                i += 1;
                csv_dir = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--trace" => {
                i += 1;
                trace_out = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--metrics-addr" => {
                i += 1;
                let raw = args.get(i).cloned().unwrap_or_else(|| usage());
                metrics_addr = Some(raw.parse().unwrap_or_else(|e| {
                    eprintln!("[repro] bad --metrics-addr {raw:?}: {e}");
                    std::process::exit(2);
                }));
            }
            name => which.push(name.to_string()),
        }
        i += 1;
    }
    if let Some(path) = &trace_out {
        run_traced(path, full, metrics_addr);
    }
    if which.is_empty() {
        if trace_out.is_some() {
            return;
        }
        usage();
    }
    let scale = Scale { full };
    let all = which.iter().any(|w| w == "all");
    let wants = |name: &str| all || which.iter().any(|w| w == name);

    let mut tables: Vec<Table> = Vec::new();
    let mut run_one = |name: &str, f: &dyn Fn() -> Vec<Table>| {
        if wants(name) {
            eprintln!(
                "[repro] running {name} ({} scale)...",
                if full { "full" } else { "quick" }
            );
            let start = std::time::Instant::now();
            let out = f();
            eprintln!(
                "[repro] {name} done in {:.1}s",
                start.elapsed().as_secs_f64()
            );
            for t in &out {
                println!("{}", t.render());
            }
            tables.extend(out);
        }
    };

    run_one("fig1", &|| figures::fig1::run_figure(scale));
    run_one("fig3", &|| figures::fig3::run_figure());
    run_one("fig6", &|| figures::fig6::run_figure(scale));
    run_one("fig7", &|| figures::fig7::run_figure(scale));
    run_one("fig8", &|| figures::fig8::run_figure(scale));
    run_one("fig9", &|| figures::fig9::run_figure(scale));
    run_one("fig10", &|| figures::fig10::run_figure(scale, false));
    run_one("fig11", &|| figures::fig10::run_figure(scale, true));
    run_one("table4", &|| figures::table4::run_figure(scale));
    run_one("ablation-eps", &|| {
        figures::ablations::eps_chunk_sweep(scale)
    });
    run_one("ablation-sched", &|| {
        figures::ablations::scheduler_cost_sweep(scale)
    });
    run_one("ablation-filter", &|| {
        figures::ablations::significance_filter_sweep(scale)
    });
    run_one("ablation-stragglers", &|| {
        figures::ablations::straggler_sweep(scale)
    });

    if tables.is_empty() {
        usage();
    }

    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(&dir).expect("create csv dir");
        for (i, t) in tables.iter().enumerate() {
            let path = format!("{dir}/table_{i:02}.csv");
            let mut f = std::fs::File::create(&path).expect("create csv file");
            f.write_all(t.to_csv().as_bytes()).expect("write csv");
            eprintln!("[repro] wrote {path}");
        }
    }
}

/// Run the traced demo, verify the trace against the shard statistics, and
/// write the export next to a printed summary. With `metrics_addr` the
/// introspection endpoint serves `/metrics` and `/trace` during the run.
fn run_traced(path: &str, full: bool, metrics_addr: Option<std::net::SocketAddr>) {
    eprintln!(
        "[repro] tracing a FluentPS demo run ({} scale)...",
        if full { "full" } else { "quick" }
    );
    let mut cfg = tracerun::demo_config(full);
    cfg.metrics_addr = metrics_addr;
    if let Some(addr) = metrics_addr {
        eprintln!("[repro] serving /metrics, /healthz and /trace on http://{addr}/");
    }
    let r = fluentps_experiments::driver::run(&cfg);
    let trace = r.trace.as_ref().expect("traced run returns a trace");
    if let Err(e) = report::trace_reconciles(trace, &r.stats) {
        eprintln!("[repro] trace does NOT reconcile with shard stats: {e}");
        std::process::exit(1);
    }
    let rendered = tracerun::render_for_path(path, trace);
    std::fs::write(path, rendered).expect("write trace file");
    println!("{}", report::trace_section(trace, &r.stats).render());
    eprintln!(
        "[repro] wrote {path} ({} events, {} dropped from ring buffers)",
        trace.events.len(),
        trace.dropped
    );
}

/// `repro analyze FILE`: parse a JSONL trace and print the analytics report.
fn run_analyze(args: &[String]) {
    let mut path: Option<String> = None;
    let mut markdown = false;
    let mut analytical: Option<Box<dyn Fn(u64) -> f64>> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--md" => markdown = true,
            "--ssp" => {
                i += 1;
                let s: u64 = parse_arg(args.get(i), "--ssp S");
                analytical = Some(Box::new(move |k| if k >= s { 1.0 } else { 0.0 }));
            }
            "--pssp-const" => {
                let s: u64 = parse_arg(args.get(i + 1), "--pssp-const S C");
                let c: f64 = parse_arg(args.get(i + 2), "--pssp-const S C");
                i += 2;
                analytical = Some(Box::new(move |k| pssp::constant_probability(c, s, k)));
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            other => {
                eprintln!("[repro] unknown analyze argument {other:?}");
                usage();
            }
        }
        i += 1;
    }
    let path = path.unwrap_or_else(|| usage());
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("[repro] cannot read {path}: {e}");
        std::process::exit(1);
    });
    let trace = analyze::parse_jsonl(&text).unwrap_or_else(|e| {
        eprintln!("[repro] {path} is not a JSONL trace: {e}");
        std::process::exit(1);
    });
    if trace.events.is_empty() {
        eprintln!("[repro] {path} holds no events — nothing to analyze");
        std::process::exit(1);
    }
    let a = analyze::analyze(&trace);
    for t in report::analysis_sections(&a, analytical.as_deref()) {
        if markdown {
            println!("{}", t.to_markdown());
        } else {
            println!("{}", t.render());
        }
    }
    let straggler = a
        .straggler()
        .map(|w| format!("worker {} ({} iters)", w.worker, w.iterations))
        .unwrap_or_else(|| "none".to_string());
    eprintln!(
        "[repro] analyzed {} events ({} dropped) over {:.3}s: straggler {straggler}, \
         max granted staleness {}, critical path {:.6}s",
        trace.events.len(),
        a.dropped,
        a.span.1 - a.span.0,
        a.max_granted_staleness()
            .map(|s| s.to_string())
            .unwrap_or_else(|| "—".to_string()),
        a.critical_path_secs(),
    );
}

/// `repro validate-json FILE`: check the file (or each line of a `.jsonl`
/// file) parses under the in-tree JSON validator.
fn run_validate_json(args: &[String]) {
    let path = args.first().cloned().unwrap_or_else(|| usage());
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("[repro] cannot read {path}: {e}");
        std::process::exit(1);
    });
    if path.ends_with(".jsonl") {
        for (n, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            if let Err(e) = fluentps_obs::json::validate(line) {
                eprintln!("[repro] {path}:{} invalid JSON: {e}", n + 1);
                std::process::exit(1);
            }
        }
    } else if let Err(e) = fluentps_obs::json::validate(&text) {
        eprintln!("[repro] {path} invalid JSON: {e}");
        std::process::exit(1);
    }
    eprintln!("[repro] {path} is valid JSON");
}

fn parse_arg<T: std::str::FromStr>(arg: Option<&String>, what: &str) -> T
where
    T::Err: std::fmt::Display,
{
    let raw = arg.cloned().unwrap_or_else(|| {
        eprintln!("[repro] missing value for {what}");
        std::process::exit(2);
    });
    raw.parse().unwrap_or_else(|e| {
        eprintln!("[repro] bad value {raw:?} for {what}: {e}");
        std::process::exit(2);
    })
}

fn usage() -> ! {
    eprintln!(
        "usage: repro <fig1|fig3|fig6|fig7|fig8|fig9|fig10|fig11|table4|ablation-eps|ablation-sched|ablation-filter|ablation-stragglers|all> [--full] [--csv DIR] [--trace FILE] [--metrics-addr ADDR]\n       repro analyze FILE [--md] [--ssp S | --pssp-const S C]\n       repro validate-json FILE\n       repro chaos [--seed N] [--workers N] [--servers N] [--iters N] [--staleness S] [--faults N] [--kill M@V] [--supervisors N] [--kill-supervisor K@V]... [--metrics-addr ADDR]\n       repro collect FILE [chaos flags] [--ring N]\n       repro watch [chaos flags]\n       repro waterfall [chaos flags] [--top N]\n       repro profile [--workers N] [--servers N] [--iters N] [--seed N] [--metrics-addr ADDR] [--out FILE] [--top N]"
    );
    std::process::exit(2);
}
