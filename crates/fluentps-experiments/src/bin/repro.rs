//! `repro` — regenerate the paper's tables and figures.
//!
//! Usage:
//!   repro <fig1|fig3|fig6|fig7|fig8|fig9|fig10|fig11|table4|all> [--full] [--csv DIR]
//!   repro --trace FILE [--full]
//!
//! Quick mode (default) finishes each experiment in seconds-to-minutes;
//! `--full` uses paper-like worker counts and iteration budgets.
//! `--trace FILE` runs a traced FluentPS demo and writes the event trace to
//! FILE — Chrome trace-event JSON (open in Perfetto or `chrome://tracing`),
//! or JSONL when FILE ends in `.jsonl`.

use std::io::Write as _;

use fluentps_experiments::figures::{self, Scale};
use fluentps_experiments::report::{self, Table};
use fluentps_experiments::tracerun;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut full = false;
    let mut csv_dir: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => full = true,
            "--csv" => {
                i += 1;
                csv_dir = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--trace" => {
                i += 1;
                trace_out = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            name => which.push(name.to_string()),
        }
        i += 1;
    }
    if let Some(path) = &trace_out {
        run_traced(path, full);
    }
    if which.is_empty() {
        if trace_out.is_some() {
            return;
        }
        usage();
    }
    let scale = Scale { full };
    let all = which.iter().any(|w| w == "all");
    let wants = |name: &str| all || which.iter().any(|w| w == name);

    let mut tables: Vec<Table> = Vec::new();
    let mut run_one = |name: &str, f: &dyn Fn() -> Vec<Table>| {
        if wants(name) {
            eprintln!(
                "[repro] running {name} ({} scale)...",
                if full { "full" } else { "quick" }
            );
            let start = std::time::Instant::now();
            let out = f();
            eprintln!(
                "[repro] {name} done in {:.1}s",
                start.elapsed().as_secs_f64()
            );
            for t in &out {
                println!("{}", t.render());
            }
            tables.extend(out);
        }
    };

    run_one("fig1", &|| figures::fig1::run_figure(scale));
    run_one("fig3", &|| figures::fig3::run_figure());
    run_one("fig6", &|| figures::fig6::run_figure(scale));
    run_one("fig7", &|| figures::fig7::run_figure(scale));
    run_one("fig8", &|| figures::fig8::run_figure(scale));
    run_one("fig9", &|| figures::fig9::run_figure(scale));
    run_one("fig10", &|| figures::fig10::run_figure(scale, false));
    run_one("fig11", &|| figures::fig10::run_figure(scale, true));
    run_one("table4", &|| figures::table4::run_figure(scale));
    run_one("ablation-eps", &|| {
        figures::ablations::eps_chunk_sweep(scale)
    });
    run_one("ablation-sched", &|| {
        figures::ablations::scheduler_cost_sweep(scale)
    });
    run_one("ablation-filter", &|| {
        figures::ablations::significance_filter_sweep(scale)
    });
    run_one("ablation-stragglers", &|| {
        figures::ablations::straggler_sweep(scale)
    });

    if tables.is_empty() {
        usage();
    }

    if let Some(dir) = csv_dir {
        std::fs::create_dir_all(&dir).expect("create csv dir");
        for (i, t) in tables.iter().enumerate() {
            let path = format!("{dir}/table_{i:02}.csv");
            let mut f = std::fs::File::create(&path).expect("create csv file");
            f.write_all(t.to_csv().as_bytes()).expect("write csv");
            eprintln!("[repro] wrote {path}");
        }
    }
}

/// Run the traced demo, verify the trace against the shard statistics, and
/// write the export next to a printed summary.
fn run_traced(path: &str, full: bool) {
    eprintln!(
        "[repro] tracing a FluentPS demo run ({} scale)...",
        if full { "full" } else { "quick" }
    );
    let r = tracerun::demo_run(full);
    let trace = r.trace.as_ref().expect("traced run returns a trace");
    if let Err(e) = report::trace_reconciles(trace, &r.stats) {
        eprintln!("[repro] trace does NOT reconcile with shard stats: {e}");
        std::process::exit(1);
    }
    let rendered = tracerun::render_for_path(path, trace);
    std::fs::write(path, rendered).expect("write trace file");
    println!("{}", report::trace_section(trace, &r.stats).render());
    eprintln!(
        "[repro] wrote {path} ({} events, {} dropped from ring buffers)",
        trace.events.len(),
        trace.dropped
    );
}

fn usage() -> ! {
    eprintln!(
        "usage: repro <fig1|fig3|fig6|fig7|fig8|fig9|fig10|fig11|table4|ablation-eps|ablation-sched|ablation-filter|ablation-stragglers|all> [--full] [--csv DIR] [--trace FILE]"
    );
    std::process::exit(2);
}
