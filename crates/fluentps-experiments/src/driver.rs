//! The simulation driver: a complete data-parallel training job over the
//! discrete-event fabric.
//!
//! One event loop owns everything — worker states (with real models and
//! optimizers), the M server shards (the *same* `ServerShard` state machine
//! the live engines use), the network topology, and the scheduler when the
//! engine under test is PS-Lite. Gradients are computed with the parameter
//! versions the synchronization model actually delivered, so staleness
//! affects accuracy through the true mechanism; all timing comes from the
//! compute/network models, so "who waits on whom" matches the architecture
//! under test.

use fluentps_util::rng::StdRng;

use fluentps_baseline::pslite::{PsLiteMode, PsLiteScheduler};
use fluentps_baseline::ssptable::SspTableModel;
use fluentps_core::condition::SyncModel;
use fluentps_core::dpr::DprPolicy;
use fluentps_core::eps::{DefaultSlicer, EpsSlicer, ParamSpec, SliceMap, Slicer};
use fluentps_core::server::{GradScale, PullOutcome, ServerShard, ShardConfig};
use fluentps_core::stats::ShardStats;
use fluentps_core::worker::Router;
use fluentps_ml::data::{synthetic, BatchSampler, Dataset, SyntheticSpec};
use fluentps_ml::metrics::{Curve, CurvePoint};
use fluentps_ml::models::{Mlp, Model, ResidualMlp, SoftmaxRegression};
use fluentps_ml::optim::{Optimizer, Sgd};
use fluentps_ml::schedule::LrSchedule;
use fluentps_ml::ParamMap;
use fluentps_obs::{
    ClockSource, EventKind, RecordArgs, Trace, TraceCollector, Tracer, VirtualClock,
};
use fluentps_simnet::compute::{ComputeModel, StragglerSpec, WorkerCompute};
use fluentps_simnet::event::EventQueue;
use fluentps_simnet::net::LinkModel;
use fluentps_simnet::topology::{ClusterTopology, Duplex};
use fluentps_transport::KvPairs;

/// Which parameter-server architecture handles synchronization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EngineKind {
    /// FluentPS: per-server conditions, overlap synchronization.
    FluentPs {
        /// Synchronization model on every shard.
        model: SyncModel,
        /// DPR execution policy.
        policy: DprPolicy,
    },
    /// PS-Lite: centralized scheduler, non-overlap synchronization.
    PsLite {
        /// Scheduler mode.
        mode: PsLiteMode,
    },
    /// Bösen/SSPtable: SSP through client caches whose consistency view
    /// degrades with worker count (effective staleness grows with N).
    SspTable {
        /// Nominal staleness threshold.
        s: u64,
    },
}

/// Parameter placement strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlicerKind {
    /// PS-Lite default: contiguous ranges by key count (imbalanced bytes).
    Default,
    /// Elastic Parameter Slicing with the given chunk bound.
    Eps {
        /// Maximum values per chunk.
        max_chunk: usize,
    },
}

/// What the workers train.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelKind {
    /// No real training: gradients are empty, only synchronization timing
    /// and DPR counts are measured. `params` is the (virtual) parameter
    /// inventory whose byte sizes drive the network model.
    TimingOnly {
        /// Virtual parameter inventory.
        params: Vec<ParamSpec>,
    },
    /// Softmax regression on the configured dataset.
    Softmax,
    /// The AlexNet-like MLP.
    Mlp {
        /// Hidden layer widths (input/classes come from the dataset).
        hidden: Vec<usize>,
    },
    /// The ResNet-56-like residual MLP.
    Residual {
        /// Hidden width.
        width: usize,
        /// Residual blocks.
        blocks: usize,
    },
}

/// Full experiment configuration.
#[derive(Debug, Clone)]
pub struct DriverConfig {
    /// Engine under test.
    pub engine: EngineKind,
    /// Number of workers.
    pub num_workers: u32,
    /// Number of servers.
    pub num_servers: u32,
    /// Placement strategy.
    pub slicer: SlicerKind,
    /// Iterations per worker.
    pub max_iters: u64,
    /// Model.
    pub model: ModelKind,
    /// Dataset (required unless `TimingOnly`).
    pub dataset: Option<SyntheticSpec>,
    /// Per-worker minibatch size.
    pub batch_size: usize,
    /// Learning-rate schedule.
    pub lr: LrSchedule,
    /// SGD momentum.
    pub momentum: f32,
    /// Nominal per-iteration compute seconds (at data-parallel degree 1; the
    /// driver divides by N to model the shrinking per-worker batch).
    pub compute_base: f64,
    /// Compute jitter fraction.
    pub compute_jitter: f64,
    /// Straggler behaviour.
    pub stragglers: StragglerSpec,
    /// Network link model.
    pub link: LinkModel,
    /// Per-message processing cost at PS-Lite's centralized scheduler:
    /// `cost = sched_cost_base + sched_cost_per_worker · N`. The scheduler
    /// is single-threaded, so these costs *serialize* — this is the
    /// "management overhead of the centralized structure" the paper
    /// offloads onto the servers. Every progress report and every barrier
    /// release passes through this queue. Ignored for FluentPS/SSPtable.
    pub sched_cost_base: f64,
    /// Per-worker component of the scheduler message cost (the barrier scan
    /// is O(N) per report in PS-Lite's progress tracker).
    pub sched_cost_per_worker: f64,
    /// Warm-start parameters: when set, shards are initialized from these
    /// values instead of the model's seeded initialization — the elasticity
    /// path (checkpoint → rebalance → resume) and staged training both use
    /// this.
    pub initial_params: Option<fluentps_ml::ParamMap>,
    /// Optional per-server synchronization models (Figure 2: server 1 runs
    /// SSP while server 2 runs PSSP and server M drops stragglers). Length
    /// must equal `num_servers`; overrides the engine's single model for
    /// FluentPS runs.
    pub per_server_models: Option<Vec<SyncModel>>,
    /// Fail-stop injection: `(worker, iteration)` — the worker crashes
    /// after computing that iteration's gradients and never pushes or pulls
    /// again. Under BSP/SSP the cluster stalls at the corresponding
    /// `V_train`; under drop-stragglers (`N_t < N`) training completes.
    pub fail_worker: Option<(u32, u64)>,
    /// Fail-stop injection on a *server*: `(server, v_train)` — the shard
    /// crashes as soon as its `V_train` reaches the threshold. The
    /// simulation then mirrors the live recovery protocol's degraded mode:
    /// the dead shard's slices remap onto the survivors
    /// ([`EpsSlicer::remap_dead`]), its parameter values carry over,
    /// in-flight pulls addressed to the dead server are re-issued to the
    /// adopting survivors, and pushes to it are lost. FluentPS engines
    /// only (PS-Lite's scheduler recovery is out of scope).
    pub fail_server: Option<(u32, u64)>,
    /// Optional Gaia-style significance filter on the workers:
    /// `(threshold, max_hold)`. Insignificant updates accumulate locally and
    /// only cross the wire once their aggregate significance crosses the
    /// threshold (or `max_hold` iterations passed). Servers still receive an
    /// empty progress-bearing push every iteration so synchronization is
    /// unaffected; only gradient traffic shrinks.
    pub significance_filter: Option<(f64, u32)>,
    /// Server CPU seconds consumed by each *deferred* pull (DPR buffer
    /// scan, callback registration and the later release pass on the
    /// single-threaded server). This is the per-synchronization overhead
    /// that makes the soft barrier's high DPR frequency expensive.
    pub server_dpr_cost: f64,
    /// Multiplier on all wire byte sizes. The synthetic training models are
    /// deliberately small so real gradient math stays cheap; this factor
    /// scales their *network footprint* up to the real network's parameter
    /// count (e.g. ×65 maps the 13k-parameter residual stand-in to
    /// ResNet-56's 0.85M parameters ≈ 3.4 MB per transfer).
    pub wire_bytes_scale: f64,
    /// Evaluate the model every this many *global* iterations (0 = only at
    /// the end). Ignored for `TimingOnly`.
    pub eval_every: u64,
    /// When `Some(capacity)`, record a typed event trace of the run —
    /// timestamped by the *virtual* clock — into per-actor ring buffers of
    /// that capacity, returned as [`RunResult::trace`]. `None` (default)
    /// keeps the hot path trace-free.
    pub trace_events: Option<usize>,
    /// When `Some(addr)`, serve a live introspection endpoint there for
    /// the duration of the run: `/metrics` (Prometheus text), `/healthz`,
    /// and — when [`DriverConfig::trace_events`] is also set — `/trace`
    /// (JSONL tail). Bind loopback unless deliberately exposing it.
    pub metrics_addr: Option<std::net::SocketAddr>,
    /// Master seed.
    pub seed: u64,
}

impl Default for DriverConfig {
    fn default() -> Self {
        DriverConfig {
            engine: EngineKind::FluentPs {
                model: SyncModel::Bsp,
                policy: DprPolicy::LazyExecution,
            },
            num_workers: 4,
            num_servers: 2,
            slicer: SlicerKind::Eps { max_chunk: 4096 },
            max_iters: 100,
            model: ModelKind::Softmax,
            dataset: Some(SyntheticSpec::c10_like(1)),
            batch_size: 16,
            lr: LrSchedule::Constant(0.2),
            momentum: 0.9,
            compute_base: 0.4,
            compute_jitter: 0.2,
            stragglers: StragglerSpec::random_slowdowns(),
            link: LinkModel::gbe(),
            sched_cost_base: 1e-3,
            sched_cost_per_worker: 2.5e-3,
            initial_params: None,
            per_server_models: None,
            fail_worker: None,
            fail_server: None,
            significance_filter: None,
            server_dpr_cost: 8e-3,
            wire_bytes_scale: 1.0,
            eval_every: 0,
            trace_events: None,
            metrics_addr: None,
            seed: 0,
        }
    }
}

/// Aggregated results of one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Accuracy/loss curve over simulated time (empty for `TimingOnly`).
    pub curve: Curve,
    /// Final test accuracy (0 for `TimingOnly`).
    pub final_accuracy: f32,
    /// Simulated seconds until the last worker finished.
    pub total_time: f64,
    /// Mean per-worker seconds spent computing gradients.
    pub compute_time_mean: f64,
    /// Mean per-worker seconds NOT computing (network + synchronization
    /// waits) — the paper's "communication time".
    pub comm_time_mean: f64,
    /// Merged shard statistics (DPRs etc.).
    pub stats: ShardStats,
    /// DPRs per 100 global iterations.
    pub dprs_per_100: f64,
    /// Scheduler barrier hits (PS-Lite only).
    pub barrier_count: u64,
    /// The busiest server's total transfer seconds (EPS's target metric).
    pub max_server_comm: f64,
    /// Final server-side parameters (training runs only) — the handoff for
    /// warm-started continuation runs.
    pub final_params: Option<fluentps_ml::ParamMap>,
    /// Virtual-clock event trace (only when [`DriverConfig::trace_events`]
    /// was set).
    pub trace: Option<Trace>,
}

enum Ev {
    ComputeDone {
        worker: u32,
    },
    PushArrive {
        worker: u32,
        iter: u64,
        server: u32,
        kv: KvPairs,
        bytes: usize,
    },
    PullArrive {
        worker: u32,
        iter: u64,
        server: u32,
    },
    ResponseArrive {
        worker: u32,
        iter: u64,
        server: u32,
        kv: KvPairs,
        bytes: usize,
    },
    AckArrive {
        worker: u32,
        iter: u64,
    },
    SchedulerReport {
        worker: u32,
        iter: u64,
    },
    PullSend {
        worker: u32,
        iter: u64,
    },
}

struct WorkerState {
    iter: u64,
    params: ParamMap,
    optimizer: Sgd,
    filter: Option<fluentps_core::filter::SignificanceFilter>,
    sampler: Option<BatchSampler>,
    pending_responses: u32,
    pending_acks: u32,
    compute_total: f64,
    finish_time: f64,
    done: bool,
}

/// Byte sizes of the three message kinds per server, derived from the
/// placement (virtual sizes — payloads need not be materialized).
struct WireSizes {
    push: Vec<usize>,
    pull_req: Vec<usize>,
    response: Vec<usize>,
}

fn wire_sizes(map: &SliceMap, scale: f64) -> WireSizes {
    use fluentps_transport::codec;
    let m = map.num_servers() as usize;
    let mut keys = vec![0usize; m];
    let mut vals = vec![0usize; m];
    for p in map.placements() {
        keys[p.server as usize] += 1;
        vals[p.server as usize] += p.len;
    }
    // Codec-measured sizes (the exact `encode()` lengths of the messages the
    // live engines would put on the wire), so simulated transfer times match
    // real payloads byte-for-byte before scaling.
    let sc = |b: usize| ((b as f64) * scale) as usize;
    WireSizes {
        push: (0..m)
            .map(|i| sc(codec::spush_wire_len_counts(keys[i], vals[i])))
            .collect(),
        pull_req: (0..m).map(|i| codec::spull_wire_len(keys[i])).collect(),
        response: (0..m)
            .map(|i| sc(codec::pull_response_wire_len_counts(keys[i], vals[i])))
            .collect(),
    }
}

/// Run one experiment to completion.
pub fn run(cfg: &DriverConfig) -> RunResult {
    Simulation::new(cfg).run()
}

struct Simulation<'a> {
    cfg: &'a DriverConfig,
    model: Option<Box<dyn Model>>,
    train: Option<Dataset>,
    test: Option<Dataset>,
    router: Router,
    shards: Vec<ServerShard>,
    workers: Vec<WorkerState>,
    scheduler: Option<PsLiteScheduler>,
    sched_queue: fluentps_simnet::net::NicQueue,
    sched_msg_cost: f64,
    ssptable_maint: f64,
    /// `Some(r)` for the SSPtable engine: workers refresh their client
    /// cache (i.e. actually pull) only every `r`-th iteration; in between
    /// they reuse stale cached parameters — Bösen's cache semantics, with
    /// `r` = the effective staleness after view-maintenance degradation.
    ssptable_refresh: Option<u64>,
    topo: ClusterTopology,
    compute: WorkerCompute,
    wires: WireSizes,
    queue: EventQueue<Ev>,
    rng: StdRng,
    curve: Curve,
    iterations_done: u64,
    active_server_count: u32,
    /// Set once [`DriverConfig::fail_server`] fires.
    dead_server: Option<u32>,
    /// Survivors that adopted at least one of the dead server's slices —
    /// the re-issue targets for pulls addressed to the dead server.
    adopters: Vec<u32>,
    collector: Option<TraceCollector>,
    /// Driver-level tracer for wire send/recv events (shard-internal events
    /// go through each shard's own tracer). Disabled when not tracing.
    tracer: Tracer,
    /// Live endpoint held open for the duration of the run (dropped —
    /// and therefore stopped — when the simulation finishes).
    introspection: Option<fluentps_obs::IntrospectionServer>,
    metrics: fluentps_obs::MetricsRegistry,
}

impl<'a> Simulation<'a> {
    fn new(cfg: &'a DriverConfig) -> Self {
        let (model, train, test): (Option<Box<dyn Model>>, _, _) = match &cfg.model {
            ModelKind::TimingOnly { .. } => (None, None, None),
            kind => {
                let spec = cfg.dataset.expect("training run needs a dataset");
                let (train, test) = synthetic(spec);
                let model: Box<dyn Model> = match kind {
                    ModelKind::Softmax => Box::new(SoftmaxRegression {
                        dim: spec.dim,
                        classes: spec.classes,
                    }),
                    ModelKind::Mlp { hidden } => {
                        let mut dims = vec![spec.dim];
                        dims.extend_from_slice(hidden);
                        dims.push(spec.classes);
                        Box::new(Mlp { dims })
                    }
                    ModelKind::Residual { width, blocks } => Box::new(ResidualMlp {
                        input: spec.dim,
                        width: *width,
                        blocks: *blocks,
                        classes: spec.classes,
                    }),
                    ModelKind::TimingOnly { .. } => unreachable!(),
                };
                (Some(model), Some(train), Some(test))
            }
        };

        // Parameter inventory: real shapes for training runs, the virtual
        // inventory for timing runs.
        let specs: Vec<ParamSpec> = match (&cfg.model, &model) {
            (ModelKind::TimingOnly { params }, _) => params.clone(),
            (_, Some(m)) => m
                .param_shapes()
                .iter()
                .map(|s| ParamSpec {
                    key: s.key,
                    len: s.len,
                })
                .collect(),
            _ => unreachable!(),
        };
        let map = match cfg.slicer {
            SlicerKind::Default => DefaultSlicer.slice(&specs, cfg.num_servers),
            SlicerKind::Eps { max_chunk } => EpsSlicer { max_chunk }.slice(&specs, cfg.num_servers),
        };
        let wires = wire_sizes(&map, cfg.wire_bytes_scale);

        // Shard-level sync model per engine.
        let (shard_model, shard_policy) = match cfg.engine {
            EngineKind::FluentPs { model, policy } => (model, policy),
            // The scheduler gates synchronization; shards answer freely.
            EngineKind::PsLite { .. } => (SyncModel::Asp, DprPolicy::SoftBarrier),
            // SSPtable behaves like SSP with the degraded effective bound,
            // released via the soft barrier (Bösen semantics).
            EngineKind::SspTable { s } => (
                SyncModel::Ssp {
                    s: SspTableModel::new(s).effective_staleness(cfg.num_workers),
                },
                DprPolicy::SoftBarrier,
            ),
        };

        if let Some(models) = &cfg.per_server_models {
            assert_eq!(
                models.len(),
                cfg.num_servers as usize,
                "per_server_models length must equal num_servers"
            );
            assert!(
                matches!(cfg.engine, EngineKind::FluentPs { .. }),
                "per-server models are a FluentPS feature"
            );
        }
        if cfg.fail_server.is_some() {
            assert!(
                matches!(cfg.engine, EngineKind::FluentPs { .. }),
                "fail_server is a FluentPS feature"
            );
            assert!(
                cfg.num_servers >= 2,
                "fail_server needs a survivor to remap onto"
            );
        }
        let init_params = match (&cfg.initial_params, &model) {
            (Some(warm), _) => Some(warm.clone()),
            (None, Some(m)) => Some(m.init_params(cfg.seed)),
            (None, None) => None,
        };
        let mut shards = Vec::with_capacity(cfg.num_servers as usize);
        for m in 0..cfg.num_servers {
            let model_for_shard = cfg
                .per_server_models
                .as_ref()
                .map(|v| v[m as usize])
                .unwrap_or(shard_model);
            let mut shard = ServerShard::new(ShardConfig {
                server_id: m,
                num_workers: cfg.num_workers,
                model: model_for_shard,
                policy: shard_policy,
                grad_scale: GradScale::DivideByN,
            });
            for p in map.placements().iter().filter(|p| p.server == m) {
                let vals = match &init_params {
                    Some(ip) => ip[&p.orig_key][p.offset..p.offset + p.len].to_vec(),
                    None => Vec::new(), // timing runs carry no values
                };
                shard.init_param(p.new_key, vals);
            }
            shards.push(shard);
        }

        let router = Router::new(map);
        let active_server_count = router.active_servers().count() as u32;

        let workers = (0..cfg.num_workers)
            .map(|n| {
                let sampler = train.as_ref().map(|tr| {
                    BatchSampler::new(
                        tr.partition(n, cfg.num_workers),
                        cfg.batch_size,
                        cfg.seed.wrapping_add(1000 + n as u64),
                    )
                });
                WorkerState {
                    iter: 0,
                    params: init_params.clone().unwrap_or_default(),
                    optimizer: Sgd::new(cfg.lr.lr(0), cfg.momentum, 0.0),
                    filter: cfg.significance_filter.map(|(threshold, max_hold)| {
                        fluentps_core::filter::SignificanceFilter::new(threshold, max_hold)
                    }),
                    sampler,
                    pending_responses: 0,
                    pending_acks: 0,
                    compute_total: 0.0,
                    finish_time: 0.0,
                    done: false,
                }
            })
            .collect();

        let scheduler = match cfg.engine {
            EngineKind::PsLite { mode } => Some(PsLiteScheduler::new(cfg.num_workers, mode)),
            _ => None,
        };
        let ssptable_refresh = match cfg.engine {
            EngineKind::SspTable { s } => Some(
                SspTableModel::new(s)
                    .effective_staleness(cfg.num_workers)
                    .max(1),
            ),
            _ => None,
        };
        let ssptable_maint = match cfg.engine {
            // Charge Θ(N) view maintenance per push: a small per-unit cost
            // that adds up at scale.
            EngineKind::SspTable { s } => {
                SspTableModel::new(s).maintenance_cost(cfg.num_workers) * 50e-6
            }
            _ => 0.0,
        };

        // Per-worker compute shrinks with data parallelism (same global
        // batch split N ways) — the Figure 6 "computation time decreases"
        // effect.
        let per_worker_base = cfg.compute_base / cfg.num_workers as f64;
        let compute = WorkerCompute::new(
            per_worker_base.max(1e-6),
            cfg.compute_jitter,
            cfg.stragglers,
            cfg.num_workers,
            cfg.seed.wrapping_add(7),
        );

        // Tracing taps the same virtual clock the event queue advances, so
        // trace timestamps are simulated seconds, directly comparable with
        // `total_time`.
        let mut queue = EventQueue::new();
        let (collector, tracer) = match cfg.trace_events {
            Some(capacity) => {
                let clock = VirtualClock::new();
                queue.attach_clock(std::sync::Arc::clone(&clock));
                let collector = TraceCollector::new(ClockSource::virtual_clock(clock), capacity);
                for shard in &mut shards {
                    shard.set_tracer(collector.tracer());
                }
                let tracer = collector.tracer();
                (Some(collector), tracer)
            }
            None => (None, Tracer::disabled()),
        };

        let metrics = fluentps_obs::MetricsRegistry::new();
        let introspection = cfg.metrics_addr.map(|addr| {
            let scope = metrics.scope().with("engine", "simulated");
            scope.set_gauge("cluster_workers", cfg.num_workers as f64);
            scope.set_gauge("cluster_servers", cfg.num_servers as f64);
            scope.set_gauge("cluster_up", 1.0);
            fluentps_obs::http::serve(addr, metrics.clone(), collector.clone())
                .expect("bind introspection endpoint")
        });

        Simulation {
            cfg,
            model,
            train,
            test,
            router,
            shards,
            workers,
            scheduler,
            sched_queue: fluentps_simnet::net::NicQueue::new(),
            sched_msg_cost: cfg.sched_cost_base
                + cfg.sched_cost_per_worker * cfg.num_workers as f64,
            ssptable_maint,
            ssptable_refresh,
            topo: ClusterTopology::with_duplex(
                cfg.num_servers,
                cfg.link,
                // PS-Lite's single-threaded request loop serializes push
                // handling with pull responses; FluentPS overlaps them
                // (Section III-D).
                match cfg.engine {
                    EngineKind::PsLite { .. } => Duplex::Half,
                    _ => Duplex::Full,
                },
            ),
            compute,
            wires,
            queue,
            rng: StdRng::seed_from_u64(cfg.seed.wrapping_add(99)),
            curve: Curve::new(),
            iterations_done: 0,
            active_server_count,
            dead_server: None,
            adopters: Vec::new(),
            collector,
            tracer,
            introspection,
            metrics,
        }
    }

    fn run(mut self) -> RunResult {
        // Kick off iteration 0 on every worker.
        for w in 0..self.cfg.num_workers {
            let dur = self.compute.sample(w, 0);
            self.workers[w as usize].compute_total += dur;
            self.queue.schedule(dur, Ev::ComputeDone { worker: w });
        }
        while let Some((now, ev)) = self.queue.pop() {
            // Training is over once the *global* progress reaches the budget
            // on every shard — under drop-stragglers, nobody waits for the
            // straggler to finish the iterations that were dropped anyway.
            if self
                .shards
                .iter()
                .all(|sh| sh.v_train() >= self.cfg.max_iters)
            {
                for w in self.workers.iter_mut().filter(|w| !w.done) {
                    w.done = true;
                    w.finish_time = now;
                }
                break;
            }
            match ev {
                Ev::ComputeDone { worker } => self.on_compute_done(now, worker),
                Ev::PushArrive {
                    worker,
                    iter,
                    server,
                    kv,
                    bytes,
                } => self.on_push_arrive(now, worker, iter, server, kv, bytes),
                Ev::PullArrive {
                    worker,
                    iter,
                    server,
                } => self.on_pull_arrive(now, worker, iter, server),
                Ev::ResponseArrive {
                    worker,
                    iter,
                    server,
                    kv,
                    bytes,
                } => self.on_response(now, worker, iter, server, kv, bytes),
                Ev::AckArrive { worker, iter } => self.on_ack(now, worker, iter),
                Ev::SchedulerReport { worker, iter } => self.on_scheduler_report(now, worker, iter),
                Ev::PullSend { worker, iter } => self.send_pulls(now, worker, iter),
            }
        }
        self.finish()
    }

    fn is_training(&self) -> bool {
        self.model.is_some()
    }

    fn on_compute_done(&mut self, now: f64, worker: u32) {
        let iter = self.workers[worker as usize].iter;
        if let Some((failed, at)) = self.cfg.fail_worker {
            if worker == failed && iter >= at {
                // Fail-stop: the gradient is computed but never leaves the
                // node; no further events are scheduled for this worker.
                let w = &mut self.workers[worker as usize];
                w.done = true;
                w.finish_time = now;
                self.iterations_done += 1;
                return;
            }
        }
        // Real gradient (training) or a virtual payload (timing).
        let shard_payloads: Vec<KvPairs> = if self.is_training() {
            let model = self.model.as_ref().expect("training model");
            let train = self.train.as_ref().expect("train set");
            let w = &mut self.workers[worker as usize];
            let indices = w.sampler.as_mut().expect("sampler").next_indices();
            let batch = train.batch(&indices);
            let (_, grads) = model.loss_and_grad(&w.params, &batch);
            w.optimizer.set_lr(self.cfg.lr.lr(iter));
            let mut deltas = w.optimizer.deltas(&w.params, &grads);
            if let Some(filter) = &mut w.filter {
                use fluentps_core::filter::FilterDecision;
                let mut passed = fluentps_ml::ParamMap::new();
                for (k, d) in &deltas {
                    let param = w.params.get(k).map(|v| v.as_slice()).unwrap_or(&[]);
                    if let FilterDecision::Push(u) = filter.offer(*k, d, param) {
                        passed.insert(*k, u);
                    }
                }
                // Final iteration: nothing may be withheld forever.
                if iter + 1 == self.cfg.max_iters {
                    for (k, u) in filter.flush_all() {
                        passed
                            .entry(k)
                            .and_modify(|acc| {
                                for (a, b) in acc.iter_mut().zip(&u) {
                                    *a += b;
                                }
                            })
                            .or_insert(u);
                    }
                }
                deltas = passed;
            }
            self.router.scatter(&deltas)
        } else {
            // Keys only; values are virtual (the wire model charges real
            // byte counts from the placement).
            (0..self.cfg.num_servers)
                .map(|m| {
                    let keys = self.router.keys_for_server(m).to_vec();
                    let lens = vec![0u32; keys.len()];
                    KvPairs {
                        keys,
                        lens,
                        vals: Vec::new(),
                    }
                })
                .collect()
        };

        let filtering = self.workers[worker as usize].filter.is_some();
        let active: Vec<u32> = self.router.active_servers().collect();
        for (m, kv) in shard_payloads.into_iter().enumerate() {
            // Inactive servers own no keys; active servers always get a push
            // (possibly empty under the significance filter) so progress
            // tracking and the push condition see every iteration.
            if kv.is_empty() && !(filtering && active.contains(&(m as u32))) {
                continue;
            }
            let bytes = if filtering {
                16 + (kv.payload_bytes() as f64 * self.cfg.wire_bytes_scale) as usize
            } else {
                self.wires.push[m]
            };
            self.tracer.record(
                EventKind::WireSend,
                RecordArgs::new()
                    .shard(m as u32)
                    .worker(worker)
                    .progress(iter)
                    .bytes(bytes as u64),
            );
            let mut arrive = self.topo.worker_to_server(now, m as u32, bytes);
            arrive += self.ssptable_maint;
            self.queue.schedule(
                arrive,
                Ev::PushArrive {
                    worker,
                    iter,
                    server: m as u32,
                    kv,
                    bytes,
                },
            );
        }

        match self.cfg.engine {
            EngineKind::PsLite { .. } => {
                self.workers[worker as usize].pending_acks = self.active_server_count;
            }
            EngineKind::SspTable { .. } => {
                // Bösen cache semantics: only pull (refresh the cache) when
                // the cached version would violate the staleness bound;
                // otherwise compute the next iteration on stale parameters.
                let r = self.ssptable_refresh.expect("ssptable refresh");
                if (iter + worker as u64) % r == r - 1 {
                    self.send_pulls(now, worker, iter);
                } else {
                    self.advance_worker(now, worker);
                }
            }
            _ => self.send_pulls(now, worker, iter),
        }

        self.iterations_done += 1;
        self.maybe_eval(now);
    }

    /// Move a worker to its next iteration (called when all pull responses
    /// arrived, or when the SSPtable cache made the pull unnecessary).
    fn advance_worker(&mut self, now: f64, worker: u32) {
        let w = &mut self.workers[worker as usize];
        w.iter += 1;
        if w.iter >= self.cfg.max_iters {
            w.done = true;
            w.finish_time = now;
        } else {
            let dur = self.compute.sample(worker, w.iter);
            w.compute_total += dur;
            self.queue.schedule_in(dur, Ev::ComputeDone { worker });
        }
    }

    fn send_pulls(&mut self, now: f64, worker: u32, iter: u64) {
        self.workers[worker as usize].pending_responses = self.active_server_count;
        let active: Vec<u32> = self.router.active_servers().collect();
        for m in active {
            self.tracer.record(
                EventKind::WireSend,
                RecordArgs::new()
                    .shard(m)
                    .worker(worker)
                    .progress(iter)
                    .bytes(self.wires.pull_req[m as usize] as u64),
            );
            let arrive = self
                .topo
                .worker_to_server(now, m, self.wires.pull_req[m as usize]);
            self.queue.schedule(
                arrive,
                Ev::PullArrive {
                    worker,
                    iter,
                    server: m,
                },
            );
        }
    }

    fn on_push_arrive(
        &mut self,
        now: f64,
        worker: u32,
        iter: u64,
        server: u32,
        kv: KvPairs,
        bytes: usize,
    ) {
        if self.dead_server == Some(server) {
            // The gradient dies on the wire; future iterations route the
            // adopted keys to the survivors.
            return;
        }
        self.tracer.record(
            EventKind::WireRecv,
            RecordArgs::new()
                .shard(server)
                .worker(worker)
                .progress(iter)
                .bytes(bytes as u64),
        );
        let released = self.shards[server as usize].on_push(worker, iter, &kv);
        for r in released {
            let resp_bytes = self.wires.response[server as usize];
            self.tracer.record(
                EventKind::WireSend,
                RecordArgs::new()
                    .shard(server)
                    .worker(r.worker)
                    .progress(r.progress)
                    .bytes(resp_bytes as u64),
            );
            let delivery = self.topo.server_to_worker(now, server, resp_bytes);
            self.queue.schedule(
                delivery,
                Ev::ResponseArrive {
                    worker: r.worker,
                    iter: r.progress,
                    server,
                    kv: r.kv,
                    bytes: resp_bytes,
                },
            );
        }
        if matches!(self.cfg.engine, EngineKind::PsLite { .. }) {
            // Tiny ack straight back to the worker.
            self.queue
                .schedule(now + self.cfg.link.latency, Ev::AckArrive { worker, iter });
        }
        self.maybe_fail_server(now);
    }

    /// Fire [`DriverConfig::fail_server`] once its shard's `V_train` crosses
    /// the threshold: remap the dead shard's slices onto survivors, carry
    /// its parameter values over, and re-issue its parked pulls.
    fn maybe_fail_server(&mut self, now: f64) {
        let Some((m, threshold)) = self.cfg.fail_server else {
            return;
        };
        if self.dead_server.is_some() || self.shards[m as usize].v_train() < threshold {
            return;
        }
        self.dead_server = Some(m);
        self.tracer.record(
            EventKind::NodeDeclaredDead,
            RecordArgs::new()
                .shard(m)
                .v_train(self.shards[m as usize].v_train()),
        );

        let old_map = self.router.slice_map().clone();
        let (new_map, moved) = EpsSlicer::default().remap_dead(&old_map, m);
        self.tracer.record(
            EventKind::ShardRemapped,
            RecordArgs::new().shard(m).bytes(moved as u64),
        );
        // The survivors adopt the dead shard's parameter values (the live
        // engines restore them from a checkpoint; the simulation reads the
        // shard's final state directly — same recovery point, since the
        // shard cannot mutate after death).
        let mut adopters: Vec<u32> = Vec::new();
        for p in new_map.placements() {
            if old_map.server_of(p.new_key) != Some(m) {
                continue;
            }
            let vals = self.shards[m as usize]
                .read_param(p.new_key)
                .expect("dead shard owned this key")
                .to_vec();
            self.shards[p.server as usize].init_param(p.new_key, vals);
            if !adopters.contains(&p.server) {
                adopters.push(p.server);
            }
        }
        adopters.sort_unstable();
        self.adopters = adopters;
        self.router = Router::new(new_map);
        self.active_server_count = self.router.active_servers().count() as u32;
        self.wires = wire_sizes(self.router.slice_map(), self.cfg.wire_bytes_scale);

        // Pulls parked in the dead shard's DPR buffer would never release;
        // the workers re-issue them to the adopting survivors (the values
        // the dying drain gathered are discarded — a crash does not flush).
        let parked = self.shards[m as usize].drain_shutdown();
        for r in parked {
            self.reissue_pull(now, r.worker, r.progress);
        }
    }

    /// Re-issue a pull that was addressed to the dead server: one pull per
    /// adopting survivor replaces the single response the worker was
    /// awaiting from the dead shard.
    fn reissue_pull(&mut self, now: f64, worker: u32, iter: u64) {
        let k = self.adopters.len() as u32;
        if k == 0 {
            // The dead server owned no keys; nothing was actually awaited.
            return;
        }
        self.workers[worker as usize].pending_responses += k - 1;
        for s in self.adopters.clone() {
            let bytes = self.wires.pull_req[s as usize];
            self.tracer.record(
                EventKind::RetryScheduled,
                RecordArgs::new()
                    .shard(s)
                    .worker(worker)
                    .progress(iter)
                    .bytes(bytes as u64),
            );
            let arrive = self.topo.worker_to_server(now, s, bytes);
            self.queue.schedule(
                arrive,
                Ev::PullArrive {
                    worker,
                    iter,
                    server: s,
                },
            );
        }
    }

    fn on_pull_arrive(&mut self, now: f64, worker: u32, iter: u64, server: u32) {
        if self.dead_server == Some(server) {
            // The request reached a dead listener; the worker re-issues it
            // to whoever owns the keys now.
            self.reissue_pull(now, worker, iter);
            return;
        }
        self.tracer.record(
            EventKind::WireRecv,
            RecordArgs::new()
                .shard(server)
                .worker(worker)
                .progress(iter)
                .bytes(self.wires.pull_req[server as usize] as u64),
        );
        let keys = self.router.keys_for_server(server).to_vec();
        let draw: f64 = self.rng.gen();
        match self.shards[server as usize].on_pull(worker, iter, &keys, draw, None) {
            PullOutcome::Respond { kv, .. } => {
                let resp_bytes = self.wires.response[server as usize];
                self.tracer.record(
                    EventKind::WireSend,
                    RecordArgs::new()
                        .shard(server)
                        .worker(worker)
                        .progress(iter)
                        .bytes(resp_bytes as u64),
                );
                let delivery = self.topo.server_to_worker(now, server, resp_bytes);
                self.queue.schedule(
                    delivery,
                    Ev::ResponseArrive {
                        worker,
                        iter,
                        server,
                        kv,
                        bytes: resp_bytes,
                    },
                );
            }
            PullOutcome::Deferred => {
                // The deferral occupies the server's processing queue,
                // delaying every later request at this server.
                self.topo
                    .charge_server(now, server, self.cfg.server_dpr_cost);
            }
        }
    }

    fn on_response(
        &mut self,
        now: f64,
        worker: u32,
        iter: u64,
        server: u32,
        kv: KvPairs,
        bytes: usize,
    ) {
        self.tracer.record(
            EventKind::WireRecv,
            RecordArgs::new()
                .shard(server)
                .worker(worker)
                .progress(iter)
                .bytes(bytes as u64),
        );
        if self.is_training() {
            let w = &mut self.workers[worker as usize];
            self.router.gather_into(&mut w.params, &kv);
        }
        let w = &mut self.workers[worker as usize];
        debug_assert!(w.pending_responses > 0, "unexpected response");
        w.pending_responses -= 1;
        if w.pending_responses == 0 {
            self.advance_worker(now, worker);
        }
    }

    fn on_ack(&mut self, now: f64, worker: u32, iter: u64) {
        let w = &mut self.workers[worker as usize];
        debug_assert!(w.pending_acks > 0);
        w.pending_acks -= 1;
        if w.pending_acks == 0 {
            // The report lands in the scheduler's single-threaded queue and
            // is *processed* only after every earlier message drained.
            let processed =
                self.sched_queue
                    .enqueue(now + self.cfg.link.latency, self.sched_msg_cost, 64);
            self.queue
                .schedule(processed, Ev::SchedulerReport { worker, iter });
        }
    }

    fn on_scheduler_report(&mut self, now: f64, worker: u32, iter: u64) {
        let sched = self.scheduler.as_mut().expect("PS-Lite scheduler");
        let released = sched.report_push_complete(worker, iter);
        for w2 in released {
            let it2 = self.workers[w2 as usize].iter;
            // Each release message is also produced by the scheduler's
            // single thread before it travels back to the worker.
            let sent = self.sched_queue.enqueue(now, self.sched_msg_cost, 64);
            self.queue.schedule(
                sent + self.cfg.link.latency,
                Ev::PullSend {
                    worker: w2,
                    iter: it2,
                },
            );
        }
        let sched = self.scheduler.as_mut().expect("PS-Lite scheduler");
        if sched.request_pull(worker, iter) {
            let sent = self.sched_queue.enqueue(now, self.sched_msg_cost, 64);
            self.queue
                .schedule(sent + self.cfg.link.latency, Ev::PullSend { worker, iter });
        }
    }

    /// Evaluate test accuracy from the *server-side* parameters whenever the
    /// global iteration counter crosses the eval cadence.
    fn maybe_eval(&mut self, now: f64) {
        if !self.is_training() || self.cfg.eval_every == 0 {
            return;
        }
        let cadence = self.cfg.eval_every * self.cfg.num_workers as u64;
        if !self.iterations_done.is_multiple_of(cadence) {
            return;
        }
        self.eval_point(now);
    }

    fn eval_point(&mut self, now: f64) {
        let params = self.server_params();
        let model = self.model.as_ref().expect("training model");
        let test = self.test.as_ref().expect("test set");
        let accuracy = model.accuracy(&params, test);
        self.curve.push(CurvePoint {
            iter: self.iterations_done / self.cfg.num_workers as u64,
            time: now,
            accuracy,
            loss: 0.0,
        });
    }

    /// Reassemble the full parameter map from the shards.
    fn server_params(&self) -> ParamMap {
        let mut out = ParamMap::new();
        for p in self.router.slice_map().placements() {
            let vals = self.shards[p.server as usize]
                .read_param(p.new_key)
                .expect("placed key exists");
            let entry = out
                .entry(p.orig_key)
                .or_insert_with(|| vec![0.0; p.offset + p.len]);
            if entry.len() < p.offset + p.len {
                entry.resize(p.offset + p.len, 0.0);
            }
            entry[p.offset..p.offset + p.len].copy_from_slice(vals);
        }
        out
    }

    fn finish(mut self) -> RunResult {
        let total_time = self
            .workers
            .iter()
            .map(|w| w.finish_time)
            .fold(0.0, f64::max);
        if self.is_training() {
            self.eval_point(total_time);
        }
        let n = self.workers.len() as f64;
        let compute_time_mean = self.workers.iter().map(|w| w.compute_total).sum::<f64>() / n;
        let comm_time_mean = self
            .workers
            .iter()
            .map(|w| (w.finish_time - w.compute_total).max(0.0))
            .sum::<f64>()
            / n;
        let mut stats = ShardStats::default();
        for s in &self.shards {
            stats.merge(s.stats());
        }
        let dprs_per_100 = if self.cfg.max_iters == 0 {
            0.0
        } else {
            // DPRs per 100 iterations of training progress, normalized per
            // shard (each global iteration touches every shard).
            stats.dprs as f64 * 100.0 / (self.cfg.max_iters as f64 * self.shards.len() as f64)
        };
        let final_params = if self.is_training() {
            Some(self.server_params())
        } else {
            None
        };
        let trace = self.collector.as_ref().map(|c| c.snapshot());
        if self.introspection.is_some() {
            // Final shard totals, scrapeable until the endpoint is dropped
            // with the simulation below.
            self.metrics.inc("sim_pulls_total", stats.pulls_total);
            self.metrics.inc("sim_dprs_total", stats.dprs);
            self.metrics.inc("sim_pushes_total", stats.pushes);
            self.metrics.set_gauge("sim_total_time_seconds", total_time);
        }
        RunResult {
            final_accuracy: self.curve.final_accuracy(),
            final_params,
            trace,
            curve: self.curve,
            total_time,
            compute_time_mean,
            comm_time_mean,
            stats,
            dprs_per_100,
            barrier_count: self
                .scheduler
                .as_ref()
                .map(|s| s.barrier_count())
                .unwrap_or(0),
            max_server_comm: self.topo.max_server_comm_time(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resnet56_like_inventory() -> Vec<ParamSpec> {
        // 56-layer-ish skew: many small conv layers plus a dominant one.
        let mut v = vec![ParamSpec {
            key: 0,
            len: 300_000,
        }];
        for k in 1..56 {
            v.push(ParamSpec {
                key: k,
                len: 10_000,
            });
        }
        v
    }

    fn timing_cfg(engine: EngineKind, n: u32, m: u32, slicer: SlicerKind) -> DriverConfig {
        DriverConfig {
            engine,
            num_workers: n,
            num_servers: m,
            slicer,
            max_iters: 30,
            model: ModelKind::TimingOnly {
                params: resnet56_like_inventory(),
            },
            dataset: None,
            compute_base: 2.0,
            compute_jitter: 0.1,
            stragglers: StragglerSpec::none(),
            link: LinkModel::aws_25g(),
            eval_every: 0,
            ..DriverConfig::default()
        }
    }

    #[test]
    fn bsp_timing_run_completes_and_accounts_time() {
        let cfg = timing_cfg(
            EngineKind::FluentPs {
                model: SyncModel::Bsp,
                policy: DprPolicy::LazyExecution,
            },
            4,
            2,
            SlicerKind::Eps { max_chunk: 8192 },
        );
        let r = run(&cfg);
        assert!(r.total_time > 0.0);
        assert!(r.compute_time_mean > 0.0);
        assert!(r.comm_time_mean > 0.0);
        // Every shard advanced through all iterations.
        assert_eq!(r.stats.v_train_advances, 30 * 2);
        // No pending DPRs: accounting closed.
        assert_eq!(r.stats.dprs, r.stats.dprs_released);
    }

    #[test]
    fn pslite_nonoverlap_is_slower_than_fluentps_overlap() {
        let n = 8;
        let pslite = run(&timing_cfg(
            EngineKind::PsLite {
                mode: PsLiteMode::Bsp,
            },
            n,
            4,
            SlicerKind::Default,
        ));
        let fluent = run(&timing_cfg(
            EngineKind::FluentPs {
                model: SyncModel::Bsp,
                policy: DprPolicy::LazyExecution,
            },
            n,
            4,
            SlicerKind::Default,
        ));
        assert!(
            fluent.total_time < pslite.total_time,
            "overlap {} should beat non-overlap {}",
            fluent.total_time,
            pslite.total_time
        );
    }

    #[test]
    fn eps_beats_default_slicing_on_critical_path() {
        let mk = |slicer| {
            run(&timing_cfg(
                EngineKind::FluentPs {
                    model: SyncModel::Bsp,
                    policy: DprPolicy::LazyExecution,
                },
                8,
                4,
                slicer,
            ))
        };
        let default = mk(SlicerKind::Default);
        let eps = mk(SlicerKind::Eps { max_chunk: 8192 });
        assert!(
            eps.max_server_comm < default.max_server_comm,
            "EPS {} vs default {}",
            eps.max_server_comm,
            default.max_server_comm
        );
        assert!(eps.total_time <= default.total_time);
    }

    #[test]
    fn training_run_learns() {
        let cfg = DriverConfig {
            engine: EngineKind::FluentPs {
                model: SyncModel::Ssp { s: 2 },
                policy: DprPolicy::LazyExecution,
            },
            num_workers: 4,
            num_servers: 2,
            max_iters: 150,
            model: ModelKind::Softmax,
            dataset: Some(SyntheticSpec {
                dim: 16,
                classes: 4,
                n_train: 1200,
                n_test: 300,
                margin: 3.0,
                modes: 1,
                label_noise: 0.0,
                seed: 3,
            }),
            batch_size: 16,
            lr: LrSchedule::Constant(0.3),
            eval_every: 25,
            ..DriverConfig::default()
        };
        let r = run(&cfg);
        assert!(
            r.final_accuracy > 0.8,
            "distributed training should learn, got {}",
            r.final_accuracy
        );
        assert!(r.curve.points().len() >= 2);
        // Accuracy improved over the run.
        let first = r.curve.points().first().unwrap().accuracy;
        assert!(r.final_accuracy > first);
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = timing_cfg(
            EngineKind::FluentPs {
                model: SyncModel::PsspConst { s: 3, c: 0.5 },
                policy: DprPolicy::LazyExecution,
            },
            6,
            3,
            SlicerKind::Eps { max_chunk: 8192 },
        );
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn traced_run_reconciles_with_stats_and_preserves_results() {
        use fluentps_obs::EventKind;
        let mut cfg = timing_cfg(
            EngineKind::FluentPs {
                model: SyncModel::Ssp { s: 1 },
                policy: DprPolicy::LazyExecution,
            },
            4,
            2,
            SlicerKind::Eps { max_chunk: 8192 },
        );
        cfg.stragglers = StragglerSpec::random_slowdowns();
        let plain = run(&cfg);
        cfg.trace_events = Some(4096);
        let traced = run(&cfg);

        // Tracing is an observer: identical timing and counters.
        assert_eq!(plain.total_time, traced.total_time);
        assert_eq!(plain.stats, traced.stats);

        let trace = traced.trace.expect("trace requested");
        let stats = &traced.stats;
        assert_eq!(trace.count(EventKind::PullRequested), stats.pulls_total);
        assert_eq!(trace.count(EventKind::PullDeferred), stats.dprs);
        assert_eq!(trace.count(EventKind::DprReleased), stats.dprs_released);
        assert_eq!(
            trace.count(EventKind::PushApplied) + trace.count(EventKind::LatePushDropped),
            stats.pushes
        );
        assert_eq!(
            trace.count(EventKind::VTrainAdvanced),
            stats.v_train_advances
        );
        assert!(trace.count(EventKind::WireSend) > 0);
        // The run stops as soon as every shard reaches the iteration budget,
        // so messages may still be in flight: receives never exceed sends.
        assert!(trace.count(EventKind::WireRecv) <= trace.count(EventKind::WireSend));
        assert!(trace.count(EventKind::WireRecv) > 0);
        // Virtual timestamps live inside the simulated horizon.
        for ev in &trace.events {
            assert!(ev.ts >= 0.0 && ev.ts <= traced.total_time);
        }
    }

    #[test]
    fn failed_server_remaps_and_training_completes() {
        let mut cfg = timing_cfg(
            EngineKind::FluentPs {
                model: SyncModel::Ssp { s: 2 },
                policy: DprPolicy::LazyExecution,
            },
            4,
            3,
            SlicerKind::Eps { max_chunk: 8192 },
        );
        cfg.fail_server = Some((1, 10));
        cfg.trace_events = Some(4096);
        let r = run(&cfg);
        // Every worker still finished its full iteration budget even though
        // server 1 died a third of the way in.
        assert!(r.total_time > 0.0);
        let trace = r.trace.expect("trace requested");
        assert_eq!(trace.count(EventKind::NodeDeclaredDead), 1);
        assert_eq!(trace.count(EventKind::ShardRemapped), 1);
        // The survivors carried all iterations: their V_train reached the
        // budget while the dead shard froze at the kill threshold.
        let healthy = run(&timing_cfg(
            EngineKind::FluentPs {
                model: SyncModel::Ssp { s: 2 },
                policy: DprPolicy::LazyExecution,
            },
            4,
            3,
            SlicerKind::Eps { max_chunk: 8192 },
        ));
        assert!(r.stats.v_train_advances < healthy.stats.v_train_advances);
        assert!(r.stats.v_train_advances >= 2 * 30 + 10);
    }

    #[test]
    fn failed_server_training_run_still_learns() {
        let cfg = DriverConfig {
            engine: EngineKind::FluentPs {
                model: SyncModel::Ssp { s: 2 },
                policy: DprPolicy::LazyExecution,
            },
            num_workers: 4,
            num_servers: 2,
            max_iters: 150,
            model: ModelKind::Softmax,
            dataset: Some(SyntheticSpec {
                dim: 16,
                classes: 4,
                n_train: 1200,
                n_test: 300,
                margin: 3.0,
                modes: 1,
                label_noise: 0.0,
                seed: 3,
            }),
            batch_size: 16,
            lr: LrSchedule::Constant(0.3),
            eval_every: 25,
            fail_server: Some((0, 40)),
            ..DriverConfig::default()
        };
        let r = run(&cfg);
        // The surviving server adopted server 0's parameters and training
        // converged regardless of the mid-run death.
        assert!(
            r.final_accuracy > 0.8,
            "degraded training should still learn, got {}",
            r.final_accuracy
        );
    }

    #[test]
    fn asp_faster_than_bsp_under_stragglers() {
        let mk = |model| {
            let mut cfg = timing_cfg(
                EngineKind::FluentPs {
                    model,
                    policy: DprPolicy::LazyExecution,
                },
                8,
                2,
                SlicerKind::Eps { max_chunk: 8192 },
            );
            cfg.stragglers = StragglerSpec::random_slowdowns();
            run(&cfg)
        };
        let bsp = mk(SyncModel::Bsp);
        let asp = mk(SyncModel::Asp);
        assert!(
            asp.total_time < bsp.total_time,
            "ASP {} vs BSP {}",
            asp.total_time,
            bsp.total_time
        );
        assert_eq!(asp.stats.dprs, 0);
        assert!(bsp.stats.dprs > 0);
    }
}
