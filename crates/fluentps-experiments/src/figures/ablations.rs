//! Ablations of the design choices DESIGN.md calls out: the EPS chunk
//! granularity, the centralized-scheduler cost model behind Figure 6, the
//! straggler regime, and the Gaia-style significance filter extension.

use fluentps_baseline::pslite::PsLiteMode;
use fluentps_core::condition::SyncModel;
use fluentps_core::dpr::DprPolicy;
use fluentps_ml::schedule::LrSchedule;
use fluentps_simnet::compute::StragglerSpec;
use fluentps_simnet::net::LinkModel;

use crate::driver::{run, DriverConfig, EngineKind, ModelKind, SlicerKind};
use crate::figures::{c10, resnet56_inventory, Scale};
use crate::report::{pct, secs, Table};

/// EPS chunk-size sweep: smaller chunks balance better but multiply keys.
pub fn eps_chunk_sweep(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "Ablation: EPS chunk size (ResNet-56-like, BSP, 16 workers, M=8)",
        &["max-chunk", "imbalance", "total-time", "max-server-comm"],
    );
    for max_chunk in [2_048usize, 8_192, 32_768, 131_072, usize::MAX / 2] {
        let cfg = DriverConfig {
            engine: EngineKind::FluentPs {
                model: SyncModel::Bsp,
                policy: DprPolicy::LazyExecution,
            },
            num_workers: 16,
            num_servers: 8,
            slicer: SlicerKind::Eps { max_chunk },
            max_iters: scale.pick(40, 400),
            model: ModelKind::TimingOnly {
                params: resnet56_inventory(),
            },
            dataset: None,
            compute_base: 8.0,
            compute_jitter: 0.15,
            link: LinkModel::gbe(),
            eval_every: 0,
            seed: 81,
            ..DriverConfig::default()
        };
        let imbalance = {
            use fluentps_core::eps::{EpsSlicer, Slicer};
            EpsSlicer { max_chunk }
                .slice(&resnet56_inventory(), 8)
                .imbalance()
        };
        let r = run(&cfg);
        let label = if max_chunk > 1 << 30 {
            "no-chunking".to_string()
        } else {
            max_chunk.to_string()
        };
        t.row(vec![
            label,
            format!("{imbalance:.2}"),
            secs(r.total_time),
            secs(r.max_server_comm),
        ]);
    }
    vec![t]
}

/// Scheduler-cost sensitivity: how Figure 6's PS-Lite gap depends on the
/// calibrated centralized-bookkeeping constant.
pub fn scheduler_cost_sweep(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "Ablation: PS-Lite scheduler cost coefficient (32 workers, BSP, M=8)",
        &[
            "per-worker-cost",
            "pslite-total",
            "fluentps-total",
            "speedup",
        ],
    );
    for c in [0.0f64, 0.5e-3, 1.5e-3, 2.5e-3, 5e-3] {
        let mk = |engine, slicer| {
            let cfg = DriverConfig {
                engine,
                num_workers: 32,
                num_servers: 8,
                slicer,
                max_iters: scale.pick(40, 400),
                model: ModelKind::TimingOnly {
                    params: resnet56_inventory(),
                },
                dataset: None,
                compute_base: 8.0,
                compute_jitter: 0.15,
                link: LinkModel::gbe(),
                sched_cost_base: 1e-3,
                sched_cost_per_worker: c,
                eval_every: 0,
                seed: 83,
                ..DriverConfig::default()
            };
            run(&cfg)
        };
        let pslite = mk(
            EngineKind::PsLite {
                mode: PsLiteMode::Bsp,
            },
            SlicerKind::Default,
        );
        let fluent = mk(
            EngineKind::FluentPs {
                model: SyncModel::Bsp,
                policy: DprPolicy::LazyExecution,
            },
            SlicerKind::Default,
        );
        t.row(vec![
            format!("{:.1}ms", c * 1000.0),
            secs(pslite.total_time),
            secs(fluent.total_time),
            format!("{:.2}x", pslite.total_time / fluent.total_time),
        ]);
    }
    vec![t]
}

/// Significance-filter ablation: bytes saved vs accuracy cost, SSP s=3.
pub fn significance_filter_sweep(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "Ablation: Gaia-style significance filter (MLP/c10-like, 8 workers, SSP s=3)",
        &["threshold", "accuracy", "push-bytes", "bytes-saved"],
    );
    let mk = |filter: Option<(f64, u32)>| {
        let cfg = DriverConfig {
            engine: EngineKind::FluentPs {
                model: SyncModel::Ssp { s: 3 },
                policy: DprPolicy::LazyExecution,
            },
            num_workers: 8,
            num_servers: 2,
            max_iters: scale.pick(300, 2000),
            model: ModelKind::Mlp { hidden: vec![64] },
            dataset: Some(c10(87)),
            batch_size: 16,
            lr: LrSchedule::Constant(0.15),
            compute_base: 2.0,
            significance_filter: filter,
            eval_every: 0,
            seed: 87,
            ..DriverConfig::default()
        };
        run(&cfg)
    };
    let baseline = mk(None);
    t.row(vec![
        "off".into(),
        pct(baseline.final_accuracy),
        baseline.stats.bytes_in.to_string(),
        "—".into(),
    ]);
    for threshold in [0.001f64, 0.01, 0.05] {
        let r = mk(Some((threshold, 8)));
        let saved = 100.0 * (1.0 - r.stats.bytes_in as f64 / baseline.stats.bytes_in as f64);
        t.row(vec![
            format!("{threshold}"),
            pct(r.final_accuracy),
            r.stats.bytes_in.to_string(),
            format!("{saved:.1}%"),
        ]);
    }
    vec![t]
}

/// Straggler-regime sweep: where each synchronization model's time goes as
/// the persistent straggler slows down.
pub fn straggler_sweep(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "Ablation: persistent straggler factor (16 workers, timing-only)",
        &["factor", "BSP", "SSP s=3", "drop-stragglers", "ASP"],
    );
    for factor in [1.0f64, 1.5, 2.5, 4.0] {
        let mk = |model| {
            let cfg = DriverConfig {
                engine: EngineKind::FluentPs {
                    model,
                    policy: DprPolicy::LazyExecution,
                },
                num_workers: 16,
                num_servers: 2,
                max_iters: scale.pick(60, 600),
                model: ModelKind::TimingOnly {
                    params: resnet56_inventory(),
                },
                dataset: None,
                compute_base: 4.0,
                compute_jitter: 0.2,
                stragglers: StragglerSpec {
                    transient_prob: 0.02,
                    transient_factor: 2.0,
                    persistent_count: 1,
                    persistent_factor: factor,
                },
                link: LinkModel::aws_25g(),
                eval_every: 0,
                seed: 89,
                ..DriverConfig::default()
            };
            run(&cfg).total_time
        };
        t.row(vec![
            format!("{factor}x"),
            secs(mk(SyncModel::Bsp)),
            secs(mk(SyncModel::Ssp { s: 3 })),
            secs(mk(SyncModel::DropStragglers { n_t: 14 })),
            secs(mk(SyncModel::Asp)),
        ]);
    }
    vec![t]
}
