//! Figure 1 (motivation): Bösen/SSPtable's test accuracy collapses as the
//! cluster grows, even at the same mini-batch size and staleness threshold.
//!
//! Expected shape: accuracy roughly flat up to ~4 workers, then a cliff —
//! the paper measures <20% test accuracy for N ≥ 8 where 2–4 workers reach
//! ~70%+.

use fluentps_ml::schedule::LrSchedule;

use crate::driver::{run, DriverConfig, EngineKind, ModelKind};
use crate::figures::{c10, Scale};
use crate::report::{pct, Table};

fn cfg(scale: Scale, n: u32) -> DriverConfig {
    DriverConfig {
        engine: EngineKind::SspTable { s: 3 },
        num_workers: n,
        num_servers: 1,
        max_iters: scale.pick(300, 4000),
        model: ModelKind::Mlp { hidden: vec![64] },
        dataset: Some(c10(11)),
        batch_size: 16,
        lr: LrSchedule::Constant(0.15),
        compute_base: 1.0,
        eval_every: 0,
        seed: 11,
        ..DriverConfig::default()
    }
}

/// Regenerate Figure 1.
pub fn run_figure(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "Figure 1: SSPtable (Bosen/PMLS) accuracy vs cluster size, AlexNet-like on c10-like, SSP s=3",
        &["workers", "effective-staleness", "test-accuracy"],
    );
    for n in [2u32, 4, 8, 16] {
        let c = cfg(scale, n);
        let r = run(&c);
        let eff = fluentps_baseline::ssptable::SspTableModel::new(3).effective_staleness(n);
        t.row(vec![n.to_string(), eff.to_string(), pct(r.final_accuracy)]);
    }
    vec![t]
}
