//! Figures 10 and 11: accuracy vs time for BSP / SSP / ASP / PSSP at 64
//! workers (Figure 10) and 128 workers (Figure 11), AlexNet-like on the
//! CIFAR-10 stand-in, 4000 iterations.
//!
//! Expected shape: ASP finishes first but with the lowest accuracy; SSP's
//! accuracy matches PSSP but takes ~1.38× longer; PSSP (P = 0.3–0.5) sits
//! on the Pareto frontier, and its accuracy advantage over ASP grows with
//! worker count (paper: +3.9% at 128 workers).

use fluentps_core::condition::SyncModel;
use fluentps_core::dpr::DprPolicy;
use fluentps_ml::schedule::LrSchedule;
use fluentps_simnet::compute::StragglerSpec;
use fluentps_simnet::net::LinkModel;

use crate::driver::{run, DriverConfig, EngineKind, ModelKind, RunResult};
use crate::figures::{c10, Scale};
use crate::report::{pct, secs, Table};

/// The model sweep of both figures.
pub fn models() -> Vec<(&'static str, SyncModel)> {
    vec![
        ("BSP", SyncModel::Bsp),
        ("SSP s=3", SyncModel::Ssp { s: 3 }),
        ("ASP", SyncModel::Asp),
        ("PSSP P=0.1", SyncModel::PsspConst { s: 3, c: 0.1 }),
        ("PSSP P=0.3", SyncModel::PsspConst { s: 3, c: 0.3 }),
        ("PSSP P=0.5", SyncModel::PsspConst { s: 3, c: 0.5 }),
    ]
}

/// One training measurement at `n` workers.
pub fn measure(scale: Scale, n: u32, model: SyncModel) -> RunResult {
    let cfg = DriverConfig {
        engine: EngineKind::FluentPs {
            model,
            policy: DprPolicy::LazyExecution,
        },
        num_workers: n,
        num_servers: scale.pick(2, 8),
        max_iters: scale.pick(250, 4000),
        model: ModelKind::Mlp { hidden: vec![64] },
        dataset: Some(c10(19)),
        batch_size: 16,
        lr: LrSchedule::Constant(0.25),
        compute_base: 4.0,
        compute_jitter: 0.3,
        // Straggler population grows with the cluster (the paper's premise:
        // at scale, some workers are always behind).
        stragglers: StragglerSpec {
            transient_prob: 0.08,
            transient_factor: 2.5,
            persistent_count: (n / 8).max(1),
            persistent_factor: 2.2,
        },
        link: LinkModel::gbe(),
        // Scale the small MLP's wire footprint to a CIFAR-AlexNet-sized
        // network (~1.2M parameters).
        wire_bytes_scale: 230.0,
        eval_every: scale.pick(50, 400),
        seed: 19,
        ..DriverConfig::default()
    };
    run(&cfg)
}

/// Regenerate Figure 10 (`workers` = 64 scaled) or Figure 11 (128 scaled).
pub fn run_figure(scale: Scale, figure11: bool) -> Vec<Table> {
    let n = if figure11 {
        scale.pick(32, 128)
    } else {
        scale.pick(16, 64)
    };
    let title = if figure11 {
        format!("Figure 11: accuracy vs time, {n} workers")
    } else {
        format!("Figure 10: accuracy vs time, {n} workers")
    };
    let mut summary = Table::new(
        title.clone(),
        &["model", "total-time", "final-acc", "best-acc", "DPRs/100it"],
    );
    let mut curves = Table::new(
        format!("{title} — curves"),
        &["model", "iter", "time", "accuracy"],
    );
    for (label, model) in models() {
        let r = measure(scale, n, model);
        summary.row(vec![
            label.to_string(),
            secs(r.total_time),
            pct(r.final_accuracy),
            pct(r.curve.best_accuracy()),
            format!("{:.1}", r.dprs_per_100),
        ]);
        for p in r.curve.points() {
            curves.row(vec![
                label.to_string(),
                p.iter.to_string(),
                format!("{:.1}", p.time),
                pct(p.accuracy),
            ]);
        }
    }
    vec![summary, curves]
}
