//! Figure 3 (and the Figure 4/5 timelines): the soft-barrier vs lazy
//! execution trade-off, reproduced as an *executable* scenario rather than
//! a diagram.
//!
//! Three workers, one shard, SSP s=3. Worker 2 is slow. The fast worker's
//! pull for `w_4` cannot be answered while `g_1²`, `g_2²`, `g_3²` are
//! missing:
//!
//! * soft barrier — released after **one** of the missing pushes arrives
//!   (stale parameters, and the barrier will re-trigger);
//! * lazy execution — released only after **all three** arrive (fully
//!   updated parameters, one pause).
//!
//! The run below drives the real `ServerShard` through the exact event
//! sequence of the figure and prints the resulting timeline.

use fluentps_core::condition::SyncModel;
use fluentps_core::dpr::DprPolicy;
use fluentps_core::server::{GradScale, PullOutcome, ServerShard, ShardConfig};
use fluentps_transport::KvPairs;

use crate::report::Table;

/// One timeline entry: `(step, event, outcome)`.
type TimelineRow = (String, String, String);

fn scenario(policy: DprPolicy) -> (Vec<TimelineRow>, Vec<f32>, u64) {
    let mut shard = ServerShard::new(ShardConfig {
        server_id: 0,
        num_workers: 3,
        model: SyncModel::Ssp { s: 3 },
        policy,
        grad_scale: GradScale::DivideByN,
    });
    shard.init_param(0, vec![0.0]);
    let mut timeline = Vec::new();
    let mut release_value = Vec::new();
    let mut release_version = 0;

    let push = |shard: &mut ServerShard, w: u32, i: u64, tl: &mut Vec<TimelineRow>| {
        let released = shard.on_push(w, i, &KvPairs::single(0, vec![1.0]));
        let mut outcome = format!("V_train={}", shard.v_train());
        for r in &released {
            outcome = format!(
                "V_train={}; releases W{}'s pull (w={}, version {})",
                shard.v_train(),
                r.worker,
                r.kv.vals[0],
                r.version
            );
        }
        tl.push((format!("push g_{i}^{w}"), format!("worker {w}"), outcome));
        released
    };

    // Workers 0 and 1 race through iterations 0..=3; worker 2 lags at 0.
    for i in 0..4u64 {
        for w in [0u32, 1] {
            push(&mut shard, w, i, &mut timeline);
        }
    }
    push(&mut shard, 2, 0, &mut timeline);
    // All three push iteration 0 → V_train = 1. The fast worker now pulls
    // for w_4 at progress 3: gap 3 − 1 = 2 < 3 would pass, so advance worker
    // 0 one more iteration to progress 4 (the figure's position).
    push(&mut shard, 0, 4, &mut timeline);
    let outcome = match shard.on_pull(0, 4, &[0], 0.99, None) {
        PullOutcome::Respond { .. } => "answered immediately".to_string(),
        PullOutcome::Deferred => "DEFERRED (gap 3 ≥ s)".to_string(),
    };
    timeline.push(("pull w_5^0".into(), "worker 0".into(), outcome));

    // The slow worker catches up one iteration at a time.
    for i in 1..=4u64 {
        push(&mut shard, 1, i + 3, &mut timeline); // worker 1 keeps pace
        let released = push(&mut shard, 2, i, &mut timeline);
        for r in released {
            release_value = r.kv.vals.clone();
            release_version = r.version;
        }
        if !release_value.is_empty() {
            break;
        }
    }
    (timeline, release_value, release_version)
}

/// Regenerate the Figure 3 scenario under both policies.
pub fn run_figure() -> Vec<Table> {
    let mut out = Vec::new();
    for (name, policy) in [
        ("soft barrier (Figure 3a)", DprPolicy::SoftBarrier),
        ("lazy execution (Figure 3b)", DprPolicy::LazyExecution),
    ] {
        let (timeline, value, version) = scenario(policy);
        let mut t = Table::new(
            format!("{name}: event timeline (3 workers, SSP s=3, worker 2 slow)"),
            &["event", "actor", "server outcome"],
        );
        for (ev, actor, outcome) in timeline {
            t.row(vec![ev, actor, outcome]);
        }
        t.row(vec![
            "=> deferred pull answered".into(),
            "server".into(),
            format!("parameters w={value:?} at version {version}"),
        ]);
        out.push(t);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soft_barrier_releases_earlier_with_staler_params_than_lazy() {
        let (_, soft_value, soft_version) = scenario(DprPolicy::SoftBarrier);
        let (_, lazy_value, lazy_version) = scenario(DprPolicy::LazyExecution);
        assert!(!soft_value.is_empty() && !lazy_value.is_empty());
        // The soft barrier answers at a lower V_train (earlier) …
        assert!(
            soft_version < lazy_version,
            "soft {soft_version} !< lazy {lazy_version}"
        );
        // … with fewer gradients folded in (staler parameters).
        assert!(
            soft_value[0] < lazy_value[0],
            "soft {} !< lazy {}",
            soft_value[0],
            lazy_value[0]
        );
    }
}
