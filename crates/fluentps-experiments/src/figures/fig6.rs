//! Figure 6: computation/communication time of PS-Lite vs FluentPS vs
//! FluentPS+EPS when training ResNet-56 (BSP, batch 4096) at 8/16/32
//! workers on 8 servers.
//!
//! Expected shape: as N grows, per-worker computation shrinks but PS-Lite's
//! non-overlap communication swells to dominate; FluentPS's overlap
//! synchronization removes most of it (paper: up to 4.26× over PS-Lite,
//! 86% less communication) and EPS removes the remaining slicing imbalance
//! (a further 1.42×; up to 6× total, 93.7% communication reduction).

use fluentps_baseline::pslite::PsLiteMode;
use fluentps_core::condition::SyncModel;
use fluentps_core::dpr::DprPolicy;
use fluentps_simnet::compute::StragglerSpec;
use fluentps_simnet::net::LinkModel;

use crate::driver::{run, DriverConfig, EngineKind, ModelKind, RunResult, SlicerKind};
use crate::figures::{resnet56_inventory, Scale};
use crate::report::{secs, speedup, Table};

fn base_cfg(scale: Scale, n: u32) -> DriverConfig {
    DriverConfig {
        num_workers: n,
        num_servers: 8,
        max_iters: scale.pick(40, 400),
        model: ModelKind::TimingOnly {
            params: resnet56_inventory(),
        },
        dataset: None,
        // Batch-4096 ResNet-56 on a K80 is seconds per iteration at
        // parallelism 1; the driver divides by N.
        compute_base: 8.0,
        compute_jitter: 0.15,
        stragglers: StragglerSpec::random_slowdowns(),
        // 25 Gbps *aggregate* across 32 instances ≈ 1 Gbps per node.
        link: LinkModel::gbe(),
        eval_every: 0,
        seed: 6,
        ..DriverConfig::default()
    }
}

/// One (system, N) measurement.
pub fn measure(scale: Scale, n: u32, system: &str) -> RunResult {
    let mut cfg = base_cfg(scale, n);
    match system {
        "ps-lite" => {
            cfg.engine = EngineKind::PsLite {
                mode: PsLiteMode::Bsp,
            };
            cfg.slicer = SlicerKind::Default;
        }
        "fluentps" => {
            cfg.engine = EngineKind::FluentPs {
                model: SyncModel::Bsp,
                policy: DprPolicy::LazyExecution,
            };
            cfg.slicer = SlicerKind::Default;
        }
        "fluentps+eps" => {
            cfg.engine = EngineKind::FluentPs {
                model: SyncModel::Bsp,
                policy: DprPolicy::LazyExecution,
            };
            cfg.slicer = SlicerKind::Eps { max_chunk: 65_536 };
        }
        other => panic!("unknown system {other}"),
    }
    run(&cfg)
}

/// Regenerate Figure 6.
pub fn run_figure(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "Figure 6: computation/communication split, ResNet-56-like, BSP, M=8",
        &[
            "workers",
            "system",
            "compute",
            "comm",
            "total",
            "speedup-vs-pslite",
            "comm-reduction",
        ],
    );
    for n in [8u32, 16, 32] {
        let pslite = measure(scale, n, "ps-lite");
        let fluent = measure(scale, n, "fluentps");
        let eps = measure(scale, n, "fluentps+eps");
        for (name, r) in [
            ("PS-Lite", &pslite),
            ("FluentPS", &fluent),
            ("FluentPS+EPS", &eps),
        ] {
            let comm_red = if pslite.comm_time_mean > 0.0 {
                format!(
                    "{:.1}%",
                    (1.0 - r.comm_time_mean / pslite.comm_time_mean) * 100.0
                )
            } else {
                "—".into()
            };
            t.row(vec![
                n.to_string(),
                name.to_string(),
                secs(r.compute_time_mean),
                secs(r.comm_time_mean),
                secs(r.total_time),
                speedup(pslite.total_time, r.total_time),
                comm_red,
            ]);
        }
    }
    vec![t]
}
