//! Figure 7 (scalability): test accuracy after a fixed iteration budget,
//! PMLS-Caffe (SSPtable) vs FluentPS, SSP s=3, at 2–64 workers.
//!
//! Expected shape: FluentPS holds its accuracy across the whole sweep;
//! SSPtable tracks it at 2–4 workers and collapses from 8 on (the paper
//! reports 75.9–76.7% vs 12.7–19% at N = 64).

use fluentps_core::condition::SyncModel;
use fluentps_core::dpr::DprPolicy;
use fluentps_ml::schedule::LrSchedule;

use crate::driver::{run, DriverConfig, EngineKind, ModelKind};
use crate::figures::{c10, Scale};
use crate::report::{pct, Table};

fn cfg(scale: Scale, n: u32, engine: EngineKind) -> DriverConfig {
    DriverConfig {
        engine,
        num_workers: n,
        num_servers: 1,
        max_iters: scale.pick(300, 4000),
        model: ModelKind::Mlp { hidden: vec![64] },
        dataset: Some(c10(13)),
        batch_size: 16,
        lr: LrSchedule::Constant(0.15),
        compute_base: 1.0,
        eval_every: 0,
        seed: 13,
        ..DriverConfig::default()
    }
}

/// Regenerate Figure 7.
pub fn run_figure(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "Figure 7: accuracy at fixed iterations vs cluster size (SSP s=3)",
        &["workers", "FluentPS", "PMLS-Caffe (SSPtable)"],
    );
    let sweep: &[u32] = if scale.full {
        &[2, 4, 8, 16, 32, 64]
    } else {
        &[2, 4, 8, 16, 32]
    };
    for &n in sweep {
        let fluent = run(&cfg(
            scale,
            n,
            EngineKind::FluentPs {
                model: SyncModel::Ssp { s: 3 },
                policy: DprPolicy::LazyExecution,
            },
        ));
        let pmls = run(&cfg(scale, n, EngineKind::SspTable { s: 3 }));
        t.row(vec![
            n.to_string(),
            pct(fluent.final_accuracy),
            pct(pmls.final_accuracy),
        ]);
    }
    vec![t]
}
