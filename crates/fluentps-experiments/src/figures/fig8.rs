//! Figure 8: lazy execution vs soft barrier — accuracy over time training
//! the deep (ResNet-56-like) model with 32 workers, SSP s=2.
//!
//! Expected shape: lazy execution converges faster in wall-clock (paper:
//! 1.21×) and ends at least as accurate, because the fast workers read
//! fully updated parameters instead of stale ones.

use fluentps_core::condition::SyncModel;
use fluentps_core::dpr::DprPolicy;
use fluentps_ml::schedule::LrSchedule;
use fluentps_simnet::compute::StragglerSpec;
use fluentps_simnet::net::LinkModel;

use crate::driver::{run, DriverConfig, EngineKind, ModelKind, RunResult};
use crate::figures::{c10, Scale};
use crate::report::{pct, secs, speedup, Table};

fn cfg(scale: Scale, policy: DprPolicy) -> DriverConfig {
    DriverConfig {
        engine: EngineKind::FluentPs {
            model: SyncModel::Ssp { s: 2 },
            policy,
        },
        num_workers: scale.pick(16, 32),
        num_servers: scale.pick(4, 8),
        max_iters: scale.pick(400, 4000),
        model: ModelKind::Residual {
            width: 32,
            blocks: 4,
        },
        dataset: Some(c10(17)),
        batch_size: 16,
        lr: LrSchedule::StepDecay {
            base: 0.1,
            every: scale.pick(200, 2000),
            factor: 0.5,
        },
        compute_base: 4.0,
        compute_jitter: 0.3,
        stragglers: StragglerSpec {
            transient_prob: 0.05,
            transient_factor: 2.0,
            persistent_count: 1,
            persistent_factor: 1.6,
        },
        link: LinkModel::gbe(),
        // Scale the 13k-parameter stand-in's wire footprint to ResNet-56's
        // 0.85M parameters.
        wire_bytes_scale: 65.0,
        eval_every: scale.pick(40, 250),
        seed: 17,
        ..DriverConfig::default()
    }
}

/// Run both policies and return `(soft, lazy)`.
pub fn measure(scale: Scale) -> (RunResult, RunResult) {
    (
        run(&cfg(scale, DprPolicy::SoftBarrier)),
        run(&cfg(scale, DprPolicy::LazyExecution)),
    )
}

/// Regenerate Figure 8.
pub fn run_figure(scale: Scale) -> Vec<Table> {
    let (soft, lazy) = measure(scale);
    let mut summary = Table::new(
        "Figure 8: soft barrier vs lazy execution (ResNet-56-like, SSP s=2)",
        &[
            "policy",
            "total-time",
            "final-acc",
            "best-acc",
            "DPRs/100it",
            "speedup",
        ],
    );
    for (name, r) in [("soft-barrier", &soft), ("lazy-execution", &lazy)] {
        summary.row(vec![
            name.to_string(),
            secs(r.total_time),
            pct(r.final_accuracy),
            pct(r.curve.best_accuracy()),
            format!("{:.1}", r.dprs_per_100),
            speedup(soft.total_time, r.total_time),
        ]);
    }
    let mut curve = Table::new(
        "Figure 8 curves: accuracy vs simulated time",
        &["policy", "iter", "time", "accuracy"],
    );
    for (name, r) in [("soft-barrier", &soft), ("lazy-execution", &lazy)] {
        for p in r.curve.points() {
            curve.row(vec![
                name.to_string(),
                p.iter.to_string(),
                format!("{:.1}", p.time),
                pct(p.accuracy),
            ]);
        }
    }
    vec![summary, curve]
}
