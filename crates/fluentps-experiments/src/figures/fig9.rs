//! Figure 9: synchronization frequency — DPRs per 100 iterations for the
//! regret-equivalent model pairs, under soft barrier and lazy execution.
//!
//! Groups (Theorem 1: PSSP(s=3, c) ≡ SSP(s' = 3 + 1/c − 1)):
//! A: PSSP c=1/2  vs B: SSP s'=4
//! C: PSSP c=1/3  vs D: SSP s'=5
//! E: PSSP c=1/5  vs F: SSP s'=7
//! G: PSSP c=1/10 vs H: SSP s'=12
//!
//! Expected shape: within every pair the PSSP model produces far fewer DPRs
//! (paper: up to 97.1% fewer, G vs H with the soft barrier) and lazy
//! execution slashes DPRs further for both.

use fluentps_core::condition::SyncModel;
use fluentps_core::dpr::DprPolicy;
use fluentps_simnet::compute::StragglerSpec;
use fluentps_simnet::net::LinkModel;

use crate::driver::{run, DriverConfig, EngineKind, ModelKind, RunResult};
use crate::figures::{alexnet_inventory, Scale};
use crate::report::{secs, Table};

/// The labelled models of the figure.
pub fn models() -> Vec<(&'static str, SyncModel)> {
    vec![
        ("A: PSSP s=3 c=1/2", SyncModel::PsspConst { s: 3, c: 0.5 }),
        ("B: SSP s'=4", SyncModel::Ssp { s: 4 }),
        (
            "C: PSSP s=3 c=1/3",
            SyncModel::PsspConst { s: 3, c: 1.0 / 3.0 },
        ),
        ("D: SSP s'=5", SyncModel::Ssp { s: 5 }),
        ("E: PSSP s=3 c=1/5", SyncModel::PsspConst { s: 3, c: 0.2 }),
        ("F: SSP s'=7", SyncModel::Ssp { s: 7 }),
        ("G: PSSP s=3 c=1/10", SyncModel::PsspConst { s: 3, c: 0.1 }),
        ("H: SSP s'=12", SyncModel::Ssp { s: 12 }),
    ]
}

/// One timing-only measurement.
pub fn measure(scale: Scale, model: SyncModel, policy: DprPolicy) -> RunResult {
    let cfg = DriverConfig {
        engine: EngineKind::FluentPs { model, policy },
        num_workers: scale.pick(16, 64),
        num_servers: 1,
        max_iters: scale.pick(300, 4000),
        model: ModelKind::TimingOnly {
            params: alexnet_inventory(),
        },
        dataset: None,
        compute_base: 4.0,
        compute_jitter: 0.3,
        // The SSP dynamics the paper describes need a chronically slow node:
        // fast workers pile up at `V_train + s` and the soft barrier
        // re-triggers every iteration.
        stragglers: StragglerSpec {
            transient_prob: 0.05,
            transient_factor: 2.0,
            persistent_count: 1,
            persistent_factor: 1.6,
        },
        // Fast links: the straggler (not the NIC) must pace the cluster for
        // the SSP gap dynamics to appear.
        link: LinkModel::aws_25g(),
        eval_every: 0,
        seed: 9,
        ..DriverConfig::default()
    };
    run(&cfg)
}

/// Regenerate Figure 9.
pub fn run_figure(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "Figure 9: DPRs per 100 iterations, regret-equivalent PSSP/SSP pairs",
        &["model", "policy", "DPRs/100it", "time"],
    );
    for (label, model) in models() {
        for (pname, policy) in [
            ("soft", DprPolicy::SoftBarrier),
            ("lazy", DprPolicy::LazyExecution),
        ] {
            let r = measure(scale, model, policy);
            t.row(vec![
                label.to_string(),
                pname.to_string(),
                format!("{:.1}", r.dprs_per_100),
                secs(r.total_time),
            ]);
        }
    }
    vec![t]
}
