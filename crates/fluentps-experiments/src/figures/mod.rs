//! One module per table/figure of the paper's evaluation. Every runner
//! returns [`crate::report::Table`]s ready to print, plus optional CSV
//! curve dumps.

pub mod ablations;
pub mod fig1;
pub mod fig10;
pub mod fig3;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table4;

use fluentps_core::eps::ParamSpec;
use fluentps_ml::data::SyntheticSpec;

/// Experiment scale. `quick` keeps every figure under a couple of minutes on
/// a laptop; `full` approaches the paper's worker counts and iteration
/// budgets (hours of simulated gradient math).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Run at paper-like scale.
    pub full: bool,
}

impl Scale {
    /// Pick `q` for quick runs, `f` for full runs.
    pub fn pick<T>(&self, q: T, f: T) -> T {
        if self.full {
            f
        } else {
            q
        }
    }
}

/// A ResNet-56-shaped parameter inventory: 55 small conv-sized tensors plus
/// one dominant tensor, ≈0.85 M parameters total (the real network's size),
/// with the byte skew that breaks PS-Lite's default slicing.
pub fn resnet56_inventory() -> Vec<ParamSpec> {
    let mut v = vec![ParamSpec {
        key: 0,
        len: 300_000,
    }];
    for k in 1..56 {
        v.push(ParamSpec {
            key: k,
            len: 10_000,
        });
    }
    v
}

/// An AlexNet-shaped inventory: few layers, two huge fully-connected ones
/// (the original is ~60 M parameters; scaled to ~6 M to keep virtual byte
/// accounting in a regime the simulated 1 Gbps links can move).
pub fn alexnet_inventory() -> Vec<ParamSpec> {
    vec![
        ParamSpec {
            key: 0,
            len: 35_000,
        }, // conv1
        ParamSpec {
            key: 1,
            len: 300_000,
        }, // conv2
        ParamSpec {
            key: 2,
            len: 880_000,
        }, // conv3
        ParamSpec {
            key: 3,
            len: 660_000,
        }, // conv4
        ParamSpec {
            key: 4,
            len: 440_000,
        }, // conv5
        ParamSpec {
            key: 5,
            len: 2_500_000,
        }, // fc6 (scaled)
        ParamSpec {
            key: 6,
            len: 1_100_000,
        }, // fc7 (scaled)
        ParamSpec {
            key: 7,
            len: 270_000,
        }, // fc8
    ]
}

/// The CIFAR-10 stand-in dataset at a given seed.
pub fn c10(seed: u64) -> SyntheticSpec {
    SyntheticSpec::c10_like(seed)
}

/// The CIFAR-100 stand-in dataset at a given seed.
pub fn c100(seed: u64) -> SyntheticSpec {
    SyntheticSpec::c100_like(seed)
}
