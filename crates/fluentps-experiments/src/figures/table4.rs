//! Table IV: the grand comparison — ASP (P=0), constant PSSP (P = 0.1, 0.3,
//! 0.5), SSP (P=1) and dynamic PSSP, each under the soft barrier and lazy
//! execution, on four DNN/dataset combinations. Metrics per cell: average
//! time per 100 iterations, final test accuracy, and DPRs per 100
//! iterations.
//!
//! Expected shape (paper): time grows with P (ASP fastest, SSP slowest);
//! accuracy is lowest for ASP and comparable for PSSP/SSP; DPRs grow
//! steeply with P under the soft barrier but stay near-flat and tiny under
//! lazy execution — the deep model shows the starkest gap (15160 vs 115 in
//! the paper's ResNet-56 row).

use fluentps_core::condition::SyncModel;
use fluentps_core::dpr::DprPolicy;
use fluentps_core::pssp::Alpha;
use fluentps_ml::data::SyntheticSpec;
use fluentps_ml::schedule::LrSchedule;
use fluentps_simnet::compute::StragglerSpec;
use fluentps_simnet::net::LinkModel;

use crate::driver::{run, DriverConfig, EngineKind, ModelKind, RunResult};
use crate::figures::{c10, c100, Scale};
use crate::report::{pct, Table};

/// One DNN/dataset combination of the table.
#[derive(Debug, Clone)]
pub struct Combo {
    /// Display name.
    pub name: &'static str,
    /// Model to train.
    pub model: ModelKind,
    /// Dataset spec.
    pub dataset: SyntheticSpec,
    /// Workers (paper: 64 for AlexNet rows, 32 for ResNet rows).
    pub workers: u32,
    /// Servers (paper: 1 for AlexNet rows, 8 for ResNet rows).
    pub servers: u32,
    /// Staleness threshold (paper: s=3 AlexNet, s=2 ResNet).
    pub s: u64,
}

/// The four rows of the paper's table.
pub fn combos(scale: Scale) -> Vec<Combo> {
    vec![
        Combo {
            name: "AlexNet-like/c10",
            model: ModelKind::Mlp { hidden: vec![64] },
            dataset: c10(23),
            workers: scale.pick(16, 64),
            servers: 1,
            s: 3,
        },
        Combo {
            name: "AlexNet-like/c100",
            model: ModelKind::Mlp { hidden: vec![96] },
            dataset: c100(23),
            workers: scale.pick(16, 64),
            servers: 1,
            s: 3,
        },
        Combo {
            name: "ResNet56-like/c10",
            model: ModelKind::Residual {
                width: 32,
                blocks: 4,
            },
            dataset: c10(29),
            workers: scale.pick(8, 32),
            servers: scale.pick(2, 8),
            s: 2,
        },
        Combo {
            name: "ResNet56-like/c100",
            model: ModelKind::Residual {
                width: 48,
                blocks: 4,
            },
            dataset: c100(29),
            workers: scale.pick(8, 32),
            servers: scale.pick(2, 8),
            s: 2,
        },
    ]
}

/// The P sweep: (label, model-under-test). `None` for dynamic PSSP means
/// significance-driven α.
pub fn sync_models(s: u64) -> Vec<(&'static str, SyncModel)> {
    vec![
        ("P=0 (ASP)", SyncModel::Asp),
        ("P=0.1", SyncModel::PsspConst { s, c: 0.1 }),
        ("P=0.3", SyncModel::PsspConst { s, c: 0.3 }),
        ("P=0.5", SyncModel::PsspConst { s, c: 0.5 }),
        ("P=1 (SSP)", SyncModel::Ssp { s }),
        (
            "Dynamic",
            SyncModel::PsspDynamic {
                s,
                alpha: Alpha::Significance {
                    floor: 0.05,
                    cap: 1.0,
                },
            },
        ),
    ]
}

/// One cell measurement.
pub fn measure(scale: Scale, combo: &Combo, model: SyncModel, policy: DprPolicy) -> RunResult {
    let cfg = DriverConfig {
        engine: EngineKind::FluentPs { model, policy },
        num_workers: combo.workers,
        num_servers: combo.servers,
        max_iters: scale.pick(200, 2000),
        model: combo.model.clone(),
        dataset: Some(combo.dataset),
        batch_size: 16,
        lr: LrSchedule::Constant(0.12),
        compute_base: 4.0,
        compute_jitter: 0.3,
        stragglers: StragglerSpec {
            transient_prob: 0.05,
            transient_factor: 2.0,
            persistent_count: 1,
            persistent_factor: 1.6,
        },
        link: LinkModel::gbe(),
        wire_bytes_scale: 100.0,
        eval_every: 0,
        seed: 31,
        ..DriverConfig::default()
    };
    run(&cfg)
}

/// Regenerate Table IV.
pub fn run_figure(scale: Scale) -> Vec<Table> {
    let mut t = Table::new(
        "Table IV: ASP/PSSP/SSP/dynamic x soft-barrier/lazy on four DNN/dataset combos",
        &[
            "combo",
            "policy",
            "model",
            "time/100it",
            "accuracy",
            "DPRs/100it",
        ],
    );
    for combo in combos(scale) {
        for (pname, policy) in [
            ("soft", DprPolicy::SoftBarrier),
            ("lazy", DprPolicy::LazyExecution),
        ] {
            for (label, model) in sync_models(combo.s) {
                // ASP is identical under both policies (it never defers);
                // the paper lists it once, so skip the duplicate run.
                if matches!(model, SyncModel::Asp) && policy == DprPolicy::LazyExecution {
                    continue;
                }
                let r = measure(scale, &combo, model, policy);
                let iters = scale.pick(200u64, 2000);
                t.row(vec![
                    combo.name.to_string(),
                    pname.to_string(),
                    label.to_string(),
                    format!("{:.1}s", r.total_time * 100.0 / iters as f64),
                    pct(r.final_accuracy),
                    format!("{:.1}", r.dprs_per_100),
                ]);
            }
        }
    }
    vec![t]
}
