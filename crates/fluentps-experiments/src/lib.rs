//! Reproduction harness for the FluentPS evaluation (Section IV).
//!
//! [`driver`] simulates a complete data-parallel training job: real models
//! and gradients from `fluentps-ml`, synchronization from `fluentps-core`
//! (or a baseline from `fluentps-baseline`), and timing from the
//! discrete-event fabric in `fluentps-simnet`. Each module in [`figures`]
//! configures the driver to regenerate one table or figure of the paper;
//! the `repro` binary exposes them as subcommands.
//!
//! Scaling note: the defaults are laptop-scale (fewer iterations, smaller
//! models) so `repro all` finishes in minutes. Pass `--full` for runs sized
//! like the paper's (64 000 iterations, 128 workers); the qualitative shape
//! is the same, the wall-clock cost is not.

#![warn(missing_docs)]

pub mod driver;
pub mod figures;
pub mod live;
pub mod profile;
pub mod report;
pub mod tracerun;

pub use driver::{DriverConfig, EngineKind, ModelKind, RunResult, SlicerKind};
