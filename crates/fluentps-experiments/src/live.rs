//! Live training: the same experiments, but on the *threaded* engine with
//! real wall-clock time instead of the discrete-event simulator.
//!
//! The simulator answers "what would happen on a cluster with these compute
//! and network characteristics"; this module answers "does the actual
//! concurrent implementation behave" — same models, same synchronization
//! code, real threads and (optionally) real sockets.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use fluentps_core::api::{FluentPs, SlicerChoice};
use fluentps_core::condition::SyncModel;
use fluentps_core::dpr::DprPolicy;
use fluentps_core::engine::EngineConfig;
use fluentps_core::eps::{EpsSlicer, ParamSpec, Slicer};
use fluentps_core::recovery::{RecoveryConfig, ResilientTcpCluster};
use fluentps_core::stats::ShardStats;
use fluentps_core::worker::RetryPolicy;
use fluentps_ml::data::{synthetic, BatchSampler, SyntheticSpec};
use fluentps_ml::models::{Mlp, Model, SoftmaxRegression};
use fluentps_ml::optim::{Optimizer, Sgd};
use fluentps_ml::schedule::LrSchedule;
use fluentps_obs::{
    AlertTransition, HealthEngine, MetricsRegistry, StreamConfig, Trace, TraceCollector,
    TraceSource,
};
use fluentps_transport::fault::FaultPlan;

/// Configuration of a live (threaded-engine) training run.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Synchronization model.
    pub model: SyncModel,
    /// DPR execution policy.
    pub policy: DprPolicy,
    /// Workers (threads).
    pub num_workers: u32,
    /// Servers (threads).
    pub num_servers: u32,
    /// Iterations per worker.
    pub max_iters: u64,
    /// Dataset.
    pub dataset: SyntheticSpec,
    /// `None` → softmax regression; `Some(hidden)` → MLP.
    pub hidden: Option<Vec<usize>>,
    /// Per-worker batch size.
    pub batch_size: usize,
    /// Learning-rate schedule.
    pub lr: LrSchedule,
    /// When `Some(capacity)`, attach a wall-clock [`TraceCollector`] of
    /// that ring capacity and return the trace in
    /// [`LiveResult::trace`].
    pub trace_events: Option<usize>,
    /// When `Some(addr)`, serve `/metrics`, `/healthz` and (if tracing)
    /// `/trace` there while training runs. Bind loopback unless
    /// deliberately exposing the endpoint.
    pub metrics_addr: Option<std::net::SocketAddr>,
    /// Seed.
    pub seed: u64,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            model: SyncModel::Bsp,
            policy: DprPolicy::LazyExecution,
            num_workers: 4,
            num_servers: 2,
            max_iters: 200,
            dataset: SyntheticSpec {
                dim: 16,
                classes: 4,
                n_train: 2000,
                n_test: 500,
                margin: 3.0,
                modes: 1,
                label_noise: 0.0,
                seed: 0,
            },
            hidden: None,
            batch_size: 16,
            lr: LrSchedule::Constant(0.25),
            trace_events: None,
            metrics_addr: None,
            seed: 0,
        }
    }
}

/// Result of a live run.
#[derive(Debug, Clone)]
pub struct LiveResult {
    /// Final test accuracy (evaluated on worker 0's final parameters).
    pub accuracy: f32,
    /// Wall-clock seconds for the whole run.
    pub wall_seconds: f64,
    /// Merged shard statistics.
    pub stats: ShardStats,
    /// Event trace (when [`LiveConfig::trace_events`] was set).
    pub trace: Option<Trace>,
}

/// Run a live training job on the threaded in-process engine.
pub fn run_live(cfg: &LiveConfig) -> LiveResult {
    let (train, test) = synthetic(cfg.dataset);
    let model: Box<dyn Model> = match &cfg.hidden {
        None => Box::new(SoftmaxRegression {
            dim: cfg.dataset.dim,
            classes: cfg.dataset.classes,
        }),
        Some(hidden) => {
            let mut dims = vec![cfg.dataset.dim];
            dims.extend_from_slice(hidden);
            dims.push(cfg.dataset.classes);
            Box::new(Mlp { dims })
        }
    };
    let init = model.init_params(cfg.seed);

    let collector = cfg
        .trace_events
        .or(cfg.metrics_addr.map(|_| 1 << 16))
        .map(TraceCollector::wall);
    let builder = FluentPs::builder()
        .workers(cfg.num_workers)
        .servers(cfg.num_servers)
        .model(cfg.model)
        .policy(cfg.policy)
        .slicer(SlicerChoice::Eps { max_chunk: 4096 })
        .seed(cfg.seed);
    let (cluster, workers) = match &collector {
        Some(col) => builder.launch_with_collector(&init, col),
        None => builder.launch(&init),
    };
    // With an endpoint up, a health engine tails the run's collector so
    // `/slo` and `/alerts` are live next to `/metrics`.
    let health = match (&collector, cfg.metrics_addr) {
        (Some(col), Some(_)) => {
            let engine = HealthEngine::with_default_rules(StreamConfig {
                window_secs: 0.5,
                windows: 8,
            });
            let tap = engine.attach_to(col, Duration::from_millis(20));
            Some((engine, tap))
        }
        _ => None,
    };
    let introspection = cfg.metrics_addr.map(|addr| {
        let registry = MetricsRegistry::new();
        let scope = registry.scope().with("engine", "threaded");
        scope.set_gauge("cluster_workers", cfg.num_workers as f64);
        scope.set_gauge("cluster_servers", cfg.num_servers as f64);
        scope.set_gauge("cluster_up", 1.0);
        fluentps_obs::http::serve_observed(
            addr,
            registry,
            collector.clone().map(TraceSource::Local),
            None,
            health.as_ref().map(|(engine, _)| engine.clone()),
        )
        .expect("bind introspection endpoint")
    });

    let start = Instant::now();
    let model_ref: &dyn Model = model.as_ref();
    let results: Vec<HashMap<u64, Vec<f32>>> = fluentps_util::sync::scope(|scope| {
        let handles: Vec<_> = workers
            .into_iter()
            .map(|mut client| {
                let train = &train;
                let init = init.clone();
                let cfg = cfg.clone();
                scope.spawn(move || {
                    let n = client.worker_id();
                    let mut params = init;
                    let mut opt = Sgd::new(cfg.lr.lr(0), 0.9, 0.0);
                    let mut sampler = BatchSampler::new(
                        train.partition(n, cfg.num_workers),
                        cfg.batch_size,
                        cfg.seed.wrapping_add(500 + n as u64),
                    );
                    for i in 0..cfg.max_iters {
                        let batch = train.batch(&sampler.next_indices());
                        let (_, grads) = model_ref.loss_and_grad(&params, &batch);
                        opt.set_lr(cfg.lr.lr(i));
                        let deltas = opt.deltas(&params, &grads);
                        client.spush(i, &deltas).expect("push");
                        client.spull_wait(i, &mut params).expect("pull");
                    }
                    params
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker thread"))
            .collect()
    });
    let wall_seconds = start.elapsed().as_secs_f64();

    let mut stats = ShardStats::default();
    for s in cluster.shutdown() {
        stats.merge(&s);
    }
    let trace = match cfg.trace_events {
        Some(_) => collector.as_ref().map(|c| c.snapshot()),
        None => None,
    };
    if let Some((engine, tap)) = health {
        tap.stop();
        engine.finish();
    }
    drop(introspection);
    LiveResult {
        accuracy: model.accuracy(&results[0], &test),
        wall_seconds,
        stats,
        trace,
    }
}

/// Configuration of a chaos run: live TCP training under a seeded fault
/// schedule, optionally killing (and recovering) a server mid-training.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Workers (threads, each with its own TCP endpoint).
    pub num_workers: u32,
    /// Servers.
    pub num_servers: u32,
    /// Iterations per worker.
    pub max_iters: u64,
    /// SSP staleness bound.
    pub staleness: u64,
    /// Kill server `m` once its shard's `V_train` reaches the threshold;
    /// the supervisor replaces it from the latest checkpoint.
    pub kill_server: Option<(u32, u64)>,
    /// Supervisor replicas forming the control-plane quorum. 1 (default)
    /// is the solo fast path; 3+ survives supervisor death by election.
    pub num_supervisors: u32,
    /// Kill supervisor replica `k` once it has applied consensus index
    /// `v`. Killing the leader exercises failover; killing a quorum
    /// exercises explicit leaderless degradation on `/healthz`.
    pub kill_supervisors: Vec<(u32, u64)>,
    /// Number of seeded chaos fault rules (drops, reorder-delays,
    /// duplicates) applied to the data path. 0 = none.
    pub faults: usize,
    /// When `Some(addr)`, serve `/metrics` and the liveness-fed `/healthz`
    /// readiness view there for the duration of the run.
    pub metrics_addr: Option<std::net::SocketAddr>,
    /// When `Some(addr)`, every node (workers, servers, supervisor) streams
    /// its trace events to the [`fluentps_transport::CollectorService`]
    /// listening there, so the run yields one merged cluster timeline.
    pub collector_addr: Option<std::net::SocketAddr>,
    /// Per-node trace ring capacity used when `collector_addr` is set.
    pub trace_ring_capacity: usize,
    /// Streaming health engine observing the run. `None` with
    /// `metrics_addr` set still creates one internally (so `/slo` and
    /// `/alerts` always accompany `/metrics`); pass an explicit engine to
    /// watch the same alerts in-process, e.g. from `repro watch`. With
    /// `collector_addr` set the engine must be fed by that collector
    /// service (`CollectorService::attach_health`) — the run itself has no
    /// merged local timeline to tap.
    pub health_engine: Option<HealthEngine>,
    /// Master seed: drives data, initialization, and the fault schedule.
    pub seed: u64,
    /// Keep the run's local trace and return it in
    /// [`ChaosResult::trace`], so callers (e.g. `repro waterfall`) can
    /// assemble per-request causal waterfalls offline. Forces a local
    /// [`TraceCollector`] even without a health engine; ignored when
    /// `collector_addr` streams events off-node instead.
    pub keep_trace: bool,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            num_workers: 2,
            num_servers: 2,
            max_iters: 30,
            staleness: 2,
            kill_server: None,
            num_supervisors: 1,
            kill_supervisors: Vec::new(),
            faults: 0,
            metrics_addr: None,
            collector_addr: None,
            trace_ring_capacity: 1 << 14,
            health_engine: None,
            seed: 0,
            keep_trace: false,
        }
    }
}

/// Result of a chaos run.
#[derive(Debug, Clone)]
pub struct ChaosResult {
    /// Final test accuracy on worker 0's parameters.
    pub accuracy: f32,
    /// Wall-clock seconds.
    pub wall_seconds: f64,
    /// Per-server statistics (a replaced server's incarnations merged).
    pub stats: Vec<ShardStats>,
    /// Servers still dead when the run ended (0 after a successful
    /// replacement).
    pub dead_at_end: usize,
    /// Digest of the run's *logical* outcome: per-server synchronization
    /// counters plus worker 0's final parameter bits. Single-worker runs
    /// with the same seed reproduce it bit-for-bit; CI diffs it across two
    /// runs.
    pub fingerprint: String,
    /// Firing/resolved alert transitions recorded by the health engine, in
    /// order (`None` when no engine observed the run).
    pub alerts: Option<Vec<AlertTransition>>,
    /// Digest of the *logical* alert sequence (the `dead_nodes` liveness
    /// transitions): same seed + same kill schedule reproduce it
    /// bit-for-bit. `None` when no engine observed the run.
    pub alert_fingerprint: Option<String>,
    /// The run's local trace snapshot, taken after shutdown so it is
    /// complete ([`ChaosConfig::keep_trace`]; `None` otherwise). All
    /// events share one process clock, so waterfall assembly over it
    /// needs no cross-node offset correction.
    pub trace: Option<fluentps_obs::Trace>,
}

/// FNV-1a, the fingerprint hash (stable, dependency-free).
fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = if h == 0 { 0xcbf2_9ce4_8422_2325 } else { h };
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Run live TCP training through the fault-tolerant runtime under a seeded
/// chaos schedule. Panics (non-zero exit for the CLI) if any worker fails
/// to complete its iterations — retries, replay and server replacement are
/// expected to absorb every injected fault.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosResult {
    let dataset = SyntheticSpec {
        dim: 16,
        classes: 4,
        n_train: 1200,
        n_test: 300,
        margin: 3.0,
        modes: 1,
        label_noise: 0.0,
        seed: cfg.seed,
    };
    let (train, test) = synthetic(dataset);
    let model = SoftmaxRegression {
        dim: dataset.dim,
        classes: dataset.classes,
    };
    let init = model.init_params(cfg.seed);
    let specs: Vec<ParamSpec> = model
        .param_shapes()
        .iter()
        .map(|s| ParamSpec {
            key: s.key,
            len: s.len,
        })
        .collect();
    // Chunk small enough that every server owns slices — a kill target
    // with an empty shard would never reach its `V_train` threshold.
    let map = EpsSlicer { max_chunk: 16 }.slice(&specs, cfg.num_servers);

    let ecfg = EngineConfig {
        num_workers: cfg.num_workers,
        num_servers: cfg.num_servers,
        model: SyncModel::Ssp { s: cfg.staleness },
        policy: DprPolicy::LazyExecution,
        seed: cfg.seed,
        ..EngineConfig::default()
    };
    let rcfg = RecoveryConfig {
        heartbeat_every: Duration::from_millis(10),
        liveness_timeout: Duration::from_millis(80),
        checkpoint_every: 1,
        kill_server: cfg.kill_server,
        spawn_replacement: true,
        retry: RetryPolicy {
            timeout: Duration::from_millis(60),
            max_retries: 100,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(50),
            jitter_seed: cfg.seed ^ 0xC4A0,
            replay_depth: 32,
        },
        fault_plan: if cfg.faults > 0 {
            FaultPlan::chaos(
                cfg.seed,
                cfg.num_workers,
                cfg.num_servers,
                cfg.max_iters,
                cfg.faults,
            )
        } else {
            FaultPlan::passthrough()
        },
        collector_addr: cfg.collector_addr,
        trace_ring_capacity: cfg.trace_ring_capacity,
        num_supervisors: cfg.num_supervisors,
        kill_supervisors: cfg.kill_supervisors.clone(),
        election_timeout: Duration::from_millis(200),
        leader_lease: Duration::from_millis(100),
        metrics: None,
        health_engine: None,
    };

    // Health engine: the caller's, or a fresh one whenever the run serves
    // an introspection endpoint (so `/slo` and `/alerts` always accompany
    // `/metrics`). Fed from a run-local collector unless the nodes stream
    // to a remote collector service — then that service owns the feed.
    let engine = cfg.health_engine.clone().or_else(|| {
        cfg.metrics_addr.map(|_| {
            HealthEngine::with_default_rules(StreamConfig {
                window_secs: 0.5,
                windows: 8,
            })
        })
    });
    let local_collector = if cfg.collector_addr.is_none() && (engine.is_some() || cfg.keep_trace) {
        Some(TraceCollector::wall(cfg.trace_ring_capacity))
    } else {
        None
    };
    let mut rcfg = rcfg;
    rcfg.health_engine = engine.clone();
    // The registry exists before launch so the supervisor replicas can
    // publish the consensus gauges into it from the first election on.
    let consensus_registry = cfg.metrics_addr.map(|_| MetricsRegistry::new());
    rcfg.metrics = consensus_registry.clone();

    let (cluster, workers) =
        ResilientTcpCluster::launch(ecfg, rcfg, map, &init, local_collector.as_ref())
            .expect("launch chaos cluster");
    let introspection = cfg.metrics_addr.map(|addr| {
        let registry = consensus_registry
            .clone()
            .expect("registry with metrics_addr");
        let scope = registry.scope().with("engine", "resilient-tcp");
        scope.set_gauge("cluster_workers", cfg.num_workers as f64);
        scope.set_gauge("cluster_servers", cfg.num_servers as f64);
        scope.set_gauge("cluster_up", 1.0);
        fluentps_obs::http::serve_observed(
            addr,
            registry,
            local_collector.clone().map(TraceSource::Local),
            Some(cluster.health()),
            engine.clone(),
        )
        .expect("bind introspection endpoint")
    });

    let start = Instant::now();
    let model_ref = &model;
    let results: Vec<HashMap<u64, Vec<f32>>> = fluentps_util::sync::scope(|scope| {
        let handles: Vec<_> = workers
            .into_iter()
            .map(|mut client| {
                let train = &train;
                let init = init.clone();
                let cfg = cfg.clone();
                scope.spawn(move || {
                    let n = client.worker_id();
                    let mut params = init;
                    let mut opt = Sgd::new(0.25, 0.9, 0.0);
                    let mut sampler = BatchSampler::new(
                        train.partition(n, cfg.num_workers),
                        cfg.batch_size(),
                        cfg.seed.wrapping_add(500 + n as u64),
                    );
                    for i in 0..cfg.max_iters {
                        let batch = train.batch(&sampler.next_indices());
                        let (_, grads) = model_ref.loss_and_grad(&params, &batch);
                        let deltas = opt.deltas(&params, &grads);
                        client.spush(i, &deltas).expect("push under chaos");
                        let report = client
                            .spull_wait(i, &mut params)
                            .expect("pull survives chaos");
                        // The SSP contract holds through faults and
                        // recovery: a granted pull is never staler than
                        // the bound allows.
                        assert!(
                            report.min_version as i64 >= i as i64 - cfg.staleness as i64,
                            "worker {n} iter {i}: granted version {} violates s={}",
                            report.min_version,
                            cfg.staleness
                        );
                    }
                    params
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("chaos worker thread"))
            .collect()
    });
    let wall_seconds = start.elapsed().as_secs_f64();

    let health = cluster.health();
    let dead_at_end = health.dead_count();
    let stats = cluster.shutdown();
    drop(introspection);

    let mut h = 0u64;
    for (m, s) in stats.iter().enumerate() {
        h = fnv1a(h, &(m as u64).to_le_bytes());
        for v in [
            s.pushes,
            s.pulls_total,
            s.v_train_advances,
            s.dprs,
            s.dprs_released,
        ] {
            h = fnv1a(h, &v.to_le_bytes());
        }
    }
    let mut keys: Vec<&u64> = results[0].keys().collect();
    keys.sort_unstable();
    for k in keys {
        h = fnv1a(h, &k.to_le_bytes());
        for v in &results[0][k] {
            h = fnv1a(h, &v.to_bits().to_le_bytes());
        }
    }

    // The cluster's shutdown drained the tap and finalized the engine (for
    // run-local feeds), so the alert record is complete here.
    let alerts = engine.as_ref().map(|e| e.transitions());
    let alert_fingerprint = engine.as_ref().map(|e| format!("{:016x}", e.fingerprint()));

    // Snapshot only after shutdown, so every node's last events (replays,
    // recovery fan-outs, final acks) are in the rings.
    let trace = if cfg.keep_trace {
        local_collector.as_ref().map(|c| c.snapshot())
    } else {
        None
    };

    ChaosResult {
        accuracy: model.accuracy(&results[0], &test),
        wall_seconds,
        stats,
        dead_at_end,
        fingerprint: format!("{h:016x}"),
        alerts,
        alert_fingerprint,
        trace,
    }
}

impl ChaosConfig {
    fn batch_size(&self) -> usize {
        16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_bsp_learns() {
        let r = run_live(&LiveConfig::default());
        assert!(r.accuracy > 0.8, "live BSP accuracy {}", r.accuracy);
        assert!(r.wall_seconds > 0.0);
        assert_eq!(r.stats.pushes, 4 * 200 * 2); // workers × iters × servers
    }

    #[test]
    fn live_pssp_learns_with_fewer_waits_than_bsp() {
        let bsp = run_live(&LiveConfig::default());
        let pssp = run_live(&LiveConfig {
            model: SyncModel::PsspConst { s: 2, c: 0.3 },
            ..LiveConfig::default()
        });
        assert!(pssp.accuracy > 0.78, "live PSSP accuracy {}", pssp.accuracy);
        assert!(
            pssp.stats.dprs <= bsp.stats.dprs,
            "PSSP {} DPRs vs BSP {}",
            pssp.stats.dprs,
            bsp.stats.dprs
        );
    }

    #[test]
    fn same_seed_kill_runs_reproduce_the_alert_sequence() {
        let run = || {
            let engine = HealthEngine::with_default_rules(StreamConfig {
                window_secs: 0.25,
                windows: 8,
            });
            let cfg = ChaosConfig {
                num_workers: 1,
                num_servers: 2,
                max_iters: 16,
                kill_server: Some((0, 4)),
                health_engine: Some(engine.clone()),
                seed: 7,
                ..ChaosConfig::default()
            };
            run_chaos(&cfg)
        };
        let ra = run();
        let rb = run();
        assert_eq!(ra.dead_at_end, 0, "replacement heals the cluster");
        let fa = ra.alert_fingerprint.as_deref().expect("engine active");
        let fb = rb.alert_fingerprint.as_deref().expect("engine active");
        // The fingerprint folds only the logical (event-driven) liveness
        // transitions, so two same-seed kill runs agree bit-for-bit even
        // though their wall-clock windows differ.
        assert_eq!(fa, fb, "logical alert sequence is deterministic");
        let alerts = ra.alerts.expect("engine active");
        let dead: Vec<_> = alerts.iter().filter(|t| t.rule == "dead_nodes").collect();
        assert!(
            dead.len() >= 2,
            "kill fires and resolves the liveness alert: {alerts:?}"
        );
        assert!(dead[0].firing && dead[0].logical, "kill raises the alert");
        assert!(
            !dead.last().unwrap().firing,
            "checkpoint replacement resolves it"
        );
    }

    #[test]
    fn live_mlp_on_multimodal_data() {
        let r = run_live(&LiveConfig {
            hidden: Some(vec![32]),
            max_iters: 300,
            dataset: SyntheticSpec {
                dim: 16,
                classes: 4,
                n_train: 2500,
                n_test: 500,
                margin: 4.0,
                modes: 2,
                label_noise: 0.0,
                seed: 9,
            },
            lr: LrSchedule::Constant(0.2),
            ..LiveConfig::default()
        });
        assert!(r.accuracy > 0.8, "live MLP accuracy {}", r.accuracy);
    }
}
