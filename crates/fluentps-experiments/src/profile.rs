//! `repro profile`: a live TCP training run under the cooperative span
//! profiler, reporting where the time (and the allocations) went.
//!
//! The run uses [`fluentps_core::tcp_engine::TcpCluster::launch_introspected`],
//! so every layer the profiler instruments is exercised for real: server
//! loop phases (`server/apply_push`, `server/handle_pull`, `server/reply`),
//! worker client phases (`worker/push`, `worker/pull_wait`) nested under the
//! training step spans this module opens (`worker/step`, `worker/compute`),
//! and the transport's frame codec (`wire/encode`, `wire/decode`). While the
//! run executes, the same snapshots are live on the introspection endpoint
//! as `/profile?format=folded|speedscope`.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::Instant;

use fluentps_core::condition::SyncModel;
use fluentps_core::engine::EngineConfig;
use fluentps_core::eps::{EpsSlicer, ParamSpec, Slicer};
use fluentps_core::stats::ShardStats;
use fluentps_core::tcp_engine::TcpCluster;
use fluentps_ml::data::{synthetic, BatchSampler, SyntheticSpec};
use fluentps_ml::models::{Model, SoftmaxRegression};
use fluentps_ml::optim::{Optimizer, Sgd};
use fluentps_obs::{MetricsRegistry, ProfileReport, TraceCollector};

/// Configuration of a profiled live TCP run.
#[derive(Debug, Clone)]
pub struct ProfileConfig {
    /// Workers (threads, each with its own TCP endpoint).
    pub num_workers: u32,
    /// Servers.
    pub num_servers: u32,
    /// Iterations per worker.
    pub max_iters: u64,
    /// Synchronization model.
    pub model: SyncModel,
    /// Where the introspection endpoint (including `/profile`) listens;
    /// `None` binds an OS-chosen loopback port.
    pub metrics_addr: Option<SocketAddr>,
    /// Seed for data, initialization and the servers' probability draws.
    pub seed: u64,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            num_workers: 2,
            num_servers: 2,
            max_iters: 200,
            model: SyncModel::Ssp { s: 2 },
            metrics_addr: None,
            seed: 0,
        }
    }
}

/// Result of a profiled run.
#[derive(Debug, Clone)]
pub struct ProfileResult {
    /// Final test accuracy on worker 0's parameters (the profiled run is
    /// still a real training job — a profile of a broken run is noise).
    pub accuracy: f32,
    /// Wall-clock seconds for the training phase.
    pub wall_seconds: f64,
    /// Merged shard statistics.
    pub stats: ShardStats,
    /// The complete span profile, snapshot after shutdown.
    pub report: ProfileReport,
}

/// Run a live TCP training job with the span profiler attached and return
/// its aggregated profile.
pub fn run_profile(cfg: &ProfileConfig) -> ProfileResult {
    let dataset = SyntheticSpec {
        dim: 16,
        classes: 4,
        n_train: 2000,
        n_test: 500,
        margin: 3.0,
        modes: 1,
        label_noise: 0.0,
        seed: cfg.seed,
    };
    let (train, test) = synthetic(dataset);
    let model = SoftmaxRegression {
        dim: dataset.dim,
        classes: dataset.classes,
    };
    let init = model.init_params(cfg.seed);
    let specs: Vec<ParamSpec> = model
        .param_shapes()
        .iter()
        .map(|s| ParamSpec {
            key: s.key,
            len: s.len,
        })
        .collect();
    let map = EpsSlicer { max_chunk: 16 }.slice(&specs, cfg.num_servers);

    let ecfg = EngineConfig {
        num_workers: cfg.num_workers,
        num_servers: cfg.num_servers,
        model: cfg.model,
        seed: cfg.seed,
        ..EngineConfig::default()
    };
    let collector = TraceCollector::wall(1 << 14);
    let registry = MetricsRegistry::new();
    let addr = cfg
        .metrics_addr
        .unwrap_or_else(|| "127.0.0.1:0".parse().expect("loopback"));
    let (cluster, workers, introspection) =
        TcpCluster::launch_introspected(ecfg, map, &init, &collector, &registry, addr)
            .expect("launch profiled TCP cluster");
    // Keep a handle past shutdown so the snapshot includes the servers'
    // final spans.
    let prof = cluster
        .prof_collector()
        .expect("introspected launch attaches a profiler")
        .clone();

    let start = Instant::now();
    let model_ref = &model;
    let results: Vec<HashMap<u64, Vec<f32>>> = fluentps_util::sync::scope(|scope| {
        let handles: Vec<_> = workers
            .into_iter()
            .map(|mut client| {
                let train = &train;
                let init = init.clone();
                let cfg = cfg.clone();
                let profiler = prof.profiler();
                scope.spawn(move || {
                    let n = client.worker_id();
                    let mut params = init;
                    let mut opt = Sgd::new(0.25, 0.9, 0.0);
                    let mut sampler = BatchSampler::new(
                        train.partition(n, cfg.num_workers),
                        16,
                        cfg.seed.wrapping_add(500 + n as u64),
                    );
                    for i in 0..cfg.max_iters {
                        // One step span per iteration: the client's
                        // worker/push and worker/pull_wait nest under it, so
                        // the folded profile reads compute vs sync directly.
                        let _step = profiler.enter("worker/step");
                        let deltas = {
                            let _span = profiler.enter("worker/compute");
                            let batch = train.batch(&sampler.next_indices());
                            let (_, grads) = model_ref.loss_and_grad(&params, &batch);
                            opt.deltas(&params, &grads)
                        };
                        client.spush(i, &deltas).expect("push");
                        client.spull_wait(i, &mut params).expect("pull");
                    }
                    params
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("profiled worker thread"))
            .collect()
    });
    let wall_seconds = start.elapsed().as_secs_f64();

    let mut stats = ShardStats::default();
    for s in cluster.shutdown() {
        stats.merge(&s);
    }
    drop(introspection);
    ProfileResult {
        accuracy: model.accuracy(&results[0], &test),
        wall_seconds,
        stats,
        report: prof.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiled_tcp_run_learns_and_captures_all_layers() {
        let r = run_profile(&ProfileConfig {
            max_iters: 60,
            ..ProfileConfig::default()
        });
        assert!(r.accuracy > 0.7, "profiled run accuracy {}", r.accuracy);
        let spans = &r.report.spans;
        // Worker spans nest: push/pull under the step span.
        assert!(spans.contains_key("worker/step"));
        assert!(spans.contains_key("worker/step;worker/compute"));
        assert!(spans.contains_key("worker/step;worker/push"));
        assert!(spans.contains_key("worker/step;worker/pull_wait"));
        // Server loop phases.
        assert!(spans.contains_key("server/apply_push"));
        assert!(spans.contains_key("server/handle_pull"));
        // Wire codec: encode nests under the phases that send; decode runs
        // on reader threads at the stack root.
        assert!(spans.contains_key("wire/decode"));
        assert!(spans.keys().any(|k| k.ends_with(";wire/encode")));
        // Every worker iterated: step count = workers × iters.
        assert_eq!(spans["worker/step"].count, 2 * 60);
        // Self + children never exceeds the parent total.
        let step = &spans["worker/step"];
        let children: f64 = spans
            .iter()
            .filter(|(k, _)| k.starts_with("worker/step;") && k.matches(';').count() == 1)
            .map(|(_, s)| s.total_secs)
            .sum();
        assert!(
            step.self_secs + children <= step.total_secs + 1e-6,
            "self {} + children {} vs total {}",
            step.self_secs,
            children,
            step.total_secs
        );
    }
}
