//! Plain-text table/CSV rendering for experiment reports.

use std::fmt::Write as _;

use fluentps_core::stats::ShardStats;
use fluentps_obs::{EventKind, Trace};

/// A simple column-aligned table that renders to monospaced text (the
/// `repro` binary prints these) and to CSV (for downstream plotting).
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(s, "{c:>w$}  ", w = w);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total.saturating_sub(2)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Render as CSV (title as a comment line).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Event-trace summary cross-checked against the merged shard statistics:
/// every event kind's total next to the counter the server state machine
/// kept for the same occurrence, so divergence is visible at a glance.
pub fn trace_section(trace: &Trace, stats: &ShardStats) -> Table {
    let mut t = Table::new("trace summary", &["event", "trace count", "shard stats"]);
    let stat_for = |kind: EventKind| -> String {
        match kind {
            EventKind::PullRequested => stats.pulls_total.to_string(),
            EventKind::PullDeferred => stats.dprs.to_string(),
            EventKind::DprReleased => stats.dprs_released.to_string(),
            EventKind::LatePushDropped => stats.late_pushes_dropped.to_string(),
            EventKind::VTrainAdvanced => stats.v_train_advances.to_string(),
            // Applied pushes have no dedicated counter; `pushes` counts
            // applied + dropped, reported on the reconciliation row below.
            _ => "—".to_string(),
        }
    };
    for kind in EventKind::ALL {
        t.row(vec![
            kind.name().to_string(),
            trace.count(kind).to_string(),
            stat_for(kind),
        ]);
    }
    t.row(vec![
        "pushes (applied+dropped)".into(),
        (trace.count(EventKind::PushApplied) + trace.count(EventKind::LatePushDropped)).to_string(),
        stats.pushes.to_string(),
    ]);
    t.row(vec![
        "dprs still buffered".into(),
        (trace.count(EventKind::PullDeferred) - trace.count(EventKind::DprReleased)).to_string(),
        (stats.dprs - stats.dprs_released).to_string(),
    ]);
    t
}

/// Check that `trace` and `stats` tell the same story: every counter the
/// shards kept matches the trace's per-kind totals, and the DPR ledger
/// balances (`dprs == dprs_released + still-buffered`). Returns the first
/// discrepancy as an error message.
pub fn trace_reconciles(trace: &Trace, stats: &ShardStats) -> Result<(), String> {
    let checks: [(&str, u64, u64); 5] = [
        (
            "pulls",
            trace.count(EventKind::PullRequested),
            stats.pulls_total,
        ),
        ("dprs", trace.count(EventKind::PullDeferred), stats.dprs),
        (
            "dprs_released",
            trace.count(EventKind::DprReleased),
            stats.dprs_released,
        ),
        (
            "pushes",
            trace.count(EventKind::PushApplied) + trace.count(EventKind::LatePushDropped),
            stats.pushes,
        ),
        (
            "v_train_advances",
            trace.count(EventKind::VTrainAdvanced),
            stats.v_train_advances,
        ),
    ];
    for (name, from_trace, from_stats) in checks {
        if from_trace != from_stats {
            return Err(format!(
                "{name}: trace says {from_trace}, shard stats say {from_stats}"
            ));
        }
    }
    if stats.dprs < stats.dprs_released {
        return Err(format!(
            "more DPRs released ({}) than deferred ({})",
            stats.dprs_released, stats.dprs
        ));
    }
    Ok(())
}

/// Format seconds with sensible precision.
pub fn secs(t: f64) -> String {
    if t >= 100.0 {
        format!("{t:.0}s")
    } else if t >= 1.0 {
        format!("{t:.1}s")
    } else {
        format!("{:.0}ms", t * 1000.0)
    }
}

/// Format a 0..1 accuracy as a percentage.
pub fn pct(a: f32) -> String {
    format!("{:.1}%", a * 100.0)
}

/// Format a speedup factor.
pub fn speedup(baseline: f64, ours: f64) -> String {
    if ours <= 0.0 {
        "—".to_string()
    } else {
        format!("{:.2}x", baseline / ours)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("c", &["k"]);
        t.row(vec!["a,b".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(0.5), "500ms");
        assert_eq!(secs(12.34), "12.3s");
        assert_eq!(secs(250.0), "250s");
        assert_eq!(pct(0.765), "76.5%");
        assert_eq!(speedup(6.0, 1.5), "4.00x");
        assert_eq!(speedup(1.0, 0.0), "—");
    }
}
