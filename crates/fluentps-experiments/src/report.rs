//! Plain-text table/CSV rendering for experiment reports.

use std::fmt::Write as _;

use fluentps_core::stats::ShardStats;
use fluentps_obs::analyze::Analysis;
use fluentps_obs::{EventKind, Trace};

/// A simple column-aligned table that renders to monospaced text (the
/// `repro` binary prints these) and to CSV (for downstream plotting).
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(s, "{c:>w$}  ", w = w);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        let _ = writeln!(out, "{}", "-".repeat(total.saturating_sub(2)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Render as a GitHub-flavored markdown table (title as a heading).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.title);
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.header
                .iter()
                .map(|_| " --- ")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Render as CSV (title as a comment line).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Event-trace summary cross-checked against the merged shard statistics:
/// every event kind's total next to the counter the server state machine
/// kept for the same occurrence, so divergence is visible at a glance.
pub fn trace_section(trace: &Trace, stats: &ShardStats) -> Table {
    let mut t = Table::new("trace summary", &["event", "trace count", "shard stats"]);
    let stat_for = |kind: EventKind| -> String {
        match kind {
            EventKind::PullRequested => stats.pulls_total.to_string(),
            EventKind::PullDeferred => stats.dprs.to_string(),
            EventKind::DprReleased => stats.dprs_released.to_string(),
            EventKind::LatePushDropped => stats.late_pushes_dropped.to_string(),
            EventKind::VTrainAdvanced => stats.v_train_advances.to_string(),
            // Applied pushes have no dedicated counter; `pushes` counts
            // applied + dropped, reported on the reconciliation row below.
            _ => "—".to_string(),
        }
    };
    for kind in EventKind::ALL {
        t.row(vec![
            kind.name().to_string(),
            trace.count(kind).to_string(),
            stat_for(kind),
        ]);
    }
    t.row(vec![
        "pushes (applied+dropped)".into(),
        (trace.count(EventKind::PushApplied) + trace.count(EventKind::LatePushDropped)).to_string(),
        stats.pushes.to_string(),
    ]);
    t.row(vec![
        "dprs still buffered".into(),
        (trace.count(EventKind::PullDeferred) - trace.count(EventKind::DprReleased)).to_string(),
        (stats.dprs - stats.dprs_released).to_string(),
    ]);
    t
}

/// The health engine's alert record as a table: one row per
/// firing/resolved transition, in order, with the trigger detail. Pair it
/// with the chaos tables so a killed server's liveness alert (and its
/// resolution after replacement) reads next to the training outcome.
pub fn alert_section(alerts: &[fluentps_obs::AlertTransition]) -> Table {
    let mut t = Table::new(
        "alert transitions",
        &["rule", "transition", "at", "logical", "detail"],
    );
    for a in alerts {
        t.row(vec![
            a.rule.clone(),
            if a.firing { "firing" } else { "resolved" }.to_string(),
            a.at.to_string(),
            a.logical.to_string(),
            a.detail.clone(),
        ]);
    }
    t
}

/// The `repro profile` table: the top `n` span paths by self time, with
/// call counts, total (inclusive) time and the allocation deltas the
/// counting allocator attributed to each span's self window.
pub fn profile_section(report: &fluentps_obs::ProfileReport, n: usize) -> Table {
    let mut t = Table::new(
        format!("profile: top {n} spans by self time"),
        &[
            "span path",
            "calls",
            "self",
            "total",
            "self allocs",
            "self bytes",
        ],
    );
    for (path, stat) in report.top_self(n) {
        t.row(vec![
            path.to_string(),
            stat.count.to_string(),
            format!("{:.6}s", stat.self_secs),
            format!("{:.6}s", stat.total_secs),
            stat.self_allocs.to_string(),
            stat.self_alloc_bytes.to_string(),
        ]);
    }
    t
}

/// Check that `trace` and `stats` tell the same story: every counter the
/// shards kept matches the trace's per-kind totals, and the DPR ledger
/// balances (`dprs == dprs_released + still-buffered`). Returns the first
/// discrepancy as an error message.
pub fn trace_reconciles(trace: &Trace, stats: &ShardStats) -> Result<(), String> {
    let checks: [(&str, u64, u64); 5] = [
        (
            "pulls",
            trace.count(EventKind::PullRequested),
            stats.pulls_total,
        ),
        ("dprs", trace.count(EventKind::PullDeferred), stats.dprs),
        (
            "dprs_released",
            trace.count(EventKind::DprReleased),
            stats.dprs_released,
        ),
        (
            "pushes",
            trace.count(EventKind::PushApplied) + trace.count(EventKind::LatePushDropped),
            stats.pushes,
        ),
        (
            "v_train_advances",
            trace.count(EventKind::VTrainAdvanced),
            stats.v_train_advances,
        ),
    ];
    for (name, from_trace, from_stats) in checks {
        if from_trace != from_stats {
            return Err(format!(
                "{name}: trace says {from_trace}, shard stats say {from_stats}"
            ));
        }
    }
    if stats.dprs < stats.dprs_released {
        return Err(format!(
            "more DPRs released ({}) than deferred ({})",
            stats.dprs_released, stats.dprs
        ));
    }
    Ok(())
}

/// Render a full [`Analysis`] as report tables, in reading order:
/// per-worker breakdown, straggler scoreboard, progress spread, per-shard
/// sync health, staleness histogram, PSSP block rate per gap (with an
/// analytical column when `analytical` supplies `Pr[blocked | gap=k]`),
/// and the extracted critical path.
pub fn analysis_sections(a: &Analysis, analytical: Option<&dyn Fn(u64) -> f64>) -> Vec<Table> {
    let mut tables = Vec::new();

    let mut t = Table::new(
        "per-worker time breakdown",
        &[
            "worker", "iters", "active", "compute", "barrier", "wire", "sent B", "recv B",
        ],
    );
    for w in &a.workers {
        t.row(vec![
            w.worker.to_string(),
            w.iterations.to_string(),
            secs(w.active_secs()),
            secs(w.compute_secs()),
            secs(w.barrier_secs),
            secs(w.wire_secs),
            w.bytes_sent.to_string(),
            w.bytes_recvd.to_string(),
        ]);
    }
    tables.push(t);

    let mut t = Table::new(
        "straggler scoreboard",
        &["rank", "worker", "iters", "behind", "barrier", "defer rate"],
    );
    let mut ranked: Vec<_> = a.workers.iter().collect();
    ranked.sort_by(|x, y| {
        x.iterations.cmp(&y.iterations).then(
            y.last_ts
                .partial_cmp(&x.last_ts)
                .unwrap_or(std::cmp::Ordering::Equal),
        )
    });
    let fastest = a.workers.iter().map(|w| w.iterations).max().unwrap_or(0);
    for (rank, w) in ranked.iter().enumerate() {
        let defer_rate = if w.pulls == 0 {
            0.0
        } else {
            w.deferred as f64 / w.pulls as f64
        };
        t.row(vec![
            (rank + 1).to_string(),
            w.worker.to_string(),
            w.iterations.to_string(),
            (fastest - w.iterations).to_string(),
            secs(w.barrier_secs),
            format!("{:.1}%", defer_rate * 100.0),
        ]);
    }
    tables.push(t);

    let mut t = Table::new(
        "progress spread over time",
        &["t", "min progress", "max progress", "spread"],
    );
    for p in &a.spread {
        t.row(vec![
            secs(p.ts - a.span.0),
            p.min_progress.to_string(),
            p.max_progress.to_string(),
            p.spread().to_string(),
        ]);
    }
    tables.push(t);

    let mut t = Table::new(
        "per-shard sync health",
        &[
            "shard",
            "dprs",
            "resid mean",
            "resid max",
            "open",
            "pushes",
            "late drop",
            "v_train",
            "adv interval",
        ],
    );
    for s in &a.shards {
        t.row(vec![
            s.shard.to_string(),
            s.dpr_count.to_string(),
            secs(s.dpr_residence_mean),
            secs(s.dpr_residence_max),
            s.outstanding_dprs.to_string(),
            s.pushes.to_string(),
            format!("{:.1}%", s.late_drop_rate() * 100.0),
            s.final_v_train.to_string(),
            secs(s.advance_interval_mean),
        ]);
    }
    tables.push(t);

    let mut t = Table::new(
        "staleness at pull time",
        &["gap", "pulls", "granted", "deferred"],
    );
    for g in &a.gaps {
        t.row(vec![
            g.gap.to_string(),
            g.pulls.to_string(),
            g.granted().to_string(),
            g.deferred.to_string(),
        ]);
    }
    tables.push(t);

    let mut t = Table::new(
        "block rate per gap",
        &["gap", "pulls", "empirical Pr[block]", "analytical"],
    );
    for g in &a.gaps {
        let analytic = match analytical {
            Some(f) => format!("{:.3}", f(g.gap)),
            None => "—".to_string(),
        };
        t.row(vec![
            g.gap.to_string(),
            g.pulls.to_string(),
            format!("{:.3}", g.block_rate()),
            analytic,
        ]);
    }
    tables.push(t);

    let mut t = Table::new(
        "critical path",
        &["step", "what", "shard", "worker", "t", "secs"],
    );
    let id = |x: u32| {
        if x == u32::MAX {
            "—".to_string()
        } else {
            x.to_string()
        }
    };
    for (i, step) in a.critical_path.iter().enumerate() {
        t.row(vec![
            (i + 1).to_string(),
            step.what.to_string(),
            id(step.shard),
            id(step.worker),
            secs(step.ts - a.span.0),
            format!("{:.6}", step.secs),
        ]);
    }
    tables.push(t);

    // Only on traces that carry causal request ids: how often the FIFO
    // wire matcher (which attributed the "wire" column above) agreed with
    // the exact ids. Non-zero mismatch means reorder chaos misattributed
    // some transit time between requests.
    if let Some(c) = &a.wire_check {
        let mut t = Table::new(
            "wire matcher audit (FIFO vs causal ids)",
            &["checked", "mismatches", "mismatch rate", "unmatched recvs"],
        );
        t.row(vec![
            c.checked.to_string(),
            c.mismatches.to_string(),
            format!("{:.2}%", c.mismatch_rate() * 100.0),
            c.unmatched_recvs.to_string(),
        ]);
        tables.push(t);
    }

    tables
}

/// Format seconds with sensible precision.
pub fn secs(t: f64) -> String {
    if t >= 100.0 {
        format!("{t:.0}s")
    } else if t >= 1.0 {
        format!("{t:.1}s")
    } else {
        format!("{:.0}ms", t * 1000.0)
    }
}

/// Format a 0..1 accuracy as a percentage.
pub fn pct(a: f32) -> String {
    format!("{:.1}%", a * 100.0)
}

/// Format a speedup factor.
pub fn speedup(baseline: f64, ours: f64) -> String {
    if ours <= 0.0 {
        "—".to_string()
    } else {
        format!("{:.2}x", baseline / ours)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-name"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new("c", &["k"]);
        t.row(vec!["a,b".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
    }

    #[test]
    fn markdown_renders_header_separator_and_rows() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("### demo\n"));
        assert!(md.contains("| name | value |"));
        assert!(md.contains("| --- | --- |"));
        assert!(md.contains("| a | 1 |"));
    }

    #[test]
    fn analysis_sections_cover_the_report_and_label_the_analytical_column() {
        use fluentps_obs::{EventKind, RecordArgs, TraceCollector};
        let collector = TraceCollector::wall(64);
        let tracer = collector.tracer();
        // Worker 0 pulls at gap 0 (granted) and gap 2 (deferred).
        tracer.record(
            EventKind::PullRequested,
            RecordArgs::new().shard(0).worker(0).progress(0),
        );
        tracer.record(
            EventKind::PullRequested,
            RecordArgs::new().shard(0).worker(0).progress(2),
        );
        tracer.record(
            EventKind::PullDeferred,
            RecordArgs::new().shard(0).worker(0).progress(2),
        );
        tracer.record(
            EventKind::PushApplied,
            RecordArgs::new().shard(0).worker(1).progress(0),
        );
        let a = fluentps_obs::analyze::analyze(&collector.snapshot());
        let analytical = |k: u64| if k >= 2 { 1.0 } else { 0.0 };
        let tables = analysis_sections(&a, Some(&analytical));
        let titles: Vec<&str> = [
            "per-worker time breakdown",
            "straggler scoreboard",
            "progress spread over time",
            "per-shard sync health",
            "staleness at pull time",
            "block rate per gap",
            "critical path",
        ]
        .to_vec();
        let rendered: Vec<String> = tables.iter().map(|t| t.render()).collect();
        for title in titles {
            assert!(
                rendered
                    .iter()
                    .any(|r| r.contains(&format!("== {title} =="))),
                "missing section {title}"
            );
        }
        // The block-rate table carries the analytical column values.
        let block = rendered
            .iter()
            .find(|r| r.contains("block rate per gap"))
            .unwrap();
        assert!(block.contains("1.000"), "analytical Pr missing: {block}");
        // Without an analytical curve the column renders as a dash.
        let plain = analysis_sections(&a, None);
        assert!(plain.iter().any(|t| t.render().contains("—")));
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(0.5), "500ms");
        assert_eq!(secs(12.34), "12.3s");
        assert_eq!(secs(250.0), "250s");
        assert_eq!(pct(0.765), "76.5%");
        assert_eq!(speedup(6.0, 1.5), "4.00x");
        assert_eq!(speedup(1.0, 0.0), "—");
    }
}
