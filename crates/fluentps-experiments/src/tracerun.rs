//! Traced demonstration runs for `repro --trace`.
//!
//! Runs a representative FluentPS timing experiment with event tracing
//! enabled and exports the trace for offline inspection: Chrome trace-event
//! JSON (load in Perfetto / `chrome://tracing`) or JSONL, chosen by file
//! extension.

use fluentps_core::condition::SyncModel;
use fluentps_core::dpr::DprPolicy;
use fluentps_core::eps::ParamSpec;
use fluentps_obs::export;
use fluentps_obs::Trace;
use fluentps_simnet::compute::StragglerSpec;
use fluentps_simnet::net::LinkModel;

use crate::driver::{run, DriverConfig, EngineKind, ModelKind, RunResult, SlicerKind};

/// Ring-buffer capacity for traced demo runs — large enough that quick-scale
/// runs keep every event (reconciliation still holds if some are dropped;
/// per-kind totals survive overwriting).
pub const TRACE_CAPACITY: usize = 1 << 16;

/// Configuration of the traced demo: an SSP run with stragglers so the trace
/// actually contains deferrals, releases and late pushes.
pub fn demo_config(full: bool) -> DriverConfig {
    let mut params = vec![ParamSpec {
        key: 0,
        len: 300_000,
    }];
    for k in 1..56 {
        params.push(ParamSpec {
            key: k,
            len: 10_000,
        });
    }
    DriverConfig {
        engine: EngineKind::FluentPs {
            model: SyncModel::Ssp { s: 2 },
            policy: DprPolicy::LazyExecution,
        },
        num_workers: if full { 16 } else { 4 },
        num_servers: if full { 4 } else { 2 },
        slicer: SlicerKind::Eps { max_chunk: 8192 },
        max_iters: if full { 300 } else { 40 },
        model: ModelKind::TimingOnly { params },
        dataset: None,
        compute_base: 2.0,
        compute_jitter: 0.2,
        stragglers: StragglerSpec::random_slowdowns(),
        link: LinkModel::aws_25g(),
        trace_events: Some(TRACE_CAPACITY),
        ..DriverConfig::default()
    }
}

/// Run the traced demo.
pub fn demo_run(full: bool) -> RunResult {
    run(&demo_config(full))
}

/// Serialize `trace` for `path`: `.jsonl` gets one JSON object per line,
/// anything else the Chrome trace-event format.
pub fn render_for_path(path: &str, trace: &Trace) -> String {
    if path.ends_with(".jsonl") {
        export::jsonl(trace)
    } else {
        export::chrome_trace(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::trace_reconciles;
    use fluentps_obs::json;

    #[test]
    fn demo_trace_reconciles_and_exports_valid_json() {
        let r = demo_run(false);
        let trace = r.trace.as_ref().expect("demo run traces");
        assert!(trace.count(fluentps_obs::EventKind::PullDeferred) > 0);
        trace_reconciles(trace, &r.stats).expect("trace matches stats");
        let chrome = render_for_path("t.json", trace);
        json::validate(&chrome).expect("chrome export is valid JSON");
        let lines = render_for_path("t.jsonl", trace);
        for line in lines.lines() {
            json::validate(line).expect("each JSONL line is valid JSON");
        }
    }
}
