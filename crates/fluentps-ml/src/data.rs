//! Seeded synthetic classification datasets.
//!
//! CIFAR-10/100 are not available offline; these generators produce datasets
//! with the properties the experiments rely on: multi-class, not linearly
//! trivial, a tunable Bayes-error ceiling (so accuracy differences between
//! synchronization models are visible), and full determinism under a seed.
//!
//! Generation: `classes` anchor points are drawn on a sphere, each sample is
//! its anchor plus isotropic noise, passed through a fixed random rotation +
//! `tanh` nonlinearity (so the problem is not linearly separable in the raw
//! features), and a fraction of labels is flipped (irreducible error).

use fluentps_util::rng::StdRng;

/// A dense classification dataset; `x` is row-major `n × dim`.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Features, row-major.
    pub x: Vec<f32>,
    /// Labels in `0..classes`.
    pub y: Vec<u32>,
    /// Feature dimension.
    pub dim: usize,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when the dataset holds no examples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature row of example `i`.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.x[i * self.dim..(i + 1) * self.dim]
    }

    /// Build a batch from example indices (copies rows into a dense block).
    pub fn batch(&self, indices: &[usize]) -> Batch {
        let mut x = Vec::with_capacity(indices.len() * self.dim);
        let mut y = Vec::with_capacity(indices.len());
        for &i in indices {
            x.extend_from_slice(self.row(i));
            y.push(self.y[i]);
        }
        Batch {
            x,
            y,
            dim: self.dim,
        }
    }

    /// The contiguous index range of worker `n`'s partition when the data is
    /// split evenly over `num_workers` (data parallelism).
    pub fn partition(&self, worker: u32, num_workers: u32) -> std::ops::Range<usize> {
        let n = self.len();
        let w = num_workers as usize;
        let base = n / w;
        let extra = n % w;
        let i = worker as usize;
        let start = i * base + i.min(extra);
        let end = start + base + usize::from(i < extra);
        start..end
    }
}

/// A dense minibatch (owned copy of the selected rows).
#[derive(Debug, Clone)]
pub struct Batch {
    /// Features, row-major `len × dim`.
    pub x: Vec<f32>,
    /// Labels.
    pub y: Vec<u32>,
    /// Feature dimension.
    pub dim: usize,
}

impl Batch {
    /// Number of examples in the batch.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// True when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }
}

/// Configuration for the synthetic generator.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticSpec {
    /// Feature dimension.
    pub dim: usize,
    /// Number of classes.
    pub classes: usize,
    /// Training examples.
    pub n_train: usize,
    /// Test examples.
    pub n_test: usize,
    /// Anchor separation relative to noise; larger = easier. ~2.0 gives
    /// ≳90% attainable accuracy at 10 classes, ~1.2 gives ≈65–75%.
    pub margin: f32,
    /// Anchors per class. With `modes > 1` each class is a union of several
    /// clusters, which breaks linear separability — a linear model cannot
    /// carve a multi-modal class, a nonlinear one can (image classes are
    /// multi-modal in exactly this sense).
    pub modes: usize,
    /// Fraction of labels flipped uniformly (irreducible error).
    pub label_noise: f32,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticSpec {
    /// A CIFAR-10 stand-in: 10 classes, ~90%+ attainable accuracy.
    pub fn c10_like(seed: u64) -> Self {
        SyntheticSpec {
            dim: 64,
            classes: 10,
            n_train: 8_000,
            n_test: 2_000,
            margin: 2.2,
            modes: 2,
            label_noise: 0.02,
            seed,
        }
    }

    /// A CIFAR-100 stand-in: 100 classes, markedly lower attainable accuracy.
    pub fn c100_like(seed: u64) -> Self {
        SyntheticSpec {
            dim: 64,
            classes: 100,
            n_train: 10_000,
            n_test: 2_000,
            margin: 2.6,
            modes: 1,
            label_noise: 0.05,
            seed,
        }
    }
}

/// Generate `(train, test)` datasets from a spec.
pub fn synthetic(spec: SyntheticSpec) -> (Dataset, Dataset) {
    assert!(spec.classes >= 2 && spec.dim >= 2 && spec.modes >= 1);
    let mut rng = StdRng::seed_from_u64(spec.seed);

    // Class anchors: `modes` random unit-ish directions per class, scaled by
    // the margin. Anchor index = class * modes + mode.
    let mut anchors = vec![0.0f32; spec.classes * spec.modes * spec.dim];
    for a in anchors.chunks_mut(spec.dim) {
        let mut norm2 = 0.0f32;
        for v in a.iter_mut() {
            *v = rng.gen_range(-1.0..1.0);
            norm2 += *v * *v;
        }
        let inv = spec.margin / norm2.sqrt().max(1e-6);
        for v in a.iter_mut() {
            *v *= inv;
        }
    }

    // A fixed random mixing matrix applied after noise, followed by tanh, so
    // raw features are a nonlinear function of the latent cluster geometry.
    let mix: Vec<f32> = (0..spec.dim * spec.dim)
        .map(|_| rng.gen_range(-1.0f32..1.0) / (spec.dim as f32).sqrt())
        .collect();

    let make = |n: usize, rng: &mut StdRng| -> Dataset {
        let mut x = vec![0.0f32; n * spec.dim];
        let mut y = vec![0u32; n];
        let mut latent = vec![0.0f32; spec.dim];
        for i in 0..n {
            let class = rng.gen_range(0..spec.classes);
            let mode = rng.gen_range(0..spec.modes);
            let a0 = (class * spec.modes + mode) * spec.dim;
            let anchor = &anchors[a0..a0 + spec.dim];
            for (l, &a) in latent.iter_mut().zip(anchor) {
                // Approximate standard normal via sum of uniforms (Irwin-Hall).
                let noise: f32 = (0..4).map(|_| rng.gen_range(-0.5f32..0.5)).sum::<f32>()
                    * (12.0f32 / 4.0).sqrt();
                *l = a + noise;
            }
            let row = &mut x[i * spec.dim..(i + 1) * spec.dim];
            crate::linalg::matmul(&latent, &mix, row, 1, spec.dim, spec.dim);
            for v in row.iter_mut() {
                *v = v.tanh();
            }
            y[i] = if rng.gen::<f32>() < spec.label_noise {
                rng.gen_range(0..spec.classes) as u32
            } else {
                class as u32
            };
        }
        Dataset {
            x,
            y,
            dim: spec.dim,
            classes: spec.classes,
        }
    };

    let train = make(spec.n_train, &mut rng);
    let test = make(spec.n_test, &mut rng);
    (train, test)
}

/// Deterministic minibatch sampler over a worker's partition.
pub struct BatchSampler {
    range: std::ops::Range<usize>,
    batch_size: usize,
    rng: StdRng,
}

impl BatchSampler {
    /// Sampler over `range` producing batches of `batch_size` indices.
    pub fn new(range: std::ops::Range<usize>, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0 && !range.is_empty());
        BatchSampler {
            range,
            batch_size,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draw the next batch's indices (sampling with replacement — adequate
    /// for SGD and keeps the sampler allocation-free across epochs).
    pub fn next_indices(&mut self) -> Vec<usize> {
        (0..self.batch_size)
            .map(|_| self.rng.gen_range(self.range.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let (a_tr, a_te) = synthetic(SyntheticSpec::c10_like(42));
        let (b_tr, b_te) = synthetic(SyntheticSpec::c10_like(42));
        assert_eq!(a_tr.x, b_tr.x);
        assert_eq!(a_te.y, b_te.y);
    }

    #[test]
    fn shapes_and_label_ranges() {
        let spec = SyntheticSpec {
            dim: 16,
            classes: 5,
            n_train: 100,
            n_test: 40,
            margin: 2.0,
            modes: 1,
            label_noise: 0.0,
            seed: 1,
        };
        let (tr, te) = synthetic(spec);
        assert_eq!(tr.len(), 100);
        assert_eq!(te.len(), 40);
        assert_eq!(tr.x.len(), 100 * 16);
        assert!(tr.y.iter().all(|&y| (y as usize) < 5));
        assert!(!te.is_empty());
    }

    #[test]
    fn all_classes_appear() {
        let (tr, _) = synthetic(SyntheticSpec::c10_like(7));
        let mut seen = [false; 10];
        for &y in &tr.y {
            seen[y as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn features_are_bounded_by_tanh() {
        let (tr, _) = synthetic(SyntheticSpec::c10_like(3));
        assert!(tr.x.iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn partitions_cover_dataset_without_overlap() {
        let (tr, _) = synthetic(SyntheticSpec::c10_like(5));
        let mut covered = 0;
        let mut prev_end = 0;
        for w in 0..7u32 {
            let r = tr.partition(w, 7);
            assert_eq!(r.start, prev_end);
            prev_end = r.end;
            covered += r.len();
        }
        assert_eq!(covered, tr.len());
        assert_eq!(prev_end, tr.len());
    }

    #[test]
    fn batch_copies_requested_rows() {
        let (tr, _) = synthetic(SyntheticSpec::c10_like(9));
        let b = tr.batch(&[0, 5, 9]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b.x[0..tr.dim], tr.row(0));
        assert_eq!(&b.x[2 * tr.dim..3 * tr.dim], tr.row(9));
        assert_eq!(b.y[1], tr.y[5]);
    }

    #[test]
    fn sampler_is_seeded_and_in_range() {
        let mut a = BatchSampler::new(10..50, 8, 3);
        let mut b = BatchSampler::new(10..50, 8, 3);
        for _ in 0..5 {
            let ia = a.next_indices();
            let ib = b.next_indices();
            assert_eq!(ia, ib);
            assert!(ia.iter().all(|&i| (10..50).contains(&i)));
        }
    }
}
