//! Seeded weight initialisation.

use fluentps_util::rng::StdRng;

/// Deterministic weight initialiser; every model in an experiment uses the
/// same seed so runs differ only in synchronization behaviour.
pub struct Initializer {
    rng: StdRng,
}

impl Initializer {
    /// New initialiser from a seed.
    pub fn new(seed: u64) -> Self {
        Initializer {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Xavier/Glorot uniform for a `fan_in × fan_out` weight matrix.
    pub fn xavier(&mut self, fan_in: usize, fan_out: usize) -> Vec<f32> {
        let bound = (6.0 / (fan_in + fan_out) as f64).sqrt() as f32;
        (0..fan_in * fan_out)
            .map(|_| self.rng.gen_range(-bound..bound))
            .collect()
    }

    /// He/Kaiming uniform for ReLU layers.
    pub fn he(&mut self, fan_in: usize, fan_out: usize) -> Vec<f32> {
        let bound = (6.0 / fan_in as f64).sqrt() as f32;
        (0..fan_in * fan_out)
            .map(|_| self.rng.gen_range(-bound..bound))
            .collect()
    }

    /// Zeroed bias vector.
    pub fn zeros(&mut self, n: usize) -> Vec<f32> {
        vec![0.0; n]
    }

    /// Small-scale Gaussian-ish values (uniform surrogate) for residual
    /// branch outputs so identity mappings dominate at the start.
    pub fn small(&mut self, n: usize, scale: f32) -> Vec<f32> {
        (0..n).map(|_| self.rng.gen_range(-scale..scale)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_is_seeded_and_bounded() {
        let mut a = Initializer::new(7);
        let mut b = Initializer::new(7);
        let wa = a.xavier(64, 32);
        let wb = b.xavier(64, 32);
        assert_eq!(wa, wb, "same seed → same weights");
        let bound = (6.0f64 / 96.0).sqrt() as f32;
        assert!(wa.iter().all(|v| v.abs() <= bound));
        assert_eq!(wa.len(), 64 * 32);
    }

    #[test]
    fn different_seeds_differ() {
        let wa = Initializer::new(1).xavier(16, 16);
        let wb = Initializer::new(2).xavier(16, 16);
        assert_ne!(wa, wb);
    }

    #[test]
    fn he_bound_depends_on_fan_in_only() {
        let w = Initializer::new(3).he(100, 10);
        let bound = (6.0f64 / 100.0).sqrt() as f32;
        assert!(w.iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn zeros_are_zero() {
        assert!(Initializer::new(0).zeros(8).iter().all(|&v| v == 0.0));
    }
}
