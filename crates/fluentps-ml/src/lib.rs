//! From-scratch deep-learning substrate for the FluentPS reproduction.
//!
//! The paper trains AlexNet and ResNet-56 on CIFAR-10/100 through Caffe on
//! GPU clusters. Neither the hardware nor the DL bindings exist in this
//! environment, so this crate provides the closest synthetic equivalent that
//! exercises the same code path: real models trained with real stochastic
//! gradients, where the *parameter version each gradient is computed at* is
//! decided by the synchronization model under test. Staleness then hurts
//! convergence through exactly the mechanism the paper measures.
//!
//! Contents:
//!
//! * [`linalg`] — blocked matrix multiply and vector helpers.
//! * [`init`] — seeded Xavier/He initialisation.
//! * [`models`] — softmax regression, MLPs, a residual MLP standing in for
//!   ResNet-56 (deep, skip connections, higher staleness sensitivity) and a
//!   small convolutional network.
//! * [`optim`] — SGD with momentum/weight decay and LARS (the paper uses
//!   LARS for its large-batch training).
//! * [`schedule`] — learning-rate schedules (constant, step decay, warmup).
//! * [`data`] — seeded synthetic classification datasets standing in for
//!   CIFAR-10 ("c10-like": 10 classes) and CIFAR-100 ("c100-like": 100
//!   classes with lower attainable accuracy).
//! * [`metrics`] — accuracy and loss tracking.
//!
//! Parameters and gradients travel as `HashMap<u64, Vec<f32>>` keyed by
//! layer, matching the parameter-server worker API, so a model plugs into a
//! `WorkerClient` without translation.

#![warn(missing_docs)]

pub mod data;
pub mod init;
pub mod linalg;
pub mod metrics;
pub mod models;
pub mod optim;
pub mod par;
pub mod schedule;
pub mod tensor;

/// Parameters / gradients keyed by parameter-server key.
pub type ParamMap = std::collections::HashMap<u64, Vec<f32>>;

pub use data::{Batch, Dataset};
pub use models::{Mlp, Model, ResidualMlp, SoftmaxRegression};
pub use optim::{Lars, Optimizer, Sgd};
