//! Dense linear algebra on row-major `f32` slices.
//!
//! Everything the models need: three GEMM variants (plain, A-transposed,
//! B-transposed) with loop ordering chosen for cache behaviour, plus small
//! vector helpers. No unsafe, no SIMD intrinsics — the inner loops are
//! written so LLVM auto-vectorizes them (iterator over slices, no bounds
//! checks in the hot loop).

/// `c[m×n] = a[m×k] · b[k×n]` (accumulates into zeroed `c`).
///
/// The i-k-j loop order streams both `b` and `c` rows sequentially, which
/// auto-vectorizes and is cache-friendly for the row-major layout.
pub fn matmul(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "a shape");
    assert_eq!(b.len(), k * n, "b shape");
    assert_eq!(c.len(), m * n, "c shape");
    c.fill(0.0);
    for i in 0..m {
        let c_row = &mut c[i * n..(i + 1) * n];
        for kk in 0..k {
            let a_ik = a[i * k + kk];
            if a_ik == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (cv, bv) in c_row.iter_mut().zip(b_row) {
                *cv += a_ik * bv;
            }
        }
    }
}

/// `c[k×n] = aᵀ[k×m] · b[m×n]` where `a` is stored as `m×k` — the weight-
/// gradient product `Xᵀ·dY` in backprop.
pub fn matmul_at_b(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "a shape");
    assert_eq!(b.len(), m * n, "b shape");
    assert_eq!(c.len(), k * n, "c shape");
    c.fill(0.0);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let b_row = &b[i * n..(i + 1) * n];
        for (kk, &a_ik) in a_row.iter().enumerate() {
            if a_ik == 0.0 {
                continue;
            }
            let c_row = &mut c[kk * n..(kk + 1) * n];
            for (cv, bv) in c_row.iter_mut().zip(b_row) {
                *cv += a_ik * bv;
            }
        }
    }
}

/// `c[m×k] = a[m×n] · bᵀ[n×k]` where `b` is stored as `k×n` — the input-
/// gradient product `dY·Wᵀ` in backprop.
pub fn matmul_a_bt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, n: usize, k: usize) {
    assert_eq!(a.len(), m * n, "a shape");
    assert_eq!(b.len(), k * n, "b shape");
    assert_eq!(c.len(), m * k, "c shape");
    for i in 0..m {
        let a_row = &a[i * n..(i + 1) * n];
        for kk in 0..k {
            let b_row = &b[kk * n..(kk + 1) * n];
            let mut acc = 0.0f32;
            for (av, bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            c[i * k + kk] = acc;
        }
    }
}

/// `y += alpha * x` (axpy).
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yv, xv) in y.iter_mut().zip(x) {
        *yv += alpha * xv;
    }
}

/// Euclidean norm.
pub fn norm2(x: &[f32]) -> f32 {
    x.iter().map(|&v| v * v).sum::<f32>().sqrt()
}

/// In-place ReLU; returns nothing, mutates `x`.
pub fn relu_inplace(x: &mut [f32]) {
    for v in x {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Backprop through ReLU: `dx = dy ⊙ [pre > 0]`, written into `dy` in place
/// given the pre-activation values.
pub fn relu_backward_inplace(pre: &[f32], dy: &mut [f32]) {
    debug_assert_eq!(pre.len(), dy.len());
    for (d, &p) in dy.iter_mut().zip(pre) {
        if p <= 0.0 {
            *d = 0.0;
        }
    }
}

/// Row-wise softmax over an `m×n` matrix, in place, numerically stabilized.
pub fn softmax_rows_inplace(x: &mut [f32], m: usize, n: usize) {
    assert_eq!(x.len(), m * n);
    for i in 0..m {
        let row = &mut x[i * n..(i + 1) * n];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for kk in 0..k {
                    c[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
        c
    }

    fn seq(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.37).sin()).collect()
    }

    #[test]
    fn matmul_matches_naive() {
        let (m, k, n) = (5, 7, 3);
        let a = seq(m * k);
        let b = seq(k * n);
        let mut c = vec![0.0; m * n];
        matmul(&a, &b, &mut c, m, k, n);
        let expected = naive_matmul(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(&expected) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_at_b_matches_explicit_transpose() {
        let (m, k, n) = (6, 4, 5);
        let a = seq(m * k);
        let b = seq(m * n);
        let mut c = vec![0.0; k * n];
        matmul_at_b(&a, &b, &mut c, m, k, n);
        // Explicit transpose of a, then plain matmul.
        let mut at = vec![0.0; k * m];
        for i in 0..m {
            for j in 0..k {
                at[j * m + i] = a[i * k + j];
            }
        }
        let expected = naive_matmul(&at, &b, k, m, n);
        for (x, y) in c.iter().zip(&expected) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_a_bt_matches_explicit_transpose() {
        let (m, n, k) = (4, 6, 3);
        let a = seq(m * n);
        let b = seq(k * n);
        let mut c = vec![0.0; m * k];
        matmul_a_bt(&a, &b, &mut c, m, n, k);
        let mut bt = vec![0.0; n * k];
        for i in 0..k {
            for j in 0..n {
                bt[j * k + i] = b[i * n + j];
            }
        }
        let expected = naive_matmul(&a, &bt, m, n, k);
        for (x, y) in c.iter().zip(&expected) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let mut x = vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0];
        softmax_rows_inplace(&mut x, 2, 3);
        for i in 0..2 {
            let row = &x[i * 3..(i + 1) * 3];
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            assert!(row[0] < row[1] && row[1] < row[2]);
        }
    }

    #[test]
    fn softmax_survives_large_logits() {
        let mut x = vec![1000.0, 1001.0];
        softmax_rows_inplace(&mut x, 1, 2);
        assert!(x.iter().all(|v| v.is_finite()));
        assert!((x[0] + x[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn relu_and_backward() {
        let pre = vec![-1.0, 0.0, 2.0];
        let mut act = pre.clone();
        relu_inplace(&mut act);
        assert_eq!(act, vec![0.0, 0.0, 2.0]);
        let mut dy = vec![5.0, 5.0, 5.0];
        relu_backward_inplace(&pre, &mut dy);
        assert_eq!(dy, vec![0.0, 0.0, 5.0]);
    }

    #[test]
    fn axpy_and_norm() {
        let x = vec![1.0, 2.0];
        let mut y = vec![10.0, 20.0];
        axpy(0.5, &x, &mut y);
        assert_eq!(y, vec![10.5, 21.0]);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }
}
