//! Training metrics: accuracy curves and loss tracking.

/// A time-stamped accuracy/loss curve, the shape every "accuracy vs time"
/// figure in the paper plots.
#[derive(Debug, Clone, Default)]
pub struct Curve {
    points: Vec<CurvePoint>,
}

/// One evaluation point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Iteration at evaluation.
    pub iter: u64,
    /// Time at evaluation (seconds, wall or simulated).
    pub time: f64,
    /// Test accuracy in `[0, 1]`.
    pub accuracy: f32,
    /// Training loss at that point.
    pub loss: f32,
}

impl Curve {
    /// Empty curve.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an evaluation point (iterations must be non-decreasing).
    pub fn push(&mut self, point: CurvePoint) {
        if let Some(last) = self.points.last() {
            debug_assert!(point.iter >= last.iter, "curve must move forward");
        }
        self.points.push(point);
    }

    /// All points in order.
    pub fn points(&self) -> &[CurvePoint] {
        &self.points
    }

    /// Final accuracy (0 when empty).
    pub fn final_accuracy(&self) -> f32 {
        self.points.last().map(|p| p.accuracy).unwrap_or(0.0)
    }

    /// Best accuracy seen.
    pub fn best_accuracy(&self) -> f32 {
        self.points
            .iter()
            .map(|p| p.accuracy)
            .fold(0.0f32, f32::max)
    }

    /// Earliest time at which accuracy reached `target`, if ever — the
    /// "time-to-accuracy" speedup metric.
    pub fn time_to_accuracy(&self, target: f32) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.accuracy >= target)
            .map(|p| p.time)
    }

    /// Total time span covered.
    pub fn total_time(&self) -> f64 {
        self.points.last().map(|p| p.time).unwrap_or(0.0)
    }
}

/// Exponential moving average for smoothing noisy training loss.
#[derive(Debug, Clone, Copy)]
pub struct Ema {
    alpha: f64,
    value: Option<f64>,
}

impl Ema {
    /// EMA with smoothing factor `alpha` in `(0, 1]` (1 = no smoothing).
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0);
        Ema { alpha, value: None }
    }

    /// Fold in an observation and return the smoothed value.
    pub fn update(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => self.alpha * x + (1.0 - self.alpha) * prev,
        };
        self.value = Some(v);
        v
    }

    /// Current smoothed value.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(iter: u64, time: f64, acc: f32) -> CurvePoint {
        CurvePoint {
            iter,
            time,
            accuracy: acc,
            loss: 1.0,
        }
    }

    #[test]
    fn curve_summaries() {
        let mut c = Curve::new();
        c.push(pt(0, 0.0, 0.1));
        c.push(pt(100, 5.0, 0.6));
        c.push(pt(200, 10.0, 0.55));
        assert_eq!(c.final_accuracy(), 0.55);
        assert_eq!(c.best_accuracy(), 0.6);
        assert_eq!(c.time_to_accuracy(0.5), Some(5.0));
        assert_eq!(c.time_to_accuracy(0.9), None);
        assert_eq!(c.total_time(), 10.0);
        assert_eq!(c.points().len(), 3);
    }

    #[test]
    fn empty_curve_defaults() {
        let c = Curve::new();
        assert_eq!(c.final_accuracy(), 0.0);
        assert_eq!(c.total_time(), 0.0);
        assert_eq!(c.time_to_accuracy(0.0), None);
    }

    #[test]
    fn ema_converges_toward_constant_input() {
        let mut e = Ema::new(0.5);
        assert_eq!(e.update(10.0), 10.0);
        for _ in 0..20 {
            e.update(0.0);
        }
        assert!(e.value().unwrap() < 1e-4);
    }
}
