//! A small convolutional network (single 3×3 conv + ReLU + 2×2 average pool
//! + linear head) built on an im2col lowering.
//!
//! Included so the substrate covers the convolutional model family the paper
//! trains; the experiment harness defaults to the MLP/residual models for
//! speed.

use crate::data::Batch;
use crate::init::Initializer;
use crate::linalg::{matmul, matmul_a_bt, matmul_at_b, relu_backward_inplace, relu_inplace};
use crate::models::{softmax_xent_backward, Model, ParamShape};
use crate::ParamMap;

/// `TinyCnn` interprets each `in_ch · h · w`-length feature row as a CHW
/// image. Keys: `0` conv weights (`out_ch × in_ch·3·3`), `1` conv bias,
/// `2` head weights, `3` head bias.
#[derive(Debug, Clone, Copy)]
pub struct TinyCnn {
    /// Input channels.
    pub in_ch: usize,
    /// Image height.
    pub h: usize,
    /// Image width.
    pub w: usize,
    /// Conv output channels.
    pub out_ch: usize,
    /// Output classes.
    pub classes: usize,
}

const K: usize = 3; // kernel size (fixed 3×3, stride 1, same padding)

impl TinyCnn {
    fn conv_cols(&self) -> usize {
        self.in_ch * K * K
    }

    fn pooled_h(&self) -> usize {
        self.h / 2
    }

    fn pooled_w(&self) -> usize {
        self.w / 2
    }

    fn head_in(&self) -> usize {
        self.out_ch * self.pooled_h() * self.pooled_w()
    }

    /// im2col for one image: output is `(h·w) × (in_ch·K·K)`, zero padding.
    fn im2col(&self, img: &[f32], cols: &mut [f32]) {
        let (h, w, c) = (self.h, self.w, self.in_ch);
        debug_assert_eq!(img.len(), c * h * w);
        debug_assert_eq!(cols.len(), h * w * self.conv_cols());
        cols.fill(0.0);
        for oy in 0..h {
            for ox in 0..w {
                let row = (oy * w + ox) * self.conv_cols();
                for ch in 0..c {
                    for ky in 0..K {
                        let iy = oy as isize + ky as isize - 1;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..K {
                            let ix = ox as isize + kx as isize - 1;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            cols[row + ch * K * K + ky * K + kx] =
                                img[ch * h * w + iy as usize * w + ix as usize];
                        }
                    }
                }
            }
        }
    }

    /// Forward pass; returns `(cols, pre_act, pooled, logits)` per batch for
    /// reuse in backward.
    fn forward(
        &self,
        params: &ParamMap,
        x: &[f32],
        rows: usize,
    ) -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>) {
        let hw = self.h * self.w;
        let cc = self.conv_cols();
        let img_len = self.in_ch * hw;
        let conv_w = &params[&0];
        let conv_b = &params[&1];

        let mut cols = vec![0.0f32; rows * hw * cc];
        let mut pre = vec![0.0f32; rows * self.out_ch * hw];
        for r in 0..rows {
            let img = &x[r * img_len..(r + 1) * img_len];
            let col = &mut cols[r * hw * cc..(r + 1) * hw * cc];
            self.im2col(img, col);
            // conv as GEMM: (hw × cc) · (cc × out_ch) — conv_w stored as
            // out_ch × cc, so use the Bᵀ variant, yielding hw × out_ch.
            let mut out = vec![0.0f32; hw * self.out_ch];
            matmul_a_bt(col, conv_w, &mut out, hw, cc, self.out_ch);
            // Transpose to CHW layout with bias.
            let dst = &mut pre[r * self.out_ch * hw..(r + 1) * self.out_ch * hw];
            for p in 0..hw {
                for oc in 0..self.out_ch {
                    dst[oc * hw + p] = out[p * self.out_ch + oc] + conv_b[oc];
                }
            }
        }
        let mut act = pre.clone();
        relu_inplace(&mut act);

        // 2×2 average pool.
        let (ph, pw) = (self.pooled_h(), self.pooled_w());
        let mut pooled = vec![0.0f32; rows * self.head_in()];
        for r in 0..rows {
            for oc in 0..self.out_ch {
                let src = &act[r * self.out_ch * hw + oc * hw..][..hw];
                let dst_base = r * self.head_in() + oc * ph * pw;
                for py in 0..ph {
                    for px in 0..pw {
                        let mut s = 0.0f32;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                s += src[(2 * py + dy) * self.w + 2 * px + dx];
                            }
                        }
                        pooled[dst_base + py * pw + px] = s * 0.25;
                    }
                }
            }
        }

        let head_w = &params[&2];
        let head_b = &params[&3];
        let mut logits = vec![0.0f32; rows * self.classes];
        matmul(
            &pooled,
            head_w,
            &mut logits,
            rows,
            self.head_in(),
            self.classes,
        );
        for row in logits.chunks_mut(self.classes) {
            for (v, b) in row.iter_mut().zip(head_b) {
                *v += b;
            }
        }
        (cols, pre, pooled, logits)
    }
}

impl Model for TinyCnn {
    fn name(&self) -> &'static str {
        "tiny-cnn"
    }

    fn num_classes(&self) -> usize {
        self.classes
    }

    fn param_shapes(&self) -> Vec<ParamShape> {
        vec![
            ParamShape {
                key: 0,
                len: self.out_ch * self.conv_cols(),
            },
            ParamShape {
                key: 1,
                len: self.out_ch,
            },
            ParamShape {
                key: 2,
                len: self.head_in() * self.classes,
            },
            ParamShape {
                key: 3,
                len: self.classes,
            },
        ]
    }

    fn init_params(&self, seed: u64) -> ParamMap {
        let mut init = Initializer::new(seed);
        let mut p = ParamMap::new();
        p.insert(0, init.he(self.conv_cols(), self.out_ch));
        p.insert(1, init.zeros(self.out_ch));
        p.insert(2, init.xavier(self.head_in(), self.classes));
        p.insert(3, init.zeros(self.classes));
        p
    }

    fn logits(&self, params: &ParamMap, x: &[f32], rows: usize) -> Vec<f32> {
        self.forward(params, x, rows).3
    }

    fn loss_and_grad(&self, params: &ParamMap, batch: &Batch) -> (f32, ParamMap) {
        let rows = batch.len();
        let hw = self.h * self.w;
        let cc = self.conv_cols();
        let (cols, pre, pooled, mut logits) = self.forward(params, &batch.x, rows);
        let loss = softmax_xent_backward(&mut logits, &batch.y, self.classes);
        let dlogits = logits;

        // Head gradients.
        let mut dw_head = vec![0.0f32; self.head_in() * self.classes];
        matmul_at_b(
            &pooled,
            &dlogits,
            &mut dw_head,
            rows,
            self.head_in(),
            self.classes,
        );
        let mut db_head = vec![0.0f32; self.classes];
        for row in dlogits.chunks(self.classes) {
            for (d, v) in db_head.iter_mut().zip(row) {
                *d += v;
            }
        }
        let mut dpooled = vec![0.0f32; rows * self.head_in()];
        matmul_a_bt(
            &dlogits,
            &params[&2],
            &mut dpooled,
            rows,
            self.classes,
            self.head_in(),
        );

        // Un-pool (each input of a 2×2 window receives grad/4) + ReLU mask.
        let (ph, pw) = (self.pooled_h(), self.pooled_w());
        let mut dact = vec![0.0f32; rows * self.out_ch * hw];
        for r in 0..rows {
            for oc in 0..self.out_ch {
                let src_base = r * self.head_in() + oc * ph * pw;
                let dst = &mut dact[r * self.out_ch * hw + oc * hw..][..hw];
                for py in 0..ph {
                    for px in 0..pw {
                        let g = dpooled[src_base + py * pw + px] * 0.25;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                dst[(2 * py + dy) * self.w + 2 * px + dx] += g;
                            }
                        }
                    }
                }
            }
        }
        relu_backward_inplace(&pre, &mut dact);

        // Conv gradients through im2col: dW[oc, cc] = Σ_batch colᵀ · dY.
        let mut dw_conv = vec![0.0f32; self.out_ch * cc];
        let mut db_conv = vec![0.0f32; self.out_ch];
        for r in 0..rows {
            let col = &cols[r * hw * cc..(r + 1) * hw * cc];
            // dY in hw × out_ch layout (transpose back from CHW).
            let d = &dact[r * self.out_ch * hw..(r + 1) * self.out_ch * hw];
            let mut dy = vec![0.0f32; hw * self.out_ch];
            for oc in 0..self.out_ch {
                for p in 0..hw {
                    dy[p * self.out_ch + oc] = d[oc * hw + p];
                    db_conv[oc] += d[oc * hw + p];
                }
            }
            // dW += dyᵀ · col → (out_ch × cc)
            let mut dwr = vec![0.0f32; self.out_ch * cc];
            matmul_at_b(&dy, col, &mut dwr, hw, self.out_ch, cc);
            for (a, b) in dw_conv.iter_mut().zip(&dwr) {
                *a += b;
            }
        }

        let mut grads = ParamMap::new();
        grads.insert(0, dw_conv);
        grads.insert(1, db_conv);
        grads.insert(2, dw_head);
        grads.insert(3, db_head);
        (loss, grads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::check_gradients;

    #[test]
    fn gradients_match_finite_differences() {
        let model = TinyCnn {
            in_ch: 1,
            h: 4,
            w: 4,
            out_ch: 3,
            classes: 3,
        };
        // input dim = 1·4·4 = 16
        check_gradients(&model, 16, 41, 5e-2);
    }

    #[test]
    fn im2col_center_pixel_sees_full_neighbourhood() {
        let m = TinyCnn {
            in_ch: 1,
            h: 3,
            w: 3,
            out_ch: 1,
            classes: 2,
        };
        let img: Vec<f32> = (1..=9).map(|v| v as f32).collect();
        let mut cols = vec![0.0f32; 9 * 9];
        m.im2col(&img, &mut cols);
        // Output position (1,1) = row 4 must contain the whole image.
        assert_eq!(&cols[4 * 9..5 * 9], img.as_slice());
        // Corner (0,0) = row 0: top-left pad zeros, then the 2×2 block.
        let corner = &cols[0..9];
        assert_eq!(corner[0], 0.0); // ky=0,kx=0 padded
        assert_eq!(corner[4], 1.0); // centre tap = pixel (0,0)
        assert_eq!(corner[8], 5.0); // bottom-right tap = pixel (1,1)
    }

    #[test]
    fn shapes_consistent() {
        let m = TinyCnn {
            in_ch: 1,
            h: 8,
            w: 8,
            out_ch: 4,
            classes: 10,
        };
        let p = m.init_params(1);
        for s in m.param_shapes() {
            assert_eq!(p[&s.key].len(), s.len);
        }
        let logits = m.logits(&p, &vec![0.1; 64 * 2], 2);
        assert_eq!(logits.len(), 20);
        assert!(logits.iter().all(|v| v.is_finite()));
    }
}
