//! Multi-layer perceptron with ReLU activations — the "AlexNet-like"
//! stand-in: a shallow-ish nonlinear network whose staleness sensitivity is
//! moderate (the paper contrasts it with the much deeper ResNet-56).

use crate::data::Batch;
use crate::init::Initializer;
use crate::linalg::{matmul, matmul_a_bt, matmul_at_b, relu_backward_inplace, relu_inplace};
use crate::models::{softmax_xent_backward, Model, ParamShape};
use crate::ParamMap;

/// Fully-connected network `dims[0] → dims[1] → … → dims.last()`, ReLU
/// between layers, softmax cross-entropy on top.
///
/// Keys: layer `l` has weights at `2l` (shape `dims[l] × dims[l+1]`) and
/// bias at `2l + 1`.
#[derive(Debug, Clone)]
pub struct Mlp {
    /// Layer widths, input first, classes last. At least two entries.
    pub dims: Vec<usize>,
}

impl Mlp {
    /// An AlexNet-ish default for the synthetic 64-dim datasets.
    pub fn alexnet_like(input: usize, classes: usize) -> Self {
        Mlp {
            dims: vec![input, 128, 64, classes],
        }
    }

    fn layers(&self) -> usize {
        self.dims.len() - 1
    }
}

impl Model for Mlp {
    fn name(&self) -> &'static str {
        "mlp"
    }

    fn num_classes(&self) -> usize {
        *self.dims.last().expect("non-empty dims")
    }

    fn param_shapes(&self) -> Vec<ParamShape> {
        let mut shapes = Vec::with_capacity(self.layers() * 2);
        for l in 0..self.layers() {
            shapes.push(ParamShape {
                key: 2 * l as u64,
                len: self.dims[l] * self.dims[l + 1],
            });
            shapes.push(ParamShape {
                key: 2 * l as u64 + 1,
                len: self.dims[l + 1],
            });
        }
        shapes
    }

    fn init_params(&self, seed: u64) -> ParamMap {
        let mut init = Initializer::new(seed);
        let mut p = ParamMap::new();
        for l in 0..self.layers() {
            p.insert(2 * l as u64, init.he(self.dims[l], self.dims[l + 1]));
            p.insert(2 * l as u64 + 1, init.zeros(self.dims[l + 1]));
        }
        p
    }

    fn logits(&self, params: &ParamMap, x: &[f32], rows: usize) -> Vec<f32> {
        let mut h = x.to_vec();
        for l in 0..self.layers() {
            let (din, dout) = (self.dims[l], self.dims[l + 1]);
            let w = &params[&(2 * l as u64)];
            let b = &params[&(2 * l as u64 + 1)];
            let mut out = vec![0.0f32; rows * dout];
            matmul(&h, w, &mut out, rows, din, dout);
            for row in out.chunks_mut(dout) {
                for (v, bias) in row.iter_mut().zip(b) {
                    *v += bias;
                }
            }
            if l + 1 < self.layers() {
                relu_inplace(&mut out);
            }
            h = out;
        }
        h
    }

    fn loss_and_grad(&self, params: &ParamMap, batch: &Batch) -> (f32, ParamMap) {
        let rows = batch.len();
        let layers = self.layers();

        // Forward, stashing pre-activations and activations.
        let mut acts: Vec<Vec<f32>> = Vec::with_capacity(layers + 1);
        let mut pres: Vec<Vec<f32>> = Vec::with_capacity(layers);
        acts.push(batch.x.clone());
        for l in 0..layers {
            let (din, dout) = (self.dims[l], self.dims[l + 1]);
            let w = &params[&(2 * l as u64)];
            let b = &params[&(2 * l as u64 + 1)];
            let mut out = vec![0.0f32; rows * dout];
            matmul(&acts[l], w, &mut out, rows, din, dout);
            for row in out.chunks_mut(dout) {
                for (v, bias) in row.iter_mut().zip(b) {
                    *v += bias;
                }
            }
            pres.push(out.clone());
            if l + 1 < layers {
                relu_inplace(&mut out);
            }
            acts.push(out);
        }

        // Loss + gradient w.r.t. logits.
        let mut delta = acts.pop().expect("logits present");
        let loss = softmax_xent_backward(&mut delta, &batch.y, self.num_classes());

        // Backward.
        let mut grads = ParamMap::new();
        for l in (0..layers).rev() {
            let (din, dout) = (self.dims[l], self.dims[l + 1]);
            let input = &acts[l];
            let mut dw = vec![0.0f32; din * dout];
            matmul_at_b(input, &delta, &mut dw, rows, din, dout);
            let mut db = vec![0.0f32; dout];
            for row in delta.chunks(dout) {
                for (d, v) in db.iter_mut().zip(row) {
                    *d += v;
                }
            }
            grads.insert(2 * l as u64, dw);
            grads.insert(2 * l as u64 + 1, db);
            if l > 0 {
                let w = &params[&(2 * l as u64)];
                let mut dx = vec![0.0f32; rows * din];
                matmul_a_bt(&delta, w, &mut dx, rows, dout, din);
                relu_backward_inplace(&pres[l - 1], &mut dx);
                delta = dx;
            }
        }
        (loss, grads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{synthetic, BatchSampler, SyntheticSpec};
    use crate::models::check_gradients;
    use crate::optim::{Optimizer, Sgd};

    #[test]
    fn gradients_match_finite_differences() {
        let model = Mlp {
            dims: vec![6, 9, 4],
        };
        check_gradients(&model, 6, 13, 3e-2);
    }

    #[test]
    fn deeper_gradients_also_match() {
        let model = Mlp {
            dims: vec![5, 7, 6, 3],
        };
        check_gradients(&model, 5, 17, 4e-2);
    }

    #[test]
    fn param_inventory_is_complete() {
        let m = Mlp::alexnet_like(64, 10);
        let shapes = m.param_shapes();
        assert_eq!(shapes.len(), 6);
        let total: usize = shapes.iter().map(|s| s.len).sum();
        assert_eq!(total, 64 * 128 + 128 + 128 * 64 + 64 + 64 * 10 + 10);
        let p = m.init_params(0);
        for s in shapes {
            assert_eq!(p[&s.key].len(), s.len);
        }
    }

    #[test]
    fn beats_linear_model_on_nonlinear_data() {
        // A dataset whose classes are not linearly separable in the raw
        // features (tanh-mixed clusters at low margin).
        let spec = SyntheticSpec {
            dim: 16,
            classes: 4,
            n_train: 3000,
            n_test: 600,
            margin: 4.0,
            modes: 2,
            label_noise: 0.0,
            seed: 21,
        };
        let (train, test) = synthetic(spec);
        let model = Mlp {
            dims: vec![16, 64, 4],
        };
        let mut params = model.init_params(2);
        let mut opt = Sgd::new(0.2, 0.9, 0.0);
        let mut sampler = BatchSampler::new(0..train.len(), 64, 3);
        for _ in 0..800 {
            let batch = train.batch(&sampler.next_indices());
            let (_, grads) = model.loss_and_grad(&params, &batch);
            opt.step(&mut params, &grads);
        }
        let acc = model.accuracy(&params, &test);
        // A linear model trained identically cannot carve the multi-modal
        // classes; the MLP must clearly beat it.
        let linear = crate::models::SoftmaxRegression {
            dim: 16,
            classes: 4,
        };
        let mut lp = linear.init_params(2);
        let mut lopt = Sgd::new(0.2, 0.9, 0.0);
        let mut lsampler = BatchSampler::new(0..train.len(), 64, 3);
        for _ in 0..800 {
            let batch = train.batch(&lsampler.next_indices());
            let (_, grads) = linear.loss_and_grad(&lp, &batch);
            lopt.step(&mut lp, &grads);
        }
        let lin_acc = linear.accuracy(&lp, &test);
        assert!(acc > 0.85, "MLP should fit nonlinear data, got {acc}");
        assert!(
            acc > lin_acc + 0.05,
            "MLP ({acc}) should beat linear ({lin_acc}) on multi-modal data"
        );
    }
}
