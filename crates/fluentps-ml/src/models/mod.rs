//! Model zoo: every model exposes its parameters as PS key/value pairs and
//! computes real stochastic gradients, so a model plugs directly into a
//! parameter-server worker.

mod cnn;
mod mlp;
mod residual;
mod softmax;

pub use cnn::TinyCnn;
pub use mlp::Mlp;
pub use residual::ResidualMlp;
pub use softmax::SoftmaxRegression;

use crate::data::{Batch, Dataset};
use crate::linalg::softmax_rows_inplace;
use crate::ParamMap;

/// Shape of one parameter tensor as the parameter server sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamShape {
    /// Parameter-server key.
    pub key: u64,
    /// Flattened length.
    pub len: usize,
}

/// A trainable model with PS-compatible parameters.
pub trait Model: Send + Sync {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// The parameter inventory (keys and flattened lengths).
    fn param_shapes(&self) -> Vec<ParamShape>;

    /// Deterministic initial parameters.
    fn init_params(&self, seed: u64) -> ParamMap;

    /// Mean cross-entropy loss on `batch` and the gradient w.r.t. every
    /// parameter (averaged over the batch).
    fn loss_and_grad(&self, params: &ParamMap, batch: &Batch) -> (f32, ParamMap);

    /// Class logits for `rows` examples stored row-major in `x`.
    fn logits(&self, params: &ParamMap, x: &[f32], rows: usize) -> Vec<f32>;

    /// Number of classes predicted.
    fn num_classes(&self) -> usize;

    /// Total parameter count.
    fn num_params(&self) -> usize {
        self.param_shapes().iter().map(|s| s.len).sum()
    }

    /// Top-1 accuracy on a dataset (evaluated in chunks).
    fn accuracy(&self, params: &ParamMap, ds: &Dataset) -> f32 {
        let classes = self.num_classes();
        let mut correct = 0usize;
        let chunk = 256usize;
        let mut i = 0;
        while i < ds.len() {
            let end = (i + chunk).min(ds.len());
            let rows = end - i;
            let logits = self.logits(params, &ds.x[i * ds.dim..end * ds.dim], rows);
            for r in 0..rows {
                let row = &logits[r * classes..(r + 1) * classes];
                let pred = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .map(|(j, _)| j)
                    .expect("non-empty row");
                if pred as u32 == ds.y[i + r] {
                    correct += 1;
                }
            }
            i = end;
        }
        correct as f32 / ds.len() as f32
    }
}

/// Softmax cross-entropy: given logits (mutated into probabilities in
/// place), returns mean loss and writes `(p − onehot)/rows` back into
/// `logits` as the gradient w.r.t. the logits.
pub(crate) fn softmax_xent_backward(logits: &mut [f32], y: &[u32], classes: usize) -> f32 {
    let rows = y.len();
    debug_assert_eq!(logits.len(), rows * classes);
    softmax_rows_inplace(logits, rows, classes);
    let mut loss = 0.0f64;
    let inv = 1.0 / rows as f32;
    for (r, &label) in y.iter().enumerate() {
        let row = &mut logits[r * classes..(r + 1) * classes];
        let p = row[label as usize].max(1e-12);
        loss -= (p as f64).ln();
        for v in row.iter_mut() {
            *v *= inv;
        }
        row[label as usize] -= inv;
    }
    (loss / rows as f64) as f32
}

/// Numerical gradient check helper used by the per-model tests: central
/// differences on a sample of coordinates of every parameter tensor.
#[cfg(test)]
pub(crate) fn check_gradients<M: Model>(model: &M, input_dim: usize, seed: u64, tol: f32) {
    use crate::data::{synthetic, SyntheticSpec};
    let spec = SyntheticSpec {
        dim: input_dim,
        classes: model.num_classes(),
        n_train: 12,
        n_test: 4,
        margin: 2.0,
        modes: 1,
        label_noise: 0.0,
        seed,
    };
    let (train, _) = synthetic(spec);
    let batch = train.batch(&(0..8).collect::<Vec<_>>());
    let params = model.init_params(seed);
    let (_, grads) = model.loss_and_grad(&params, &batch);
    let eps = 2e-3f32;
    // ReLU kinks make a few coordinates legitimately non-differentiable at
    // finite eps; require the overwhelming majority to match instead of all.
    let mut probes = 0usize;
    let mut failures = Vec::new();
    for shape in model.param_shapes() {
        let g = &grads[&shape.key];
        // Probe a handful of coordinates per tensor, not all of them.
        let stride = (shape.len / 7).max(1);
        for idx in (0..shape.len).step_by(stride) {
            let mut plus = params.clone();
            plus.get_mut(&shape.key).unwrap()[idx] += eps;
            let (lp, _) = model.loss_and_grad(&plus, &batch);
            let mut minus = params.clone();
            minus.get_mut(&shape.key).unwrap()[idx] -= eps;
            let (lm, _) = model.loss_and_grad(&minus, &batch);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = g[idx];
            let denom = numeric.abs().max(analytic.abs()).max(1e-2);
            probes += 1;
            if (numeric - analytic).abs() / denom >= tol {
                failures.push(format!(
                    "key {} idx {idx}: numeric {numeric} vs analytic {analytic}",
                    shape.key
                ));
            }
        }
    }
    let allowed = probes / 10; // ≤10% kink-crossing outliers
    assert!(
        failures.len() <= allowed,
        "{}/{probes} gradient probes failed (allowed {allowed}):\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xent_gradient_sums_to_zero_per_row() {
        let mut logits = vec![0.3, -0.1, 0.9, 0.0, 0.0, 0.0];
        let loss = softmax_xent_backward(&mut logits, &[2, 0], 3);
        assert!(loss > 0.0);
        for r in 0..2 {
            let s: f32 = logits[r * 3..(r + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6, "row {r} grad sum {s}");
        }
    }

    #[test]
    fn xent_loss_is_low_for_confident_correct_prediction() {
        let mut confident = vec![10.0, -10.0];
        let low = softmax_xent_backward(&mut confident, &[0], 2);
        let mut wrong = vec![-10.0, 10.0];
        let high = softmax_xent_backward(&mut wrong, &[0], 2);
        assert!(low < 0.01);
        assert!(high > 5.0);
    }
}
