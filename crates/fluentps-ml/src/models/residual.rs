//! Residual MLP — the "ResNet-56-like" stand-in: a *deep* network with skip
//! connections. Depth is what matters for the reproduction: deeper networks
//! are more sensitive to gradient staleness, which is why the paper's Table
//! IV shows lazy execution and PSSP cooperating better on ResNet-56 than on
//! AlexNet.

use crate::data::Batch;
use crate::init::Initializer;
use crate::linalg::{matmul, matmul_a_bt, matmul_at_b, relu_backward_inplace, relu_inplace};
use crate::models::{softmax_xent_backward, Model, ParamShape};
use crate::ParamMap;

/// Residual network: an input projection, `blocks` two-layer residual
/// blocks of constant `width`, and a linear classifier head.
///
/// Per block `b` (0-based): `t = relu(h·W1 + b1)`, `r = t·W2 + b2`,
/// `h ← relu(h + r)`.
///
/// Keys: `0`/`1` input projection; block `b` at `2+4b .. 5+4b`
/// (`W1, b1, W2, b2`); head at `2+4·blocks` / `3+4·blocks`.
#[derive(Debug, Clone, Copy)]
pub struct ResidualMlp {
    /// Input dimension.
    pub input: usize,
    /// Hidden width.
    pub width: usize,
    /// Number of residual blocks.
    pub blocks: usize,
    /// Output classes.
    pub classes: usize,
}

impl ResidualMlp {
    /// The deep default used by the ResNet-56 experiments: 8 residual blocks
    /// (16 weight layers + projection + head ≈ the depth regime where
    /// staleness visibly hurts, while staying cheap enough for CI).
    pub fn resnet56_like(input: usize, classes: usize) -> Self {
        ResidualMlp {
            input,
            width: 64,
            blocks: 8,
            classes,
        }
    }

    fn head_w_key(&self) -> u64 {
        2 + 4 * self.blocks as u64
    }

    fn head_b_key(&self) -> u64 {
        3 + 4 * self.blocks as u64
    }
}

/// Dense layer forward: `out = x·w + b`.
fn dense(x: &[f32], w: &[f32], b: &[f32], rows: usize, din: usize, dout: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; rows * dout];
    matmul(x, w, &mut out, rows, din, dout);
    for row in out.chunks_mut(dout) {
        for (v, bias) in row.iter_mut().zip(b) {
            *v += bias;
        }
    }
    out
}

/// Column sums of a `rows × dout` matrix.
fn col_sums(m: &[f32], dout: usize) -> Vec<f32> {
    let mut s = vec![0.0f32; dout];
    for row in m.chunks(dout) {
        for (d, v) in s.iter_mut().zip(row) {
            *d += v;
        }
    }
    s
}

impl Model for ResidualMlp {
    fn name(&self) -> &'static str {
        "residual-mlp"
    }

    fn num_classes(&self) -> usize {
        self.classes
    }

    fn param_shapes(&self) -> Vec<ParamShape> {
        let mut shapes = vec![
            ParamShape {
                key: 0,
                len: self.input * self.width,
            },
            ParamShape {
                key: 1,
                len: self.width,
            },
        ];
        for b in 0..self.blocks as u64 {
            shapes.push(ParamShape {
                key: 2 + 4 * b,
                len: self.width * self.width,
            });
            shapes.push(ParamShape {
                key: 3 + 4 * b,
                len: self.width,
            });
            shapes.push(ParamShape {
                key: 4 + 4 * b,
                len: self.width * self.width,
            });
            shapes.push(ParamShape {
                key: 5 + 4 * b,
                len: self.width,
            });
        }
        shapes.push(ParamShape {
            key: self.head_w_key(),
            len: self.width * self.classes,
        });
        shapes.push(ParamShape {
            key: self.head_b_key(),
            len: self.classes,
        });
        shapes
    }

    fn init_params(&self, seed: u64) -> ParamMap {
        let mut init = Initializer::new(seed);
        let mut p = ParamMap::new();
        p.insert(0, init.he(self.input, self.width));
        p.insert(1, init.zeros(self.width));
        for b in 0..self.blocks as u64 {
            p.insert(2 + 4 * b, init.he(self.width, self.width));
            p.insert(3 + 4 * b, init.zeros(self.width));
            // Second layer of each branch starts near zero so blocks begin as
            // identity mappings (standard residual initialisation).
            p.insert(4 + 4 * b, init.small(self.width * self.width, 0.05));
            p.insert(5 + 4 * b, init.zeros(self.width));
        }
        p.insert(self.head_w_key(), init.xavier(self.width, self.classes));
        p.insert(self.head_b_key(), init.zeros(self.classes));
        p
    }

    fn logits(&self, params: &ParamMap, x: &[f32], rows: usize) -> Vec<f32> {
        let w = self.width;
        let mut h = dense(x, &params[&0], &params[&1], rows, self.input, w);
        relu_inplace(&mut h);
        for b in 0..self.blocks as u64 {
            let mut t = dense(&h, &params[&(2 + 4 * b)], &params[&(3 + 4 * b)], rows, w, w);
            relu_inplace(&mut t);
            let r = dense(&t, &params[&(4 + 4 * b)], &params[&(5 + 4 * b)], rows, w, w);
            for (hv, rv) in h.iter_mut().zip(&r) {
                *hv += rv;
            }
            relu_inplace(&mut h);
        }
        dense(
            &h,
            &params[&self.head_w_key()],
            &params[&self.head_b_key()],
            rows,
            w,
            self.classes,
        )
    }

    fn loss_and_grad(&self, params: &ParamMap, batch: &Batch) -> (f32, ParamMap) {
        let rows = batch.len();
        let w = self.width;

        // ---- forward with stashing ----
        let pre0 = dense(&batch.x, &params[&0], &params[&1], rows, self.input, w);
        let mut h = pre0.clone();
        relu_inplace(&mut h);

        struct BlockStash {
            h_in: Vec<f32>,
            pre1: Vec<f32>,
            t: Vec<f32>,
            pre_sum: Vec<f32>,
        }
        let mut stash: Vec<BlockStash> = Vec::with_capacity(self.blocks);
        for b in 0..self.blocks as u64 {
            let h_in = h.clone();
            let pre1 = dense(&h, &params[&(2 + 4 * b)], &params[&(3 + 4 * b)], rows, w, w);
            let mut t = pre1.clone();
            relu_inplace(&mut t);
            let r = dense(&t, &params[&(4 + 4 * b)], &params[&(5 + 4 * b)], rows, w, w);
            let mut pre_sum = h;
            for (hv, rv) in pre_sum.iter_mut().zip(&r) {
                *hv += rv;
            }
            h = pre_sum.clone();
            relu_inplace(&mut h);
            stash.push(BlockStash {
                h_in,
                pre1,
                t,
                pre_sum,
            });
        }
        let mut logits = dense(
            &h,
            &params[&self.head_w_key()],
            &params[&self.head_b_key()],
            rows,
            w,
            self.classes,
        );
        let loss = softmax_xent_backward(&mut logits, &batch.y, self.classes);
        let dlogits = logits;

        // ---- backward ----
        let mut grads = ParamMap::new();
        let mut dw_head = vec![0.0f32; w * self.classes];
        matmul_at_b(&h, &dlogits, &mut dw_head, rows, w, self.classes);
        grads.insert(self.head_w_key(), dw_head);
        grads.insert(self.head_b_key(), col_sums(&dlogits, self.classes));
        let mut dh = vec![0.0f32; rows * w];
        matmul_a_bt(
            &dlogits,
            &params[&self.head_w_key()],
            &mut dh,
            rows,
            self.classes,
            w,
        );

        for b in (0..self.blocks as u64).rev() {
            let s = &stash[b as usize];
            // Through the post-sum ReLU.
            relu_backward_inplace(&s.pre_sum, &mut dh);
            let d_sum = dh; // gradient at (h_in + r)
                            // Branch: dr = d_sum.
            let mut dw2 = vec![0.0f32; w * w];
            matmul_at_b(&s.t, &d_sum, &mut dw2, rows, w, w);
            grads.insert(4 + 4 * b, dw2);
            grads.insert(5 + 4 * b, col_sums(&d_sum, w));
            let mut dt = vec![0.0f32; rows * w];
            matmul_a_bt(&d_sum, &params[&(4 + 4 * b)], &mut dt, rows, w, w);
            relu_backward_inplace(&s.pre1, &mut dt);
            let mut dw1 = vec![0.0f32; w * w];
            matmul_at_b(&s.h_in, &dt, &mut dw1, rows, w, w);
            grads.insert(2 + 4 * b, dw1);
            grads.insert(3 + 4 * b, col_sums(&dt, w));
            // dh_in = identity path + branch path.
            let mut dh_in = vec![0.0f32; rows * w];
            matmul_a_bt(&dt, &params[&(2 + 4 * b)], &mut dh_in, rows, w, w);
            for (a, g) in dh_in.iter_mut().zip(&d_sum) {
                *a += g;
            }
            dh = dh_in;
        }

        relu_backward_inplace(&pre0, &mut dh);
        let mut dw0 = vec![0.0f32; self.input * w];
        matmul_at_b(&batch.x, &dh, &mut dw0, rows, self.input, w);
        grads.insert(0, dw0);
        grads.insert(1, col_sums(&dh, w));
        (loss, grads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{synthetic, BatchSampler, SyntheticSpec};
    use crate::models::check_gradients;
    use crate::optim::{Optimizer, Sgd};

    #[test]
    fn gradients_match_finite_differences() {
        let model = ResidualMlp {
            input: 5,
            width: 6,
            blocks: 2,
            classes: 3,
        };
        check_gradients(&model, 5, 23, 4e-2);
    }

    #[test]
    fn param_inventory_matches_shapes() {
        let m = ResidualMlp::resnet56_like(64, 10);
        let shapes = m.param_shapes();
        assert_eq!(shapes.len(), 2 + 4 * 8 + 2);
        let p = m.init_params(0);
        for s in &shapes {
            assert_eq!(p[&s.key].len(), s.len, "key {}", s.key);
        }
        assert_eq!(m.num_params(), shapes.iter().map(|s| s.len).sum::<usize>());
    }

    #[test]
    fn identity_start_keeps_logits_finite_through_depth() {
        let m = ResidualMlp {
            input: 8,
            width: 16,
            blocks: 12,
            classes: 4,
        };
        let p = m.init_params(1);
        let x = vec![0.5f32; 8 * 3];
        let logits = m.logits(&p, &x, 3);
        assert!(logits.iter().all(|v| v.is_finite() && v.abs() < 100.0));
    }

    #[test]
    fn deep_model_trains_on_synthetic_data() {
        let spec = SyntheticSpec {
            dim: 16,
            classes: 4,
            n_train: 2000,
            n_test: 400,
            margin: 4.0,
            modes: 2,
            label_noise: 0.0,
            seed: 31,
        };
        let (train, test) = synthetic(spec);
        let model = ResidualMlp {
            input: 16,
            width: 32,
            blocks: 4,
            classes: 4,
        };
        let mut params = model.init_params(3);
        let mut opt = Sgd::new(0.08, 0.9, 0.0);
        let mut sampler = BatchSampler::new(0..train.len(), 64, 7);
        for _ in 0..600 {
            let batch = train.batch(&sampler.next_indices());
            let (_, grads) = model.loss_and_grad(&params, &batch);
            opt.step(&mut params, &grads);
        }
        let acc = model.accuracy(&params, &test);
        assert!(acc > 0.85, "deep model should train, got {acc}");
    }
}
