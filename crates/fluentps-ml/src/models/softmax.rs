//! Multinomial logistic (softmax) regression — the simplest real model, used
//! by the quickstart example and as the fast default for huge sweeps.

use crate::data::Batch;
use crate::init::Initializer;
use crate::linalg::{matmul, matmul_at_b};
use crate::models::{softmax_xent_backward, Model, ParamShape};
use crate::ParamMap;

/// Keys: `0` → weights `dim × classes`, `1` → bias `classes`.
#[derive(Debug, Clone, Copy)]
pub struct SoftmaxRegression {
    /// Input dimension.
    pub dim: usize,
    /// Number of classes.
    pub classes: usize,
}

impl SoftmaxRegression {
    const KEY_W: u64 = 0;
    const KEY_B: u64 = 1;
}

impl Model for SoftmaxRegression {
    fn name(&self) -> &'static str {
        "softmax-regression"
    }

    fn num_classes(&self) -> usize {
        self.classes
    }

    fn param_shapes(&self) -> Vec<ParamShape> {
        vec![
            ParamShape {
                key: Self::KEY_W,
                len: self.dim * self.classes,
            },
            ParamShape {
                key: Self::KEY_B,
                len: self.classes,
            },
        ]
    }

    fn init_params(&self, seed: u64) -> ParamMap {
        let mut init = Initializer::new(seed);
        let mut p = ParamMap::new();
        p.insert(Self::KEY_W, init.xavier(self.dim, self.classes));
        p.insert(Self::KEY_B, init.zeros(self.classes));
        p
    }

    fn logits(&self, params: &ParamMap, x: &[f32], rows: usize) -> Vec<f32> {
        let w = &params[&Self::KEY_W];
        let b = &params[&Self::KEY_B];
        let mut out = vec![0.0f32; rows * self.classes];
        matmul(x, w, &mut out, rows, self.dim, self.classes);
        for row in out.chunks_mut(self.classes) {
            for (v, bias) in row.iter_mut().zip(b) {
                *v += bias;
            }
        }
        out
    }

    fn loss_and_grad(&self, params: &ParamMap, batch: &Batch) -> (f32, ParamMap) {
        let rows = batch.len();
        let mut logits = self.logits(params, &batch.x, rows);
        let loss = softmax_xent_backward(&mut logits, &batch.y, self.classes);
        // dW = Xᵀ · dLogits, db = column sums of dLogits.
        let mut dw = vec![0.0f32; self.dim * self.classes];
        matmul_at_b(&batch.x, &logits, &mut dw, rows, self.dim, self.classes);
        let mut db = vec![0.0f32; self.classes];
        for row in logits.chunks(self.classes) {
            for (d, v) in db.iter_mut().zip(row) {
                *d += v;
            }
        }
        let mut grads = ParamMap::new();
        grads.insert(Self::KEY_W, dw);
        grads.insert(Self::KEY_B, db);
        (loss, grads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{synthetic, SyntheticSpec};
    use crate::models::check_gradients;
    use crate::optim::{Optimizer, Sgd};

    #[test]
    fn gradients_match_finite_differences() {
        let model = SoftmaxRegression { dim: 6, classes: 3 };
        check_gradients(&model, 6, 11, 2e-2);
    }

    #[test]
    fn shapes_and_counts() {
        let m = SoftmaxRegression {
            dim: 64,
            classes: 10,
        };
        assert_eq!(m.num_params(), 64 * 10 + 10);
        let p = m.init_params(0);
        assert_eq!(p[&0].len(), 640);
        assert_eq!(p[&1], vec![0.0; 10]);
    }

    #[test]
    fn trains_to_high_accuracy_on_easy_data() {
        let spec = SyntheticSpec {
            dim: 16,
            classes: 4,
            n_train: 800,
            n_test: 200,
            margin: 3.0,
            modes: 1,
            label_noise: 0.0,
            seed: 5,
        };
        let (train, test) = synthetic(spec);
        let model = SoftmaxRegression {
            dim: 16,
            classes: 4,
        };
        let mut params = model.init_params(5);
        let mut opt = Sgd::new(0.5, 0.9, 0.0);
        let mut sampler = crate::data::BatchSampler::new(0..train.len(), 32, 1);
        let mut last_loss = f32::INFINITY;
        for _ in 0..300 {
            let batch = train.batch(&sampler.next_indices());
            let (loss, grads) = model.loss_and_grad(&params, &batch);
            opt.step(&mut params, &grads);
            last_loss = loss;
        }
        assert!(last_loss < 0.5, "loss did not drop: {last_loss}");
        let acc = model.accuracy(&params, &test);
        assert!(acc > 0.85, "accuracy too low: {acc}");
    }

    #[test]
    fn accuracy_of_untrained_model_is_near_chance() {
        let (_, test) = synthetic(SyntheticSpec::c10_like(3));
        let m = SoftmaxRegression {
            dim: 64,
            classes: 10,
        };
        let acc = m.accuracy(&m.init_params(3), &test);
        assert!(acc < 0.3, "untrained accuracy suspiciously high: {acc}");
    }
}
