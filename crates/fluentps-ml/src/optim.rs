//! Worker-side optimizers.
//!
//! In the PS decomposition used here (Algorithm 1: the server computes
//! `w += g/N`), the *worker* turns raw gradients into update deltas —
//! `−lr · adjusted_grad` — and pushes those. [`Optimizer::step`] applies the
//! same delta to a local parameter copy for single-process training;
//! [`Optimizer::deltas`] produces the push payload for distributed training.

use crate::ParamMap;

/// A first-order optimizer over PS-keyed parameters.
pub trait Optimizer {
    /// Compute the update deltas (`w_new = w + delta`) for `grads` at the
    /// current learning rate, advancing any internal state (momentum).
    fn deltas(&mut self, params: &ParamMap, grads: &ParamMap) -> ParamMap;

    /// Apply the deltas directly to `params` (local training convenience).
    fn step(&mut self, params: &mut ParamMap, grads: &ParamMap) {
        let deltas = self.deltas(params, grads);
        for (k, d) in deltas {
            let p = params.get_mut(&k).expect("delta for unknown key");
            for (pv, dv) in p.iter_mut().zip(d) {
                *pv += dv;
            }
        }
    }

    /// Update the learning rate (drivers call this with the schedule value).
    fn set_lr(&mut self, lr: f32);

    /// Current learning rate.
    fn lr(&self) -> f32;
}

/// SGD with momentum and decoupled weight decay.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: ParamMap,
}

impl Sgd {
    /// Classic SGD: `v ← μv + g + λw`, `Δ = −lr·v`.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(lr > 0.0 && (0.0..1.0).contains(&momentum) && weight_decay >= 0.0);
        Sgd {
            lr,
            momentum,
            weight_decay,
            velocity: ParamMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn deltas(&mut self, params: &ParamMap, grads: &ParamMap) -> ParamMap {
        let mut out = ParamMap::new();
        for (&k, g) in grads {
            let w = &params[&k];
            let v = self.velocity.entry(k).or_insert_with(|| vec![0.0; g.len()]);
            let mut delta = vec![0.0f32; g.len()];
            for i in 0..g.len() {
                let grad = g[i] + self.weight_decay * w[i];
                v[i] = self.momentum * v[i] + grad;
                delta[i] = -self.lr * v[i];
            }
            out.insert(k, delta);
        }
        out
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// Layer-wise Adaptive Rate Scaling (You, Gitman & Ginsburg 2017), the
/// optimizer the paper uses for large-batch training: each layer's update is
/// rescaled by `trust · ‖w‖ / (‖g‖ + λ‖w‖)`.
#[derive(Debug, Clone)]
pub struct Lars {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    /// Trust coefficient `η` (paper default 0.001).
    pub trust: f32,
    velocity: ParamMap,
}

impl Lars {
    /// LARS with the usual defaults.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32, trust: f32) -> Self {
        assert!(lr > 0.0 && trust > 0.0);
        Lars {
            lr,
            momentum,
            weight_decay,
            trust,
            velocity: ParamMap::new(),
        }
    }

    fn local_lr(&self, w: &[f32], g: &[f32]) -> f32 {
        let wn = crate::linalg::norm2(w);
        let gn = crate::linalg::norm2(g);
        if wn == 0.0 || gn == 0.0 {
            return 1.0;
        }
        self.trust * wn / (gn + self.weight_decay * wn)
    }
}

impl Optimizer for Lars {
    fn deltas(&mut self, params: &ParamMap, grads: &ParamMap) -> ParamMap {
        let mut out = ParamMap::new();
        for (&k, g) in grads {
            let w = &params[&k];
            let local = self.local_lr(w, g);
            let v = self.velocity.entry(k).or_insert_with(|| vec![0.0; g.len()]);
            let mut delta = vec![0.0f32; g.len()];
            for i in 0..g.len() {
                let grad = local * (g[i] + self.weight_decay * w[i]);
                v[i] = self.momentum * v[i] + grad;
                delta[i] = -self.lr * v[i];
            }
            out.insert(k, delta);
        }
        out
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// Adam (Kingma & Ba 2014) — the adaptive per-parameter learning-rate
/// optimizer the paper cites among the staleness-mitigation strategies.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: i32,
    m: ParamMap,
    v: ParamMap,
}

impl Adam {
    /// Adam with the standard defaults (`β1 = 0.9`, `β2 = 0.999`).
    pub fn new(lr: f32) -> Self {
        Self::with_betas(lr, 0.9, 0.999)
    }

    /// Adam with explicit moment coefficients.
    pub fn with_betas(lr: f32, beta1: f32, beta2: f32) -> Self {
        assert!(lr > 0.0 && (0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        Adam {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            t: 0,
            m: ParamMap::new(),
            v: ParamMap::new(),
        }
    }
}

impl Optimizer for Adam {
    fn deltas(&mut self, _params: &ParamMap, grads: &ParamMap) -> ParamMap {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        let mut out = ParamMap::new();
        for (&k, g) in grads {
            let m = self.m.entry(k).or_insert_with(|| vec![0.0; g.len()]);
            let v = self.v.entry(k).or_insert_with(|| vec![0.0; g.len()]);
            let mut delta = vec![0.0f32; g.len()];
            for i in 0..g.len() {
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g[i];
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g[i] * g[i];
                let m_hat = m[i] / bc1;
                let v_hat = v[i] / bc2;
                delta[i] = -self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
            out.insert(k, delta);
        }
        out
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_param(w: f32) -> ParamMap {
        let mut p = ParamMap::new();
        p.insert(0, vec![w]);
        p
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        let mut params = one_param(1.0);
        let grads = one_param(2.0); // gradient 2 at key 0
        opt.step(&mut params, &grads);
        assert!((params[&0][0] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn momentum_accumulates() {
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        let mut params = one_param(0.0);
        let grads = one_param(1.0);
        opt.step(&mut params, &grads); // v=1, Δ=-0.1
        opt.step(&mut params, &grads); // v=1.9, Δ=-0.19
        assert!((params[&0][0] + 0.29).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut opt = Sgd::new(0.1, 0.0, 0.5);
        let mut params = one_param(2.0);
        let grads = one_param(0.0);
        opt.step(&mut params, &grads);
        assert!(params[&0][0] < 2.0);
    }

    #[test]
    fn lars_scales_update_by_weight_to_grad_ratio() {
        let mut opt = Lars::new(1.0, 0.0, 0.0, 0.001);
        let mut params = ParamMap::new();
        params.insert(0, vec![10.0, 0.0]); // ‖w‖ = 10
        let mut grads = ParamMap::new();
        grads.insert(0, vec![0.0, 1.0]); // ‖g‖ = 1
        let deltas = opt.deltas(&params, &grads);
        // local lr = 0.001 · 10/1 = 0.01; Δ = −1.0 · 0.01 · g.
        assert!((deltas[&0][1] + 0.01).abs() < 1e-7);
    }

    #[test]
    fn lars_is_neutral_on_zero_norms() {
        let mut opt = Lars::new(0.5, 0.0, 0.0, 0.001);
        let params = one_param(0.0); // ‖w‖ = 0
        let grads = one_param(4.0);
        let deltas = opt.deltas(&params, &grads);
        assert!((deltas[&0][0] + 2.0).abs() < 1e-6); // plain SGD fallback
    }

    #[test]
    fn deltas_and_step_agree() {
        let grads = one_param(1.5);
        let mut a = Sgd::new(0.2, 0.5, 0.01);
        let mut b = Sgd::new(0.2, 0.5, 0.01);
        let mut pa = one_param(1.0);
        let pb = one_param(1.0);
        let deltas = b.deltas(&pb, &grads);
        a.step(&mut pa, &grads);
        assert!((pa[&0][0] - (pb[&0][0] + deltas[&0][0])).abs() < 1e-7);
    }

    #[test]
    fn adam_first_step_is_lr_sized_regardless_of_gradient_scale() {
        // Adam's bias correction makes the first step ≈ lr · sign(g).
        for scale in [1e-4f32, 1.0, 1e4] {
            let mut opt = Adam::new(0.01);
            let params = one_param(0.0);
            let grads = one_param(scale);
            let d = opt.deltas(&params, &grads);
            assert!(
                (d[&0][0] + 0.01).abs() < 1e-4,
                "scale {scale}: step {}",
                d[&0][0]
            );
        }
    }

    #[test]
    fn adam_converges_on_a_quadratic() {
        // Minimize f(w) = (w − 3)², gradient 2(w − 3).
        let mut opt = Adam::new(0.1);
        let mut params = one_param(0.0);
        for _ in 0..500 {
            let g = 2.0 * (params[&0][0] - 3.0);
            let mut grads = ParamMap::new();
            grads.insert(0, vec![g]);
            opt.step(&mut params, &grads);
        }
        assert!((params[&0][0] - 3.0).abs() < 0.05, "w = {}", params[&0][0]);
    }

    #[test]
    fn lr_setter_roundtrip() {
        let mut opt = Sgd::new(0.1, 0.0, 0.0);
        opt.set_lr(0.05);
        assert_eq!(opt.lr(), 0.05);
    }
}
