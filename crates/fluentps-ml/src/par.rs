//! Data-parallel gradient computation within one worker.
//!
//! A worker node with several cores can split its minibatch across scoped
//! threads and average the partial gradients — exactly the intra-node data
//! parallelism GPU workers get for free. Built on scoped threads
//! (`fluentps_util::sync::scope`) so the model and parameters are borrowed,
//! not cloned.

use crate::data::Batch;
use crate::models::Model;
use crate::ParamMap;

/// Compute `loss_and_grad` with the batch split over `threads` threads.
/// Results are averaged (weighted by rows per chunk) and match the serial
/// computation up to floating-point reassociation.
pub fn parallel_loss_and_grad<M: Model + ?Sized>(
    model: &M,
    params: &ParamMap,
    batch: &Batch,
    threads: usize,
) -> (f32, ParamMap) {
    assert!(threads >= 1, "need at least one thread");
    let rows = batch.len();
    if threads == 1 || rows < 2 * threads {
        return model.loss_and_grad(params, batch);
    }

    // Split the batch into near-equal row chunks.
    let chunk_rows = rows.div_ceil(threads);
    let mut chunks: Vec<Batch> = Vec::new();
    let mut start = 0;
    while start < rows {
        let end = (start + chunk_rows).min(rows);
        chunks.push(Batch {
            x: batch.x[start * batch.dim..end * batch.dim].to_vec(),
            y: batch.y[start..end].to_vec(),
            dim: batch.dim,
        });
        start = end;
    }

    let results: Vec<(f32, ParamMap, usize)> = fluentps_util::sync::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                scope.spawn(move || {
                    let (loss, grads) = model.loss_and_grad(params, chunk);
                    (loss, grads, chunk.len())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("gradient worker thread"))
            .collect()
    });

    // Weighted average of losses and gradients.
    let total = rows as f32;
    let mut loss = 0.0f32;
    let mut grads = ParamMap::new();
    for (l, g, n) in results {
        let w = n as f32 / total;
        loss += l * w;
        for (k, v) in g {
            let acc = grads.entry(k).or_insert_with(|| vec![0.0; v.len()]);
            for (a, b) in acc.iter_mut().zip(&v) {
                *a += b * w;
            }
        }
    }
    (loss, grads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{synthetic, SyntheticSpec};
    use crate::models::{Mlp, SoftmaxRegression};

    fn setup() -> (SyntheticSpec, Batch) {
        let spec = SyntheticSpec {
            dim: 12,
            classes: 3,
            n_train: 64,
            n_test: 8,
            margin: 2.0,
            modes: 1,
            label_noise: 0.0,
            seed: 5,
        };
        let (train, _) = synthetic(spec);
        let batch = train.batch(&(0..48).collect::<Vec<_>>());
        (spec, batch)
    }

    #[test]
    fn parallel_matches_serial_for_linear_model() {
        let (spec, batch) = setup();
        let model = SoftmaxRegression {
            dim: spec.dim,
            classes: spec.classes,
        };
        let params = model.init_params(1);
        let (l1, g1) = model.loss_and_grad(&params, &batch);
        for threads in [2usize, 3, 4] {
            let (l2, g2) = parallel_loss_and_grad(&model, &params, &batch, threads);
            assert!(
                (l1 - l2).abs() < 1e-4,
                "{threads} threads: loss {l1} vs {l2}"
            );
            for (k, v) in &g1 {
                for (a, b) in v.iter().zip(&g2[k]) {
                    assert!((a - b).abs() < 1e-4, "key {k}");
                }
            }
        }
    }

    #[test]
    fn parallel_matches_serial_for_mlp() {
        let (spec, batch) = setup();
        let model = Mlp {
            dims: vec![spec.dim, 16, spec.classes],
        };
        let params = model.init_params(2);
        let (l1, g1) = model.loss_and_grad(&params, &batch);
        let (l2, g2) = parallel_loss_and_grad(&model, &params, &batch, 4);
        assert!((l1 - l2).abs() < 1e-4);
        for (k, v) in &g1 {
            for (a, b) in v.iter().zip(&g2[k]) {
                assert!((a - b).abs() < 2e-4, "key {k}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn single_thread_takes_the_serial_path() {
        let (spec, batch) = setup();
        let model = SoftmaxRegression {
            dim: spec.dim,
            classes: spec.classes,
        };
        let params = model.init_params(3);
        let (l1, _) = model.loss_and_grad(&params, &batch);
        let (l2, _) = parallel_loss_and_grad(&model, &params, &batch, 1);
        assert_eq!(l1, l2);
    }

    #[test]
    fn tiny_batches_do_not_over_split() {
        let (spec, _) = setup();
        let (train, _) = synthetic(spec);
        let model = SoftmaxRegression {
            dim: spec.dim,
            classes: spec.classes,
        };
        let params = model.init_params(4);
        let tiny = train.batch(&[0, 1, 2]);
        // threads > rows: falls back to serial without panicking.
        let (l, g) = parallel_loss_and_grad(&model, &params, &tiny, 8);
        assert!(l.is_finite());
        assert_eq!(g.len(), 2);
    }
}
