//! Learning-rate schedules (the paper's experiments use step decay and, for
//! large batches, LARS with warmup).

/// A learning-rate schedule: iteration → learning rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Fixed learning rate.
    Constant(f32),
    /// Multiply by `factor` every `every` iterations.
    StepDecay {
        /// Base learning rate.
        base: f32,
        /// Decay period in iterations.
        every: u64,
        /// Multiplicative factor per period (e.g. 0.1).
        factor: f32,
    },
    /// Cosine annealing from `base` to `floor` over `total` iterations.
    Cosine {
        /// Initial learning rate.
        base: f32,
        /// Final learning rate.
        floor: f32,
        /// Annealing horizon; the rate stays at `floor` afterwards.
        total: u64,
    },
    /// Linear warmup from `base/steps` to `base` over `steps` iterations,
    /// then step decay — the standard large-batch recipe.
    WarmupThenDecay {
        /// Peak learning rate after warmup.
        base: f32,
        /// Warmup length.
        warmup: u64,
        /// Decay period after warmup.
        every: u64,
        /// Decay factor.
        factor: f32,
    },
}

impl LrSchedule {
    /// Learning rate at `iter` (0-based).
    pub fn lr(&self, iter: u64) -> f32 {
        match *self {
            LrSchedule::Constant(lr) => lr,
            LrSchedule::StepDecay {
                base,
                every,
                factor,
            } => base * factor.powi((iter / every) as i32),
            LrSchedule::Cosine { base, floor, total } => {
                if iter >= total {
                    floor
                } else {
                    let progress = iter as f64 / total as f64;
                    let cos = 0.5 * (1.0 + (std::f64::consts::PI * progress).cos());
                    floor + (base - floor) * cos as f32
                }
            }
            LrSchedule::WarmupThenDecay {
                base,
                warmup,
                every,
                factor,
            } => {
                if iter < warmup {
                    base * (iter + 1) as f32 / warmup as f32
                } else {
                    base * factor.powi(((iter - warmup) / every) as i32)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant(0.1);
        assert_eq!(s.lr(0), 0.1);
        assert_eq!(s.lr(10_000), 0.1);
    }

    #[test]
    fn step_decay_steps_at_boundaries() {
        let s = LrSchedule::StepDecay {
            base: 1.0,
            every: 100,
            factor: 0.1,
        };
        assert_eq!(s.lr(0), 1.0);
        assert_eq!(s.lr(99), 1.0);
        assert!((s.lr(100) - 0.1).abs() < 1e-7);
        assert!((s.lr(250) - 0.01).abs() < 1e-8);
    }

    #[test]
    fn cosine_anneals_monotonically_to_floor() {
        let s = LrSchedule::Cosine {
            base: 1.0,
            floor: 0.01,
            total: 100,
        };
        assert_eq!(s.lr(0), 1.0);
        let mid = s.lr(50);
        assert!((mid - 0.505).abs() < 1e-3, "midpoint {mid}");
        for i in 1..100 {
            assert!(s.lr(i) <= s.lr(i - 1) + 1e-7, "not monotone at {i}");
        }
        assert!((s.lr(100) - 0.01).abs() < 1e-6);
        assert_eq!(s.lr(5000), 0.01);
    }

    #[test]
    fn warmup_ramps_then_decays() {
        let s = LrSchedule::WarmupThenDecay {
            base: 1.0,
            warmup: 10,
            every: 100,
            factor: 0.5,
        };
        assert!((s.lr(0) - 0.1).abs() < 1e-7);
        assert!((s.lr(4) - 0.5).abs() < 1e-7);
        assert_eq!(s.lr(10), 1.0);
        assert!((s.lr(110) - 0.5).abs() < 1e-7);
        // Monotone during warmup.
        for i in 1..10 {
            assert!(s.lr(i) > s.lr(i - 1));
        }
    }
}
