//! A small shape-aware tensor over the flat `linalg` kernels.
//!
//! The models use raw slices internally for zero overhead; `Tensor` is the
//! typed facade for building new models and for the examples — it catches
//! shape errors at the call site instead of producing silently wrong GEMMs.

use crate::linalg;

/// Dense row-major f32 tensor (rank 1 or 2).
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: (usize, usize),
}

impl Tensor {
    /// `rows × cols` tensor of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Tensor {
            data: vec![0.0; rows * cols],
            shape: (rows, cols),
        }
    }

    /// Wrap existing data; `data.len()` must equal `rows · cols`.
    pub fn from_vec(data: Vec<f32>, rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Tensor {
            data,
            shape: (rows, cols),
        }
    }

    /// A 1 × n row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        let n = data.len();
        Self::from_vec(data, 1, n)
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        self.shape
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.shape.0
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.shape.1
    }

    /// Flat data view.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data view.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(i < self.rows(), "row {i} out of {}", self.rows());
        &self.data[i * self.cols()..(i + 1) * self.cols()]
    }

    /// Element access.
    pub fn get(&self, i: usize, j: usize) -> f32 {
        assert!(i < self.rows() && j < self.cols());
        self.data[i * self.cols() + j]
    }

    /// Element assignment.
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        assert!(i < self.rows() && j < self.cols());
        let c = self.cols();
        self.data[i * c + j] = v;
    }

    /// Matrix product `self · rhs`.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(
            self.cols(),
            rhs.rows(),
            "matmul shape mismatch: {:?} · {:?}",
            self.shape,
            rhs.shape
        );
        let mut out = Tensor::zeros(self.rows(), rhs.cols());
        linalg::matmul(
            &self.data,
            &rhs.data,
            &mut out.data,
            self.rows(),
            self.cols(),
            rhs.cols(),
        );
        out
    }

    /// `selfᵀ · rhs` without materializing the transpose.
    pub fn t_matmul(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.rows(), rhs.rows(), "t_matmul shape mismatch");
        let mut out = Tensor::zeros(self.cols(), rhs.cols());
        linalg::matmul_at_b(
            &self.data,
            &rhs.data,
            &mut out.data,
            self.rows(),
            self.cols(),
            rhs.cols(),
        );
        out
    }

    /// `self · rhsᵀ` without materializing the transpose.
    pub fn matmul_t(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.cols(), rhs.cols(), "matmul_t shape mismatch");
        let mut out = Tensor::zeros(self.rows(), rhs.rows());
        linalg::matmul_a_bt(
            &self.data,
            &rhs.data,
            &mut out.data,
            self.rows(),
            self.cols(),
            rhs.rows(),
        );
        out
    }

    /// Explicit transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols(), self.rows());
        for i in 0..self.rows() {
            for j in 0..self.cols() {
                out.data[j * self.rows() + i] = self.data[i * self.cols() + j];
            }
        }
        out
    }

    /// Elementwise addition (same shape).
    pub fn add(&self, rhs: &Tensor) -> Tensor {
        assert_eq!(self.shape, rhs.shape, "add shape mismatch");
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
        out
    }

    /// Add a 1 × cols row vector to every row (bias broadcast).
    pub fn add_row_broadcast(&self, bias: &Tensor) -> Tensor {
        assert_eq!(bias.rows(), 1, "bias must be a row vector");
        assert_eq!(bias.cols(), self.cols(), "bias width mismatch");
        let mut out = self.clone();
        for row in out.data.chunks_mut(self.cols()) {
            for (v, b) in row.iter_mut().zip(&bias.data) {
                *v += b;
            }
        }
        out
    }

    /// Scale every element.
    pub fn scale(&self, s: f32) -> Tensor {
        let mut out = self.clone();
        for v in &mut out.data {
            *v *= s;
        }
        out
    }

    /// In-place ReLU; returns self for chaining.
    pub fn relu(mut self) -> Tensor {
        linalg::relu_inplace(&mut self.data);
        self
    }

    /// Row-wise softmax.
    pub fn softmax_rows(mut self) -> Tensor {
        let (r, c) = self.shape;
        linalg::softmax_rows_inplace(&mut self.data, r, c);
        self
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        linalg::norm2(&self.data)
    }

    /// Sum of every column (returns a 1 × cols tensor) — the bias gradient.
    pub fn col_sums(&self) -> Tensor {
        let mut out = Tensor::zeros(1, self.cols());
        for row in self.data.chunks(self.cols()) {
            for (s, v) in out.data.iter_mut().zip(row) {
                *s += v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut t = Tensor::zeros(2, 3);
        t.set(1, 2, 5.0);
        assert_eq!(t.get(1, 2), 5.0);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.row(1), &[0.0, 0.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn bad_construction_panics() {
        let _ = Tensor::from_vec(vec![1.0; 5], 2, 3);
    }

    #[test]
    fn matmul_agrees_with_manual() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], 2, 2);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_checked() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_variants_agree_with_explicit_transpose() {
        let a = Tensor::from_vec((0..6).map(|v| v as f32).collect(), 2, 3);
        let b = Tensor::from_vec((0..6).map(|v| (v as f32).sin()).collect(), 2, 3);
        // aᵀ·b == transpose(a).matmul(b)
        let fast = a.t_matmul(&b);
        let slow = a.transpose().matmul(&b);
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-6);
        }
        // a·bᵀ == a.matmul(transpose(b))
        let fast = a.matmul_t(&b);
        let slow = a.matmul(&b.transpose());
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn broadcast_add_and_col_sums() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], 2, 2);
        let b = Tensor::row_vector(vec![10.0, 20.0]);
        let y = x.add_row_broadcast(&b);
        assert_eq!(y.data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(x.col_sums().data(), &[4.0, 6.0]);
    }

    #[test]
    fn activations_and_norm() {
        let x = Tensor::from_vec(vec![-1.0, 2.0], 1, 2);
        assert_eq!(x.clone().relu().data(), &[0.0, 2.0]);
        let s = Tensor::from_vec(vec![0.0, 0.0], 1, 2).softmax_rows();
        assert!((s.get(0, 0) - 0.5).abs() < 1e-6);
        assert!((Tensor::from_vec(vec![3.0, 4.0], 1, 2).norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn a_dense_layer_in_tensor_form() {
        // y = relu(x·W + b): exactly the models' hidden layer, typed.
        let x = Tensor::from_vec(vec![1.0, -1.0], 1, 2);
        let w = Tensor::from_vec(vec![1.0, 0.0, 0.0, -1.0], 2, 2);
        let b = Tensor::row_vector(vec![0.0, 0.5]);
        let y = x.matmul(&w).add_row_broadcast(&b).relu();
        assert_eq!(y.data(), &[1.0, 1.5]);
    }
}
