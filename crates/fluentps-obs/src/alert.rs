//! Declarative alerting over streaming window statistics.
//!
//! An [`AlertRule`] names a window metric (see [`AlertMetric`]), a
//! threshold, and how many *consecutive* closed windows must breach it
//! before the rule fires — the classic "p99 over X for 3 windows" shape.
//! The [`AlertEngine`] evaluates every rule against each
//! [`WindowStats`](crate::stream::WindowStats) a
//! [`StreamAnalyzer`](crate::stream::StreamAnalyzer) closes, plus one
//! built-in event-driven liveness rule (`dead_nodes`) fed directly from
//! recovery events, and records typed firing/resolved
//! [`AlertTransition`]s.
//!
//! ## Rule grammar
//!
//! Rules parse from one line each:
//!
//! ```text
//! name: metric > threshold [for N]
//! ```
//!
//! e.g. `slow-pulls: p99_wire_us > 50000 for 3`. The `for N` clause
//! defaults to 1 (fire on the first breaching window).
//!
//! ## Determinism contract
//!
//! Wall-clock window rules depend on where real time slices the run, so
//! their transitions vary between runs. The `dead_nodes` rule is driven
//! purely by the *logical* event sequence (`NodeDeclaredDead`,
//! `CheckpointRestored`, `ShardRemapped`), which a seeded chaos run
//! reproduces exactly — so only logical transitions fold into
//! [`AlertEngine::fingerprint`], and two same-seed runs produce the same
//! fingerprint even though their window boundaries differ.

use crate::event::{EventKind, TraceEvent};
use crate::stream::WindowStats;

/// Which per-window statistic a rule thresholds on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertMetric {
    /// p99 of matched `WireSend`→`WireRecv` latency, microseconds
    /// (worst shard in the window).
    WireP99Us,
    /// p99 DPR residence time, microseconds (worst shard in the window).
    DprP99Us,
    /// p99 `BarrierWait` span duration, microseconds.
    BarrierP99Us,
    /// Fraction of pulls deferred in the window (`deferred / pulls`).
    BlockRate,
    /// Collector drop fraction (`dropped / emitted`) at window close.
    DropRate,
    /// Largest staleness gap observed at pull time in the window.
    MaxGap,
    /// Fastest-minus-slowest worker progress at window close (straggler
    /// score).
    Spread,
}

impl AlertMetric {
    /// Every metric, for parsing and enumeration.
    pub const ALL: [AlertMetric; 7] = [
        AlertMetric::WireP99Us,
        AlertMetric::DprP99Us,
        AlertMetric::BarrierP99Us,
        AlertMetric::BlockRate,
        AlertMetric::DropRate,
        AlertMetric::MaxGap,
        AlertMetric::Spread,
    ];

    /// Stable name used by the rule grammar and renderers.
    pub fn name(self) -> &'static str {
        match self {
            AlertMetric::WireP99Us => "p99_wire_us",
            AlertMetric::DprP99Us => "p99_dpr_us",
            AlertMetric::BarrierP99Us => "p99_barrier_us",
            AlertMetric::BlockRate => "block_rate",
            AlertMetric::DropRate => "drop_rate",
            AlertMetric::MaxGap => "max_gap",
            AlertMetric::Spread => "spread",
        }
    }

    /// Parse a metric name from the rule grammar.
    pub fn parse(name: &str) -> Option<AlertMetric> {
        AlertMetric::ALL.iter().copied().find(|m| m.name() == name)
    }

    /// Extract this metric's value from one closed window.
    pub fn value(self, w: &WindowStats) -> f64 {
        match self {
            AlertMetric::WireP99Us => w.wire_p99_us as f64,
            AlertMetric::DprP99Us => w.dpr_p99_us as f64,
            AlertMetric::BarrierP99Us => w.barrier_p99_us as f64,
            AlertMetric::BlockRate => w.block_rate(),
            AlertMetric::DropRate => w.drop_rate,
            AlertMetric::MaxGap => w.max_gap as f64,
            AlertMetric::Spread => w.spread as f64,
        }
    }
}

/// One declarative threshold rule.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRule {
    /// Rule name, used in transitions, `/alerts` output and gauges.
    pub name: String,
    /// The window statistic being thresholded.
    pub metric: AlertMetric,
    /// Fires when `metric > threshold`.
    pub threshold: f64,
    /// Consecutive breaching windows required before firing (≥ 1).
    pub windows: u32,
}

impl AlertRule {
    /// Build a rule directly.
    pub fn new(name: &str, metric: AlertMetric, threshold: f64, windows: u32) -> AlertRule {
        AlertRule {
            name: name.to_string(),
            metric,
            threshold,
            windows: windows.max(1),
        }
    }

    /// Parse `name: metric > threshold [for N]`.
    pub fn parse(line: &str) -> Result<AlertRule, String> {
        let (name, rest) = line
            .split_once(':')
            .ok_or_else(|| format!("rule {line:?}: expected `name: metric > threshold`"))?;
        let name = name.trim();
        if name.is_empty() {
            return Err(format!("rule {line:?}: empty name"));
        }
        let (expr, windows) = match rest.split_once(" for ") {
            Some((expr, n)) => {
                let n: u32 = n
                    .trim()
                    .parse()
                    .map_err(|_| format!("rule {line:?}: bad window count {:?}", n.trim()))?;
                if n == 0 {
                    return Err(format!("rule {line:?}: window count must be >= 1"));
                }
                (expr, n)
            }
            None => (rest, 1),
        };
        let (metric, threshold) = expr
            .split_once('>')
            .ok_or_else(|| format!("rule {line:?}: expected `metric > threshold`"))?;
        let metric = AlertMetric::parse(metric.trim())
            .ok_or_else(|| format!("rule {line:?}: unknown metric {:?}", metric.trim()))?;
        let threshold: f64 = threshold
            .trim()
            .parse()
            .map_err(|_| format!("rule {line:?}: bad threshold {:?}", threshold.trim()))?;
        Ok(AlertRule::new(name, metric, threshold, windows))
    }

    /// The default rule set used by `repro chaos --metrics-addr` and
    /// `repro watch`: tail-latency SLOs on the wire and DPR paths, a
    /// straggler-spread watch, collector-loss and staleness-ceiling guards.
    pub fn defaults() -> Vec<AlertRule> {
        vec![
            AlertRule::new("wire-p99", AlertMetric::WireP99Us, 50_000.0, 3),
            AlertRule::new("dpr-p99", AlertMetric::DprP99Us, 200_000.0, 3),
            AlertRule::new("straggler-spread", AlertMetric::Spread, 8.0, 2),
            AlertRule::new("drop-rate", AlertMetric::DropRate, 0.05, 1),
            AlertRule::new("staleness-ceiling", AlertMetric::MaxGap, 16.0, 2),
        ]
    }
}

impl std::fmt::Display for AlertRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} > {}",
            self.name,
            self.metric.name(),
            self.threshold
        )?;
        if self.windows > 1 {
            write!(f, " for {}", self.windows)?;
        }
        Ok(())
    }
}

/// One firing or resolved edge of a rule's state.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertTransition {
    /// Name of the rule that changed state.
    pub rule: String,
    /// `true` on the firing edge, `false` on the resolved edge.
    pub firing: bool,
    /// When it happened: the closed window's index for window rules, the
    /// triggering event's `progress` for the logical `dead_nodes` rule.
    pub at: u64,
    /// Human-readable cause (`"p99_wire_us 81920 > 50000"`,
    /// `"pending=1 declared=1 recovered=0"`).
    pub detail: String,
    /// `true` when driven by the logical event sequence (deterministic
    /// under a fixed seed) rather than wall-clock windows.
    pub logical: bool,
}

/// Per-rule streak tracking.
#[derive(Debug, Clone)]
struct RuleState {
    rule: AlertRule,
    streak: u32,
    firing: bool,
}

/// FNV-1a offset basis (matches the run-fingerprint convention used by
/// `fluentps-experiments`).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x1000_0000_01b3;

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Evaluates rules over closed windows and recovery events, tracking
/// firing/resolved state per rule.
#[derive(Debug, Clone)]
pub struct AlertEngine {
    rules: Vec<RuleState>,
    /// Dead nodes not yet recovered: declared − (restored + remapped),
    /// clamped at 0.
    dead_pending: u64,
    dead_total: u64,
    recovered_total: u64,
    liveness_firing: bool,
    transitions: Vec<AlertTransition>,
    fingerprint: u64,
}

impl AlertEngine {
    /// Engine over `rules` plus the built-in `dead_nodes` liveness rule.
    pub fn new(rules: Vec<AlertRule>) -> AlertEngine {
        AlertEngine {
            rules: rules
                .into_iter()
                .map(|rule| RuleState {
                    rule,
                    streak: 0,
                    firing: false,
                })
                .collect(),
            dead_pending: 0,
            dead_total: 0,
            recovered_total: 0,
            liveness_firing: false,
            transitions: Vec::new(),
            fingerprint: FNV_OFFSET,
        }
    }

    /// Evaluate every window rule against one closed window.
    pub fn on_window(&mut self, w: &WindowStats) {
        for st in &mut self.rules {
            let value = st.rule.metric.value(w);
            if value > st.rule.threshold {
                st.streak += 1;
                if !st.firing && st.streak >= st.rule.windows {
                    st.firing = true;
                    self.transitions.push(AlertTransition {
                        rule: st.rule.name.clone(),
                        firing: true,
                        at: w.index,
                        detail: format!(
                            "{} {value} > {} for {} window(s)",
                            st.rule.metric.name(),
                            st.rule.threshold,
                            st.streak
                        ),
                        logical: false,
                    });
                }
            } else {
                st.streak = 0;
                if st.firing {
                    st.firing = false;
                    self.transitions.push(AlertTransition {
                        rule: st.rule.name.clone(),
                        firing: false,
                        at: w.index,
                        detail: format!(
                            "{} {value} <= {}",
                            st.rule.metric.name(),
                            st.rule.threshold
                        ),
                        logical: false,
                    });
                }
            }
        }
    }

    /// Feed one trace event into the logical `dead_nodes` rule. Only
    /// recovery kinds matter; everything else is ignored.
    pub fn on_event(&mut self, ev: &TraceEvent) {
        match ev.kind {
            EventKind::NodeDeclaredDead => {
                self.dead_pending += 1;
                self.dead_total += 1;
            }
            EventKind::CheckpointRestored => {
                self.recovered_total += 1;
                self.dead_pending = self.dead_pending.saturating_sub(1);
            }
            EventKind::ShardRemapped => {
                self.dead_pending = self.dead_pending.saturating_sub(1);
            }
            _ => return,
        }
        let should_fire = self.dead_pending > 0;
        if should_fire != self.liveness_firing {
            self.liveness_firing = should_fire;
            let t = AlertTransition {
                rule: "dead_nodes".to_string(),
                firing: should_fire,
                at: ev.progress,
                detail: format!(
                    "pending={} declared={} recovered={}",
                    self.dead_pending, self.dead_total, self.recovered_total
                ),
                logical: true,
            };
            self.fingerprint = fnv1a(self.fingerprint, t.rule.as_bytes());
            self.fingerprint = fnv1a(self.fingerprint, &[t.firing as u8]);
            self.fingerprint = fnv1a(self.fingerprint, &self.dead_pending.to_le_bytes());
            self.transitions.push(t);
        }
    }

    /// FNV-1a hash folded over the *logical* transitions only — identical
    /// across two same-seed chaos runs (see the module docs).
    pub fn fingerprint(&self) -> u64 {
        if self.fingerprint == 0 {
            FNV_OFFSET
        } else {
            self.fingerprint
        }
    }

    /// Every transition recorded so far, in order.
    pub fn transitions(&self) -> &[AlertTransition] {
        &self.transitions
    }

    /// `true` while any rule (window or liveness) is firing.
    pub fn any_firing(&self) -> bool {
        self.liveness_firing || self.rules.iter().any(|r| r.firing)
    }

    /// One `alert <name> firing|ok` line per rule, for the `/slo` text.
    pub fn render_states(&self) -> String {
        let mut out = String::new();
        for st in &self.rules {
            out.push_str(&format!(
                "alert {} {}\n",
                st.rule.name,
                if st.firing { "firing" } else { "ok" }
            ));
        }
        out.push_str(&format!(
            "alert dead_nodes {}\n",
            if self.liveness_firing { "firing" } else { "ok" }
        ));
        out
    }

    /// JSONL: one object per transition (history), then one `state`
    /// object per rule (current view) — the `/alerts` payload.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for t in &self.transitions {
            out.push_str(&format!(
                "{{\"rule\":\"{}\",\"transition\":\"{}\",\"at\":{},\"logical\":{},\"detail\":\"{}\"}}\n",
                t.rule,
                if t.firing { "firing" } else { "resolved" },
                t.at,
                t.logical,
                t.detail
            ));
        }
        for st in &self.rules {
            out.push_str(&format!(
                "{{\"state\":\"{}\",\"firing\":{},\"rule\":\"{}\"}}\n",
                st.rule.name, st.firing, st.rule
            ));
        }
        out.push_str(&format!(
            "{{\"state\":\"dead_nodes\",\"firing\":{},\"pending\":{},\"declared\":{},\"recovered\":{}}}\n",
            self.liveness_firing, self.dead_pending, self.dead_total, self.recovered_total
        ));
        out
    }

    /// Export one `alert_active{rule=...}` gauge (0/1) per rule.
    pub fn export_metrics(&self, registry: &crate::metrics::MetricsRegistry) {
        for st in &self.rules {
            registry
                .scope()
                .with("rule", &st.rule.name)
                .set_gauge("alert_active", if st.firing { 1.0 } else { 0.0 });
        }
        registry
            .scope()
            .with("rule", "dead_nodes")
            .set_gauge("alert_active", if self.liveness_firing { 1.0 } else { 0.0 });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NO_ID;

    fn window(index: u64) -> WindowStats {
        WindowStats {
            index,
            ..WindowStats::default()
        }
    }

    fn recovery_event(kind: EventKind, progress: u64) -> TraceEvent {
        TraceEvent {
            kind,
            shard: 0,
            worker: NO_ID,
            progress,
            ..Default::default()
        }
    }

    #[test]
    fn parse_round_trips_the_grammar() {
        let r = AlertRule::parse("slow: p99_wire_us > 50000 for 3").expect("parses");
        assert_eq!(r.name, "slow");
        assert_eq!(r.metric, AlertMetric::WireP99Us);
        assert_eq!(r.threshold, 50000.0);
        assert_eq!(r.windows, 3);
        assert_eq!(AlertRule::parse(&r.to_string()).expect("round trip"), r);
        // `for N` defaults to 1.
        let r = AlertRule::parse("drops: drop_rate > 0.05").expect("parses");
        assert_eq!(r.windows, 1);
        assert_eq!(AlertRule::parse(&r.to_string()).expect("round trip"), r);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(AlertRule::parse("no separator").is_err());
        assert!(AlertRule::parse(": p99_wire_us > 1").is_err(), "empty name");
        assert!(AlertRule::parse("x: nope > 1").is_err(), "unknown metric");
        assert!(AlertRule::parse("x: max_gap > abc").is_err());
        assert!(AlertRule::parse("x: max_gap > 1 for 0").is_err());
        assert!(AlertRule::parse("x: max_gap > 1 for many").is_err());
    }

    #[test]
    fn streak_rule_needs_consecutive_breaches() {
        let rule = AlertRule::new("gap", AlertMetric::MaxGap, 4.0, 3);
        let mut eng = AlertEngine::new(vec![rule]);
        let breach = |i| WindowStats {
            max_gap: 10,
            ..window(i)
        };
        eng.on_window(&breach(0));
        eng.on_window(&breach(1));
        eng.on_window(&window(2)); // streak broken
        eng.on_window(&breach(3));
        eng.on_window(&breach(4));
        assert!(eng.transitions().is_empty(), "never 3 in a row");
        eng.on_window(&breach(5));
        assert_eq!(eng.transitions().len(), 1);
        assert!(eng.transitions()[0].firing);
        assert_eq!(eng.transitions()[0].at, 5);
        assert!(eng.any_firing());
        eng.on_window(&window(6));
        assert_eq!(eng.transitions().len(), 2);
        assert!(!eng.transitions()[1].firing);
        assert!(!eng.any_firing());
    }

    #[test]
    fn dead_nodes_fires_and_resolves_on_recovery_events() {
        let mut eng = AlertEngine::new(Vec::new());
        eng.on_event(&recovery_event(EventKind::NodeDeclaredDead, 8));
        assert!(eng.any_firing());
        // An unrelated event changes nothing.
        eng.on_event(&recovery_event(EventKind::PushApplied, 9));
        assert_eq!(eng.transitions().len(), 1);
        eng.on_event(&recovery_event(EventKind::CheckpointRestored, 9));
        assert!(!eng.any_firing());
        let ts = eng.transitions();
        assert_eq!(ts.len(), 2);
        assert!(ts[0].firing && ts[0].logical && ts[0].at == 8);
        assert!(!ts[1].firing && ts[1].logical && ts[1].at == 9);
    }

    #[test]
    fn remap_also_resolves_liveness() {
        let mut eng = AlertEngine::new(Vec::new());
        eng.on_event(&recovery_event(EventKind::NodeDeclaredDead, 3));
        eng.on_event(&recovery_event(EventKind::ShardRemapped, 4));
        assert!(!eng.any_firing());
        assert_eq!(eng.transitions().len(), 2);
    }

    #[test]
    fn fingerprint_covers_logical_transitions_only() {
        let run = |with_window_noise: bool| {
            let mut eng =
                AlertEngine::new(vec![AlertRule::new("gap", AlertMetric::MaxGap, 1.0, 1)]);
            if with_window_noise {
                eng.on_window(&WindowStats {
                    max_gap: 9,
                    ..window(0)
                });
            }
            eng.on_event(&recovery_event(EventKind::NodeDeclaredDead, 5));
            eng.on_event(&recovery_event(EventKind::CheckpointRestored, 6));
            eng.fingerprint()
        };
        // Window transitions (wall-clock-dependent) never shift the
        // fingerprint; logical transitions do.
        assert_eq!(run(false), run(true));
        assert_ne!(run(false), AlertEngine::new(Vec::new()).fingerprint());
    }

    #[test]
    fn renders_cover_history_and_state() {
        let mut eng = AlertEngine::new(AlertRule::defaults());
        eng.on_event(&recovery_event(EventKind::NodeDeclaredDead, 2));
        let states = eng.render_states();
        assert!(states.contains("alert dead_nodes firing\n"));
        assert!(states.contains("alert wire-p99 ok\n"));
        let jsonl = eng.render_jsonl();
        assert!(jsonl.contains("\"transition\":\"firing\""));
        assert!(jsonl.contains("\"state\":\"dead_nodes\",\"firing\":true"));
        for line in jsonl.lines() {
            crate::json::validate(line).expect("valid JSON");
        }
    }
}
