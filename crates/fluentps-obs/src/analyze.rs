//! The trace-analytics engine: turns a recorded [`Trace`] into the derived
//! quantities the paper argues with — who the straggler is, where each
//! worker's time went, how long DPRs sat in the buffer, how stale granted
//! pulls actually were, and how often a pull at gap `k` was blocked
//! (empirical `Pr[blocked | gap=k]`, to be checked against the analytical
//! PSSP curves upstream).
//!
//! All derivations consume the *buffered* events; per-kind totals that
//! survive ring overwriting are reported alongside
//! ([`Analysis::recorded`] vs [`Analysis::analyzed`]) so a truncated trace
//! is visible rather than silently misleading.
//!
//! [`parse_jsonl`] reads the flat JSONL format written by
//! [`crate::export::jsonl`], so analysis works offline on exported files as
//! well as on a live [`crate::TraceCollector::snapshot`].

use std::collections::{BTreeMap, HashMap};

use crate::event::{EventKind, TraceEvent, KINDS, NO_ID};
use crate::hist::Histogram;
use crate::json;
use crate::tracer::Trace;

/// How many sample points the progress-spread timeline carries.
const SPREAD_POINTS: usize = 8;

/// Upper bound on critical-path backtracking, to keep extraction linear.
const MAX_PATH_STEPS: usize = 16;

/// Where one worker's time went, from the events that mention it.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerBreakdown {
    /// Worker id.
    pub worker: u32,
    /// Iterations observed for this worker (max `progress` + 1).
    pub iterations: u64,
    /// Timestamp of the worker's first buffered event.
    pub first_ts: f64,
    /// Timestamp (span end) of the worker's last buffered event.
    pub last_ts: f64,
    /// Seconds spent blocked in `BarrierWait` spans.
    pub barrier_secs: f64,
    /// Number of `BarrierWait` spans.
    pub barrier_count: u64,
    /// Seconds of matched `WireSend`→`WireRecv` latency involving this
    /// worker (both directions; see [`analyze`] for the matching rule).
    pub wire_secs: f64,
    /// Total bytes on `WireSend` events naming this worker.
    pub bytes_sent: u64,
    /// Total bytes on `WireRecv` events naming this worker.
    pub bytes_recvd: u64,
    /// `PullRequested` events from this worker.
    pub pulls: u64,
    /// `PullDeferred` events for this worker.
    pub deferred: u64,
}

impl WorkerBreakdown {
    /// Seconds between the worker's first and last buffered events.
    pub fn active_secs(&self) -> f64 {
        (self.last_ts - self.first_ts).max(0.0)
    }

    /// Active time minus barrier and wire time: compute plus anything the
    /// trace cannot attribute (server-side processing, queueing).
    pub fn compute_secs(&self) -> f64 {
        (self.active_secs() - self.barrier_secs - self.wire_secs).max(0.0)
    }
}

/// Synchronization health of one shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardHealth {
    /// Shard (server) id.
    pub shard: u32,
    /// Matched `PullDeferred`→`DprReleased` pairs.
    pub dpr_count: u64,
    /// Mean DPR residence time in seconds (0 when no pairs matched).
    pub dpr_residence_mean: f64,
    /// Longest DPR residence time in seconds.
    pub dpr_residence_max: f64,
    /// DPR residence times in microseconds (power-of-two buckets, so p50
    /// and p99 are upper bounds).
    pub dpr_residence_us: Histogram,
    /// `PullDeferred` events never matched by a `DprReleased` (still
    /// pending at snapshot, or the release was overwritten).
    pub outstanding_dprs: u64,
    /// `PushApplied` events on this shard.
    pub pushes: u64,
    /// `LatePushDropped` events on this shard.
    pub late_drops: u64,
    /// `VTrainAdvanced` events on this shard.
    pub v_train_advances: u64,
    /// Mean seconds between consecutive `VTrainAdvanced` events.
    pub advance_interval_mean: f64,
    /// Highest `v_train` seen on this shard's events.
    pub final_v_train: u64,
}

impl ShardHealth {
    /// Fraction of arriving pushes dropped as late:
    /// `late_drops / (pushes + late_drops)`.
    pub fn late_drop_rate(&self) -> f64 {
        let total = self.pushes + self.late_drops;
        if total == 0 {
            0.0
        } else {
            self.late_drops as f64 / total as f64
        }
    }
}

/// Pull outcomes at one staleness gap `k = progress - v_train`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GapStat {
    /// The gap `k` at pull time.
    pub gap: u64,
    /// `PullRequested` events arriving at this gap.
    pub pulls: u64,
    /// How many of those were deferred (became DPRs).
    pub deferred: u64,
}

impl GapStat {
    /// Pulls answered immediately at this gap.
    pub fn granted(&self) -> u64 {
        self.pulls - self.deferred
    }

    /// Empirical `Pr[blocked | gap=k]`: `deferred / pulls`.
    pub fn block_rate(&self) -> f64 {
        if self.pulls == 0 {
            0.0
        } else {
            self.deferred as f64 / self.pulls as f64
        }
    }
}

/// Worker progress dispersion at one moment: the Fig. 1 analogue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpreadPoint {
    /// Sample timestamp (seconds on the trace clock).
    pub ts: f64,
    /// Slowest worker's progress at `ts` (workers not yet seen count as 0).
    pub min_progress: u64,
    /// Fastest worker's progress at `ts`.
    pub max_progress: u64,
}

impl SpreadPoint {
    /// Iterations between the fastest and slowest worker.
    pub fn spread(&self) -> u64 {
        self.max_progress - self.min_progress
    }
}

/// One hop on the extracted critical path, walked backwards from the
/// longest DPR residence through the pull→defer→release→push chain.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// What happened ("dpr wait", "push", "barrier wait", ...).
    pub what: &'static str,
    /// Shard involved, or [`NO_ID`].
    pub shard: u32,
    /// Worker involved, or [`NO_ID`].
    pub worker: u32,
    /// When the step started (seconds on the trace clock).
    pub ts: f64,
    /// Seconds attributed to the step (0 for instantaneous hops).
    pub secs: f64,
}

/// Everything [`analyze`] derives from one trace.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// Per-kind totals as recorded, surviving ring overwrites
    /// (from [`Trace::counts`]).
    pub recorded: [u64; KINDS],
    /// Per-kind totals over the buffered events actually analyzed.
    pub analyzed: [u64; KINDS],
    /// Events lost to ring overwriting before the snapshot.
    pub dropped: u64,
    /// First and last buffered timestamps (0,0 when the trace is empty).
    pub span: (f64, f64),
    /// Per-worker time breakdown, sorted by worker id.
    pub workers: Vec<WorkerBreakdown>,
    /// Per-shard sync health, sorted by shard id.
    pub shards: Vec<ShardHealth>,
    /// Pull outcomes per staleness gap, sorted by gap: the staleness
    /// histogram at pull time *and* the empirical block-rate curve.
    pub gaps: Vec<GapStat>,
    /// Progress spread over time ([`SPREAD_POINTS`] samples across the
    /// span; empty when no worker progress was observed).
    pub spread: Vec<SpreadPoint>,
    /// Critical path through the longest pull→defer→release→push chain,
    /// in causal order (earliest cause first, the longest DPR wait last).
    pub critical_path: Vec<PathStep>,
    /// Ground-truth audit of the FIFO wire matcher against exact causal
    /// request ids, when the trace carries them (`None` on traces recorded
    /// before context propagation, or with tracing contexts disabled).
    pub wire_check: Option<WireCheck>,
}

/// Cross-check of the heuristic FIFO `WireSend`→`WireRecv` matcher against
/// the exact causal ids the transport stamps on wire events.
///
/// The per-worker wire-time attribution in [`WorkerBreakdown`] predates
/// causal context: it pairs each receive with the *oldest* unmatched send
/// on the same `(shard, worker)` queue. With request ids on both ends the
/// pairing can be audited exactly: on a chaos-free run FIFO order *is*
/// transit order and every pair must agree; under reorder chaos the
/// mismatch rate quantifies how much wire time the heuristic misattributes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireCheck {
    /// Receive events FIFO-paired with a send where both carried an id.
    pub checked: u64,
    /// Pairs where the FIFO match and the exact `(request_id, attempt)`
    /// disagree — the heuristic attributed one request's transit to another.
    pub mismatches: u64,
    /// Receives with no unmatched send on their queue (the send was lost
    /// to ring overwrite, or the frame was a fault-injected duplicate).
    pub unmatched_recvs: u64,
}

impl WireCheck {
    /// Fraction of audited pairs the FIFO heuristic got wrong (0 when
    /// nothing was audited).
    pub fn mismatch_rate(&self) -> f64 {
        if self.checked == 0 {
            0.0
        } else {
            self.mismatches as f64 / self.checked as f64
        }
    }
}

impl Analysis {
    /// Total events of `kind` ever recorded (robust to ring overflow).
    pub fn count(&self, kind: EventKind) -> u64 {
        self.recorded[kind.index()]
    }

    /// Largest gap at which at least one pull was *granted* — the
    /// staleness actually served to a worker. Under SSP with bound `s`
    /// this never exceeds `s - 1`.
    pub fn max_granted_staleness(&self) -> Option<u64> {
        self.gaps
            .iter()
            .filter(|g| g.granted() > 0)
            .map(|g| g.gap)
            .max()
    }

    /// The straggler: the worker with the fewest observed iterations
    /// (ties broken by later last activity).
    pub fn straggler(&self) -> Option<&WorkerBreakdown> {
        self.workers.iter().min_by(|a, b| {
            a.iterations.cmp(&b.iterations).then(
                b.last_ts
                    .partial_cmp(&a.last_ts)
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
        })
    }

    /// Total seconds attributed to the extracted critical path.
    pub fn critical_path_secs(&self) -> f64 {
        self.critical_path.iter().map(|s| s.secs).sum()
    }
}

/// Key identifying one logical pull: shards answer at most one pull per
/// `(shard, worker, progress)` triple, so defer/release pairs and
/// granted/blocked outcomes all match on it.
type PullKey = (u32, u32, u64);

/// Run every derivation over `trace` and return the combined [`Analysis`].
///
/// Wire time is attributed by FIFO-matching each `WireRecv` to the oldest
/// unmatched `WireSend` with the same `(shard, worker)` pair; both engines
/// and the simulator record sends before the matching receive, so the pair
/// order is the transit order.
pub fn analyze(trace: &Trace) -> Analysis {
    let mut analysis = Analysis {
        recorded: trace.counts,
        dropped: trace.dropped,
        ..Analysis::default()
    };
    if let (Some(first), Some(last)) = (trace.events.first(), trace.events.last()) {
        analysis.span = (first.ts, last.ts + last.dur.max(0.0));
    }
    for ev in &trace.events {
        analysis.analyzed[ev.kind.index()] += 1;
    }
    let deferred_keys = collect_deferred_keys(trace);
    analysis.workers = worker_breakdowns(trace);
    analysis.shards = shard_healths(trace);
    analysis.gaps = gap_stats(trace, &deferred_keys);
    analysis.spread = progress_spread(trace);
    analysis.critical_path = critical_path(trace);
    analysis.wire_check = wire_check(trace);
    analysis
}

/// Audit the FIFO wire matcher against exact causal ids: replay the exact
/// matching [`worker_breakdowns`] performs (same event scope, same
/// per-`(shard, worker)` FIFO queues) while carrying each send's
/// `(request_id, attempt)` through the queue, and compare it with the id
/// stamped on the receive that popped it. Returns `None` when no wire
/// event carries a request id (context propagation off or absent).
fn wire_check(trace: &Trace) -> Option<WireCheck> {
    let mut stamped_wire = false;
    let mut check = WireCheck::default();
    let mut in_flight: HashMap<(u32, u32), std::collections::VecDeque<(u64, u32)>> = HashMap::new();
    for ev in &trace.events {
        if ev.worker == NO_ID {
            continue;
        }
        match ev.kind {
            EventKind::WireSend => {
                stamped_wire |= ev.request_id != 0;
                in_flight
                    .entry((ev.shard, ev.worker))
                    .or_default()
                    .push_back((ev.request_id, ev.attempt));
            }
            EventKind::WireRecv => {
                stamped_wire |= ev.request_id != 0;
                match in_flight
                    .get_mut(&(ev.shard, ev.worker))
                    .and_then(|q| q.pop_front())
                {
                    Some((rid, attempt)) => {
                        if rid != 0 && ev.request_id != 0 {
                            check.checked += 1;
                            if (rid, attempt) != (ev.request_id, ev.attempt) {
                                check.mismatches += 1;
                            }
                        }
                    }
                    None => check.unmatched_recvs += 1,
                }
            }
            _ => {}
        }
    }
    stamped_wire.then_some(check)
}

/// Every `(shard, worker, progress)` that was deferred.
fn collect_deferred_keys(trace: &Trace) -> HashMap<PullKey, u64> {
    let mut keys: HashMap<PullKey, u64> = HashMap::new();
    for ev in &trace.events {
        if ev.kind == EventKind::PullDeferred {
            *keys.entry((ev.shard, ev.worker, ev.progress)).or_insert(0) += 1;
        }
    }
    keys
}

fn worker_breakdowns(trace: &Trace) -> Vec<WorkerBreakdown> {
    let mut workers: BTreeMap<u32, WorkerBreakdown> = BTreeMap::new();
    // FIFO queues of unmatched WireSend timestamps per (shard, worker).
    let mut in_flight: HashMap<(u32, u32), std::collections::VecDeque<f64>> = HashMap::new();
    for ev in &trace.events {
        if ev.worker == NO_ID {
            continue;
        }
        let w = workers.entry(ev.worker).or_insert(WorkerBreakdown {
            worker: ev.worker,
            iterations: 0,
            first_ts: ev.ts,
            last_ts: ev.ts,
            barrier_secs: 0.0,
            barrier_count: 0,
            wire_secs: 0.0,
            bytes_sent: 0,
            bytes_recvd: 0,
            pulls: 0,
            deferred: 0,
        });
        w.first_ts = w.first_ts.min(ev.ts);
        w.last_ts = w.last_ts.max(ev.ts + ev.dur);
        w.iterations = w.iterations.max(ev.progress + 1);
        match ev.kind {
            EventKind::BarrierWait => {
                w.barrier_secs += ev.dur;
                w.barrier_count += 1;
            }
            EventKind::WireSend => {
                w.bytes_sent += ev.bytes;
                in_flight
                    .entry((ev.shard, ev.worker))
                    .or_default()
                    .push_back(ev.ts);
            }
            EventKind::WireRecv => {
                w.bytes_recvd += ev.bytes;
                if let Some(queue) = in_flight.get_mut(&(ev.shard, ev.worker)) {
                    if let Some(sent) = queue.pop_front() {
                        w.wire_secs += (ev.ts - sent).max(0.0);
                    }
                }
            }
            EventKind::PullRequested => w.pulls += 1,
            EventKind::PullDeferred => w.deferred += 1,
            _ => {}
        }
    }
    workers.into_values().collect()
}

fn shard_healths(trace: &Trace) -> Vec<ShardHealth> {
    let mut shards: BTreeMap<u32, ShardHealth> = BTreeMap::new();
    let mut pending: HashMap<PullKey, f64> = HashMap::new();
    let mut last_advance: HashMap<u32, f64> = HashMap::new();
    let mut advance_gaps: HashMap<u32, (f64, u64)> = HashMap::new();
    for ev in &trace.events {
        if ev.shard == NO_ID {
            continue;
        }
        let sh = shards.entry(ev.shard).or_insert(ShardHealth {
            shard: ev.shard,
            dpr_count: 0,
            dpr_residence_mean: 0.0,
            dpr_residence_max: 0.0,
            dpr_residence_us: Histogram::new(),
            outstanding_dprs: 0,
            pushes: 0,
            late_drops: 0,
            v_train_advances: 0,
            advance_interval_mean: 0.0,
            final_v_train: 0,
        });
        sh.final_v_train = sh.final_v_train.max(ev.v_train);
        match ev.kind {
            EventKind::PullDeferred => {
                pending.insert((ev.shard, ev.worker, ev.progress), ev.ts);
            }
            EventKind::DprReleased => {
                if let Some(deferred_at) = pending.remove(&(ev.shard, ev.worker, ev.progress)) {
                    let residence = (ev.ts - deferred_at).max(0.0);
                    // Running mean: mean += (x - mean) / n.
                    sh.dpr_count += 1;
                    sh.dpr_residence_mean +=
                        (residence - sh.dpr_residence_mean) / sh.dpr_count as f64;
                    sh.dpr_residence_max = sh.dpr_residence_max.max(residence);
                    sh.dpr_residence_us.record((residence * 1e6) as u64);
                }
            }
            EventKind::PushApplied => sh.pushes += 1,
            EventKind::LatePushDropped => sh.late_drops += 1,
            EventKind::VTrainAdvanced => {
                sh.v_train_advances += 1;
                if let Some(prev) = last_advance.insert(ev.shard, ev.ts) {
                    let (sum, n) = advance_gaps.entry(ev.shard).or_insert((0.0, 0));
                    *sum += (ev.ts - prev).max(0.0);
                    *n += 1;
                }
            }
            _ => {}
        }
    }
    for ((shard, _, _), _) in pending {
        if let Some(sh) = shards.get_mut(&shard) {
            sh.outstanding_dprs += 1;
        }
    }
    for (shard, (sum, n)) in advance_gaps {
        if let Some(sh) = shards.get_mut(&shard) {
            if n > 0 {
                sh.advance_interval_mean = sum / n as f64;
            }
        }
    }
    shards.into_values().collect()
}

fn gap_stats(trace: &Trace, deferred_keys: &HashMap<PullKey, u64>) -> Vec<GapStat> {
    let mut per_gap: BTreeMap<u64, GapStat> = BTreeMap::new();
    let mut blocked_left: HashMap<PullKey, u64> = deferred_keys.clone();
    for ev in &trace.events {
        if ev.kind != EventKind::PullRequested {
            continue;
        }
        let gap = ev.progress.saturating_sub(ev.v_train);
        let stat = per_gap.entry(gap).or_insert(GapStat {
            gap,
            pulls: 0,
            deferred: 0,
        });
        stat.pulls += 1;
        // A request whose (shard, worker, progress) was deferred counts as
        // blocked at this gap; consume one deferral so retried progress
        // values (which cannot happen today, but cost nothing to handle)
        // stay balanced.
        if let Some(n) = blocked_left.get_mut(&(ev.shard, ev.worker, ev.progress)) {
            if *n > 0 {
                *n -= 1;
                stat.deferred += 1;
            }
        }
    }
    per_gap.into_values().collect()
}

fn progress_spread(trace: &Trace) -> Vec<SpreadPoint> {
    let mut worker_ids: Vec<u32> = Vec::new();
    for ev in &trace.events {
        if ev.worker != NO_ID && !worker_ids.contains(&ev.worker) {
            worker_ids.push(ev.worker);
        }
    }
    if worker_ids.is_empty() || trace.events.is_empty() {
        return Vec::new();
    }
    let (start, end) = (
        trace.events.first().expect("nonempty").ts,
        trace.events.last().expect("nonempty").ts,
    );
    if end <= start {
        return Vec::new();
    }
    let step = (end - start) / SPREAD_POINTS as f64;
    let mut progress: HashMap<u32, u64> = HashMap::new();
    let mut points = Vec::with_capacity(SPREAD_POINTS);
    let mut next_sample = start + step;
    let mut iter = trace.events.iter().peekable();
    for _ in 0..SPREAD_POINTS {
        while let Some(ev) = iter.peek() {
            if ev.ts > next_sample {
                break;
            }
            let ev = iter.next().expect("peeked");
            if ev.worker != NO_ID {
                let p = progress.entry(ev.worker).or_insert(0);
                *p = (*p).max(ev.progress);
            }
        }
        let min = worker_ids
            .iter()
            .map(|w| progress.get(w).copied().unwrap_or(0))
            .min()
            .unwrap_or(0);
        let max = worker_ids
            .iter()
            .map(|w| progress.get(w).copied().unwrap_or(0))
            .max()
            .unwrap_or(0);
        points.push(SpreadPoint {
            ts: next_sample,
            min_progress: min,
            max_progress: max,
        });
        next_sample += step;
    }
    points
}

/// Walk backwards from the longest-residence DPR: the release was caused by
/// a push on the same shard, that push came from a worker whose own latest
/// wait (a released DPR or a barrier) preceded it, and so on.
fn critical_path(trace: &Trace) -> Vec<PathStep> {
    // All matched (defer, release) pairs, indexed for the backward walk.
    let mut pending: HashMap<PullKey, &TraceEvent> = HashMap::new();
    let mut pairs: Vec<(&TraceEvent, &TraceEvent)> = Vec::new();
    for ev in &trace.events {
        match ev.kind {
            EventKind::PullDeferred => {
                pending.insert((ev.shard, ev.worker, ev.progress), ev);
            }
            EventKind::DprReleased => {
                if let Some(defer) = pending.remove(&(ev.shard, ev.worker, ev.progress)) {
                    pairs.push((defer, ev));
                }
            }
            _ => {}
        }
    }
    let longest = pairs
        .iter()
        .max_by(|a, b| {
            let ra = a.1.ts - a.0.ts;
            let rb = b.1.ts - b.0.ts;
            ra.partial_cmp(&rb).unwrap_or(std::cmp::Ordering::Equal)
        })
        .copied();
    let Some((defer, release)) = longest else {
        return Vec::new();
    };
    let mut steps = vec![PathStep {
        what: "dpr wait",
        shard: defer.shard,
        worker: defer.worker,
        ts: defer.ts,
        secs: (release.ts - defer.ts).max(0.0),
    }];
    let mut horizon = release.ts;
    let mut shard = release.shard;
    for _ in 0..MAX_PATH_STEPS {
        // The push that (last) advanced V_train on `shard` before the wait
        // ended — the event that let the release happen.
        let Some(push) = trace.events.iter().rev().find(|e| {
            e.kind == EventKind::PushApplied
                && e.shard == shard
                && e.ts <= horizon
                && e.ts > steps.last().expect("nonempty").ts
        }) else {
            break;
        };
        steps.push(PathStep {
            what: "push",
            shard: push.shard,
            worker: push.worker,
            ts: push.ts,
            secs: 0.0,
        });
        // What was the pushing worker itself waiting on before that?
        let Some(wait) = trace.events.iter().rev().find(|e| {
            e.worker == push.worker
                && e.ts < push.ts
                && matches!(e.kind, EventKind::DprReleased | EventKind::BarrierWait)
        }) else {
            break;
        };
        match wait.kind {
            EventKind::BarrierWait => {
                steps.push(PathStep {
                    what: "barrier wait",
                    shard: wait.shard,
                    worker: wait.worker,
                    ts: wait.ts,
                    secs: wait.dur,
                });
                break;
            }
            _ => {
                // A released DPR: attribute its residence and keep walking
                // through the shard that released it.
                let residence = pairs
                    .iter()
                    .find(|(_, r)| r.seq == wait.seq)
                    .map(|(d, r)| (r.ts - d.ts).max(0.0))
                    .unwrap_or(0.0);
                steps.push(PathStep {
                    what: "dpr wait",
                    shard: wait.shard,
                    worker: wait.worker,
                    ts: wait.ts - residence,
                    secs: residence,
                });
                shard = wait.shard;
                horizon = wait.ts;
            }
        }
    }
    steps.reverse();
    steps
}

/// Parse the flat JSONL format written by [`crate::export::jsonl`] back
/// into a [`Trace`]. Per-kind counts are rebuilt from the parsed events
/// (`dropped` information does not survive export).
pub fn parse_jsonl(text: &str) -> Result<Trace, String> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        json::validate(line).map_err(|e| format!("line {}: invalid JSON: {e}", i + 1))?;
        events.push(parse_event(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    let mut counts = [0u64; KINDS];
    for ev in &events {
        counts[ev.kind.index()] += 1;
    }
    Ok(Trace {
        events,
        counts,
        dropped: 0,
    })
}

/// Parse one exported event object. The exporter writes flat objects with
/// unquoted numeric values and a single quoted string (`kind`), so
/// splitting on top-level commas is exact for this format.
fn parse_event(line: &str) -> Result<TraceEvent, String> {
    let inner = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or("expected a JSON object")?;
    let mut ev = TraceEvent {
        shard: NO_ID,
        worker: NO_ID,
        ..Default::default()
    };
    let mut saw_kind = false;
    for field in inner.split(',') {
        let (key, value) = field.split_once(':').ok_or("expected key:value")?;
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        match key {
            "ts" => ev.ts = parse_f64(value)?,
            "dur" => ev.dur = parse_f64(value)?,
            "kind" => {
                let name = value.trim_matches('"');
                ev.kind = EventKind::ALL
                    .iter()
                    .copied()
                    .find(|k| k.name() == name)
                    .ok_or_else(|| format!("unknown event kind {name:?}"))?;
                saw_kind = true;
            }
            "shard" => ev.shard = parse_id(value)?,
            "worker" => ev.worker = parse_id(value)?,
            "progress" => ev.progress = parse_u64(value)?,
            "v_train" => ev.v_train = parse_u64(value)?,
            "bytes" => ev.bytes = parse_u64(value)?,
            "seq" => ev.seq = parse_u64(value)?,
            "request_id" => ev.request_id = parse_u64(value)?,
            "attempt" => ev.attempt = parse_u64(value)? as u32,
            "parent_span" => ev.parent_span = parse_id(value)?,
            other => return Err(format!("unknown field {other:?}")),
        }
    }
    if !saw_kind {
        return Err("missing \"kind\" field".to_string());
    }
    Ok(ev)
}

fn parse_f64(s: &str) -> Result<f64, String> {
    s.parse().map_err(|_| format!("bad number {s:?}"))
}

fn parse_u64(s: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("bad integer {s:?}"))
}

/// Ids export as `-1` for [`NO_ID`].
fn parse_id(s: &str) -> Result<u32, String> {
    if s == "-1" {
        Ok(NO_ID)
    } else {
        s.parse().map_err(|_| format!("bad id {s:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{ClockSource, VirtualClock};
    use crate::export;
    use crate::tracer::{RecordArgs, TraceCollector};
    use std::sync::Arc;

    fn at(shard: u32, worker: u32, progress: u64, v_train: u64) -> RecordArgs {
        RecordArgs::new()
            .shard(shard)
            .worker(worker)
            .progress(progress)
            .v_train(v_train)
    }

    /// Two workers on one shard: worker 1 pulls at gap 2 and is deferred
    /// for 1s; worker 0's push advances V_train and releases it.
    fn sample() -> Trace {
        let clock = VirtualClock::new();
        let col = TraceCollector::new(ClockSource::virtual_clock(Arc::clone(&clock)), 256);
        let t = col.tracer();
        clock.set(1.0);
        t.record(EventKind::WireSend, at(0, 1, 2, 0).bytes(58));
        clock.set(1.1);
        t.record(EventKind::WireRecv, at(0, 1, 2, 0).bytes(58));
        t.record(EventKind::PullRequested, at(0, 1, 2, 0).bytes(58));
        t.record(EventKind::PullDeferred, at(0, 1, 2, 0));
        clock.set(1.5);
        t.record(EventKind::PullRequested, at(0, 0, 0, 0).bytes(58));
        clock.set(2.0);
        t.record(EventKind::PushApplied, at(0, 0, 0, 0).bytes(512));
        clock.set(2.1);
        t.record(
            EventKind::VTrainAdvanced,
            RecordArgs::new().shard(0).v_train(1),
        );
        t.record(EventKind::DprReleased, at(0, 1, 2, 1));
        clock.set(2.2);
        let start = t.now();
        clock.set(2.5);
        t.record_span(
            EventKind::BarrierWait,
            start,
            RecordArgs::new().worker(1).progress(2).v_train(1),
        );
        clock.set(3.0);
        t.record(EventKind::LatePushDropped, at(0, 0, 0, 1).bytes(64));
        col.snapshot()
    }

    #[test]
    fn per_worker_breakdown_accounts_time() {
        let a = analyze(&sample());
        assert_eq!(a.workers.len(), 2);
        let w1 = &a.workers[1];
        assert_eq!(w1.worker, 1);
        assert_eq!(w1.pulls, 1);
        assert_eq!(w1.deferred, 1);
        assert_eq!(w1.barrier_count, 1);
        assert!((w1.barrier_secs - 0.3).abs() < 1e-9);
        assert!(
            (w1.wire_secs - 0.1).abs() < 1e-9,
            "send at 1.0, recv at 1.1"
        );
        assert_eq!(w1.bytes_sent, 58);
        assert!(w1.compute_secs() <= w1.active_secs());
    }

    #[test]
    fn shard_health_tracks_dpr_residence_and_drops() {
        let a = analyze(&sample());
        assert_eq!(a.shards.len(), 1);
        let sh = &a.shards[0];
        assert_eq!(sh.dpr_count, 1);
        assert!(
            (sh.dpr_residence_mean - 1.0).abs() < 1e-9,
            "deferred 1.1→2.1"
        );
        assert_eq!(sh.outstanding_dprs, 0);
        assert_eq!(sh.pushes, 1);
        assert_eq!(sh.late_drops, 1);
        assert!((sh.late_drop_rate() - 0.5).abs() < 1e-9);
        assert_eq!(sh.v_train_advances, 1);
        assert_eq!(sh.final_v_train, 1);
    }

    #[test]
    fn gap_stats_split_blocked_from_granted() {
        let a = analyze(&sample());
        assert_eq!(a.gaps.len(), 2);
        assert_eq!(
            (a.gaps[0].gap, a.gaps[0].pulls, a.gaps[0].deferred),
            (0, 1, 0)
        );
        assert_eq!(
            (a.gaps[1].gap, a.gaps[1].pulls, a.gaps[1].deferred),
            (2, 1, 1)
        );
        assert!((a.gaps[1].block_rate() - 1.0).abs() < 1e-9);
        assert_eq!(a.max_granted_staleness(), Some(0));
    }

    #[test]
    fn critical_path_walks_release_back_to_push() {
        let a = analyze(&sample());
        assert!(!a.critical_path.is_empty());
        let last = a.critical_path.last().expect("nonempty");
        assert_eq!(last.what, "dpr wait");
        assert_eq!(last.worker, 1);
        assert!((a.critical_path_secs() - 1.0).abs() < 1e-9);
        // Causal order: the push that triggered the release comes first.
        assert_eq!(a.critical_path[0].what, "push");
        assert_eq!(a.critical_path[0].worker, 0);
    }

    #[test]
    fn spread_tracks_min_and_max_progress() {
        let a = analyze(&sample());
        assert!(!a.spread.is_empty());
        let last = a.spread.last().expect("nonempty");
        assert!(last.max_progress >= 2);
        assert!(
            last.spread() >= 1,
            "worker 0 stays at 0, worker 1 reaches 2"
        );
    }

    #[test]
    fn jsonl_round_trip_preserves_analysis() {
        let trace = sample();
        let parsed = parse_jsonl(&export::jsonl(&trace)).expect("parses");
        assert_eq!(parsed.events.len(), trace.events.len());
        assert_eq!(parsed.counts, trace.counts);
        let (a, b) = (analyze(&trace), analyze(&parsed));
        assert_eq!(a.workers, b.workers);
        assert_eq!(a.shards, b.shards);
        assert_eq!(a.gaps, b.gaps);
        assert_eq!(a.critical_path, b.critical_path);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_jsonl("not json").is_err());
        assert!(parse_jsonl("{\"ts\":0}").is_err(), "missing kind");
        assert!(parse_jsonl("{\"kind\":\"no_such_kind\"}").is_err());
    }

    #[test]
    fn analyzed_counts_match_buffered_events() {
        let col = TraceCollector::wall(4);
        let t = col.tracer();
        for i in 0..50 {
            t.record(EventKind::WireSend, RecordArgs::new().worker(0).progress(i));
        }
        let trace = col.snapshot();
        let a = analyze(&trace);
        assert_eq!(a.recorded[EventKind::WireSend.index()], 50);
        assert_eq!(a.analyzed[EventKind::WireSend.index()], 4);
        assert_eq!(a.dropped, 46);
    }

    /// A stamped wire pair on one `(shard, worker)` queue.
    fn wire_pair(t: &crate::tracer::Tracer, clock: &VirtualClock, base: f64, rid: u64) {
        clock.set(base);
        t.record(
            EventKind::WireSend,
            at(0, 0, 0, 0).bytes(58).request_id(rid),
        );
        clock.set(base + 0.01);
        t.record(
            EventKind::WireRecv,
            at(0, 0, 0, 0).bytes(58).request_id(rid),
        );
    }

    #[test]
    fn wire_check_is_absent_without_causal_context() {
        assert_eq!(analyze(&sample()).wire_check, None);
    }

    #[test]
    fn wire_check_confirms_fifo_on_ordered_streams() {
        let clock = VirtualClock::new();
        let col = TraceCollector::new(ClockSource::virtual_clock(Arc::clone(&clock)), 256);
        let t = col.tracer();
        for i in 0..5u64 {
            wire_pair(&t, &clock, 1.0 + i as f64, 100 + i);
        }
        let check = analyze(&col.snapshot()).wire_check.expect("ids present");
        assert_eq!(check.checked, 5);
        assert_eq!(check.mismatches, 0);
        assert_eq!(check.unmatched_recvs, 0);
        assert_eq!(check.mismatch_rate(), 0.0);
    }

    #[test]
    fn wire_check_counts_reorder_mismatches_without_panicking() {
        let clock = VirtualClock::new();
        let col = TraceCollector::new(ClockSource::virtual_clock(Arc::clone(&clock)), 256);
        let t = col.tracer();
        // Two sends, replies arrive swapped: FIFO pairs each recv with the
        // wrong send, so both audited pairs mismatch.
        clock.set(1.0);
        t.record(EventKind::WireSend, at(0, 0, 0, 0).bytes(58).request_id(7));
        clock.set(1.1);
        t.record(EventKind::WireSend, at(0, 0, 1, 0).bytes(58).request_id(8));
        clock.set(1.2);
        t.record(EventKind::WireRecv, at(0, 0, 1, 0).bytes(58).request_id(8));
        clock.set(1.3);
        t.record(EventKind::WireRecv, at(0, 0, 0, 0).bytes(58).request_id(7));
        // A duplicate delivery pops an empty queue.
        clock.set(1.4);
        t.record(EventKind::WireRecv, at(0, 0, 0, 0).bytes(58).request_id(7));
        let check = analyze(&col.snapshot()).wire_check.expect("ids present");
        assert_eq!(check.checked, 2);
        assert_eq!(check.mismatches, 2);
        assert_eq!(check.unmatched_recvs, 1);
        assert!((check.mismatch_rate() - 1.0).abs() < 1e-9);
    }
}
