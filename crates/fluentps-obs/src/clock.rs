//! Clock sources for trace timestamps.
//!
//! A trace carries timestamps in *seconds since the trace epoch* as `f64`.
//! The threaded and TCP engines stamp events with the wall clock (an
//! [`std::time::Instant`] captured when the collector was created); the
//! discrete-event simulator stamps them with a [`VirtualClock`] that its
//! event queue advances. The two are interchangeable behind
//! [`ClockSource`], so the instrumented code in `fluentps-core` never knows
//! which world it runs in — the same property the pure `ServerShard` state
//! machine has.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotone simulated clock: an `f64` seconds value stored as bits in an
/// atomic so simulator and instrumented code can share it without locking.
#[derive(Debug, Default)]
pub struct VirtualClock(AtomicU64);

impl VirtualClock {
    /// A clock at time 0.
    pub fn new() -> Arc<Self> {
        Arc::new(VirtualClock(AtomicU64::new(0f64.to_bits())))
    }

    /// Advance the clock to `now` (simulated seconds). Virtual time never
    /// rewinds: setting an earlier time is ignored.
    pub fn set(&self, now: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        while now > f64::from_bits(cur) {
            match self.0.compare_exchange_weak(
                cur,
                now.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current simulated time in seconds.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Where a [`crate::Tracer`] reads its timestamps from.
#[derive(Debug, Clone)]
pub enum ClockSource {
    /// Wall clock, relative to the epoch captured at collector creation.
    Wall {
        /// Time zero of the trace.
        epoch: Instant,
    },
    /// The simulator's virtual clock (already relative to simulated zero).
    Virtual(Arc<VirtualClock>),
}

impl ClockSource {
    /// A wall clock whose epoch is *now*.
    pub fn wall() -> Self {
        ClockSource::Wall {
            epoch: Instant::now(),
        }
    }

    /// A virtual clock source sharing `clock` with the simulator.
    pub fn virtual_clock(clock: Arc<VirtualClock>) -> Self {
        ClockSource::Virtual(clock)
    }

    /// Seconds since the trace epoch.
    pub fn now(&self) -> f64 {
        match self {
            ClockSource::Wall { epoch } => epoch.elapsed().as_secs_f64(),
            ClockSource::Virtual(c) => c.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_advances_and_never_rewinds() {
        let c = VirtualClock::new();
        assert_eq!(c.get(), 0.0);
        c.set(2.5);
        assert_eq!(c.get(), 2.5);
        c.set(1.0); // ignored: time is monotone
        assert_eq!(c.get(), 2.5);
        c.set(3.0);
        assert_eq!(c.get(), 3.0);
    }

    #[test]
    fn wall_clock_is_monotone_from_epoch() {
        let src = ClockSource::wall();
        let a = src.now();
        let b = src.now();
        assert!(a >= 0.0);
        assert!(b >= a);
    }

    #[test]
    fn virtual_source_reads_shared_clock() {
        let clock = VirtualClock::new();
        let src = ClockSource::virtual_clock(Arc::clone(&clock));
        clock.set(42.0);
        assert_eq!(src.now(), 42.0);
    }
}
