//! Cluster-wide trace collection: clock alignment and stream merging.
//!
//! A live TCP cluster records into one [`crate::TraceCollector`] *per OS
//! process*, each on its own wall-clock epoch. This module is the pure core
//! that turns those N per-node streams into one causally-consistent
//! timeline:
//!
//! * [`OffsetEstimator`] — NTP-style offset estimation from ping/pong
//!   samples. The estimate from the minimum-RTT sample wins, because its
//!   midpoint assumption (symmetric paths) has the least room to be wrong:
//!   the error is bounded by half that RTT's asymmetry.
//! * [`Hlc`] — a hybrid logical clock layered over the aligned physical
//!   timestamps. Offset estimation cannot make two clocks agree perfectly,
//!   so after alignment a node's stream may still contain ties or small
//!   rewinds; the HLC bumps a logical component to keep every stream
//!   strictly monotone without disturbing healthy physical timestamps.
//! * [`ClusterCollector`] — ingests per-node batches (in per-node order —
//!   the transport is FIFO per connection), applies the sender's offset and
//!   the per-node HLC at ingest time, and merges everything into a single
//!   [`Trace`] that the existing [`crate::analyze`] pass and exporters
//!   consume unchanged.
//!
//! The merge is order-insensitive across nodes: ingesting the same per-node
//! batches under any interleaving yields the same snapshot, because
//! alignment state is per-node and the merge sorts by the documented
//! tie-break `(aligned ts, node name, source seq)` before re-keying `seq`
//! to a cluster-unique global order.
//!
//! Accounting invariant: for every node, `received + dropped == emitted`.
//! Senders report cumulative `emitted`/`dropped` in every batch header, so
//! the collector can verify the balance at any poll; [`NodeStats`] exposes
//! it and `repro collect` prints it.

use std::collections::BTreeMap;

use crate::event::{TraceEvent, KINDS};
use crate::stream::HealthEngine;
use crate::tracer::Trace;

/// Smallest logical-clock increment, in seconds. Far below the microsecond
/// resolution anything in this system measures, but large enough that
/// adding it to any timestamp a run produces yields a distinct f64.
const HLC_TICK: f64 = 1e-9;

/// NTP-style clock-offset estimator.
///
/// For each probe the emitter records its local send time `t_send`, the
/// collector's processing time `t_collector` (echoed in the pong) and its
/// local receive time `t_recv`. Assuming the outbound and return paths are
/// symmetric, the collector clock read `t_collector` corresponds to the
/// local midpoint `(t_send + t_recv) / 2`, so the offset to *add to local
/// timestamps* to land on the collector timeline is
/// `t_collector - (t_send + t_recv) / 2`. The sample with the smallest
/// round-trip time is kept: its estimate's error is bounded by half of the
/// RTT asymmetry, which shrinks with the RTT itself.
#[derive(Debug, Clone, Default)]
pub struct OffsetEstimator {
    /// `(rtt, offset)` of the best (minimum-RTT) sample so far.
    best: Option<(f64, f64)>,
    samples: usize,
}

impl OffsetEstimator {
    /// An estimator with no samples (offset 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one ping/pong sample. Samples with non-positive RTT (clock
    /// glitches) are ignored.
    pub fn add_sample(&mut self, t_send: f64, t_collector: f64, t_recv: f64) {
        let rtt = t_recv - t_send;
        if !rtt.is_finite() || rtt < 0.0 {
            return;
        }
        self.samples += 1;
        let offset = t_collector - (t_send + t_recv) / 2.0;
        if self.best.is_none_or(|(best_rtt, _)| rtt < best_rtt) {
            self.best = Some((rtt, offset));
        }
    }

    /// The current offset estimate in seconds (add to a local timestamp to
    /// map it onto the collector clock). Zero until a sample arrives.
    pub fn offset(&self) -> f64 {
        self.best.map_or(0.0, |(_, offset)| offset)
    }

    /// RTT of the winning sample, if any.
    pub fn rtt(&self) -> Option<f64> {
        self.best.map(|(rtt, _)| rtt)
    }

    /// Number of accepted samples.
    pub fn samples(&self) -> usize {
        self.samples
    }
}

/// A hybrid logical clock over f64-second timestamps.
///
/// `observe(ts)` returns `ts` when it advances past everything seen so
/// far, otherwise the last stamp plus one logical tick — so the returned
/// stamps are strictly monotone per clock while staying glued to physical
/// time whenever physical time behaves.
#[derive(Debug, Clone, Default)]
pub struct Hlc {
    last: Option<f64>,
    bumps: u64,
}

impl Hlc {
    /// A fresh clock; the first observation passes through unchanged.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stamp one observed timestamp.
    pub fn observe(&mut self, ts: f64) -> f64 {
        let stamp = match self.last {
            Some(last) if !(ts > last) => {
                self.bumps += 1;
                Self::successor(last)
            }
            _ if ts.is_finite() => ts,
            _ => {
                // Defensive: a non-finite timestamp never enters the
                // timeline; use the previous stamp's successor instead.
                self.bumps += 1;
                Self::successor(self.last.unwrap_or(0.0))
            }
        };
        self.last = Some(stamp);
        stamp
    }

    /// The next stamp strictly after `last`: one logical tick ahead, or —
    /// when `last` is so large in magnitude that the tick vanishes in
    /// rounding — the next representable f64.
    fn successor(last: f64) -> f64 {
        let next = last + HLC_TICK;
        if next > last {
            next
        } else {
            last.next_up()
        }
    }

    /// How many observations needed a logical bump (ties or rewinds).
    pub fn bumps(&self) -> u64 {
        self.bumps
    }
}

/// Per-node collection accounting, as exposed by
/// [`ClusterCollector::node_stats`].
#[derive(Debug, Clone, PartialEq)]
pub struct NodeStats {
    /// Stream name (the sender's `NodeId` rendering, e.g. `worker1`).
    pub node: String,
    /// Events the collector ingested from this node.
    pub received: u64,
    /// Cumulative events the node's tracer recorded (batch headers; summed
    /// across incarnations when the node restarted).
    pub emitted: u64,
    /// Cumulative events lost at the sender (ring overwrites before
    /// streaming plus send failures; summed across incarnations).
    pub dropped: u64,
    /// Events evicted collector-side because the per-node buffer was full.
    pub evicted: u64,
    /// Batches ingested.
    pub batches: u64,
    /// The sender's latest clock-offset estimate, in seconds.
    pub offset_secs: f64,
    /// Logical-clock bumps applied to this stream (ties/rewinds healed).
    pub hlc_bumps: u64,
    /// Stream incarnations observed (1 for a node that never restarted).
    pub incarnations: u64,
}

struct NodeStream {
    /// Aligned, HLC-stamped events; `seq` still carries the *source* seq.
    events: Vec<TraceEvent>,
    hlc: Hlc,
    received: u64,
    evicted: u64,
    batches: u64,
    offset_secs: f64,
    /// Cumulative header values of the current incarnation.
    cur_emitted: u64,
    cur_dropped: u64,
    last_batch_seq: u64,
    /// Folded totals of prior incarnations (a replacement node restarts its
    /// counters; the balance must still hold across the whole stream).
    base_emitted: u64,
    base_dropped: u64,
    incarnations: u64,
}

impl NodeStream {
    fn new() -> Self {
        NodeStream {
            events: Vec::new(),
            hlc: Hlc::new(),
            received: 0,
            evicted: 0,
            batches: 0,
            offset_secs: 0.0,
            cur_emitted: 0,
            cur_dropped: 0,
            last_batch_seq: 0,
            base_emitted: 0,
            base_dropped: 0,
            incarnations: 0,
        }
    }
}

/// Merges N per-node trace streams into one cluster-wide [`Trace`].
///
/// Not internally synchronized — the transport-level collector service
/// wraps it in a mutex and calls [`ClusterCollector::ingest`] from its
/// connection handlers.
pub struct ClusterCollector {
    nodes: BTreeMap<String, NodeStream>,
    counts: [u64; KINDS],
    /// Per-node event buffer cap; oldest events are evicted beyond it.
    capacity_per_node: usize,
    /// Live tap: every aligned event is forwarded here at ingest time.
    health: Option<HealthEngine>,
}

impl std::fmt::Debug for ClusterCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterCollector")
            .field("nodes", &self.nodes.len())
            .field("capacity_per_node", &self.capacity_per_node)
            .field("health", &self.health.is_some())
            .finish()
    }
}

impl ClusterCollector {
    /// A collector buffering at most `capacity_per_node` events per stream.
    pub fn new(capacity_per_node: usize) -> Self {
        ClusterCollector {
            nodes: BTreeMap::new(),
            counts: [0; KINDS],
            capacity_per_node: capacity_per_node.max(1),
            health: None,
        }
    }

    /// Stream every subsequently-ingested event (aligned onto the collector
    /// clock) into `engine`, and keep its collector drop totals current.
    /// Do not also tap the same engine off a local
    /// [`crate::TraceCollector`] cursor — events would double-count.
    pub fn attach_health(&mut self, engine: HealthEngine) {
        self.health = Some(engine);
    }

    /// Ingest one batch from `node`. Batches from a single node must arrive
    /// in send order (TCP gives this per connection); interleaving across
    /// nodes is arbitrary. `batch_seq` restarting (≤ the previous one)
    /// marks a new incarnation of the node — e.g. a replacement server
    /// taking over a dead one's name — whose accounting is folded into the
    /// stream totals.
    pub fn ingest(
        &mut self,
        node: &str,
        offset_secs: f64,
        batch_seq: u64,
        emitted: u64,
        dropped: u64,
        events: &[TraceEvent],
    ) {
        let stream = self
            .nodes
            .entry(node.to_string())
            .or_insert_with(NodeStream::new);
        if stream.incarnations == 0 || batch_seq <= stream.last_batch_seq {
            stream.base_emitted += stream.cur_emitted;
            stream.base_dropped += stream.cur_dropped;
            stream.cur_emitted = 0;
            stream.cur_dropped = 0;
            stream.incarnations += 1;
        }
        stream.last_batch_seq = batch_seq;
        stream.cur_emitted = stream.cur_emitted.max(emitted);
        stream.cur_dropped = stream.cur_dropped.max(dropped);
        stream.offset_secs = offset_secs;
        stream.batches += 1;
        stream.received += events.len() as u64;
        for ev in events {
            self.counts[ev.kind.index()] += 1;
            let mut aligned = *ev;
            aligned.ts = stream.hlc.observe(ev.ts + offset_secs);
            if let Some(h) = &self.health {
                h.observe(&aligned);
            }
            stream.events.push(aligned);
        }
        if stream.events.len() > self.capacity_per_node {
            let excess = stream.events.len() - self.capacity_per_node;
            stream.events.drain(..excess);
            stream.evicted += excess as u64;
        }
        if let Some(h) = &self.health {
            let (mut em, mut dr) = (0u64, 0u64);
            for s in self.nodes.values() {
                em += s.base_emitted + s.cur_emitted;
                dr += s.base_dropped + s.cur_dropped + s.evicted;
            }
            h.set_drop_totals(em, dr);
        }
    }

    /// Merge every stream into one trace on the collector timeline.
    ///
    /// Events sort by `(aligned ts, node name, source seq)` — the node name
    /// (not ingest order) breaks cross-node ties, which is what makes the
    /// merge independent of batch interleaving — and `seq` is then re-keyed
    /// to the cluster-unique global order, so downstream consumers
    /// ([`crate::analyze::analyze`], the exporters) see exactly the shape a
    /// single-process trace has.
    pub fn snapshot(&self) -> Trace {
        let mut tagged: Vec<(&str, TraceEvent)> = Vec::new();
        let mut dropped = 0;
        for (name, stream) in &self.nodes {
            dropped += stream.base_dropped + stream.cur_dropped + stream.evicted;
            for ev in &stream.events {
                tagged.push((name.as_str(), *ev));
            }
        }
        tagged.sort_by(|(an, a), (bn, b)| {
            a.ts.partial_cmp(&b.ts)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| an.cmp(bn))
                .then(a.seq.cmp(&b.seq))
        });
        let events = tagged
            .into_iter()
            .enumerate()
            .map(|(i, (_, mut ev))| {
                ev.seq = i as u64;
                ev
            })
            .collect();
        Trace {
            events,
            counts: self.counts,
            dropped,
        }
    }

    /// Per-node accounting, ordered by node name.
    pub fn node_stats(&self) -> Vec<NodeStats> {
        self.nodes
            .iter()
            .map(|(name, s)| NodeStats {
                node: name.clone(),
                received: s.received,
                emitted: s.base_emitted + s.cur_emitted,
                dropped: s.base_dropped + s.cur_dropped,
                evicted: s.evicted,
                batches: s.batches,
                offset_secs: s.offset_secs,
                hlc_bumps: s.hlc.bumps(),
                incarnations: s.incarnations,
            })
            .collect()
    }

    /// Check the accounting invariant `received + dropped == emitted` for
    /// every node; returns the offending nodes on failure.
    pub fn check_balance(&self) -> Result<(), Vec<NodeStats>> {
        let bad: Vec<NodeStats> = self
            .node_stats()
            .into_iter()
            .filter(|s| s.received + s.dropped != s.emitted)
            .collect();
        if bad.is_empty() {
            Ok(())
        } else {
            Err(bad)
        }
    }

    /// Number of node streams seen so far.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(ts: f64, seq: u64) -> TraceEvent {
        TraceEvent {
            ts,
            kind: EventKind::PushApplied,
            shard: 0,
            worker: 0,
            progress: seq,
            seq,
            ..Default::default()
        }
    }

    #[test]
    fn offset_estimator_prefers_minimum_rtt_sample() {
        let mut est = OffsetEstimator::new();
        // True offset +10.0 with a symmetric 2ms RTT.
        est.add_sample(1.000, 11.001, 1.002);
        assert!((est.offset() - 10.0).abs() < 1e-12);
        // A worse (larger-RTT, asymmetric) sample must not displace it.
        est.add_sample(2.000, 12.090, 2.100);
        assert!((est.offset() - 10.0).abs() < 1e-12);
        assert_eq!(est.samples(), 2);
        assert!((est.rtt().unwrap() - 0.002).abs() < 1e-12);
        // A tighter sample wins.
        est.add_sample(3.0000, 13.0005, 3.0010);
        assert!((est.rtt().unwrap() - 0.001).abs() < 1e-12);
    }

    #[test]
    fn hlc_heals_ties_and_rewinds() {
        let mut hlc = Hlc::new();
        let a = hlc.observe(1.0);
        let b = hlc.observe(1.0); // tie
        let c = hlc.observe(0.5); // rewind
        let d = hlc.observe(2.0); // healthy advance passes through
        assert_eq!(a, 1.0);
        assert!(b > a);
        assert!(c > b);
        assert_eq!(d, 2.0);
        assert_eq!(hlc.bumps(), 2);
    }

    #[test]
    fn ingest_applies_offset_and_merge_rekeys_seq() {
        let mut col = ClusterCollector::new(64);
        col.ingest("worker0", 10.0, 1, 2, 0, &[ev(1.0, 0), ev(2.0, 1)]);
        col.ingest("server0", 0.0, 1, 1, 0, &[ev(11.5, 0)]);
        let trace = col.snapshot();
        assert_eq!(trace.events.len(), 3);
        // worker0's events land at 11.0 and 12.0 on the collector clock,
        // so server0's 11.5 interleaves between them.
        let ts: Vec<f64> = trace.events.iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![11.0, 11.5, 12.0]);
        let seqs: Vec<u64> = trace.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(trace.count(EventKind::PushApplied), 3);
        assert!(col.check_balance().is_ok());
    }

    #[test]
    fn restarted_stream_folds_prior_incarnation_accounting() {
        let mut col = ClusterCollector::new(64);
        col.ingest("server1", 0.0, 1, 3, 1, &[ev(1.0, 0), ev(2.0, 1)]);
        // Replacement: batch_seq restarts at 1, counters restart too.
        col.ingest("server1", 0.0, 1, 1, 0, &[ev(3.0, 0)]);
        let stats = &col.node_stats()[0];
        assert_eq!(stats.incarnations, 2);
        assert_eq!(stats.emitted, 4);
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.received, 3);
        assert!(col.check_balance().is_ok());
    }

    #[test]
    fn unbalanced_stream_is_reported() {
        let mut col = ClusterCollector::new(64);
        col.ingest("worker9", 0.0, 1, 5, 0, &[ev(1.0, 0)]);
        let bad = col.check_balance().unwrap_err();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].node, "worker9");
    }

    #[test]
    fn attached_health_engine_sees_aligned_events_and_drop_totals() {
        use crate::stream::{HealthEngine, StreamConfig};
        let engine = HealthEngine::with_default_rules(StreamConfig::all_run());
        let mut col = ClusterCollector::new(64);
        col.attach_health(engine.clone());
        col.ingest("worker0", 10.0, 1, 3, 1, &[ev(1.0, 0), ev(2.0, 1)]);
        let slo = engine.slo_text();
        assert!(slo.contains("slo events 2\n"), "{slo}");
        // dropped/emitted from the batch headers: 1/3.
        assert!(slo.contains("slo drop_rate 0.333333\n"), "{slo}");
    }

    #[test]
    fn per_node_buffer_evicts_oldest() {
        let mut col = ClusterCollector::new(2);
        col.ingest("w", 0.0, 1, 3, 0, &[ev(1.0, 0), ev(2.0, 1), ev(3.0, 2)]);
        let trace = col.snapshot();
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.events[0].ts, 2.0);
        assert_eq!(col.node_stats()[0].evicted, 1);
        // Evictions count toward the trace's dropped total.
        assert_eq!(trace.dropped, 1);
    }
}
