//! Typed trace events.
//!
//! Each event carries *logical* time — the worker's iteration (`progress`)
//! and the shard's `V_train` at the moment it was recorded — alongside the
//! clock timestamp. Logical time is what the paper's figures are drawn in;
//! the clock timestamp is what Chrome trace viewers lay the events out by.

/// Sentinel for "no shard" / "no worker" on events where the id does not
/// apply (e.g. a `WireSend` from the scheduler).
pub const NO_ID: u32 = u32::MAX;

/// The kinds of events FluentPS instrumentation records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A worker's `SPull` reached a shard (before the pull condition ran).
    PullRequested,
    /// The pull condition failed and the request became a DPR.
    PullDeferred,
    /// A buffered DPR was answered after `V_train` advanced far enough.
    DprReleased,
    /// An `SPush`'s gradients were applied to the shard's parameters.
    PushApplied,
    /// An `SPush` arrived with `progress < V_train` and was dropped.
    LatePushDropped,
    /// The shard's `V_train` advanced by one (the push condition fired).
    VTrainAdvanced,
    /// A worker blocked waiting for pull responses (duration span).
    BarrierWait,
    /// A message left a node; `bytes` is the frame's wire size.
    WireSend,
    /// A message arrived at a node; `bytes` is the frame's wire size.
    WireRecv,
    /// A worker's request timed out and a retry (with backoff) was queued.
    RetryScheduled,
    /// A send failed at the transport level; the client will redial.
    ConnectionLost,
    /// A shard checkpoint was captured (`v_train` is the snapshot point,
    /// `bytes` the serialized size).
    CheckpointCaptured,
    /// A replacement shard restored state from a checkpoint (`v_train` is
    /// the restored progress).
    CheckpointRestored,
    /// EPS moved a dead shard's keys; `bytes` carries the number of values
    /// moved.
    ShardRemapped,
    /// The liveness monitor declared a node dead (`shard`/`worker` identify
    /// it; `v_train` carries the logical detection time).
    NodeDeclaredDead,
    /// A supervisor replica won a leader election (`shard` is the replica
    /// id, `v_train` the new term).
    LeaderElected,
    /// A control-plane command committed through the replicated log
    /// (`progress` is the log index, `v_train` the term; only non-tick
    /// commands are recorded to keep traces readable).
    ConsensusCommit,
    /// Leadership moved to a different replica after the previous leader
    /// died or stepped down (`shard` is the new leader, `v_train` the term).
    SupervisorFailover,
}

/// Number of distinct event kinds (array-index bound for per-kind counts).
pub const KINDS: usize = 18;

impl EventKind {
    /// Every kind, in stable index order.
    pub const ALL: [EventKind; KINDS] = [
        EventKind::PullRequested,
        EventKind::PullDeferred,
        EventKind::DprReleased,
        EventKind::PushApplied,
        EventKind::LatePushDropped,
        EventKind::VTrainAdvanced,
        EventKind::BarrierWait,
        EventKind::WireSend,
        EventKind::WireRecv,
        EventKind::RetryScheduled,
        EventKind::ConnectionLost,
        EventKind::CheckpointCaptured,
        EventKind::CheckpointRestored,
        EventKind::ShardRemapped,
        EventKind::NodeDeclaredDead,
        EventKind::LeaderElected,
        EventKind::ConsensusCommit,
        EventKind::SupervisorFailover,
    ];

    /// Stable dense index in `[0, KINDS)`.
    pub fn index(self) -> usize {
        match self {
            EventKind::PullRequested => 0,
            EventKind::PullDeferred => 1,
            EventKind::DprReleased => 2,
            EventKind::PushApplied => 3,
            EventKind::LatePushDropped => 4,
            EventKind::VTrainAdvanced => 5,
            EventKind::BarrierWait => 6,
            EventKind::WireSend => 7,
            EventKind::WireRecv => 8,
            EventKind::RetryScheduled => 9,
            EventKind::ConnectionLost => 10,
            EventKind::CheckpointCaptured => 11,
            EventKind::CheckpointRestored => 12,
            EventKind::ShardRemapped => 13,
            EventKind::NodeDeclaredDead => 14,
            EventKind::LeaderElected => 15,
            EventKind::ConsensusCommit => 16,
            EventKind::SupervisorFailover => 17,
        }
    }

    /// Snake-case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::PullRequested => "pull_requested",
            EventKind::PullDeferred => "pull_deferred",
            EventKind::DprReleased => "dpr_released",
            EventKind::PushApplied => "push_applied",
            EventKind::LatePushDropped => "late_push_dropped",
            EventKind::VTrainAdvanced => "v_train_advanced",
            EventKind::BarrierWait => "barrier_wait",
            EventKind::WireSend => "wire_send",
            EventKind::WireRecv => "wire_recv",
            EventKind::RetryScheduled => "retry_scheduled",
            EventKind::ConnectionLost => "connection_lost",
            EventKind::CheckpointCaptured => "checkpoint_captured",
            EventKind::CheckpointRestored => "checkpoint_restored",
            EventKind::ShardRemapped => "shard_remapped",
            EventKind::NodeDeclaredDead => "node_declared_dead",
            EventKind::LeaderElected => "leader_elected",
            EventKind::ConsensusCommit => "consensus_commit",
            EventKind::SupervisorFailover => "supervisor_failover",
        }
    }
}

/// One recorded event.
///
/// `ts` and `dur` are seconds since the trace epoch (wall or virtual —
/// see [`crate::ClockSource`]). `dur` is 0 for instantaneous events.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Seconds since the trace epoch.
    pub ts: f64,
    /// Span duration in seconds; 0 for instants.
    pub dur: f64,
    /// What happened.
    pub kind: EventKind,
    /// Shard the event concerns, or [`NO_ID`].
    pub shard: u32,
    /// Worker the event concerns, or [`NO_ID`].
    pub worker: u32,
    /// The worker iteration attached to the triggering message.
    pub progress: u64,
    /// The shard's `V_train` when the event was recorded (0 if n/a).
    pub v_train: u64,
    /// Wire bytes for `WireSend`/`WireRecv`; payload bytes otherwise; 0 if n/a.
    pub bytes: u64,
    /// Global record order, for stable sorting of equal timestamps.
    pub seq: u64,
    /// Causal request id propagated on the wire, or 0 when the event was
    /// recorded outside any request context.
    pub request_id: u64,
    /// Retry ordinal of the request this event belongs to (0 = first
    /// attempt; meaningless when `request_id` is 0).
    pub attempt: u32,
    /// Span id within the request that caused this event, or [`NO_ID`].
    pub parent_span: u32,
}

impl Default for TraceEvent {
    /// A zeroed instant with no ids: both actor ids and `parent_span` are
    /// [`NO_ID`], `request_id` is the no-context sentinel 0, and the kind is
    /// the first in index order. Lets construction sites set only the fields
    /// an event kind actually carries.
    fn default() -> Self {
        TraceEvent {
            ts: 0.0,
            dur: 0.0,
            kind: EventKind::PullRequested,
            shard: NO_ID,
            worker: NO_ID,
            progress: 0,
            v_train: 0,
            bytes: 0,
            seq: 0,
            request_id: 0,
            attempt: 0,
            parent_span: NO_ID,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_match_all() {
        for (i, k) in EventKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
        let mut names: Vec<&str> = EventKind::ALL.iter().map(|k| k.name()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), KINDS, "names must be unique");
    }
}
