//! Trace exporters: Chrome trace-event JSON, JSONL, and a text summary.
//!
//! The Chrome exporter emits the [trace-event format] loadable in
//! `chrome://tracing` or [Perfetto](https://ui.perfetto.dev): one lane per
//! `(shard, worker)` pair, instant events for every record, and duration
//! spans for matched `PullDeferred → DprReleased` pairs (name `dpr`) and
//! for `BarrierWait`s — so a deferred pull is literally a visible bar from
//! deferral to release, the paper's Fig. 9 as a timeline.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::collections::HashMap;

use crate::event::{EventKind, TraceEvent, NO_ID};
use crate::json;
use crate::tracer::Trace;

/// `-1` for [`NO_ID`], the id otherwise — keeps exported JSON readable.
fn id_or_neg1(id: u32) -> i64 {
    if id == NO_ID {
        -1
    } else {
        id as i64
    }
}

fn micros(seconds: f64) -> String {
    json::number(seconds * 1e6)
}

fn args_json(ev: &TraceEvent) -> String {
    format!(
        "{{\"progress\":{},\"v_train\":{},\"bytes\":{}}}",
        ev.progress, ev.v_train, ev.bytes
    )
}

fn chrome_event(ph: &str, name: &str, ev: &TraceEvent, dur: Option<f64>) -> String {
    let mut s = format!(
        "{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{},",
        json::escape(name),
        ph,
        micros(ev.ts)
    );
    if let Some(d) = dur {
        s.push_str(&format!("\"dur\":{},", micros(d)));
    }
    if ph == "i" {
        s.push_str("\"s\":\"t\",");
    }
    s.push_str(&format!(
        "\"pid\":{},\"tid\":{},\"args\":{}}}",
        id_or_neg1(ev.shard),
        id_or_neg1(ev.worker),
        args_json(ev)
    ));
    s
}

/// Export as one Chrome trace-event JSON document.
///
/// Timestamps convert to microseconds (the format's unit). Matched
/// `PullDeferred → DprReleased` pairs — keyed by `(shard, worker,
/// progress)` — additionally produce a `dpr` duration span; unmatched
/// deferrals (DPRs still buffered at snapshot time) stay visible as their
/// instant events.
pub fn chrome_trace(trace: &Trace) -> String {
    let mut parts: Vec<String> = Vec::with_capacity(trace.events.len() + 8);

    // Process-name metadata: one per shard lane, so Perfetto shows
    // "shard 0" instead of "pid 0".
    let mut pids: Vec<i64> = trace.events.iter().map(|e| id_or_neg1(e.shard)).collect();
    pids.sort_unstable();
    pids.dedup();
    for pid in pids {
        let name = if pid < 0 {
            "cluster".to_string()
        } else {
            format!("shard {pid}")
        };
        parts.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{name}\"}}}}"
        ));
    }

    let mut open_dprs: HashMap<(u32, u32, u64), &TraceEvent> = HashMap::new();
    for ev in &trace.events {
        match ev.kind {
            EventKind::PullDeferred => {
                open_dprs.insert((ev.shard, ev.worker, ev.progress), ev);
                parts.push(chrome_event("i", ev.kind.name(), ev, None));
            }
            EventKind::DprReleased => {
                if let Some(start) = open_dprs.remove(&(ev.shard, ev.worker, ev.progress)) {
                    let mut span = *start;
                    span.v_train = ev.v_train; // V_train at release, the interesting end
                    parts.push(chrome_event("X", "dpr", &span, Some(ev.ts - start.ts)));
                }
                parts.push(chrome_event("i", ev.kind.name(), ev, None));
            }
            EventKind::BarrierWait => {
                parts.push(chrome_event("X", ev.kind.name(), ev, Some(ev.dur)));
            }
            _ => parts.push(chrome_event("i", ev.kind.name(), ev, None)),
        }
    }

    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
        parts.join(",\n")
    )
}

/// Export as JSONL: one compact JSON object per event, in trace order.
pub fn jsonl(trace: &Trace) -> String {
    let mut out = String::new();
    for ev in &trace.events {
        out.push_str(&format!(
            "{{\"ts\":{},\"dur\":{},\"kind\":\"{}\",\"shard\":{},\"worker\":{},\
             \"progress\":{},\"v_train\":{},\"bytes\":{},\"seq\":{},\
             \"request_id\":{},\"attempt\":{},\"parent_span\":{}}}\n",
            json::number(ev.ts),
            json::number(ev.dur),
            ev.kind.name(),
            id_or_neg1(ev.shard),
            id_or_neg1(ev.worker),
            ev.progress,
            ev.v_train,
            ev.bytes,
            ev.seq,
            ev.request_id,
            ev.attempt,
            id_or_neg1(ev.parent_span)
        ));
    }
    out
}

/// A human-readable summary: per-kind totals, wire bytes, time span,
/// events dropped to ring overflow.
pub fn text_summary(trace: &Trace) -> String {
    let mut out = String::new();
    out.push_str("trace summary\n");
    let span = match (trace.events.first(), trace.events.last()) {
        (Some(a), Some(b)) => b.ts + b.dur - a.ts,
        _ => 0.0,
    };
    out.push_str(&format!(
        "  events: {} recorded, {} buffered, {} dropped, span {:.6}s\n",
        trace.total(),
        trace.events.len(),
        trace.dropped,
        span
    ));
    for kind in EventKind::ALL {
        let n = trace.count(kind);
        if n > 0 {
            out.push_str(&format!("  {:<18} {n}\n", kind.name()));
        }
    }
    let sent: u64 = trace
        .events
        .iter()
        .filter(|e| e.kind == EventKind::WireSend)
        .map(|e| e.bytes)
        .sum();
    let recvd: u64 = trace
        .events
        .iter()
        .filter(|e| e.kind == EventKind::WireRecv)
        .map(|e| e.bytes)
        .sum();
    if sent > 0 || recvd > 0 {
        out.push_str(&format!(
            "  wire bytes: {sent} sent, {recvd} received (buffered events only)\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{ClockSource, VirtualClock};
    use crate::tracer::{RecordArgs, TraceCollector};
    use std::sync::Arc;

    fn sample_trace() -> Trace {
        let clock = VirtualClock::new();
        let col = TraceCollector::new(ClockSource::virtual_clock(Arc::clone(&clock)), 64);
        let t = col.tracer();
        let at = |shard: u32, worker: u32, progress: u64, v_train: u64| {
            RecordArgs::new()
                .shard(shard)
                .worker(worker)
                .progress(progress)
                .v_train(v_train)
        };
        clock.set(0.001);
        t.record(EventKind::PullRequested, at(0, 1, 5, 4).bytes(58));
        t.record(EventKind::PullDeferred, at(0, 1, 5, 4));
        clock.set(0.002);
        t.record(EventKind::PushApplied, at(0, 2, 4, 4).bytes(120));
        t.record(
            EventKind::VTrainAdvanced,
            RecordArgs::new().shard(0).v_train(5),
        );
        t.record(EventKind::DprReleased, at(0, 1, 5, 5));
        clock.set(0.003);
        let start = t.now();
        clock.set(0.004);
        t.record_span(
            EventKind::BarrierWait,
            start,
            RecordArgs::new().worker(1).progress(6),
        );
        col.snapshot()
    }

    #[test]
    fn chrome_trace_is_valid_json_with_dpr_span() {
        let doc = chrome_trace(&sample_trace());
        json::validate(&doc).unwrap();
        assert!(doc.contains("\"name\":\"dpr\""), "expected a dpr span");
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"name\":\"barrier_wait\""));
        assert!(doc.contains("\"displayTimeUnit\":\"ms\""));
        // Defer at 1ms, release at 2ms → 1000us span.
        assert!(doc.contains("\"ts\":1000,"), "span starts at defer time");
    }

    #[test]
    fn unmatched_dpr_stays_an_instant() {
        let col = TraceCollector::wall(8);
        let t = col.tracer();
        t.record(
            EventKind::PullDeferred,
            RecordArgs::new().shard(0).worker(1).progress(9).v_train(2),
        );
        let doc = chrome_trace(&col.snapshot());
        json::validate(&doc).unwrap();
        assert!(doc.contains("pull_deferred"));
        assert!(!doc.contains("\"name\":\"dpr\""));
    }

    #[test]
    fn jsonl_lines_are_each_valid() {
        let out = jsonl(&sample_trace());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 6);
        for line in lines {
            json::validate(line).unwrap();
        }
        assert!(out.contains("\"kind\":\"barrier_wait\""));
        assert!(out.contains("\"worker\":-1"));
    }

    #[test]
    fn text_summary_lists_kinds_and_span() {
        let s = text_summary(&sample_trace());
        assert!(s.contains("pull_deferred"));
        assert!(s.contains("6 recorded"));
        assert!(s.contains("0 dropped"));
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let trace = Trace::default();
        json::validate(&chrome_trace(&trace)).unwrap();
        assert_eq!(jsonl(&trace), "");
        assert!(text_summary(&trace).contains("0 recorded"));
    }
}
