//! Cluster readiness shared between a supervising runtime and `/healthz`.
//!
//! A [`HealthView`] is a small thread-safe snapshot of per-node liveness:
//! the supervisor (which owns the liveness monitor) refreshes it on every
//! tick, and the introspection endpoint renders it on demand. Node names
//! are plain strings so this crate stays independent of the transport's
//! node-id type.

use std::sync::Arc;

use fluentps_util::sync::Mutex;

/// Liveness of one node as last observed by the supervisor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeHealth {
    /// Display name, e.g. `server0`.
    pub name: String,
    /// Milliseconds since the node's last heartbeat.
    pub last_seen_age_ms: u64,
    /// True once the liveness monitor declared the node dead.
    pub dead: bool,
}

#[derive(Debug, Default)]
struct HealthState {
    nodes: Vec<NodeHealth>,
}

/// Shared, cloneable readiness view. All clones observe the same state.
#[derive(Debug, Clone, Default)]
pub struct HealthView {
    inner: Arc<Mutex<HealthState>>,
}

impl HealthView {
    /// An empty view (no nodes yet — reported as ready).
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the per-node snapshot wholesale (the supervisor calls this
    /// each liveness tick).
    pub fn update(&self, nodes: Vec<NodeHealth>) {
        self.inner.lock().nodes = nodes;
    }

    /// Number of nodes currently declared dead.
    pub fn dead_count(&self) -> usize {
        self.inner.lock().nodes.iter().filter(|n| n.dead).count()
    }

    /// Render the readiness body served at `/healthz`: the first line is
    /// `ready` or `degraded`, followed by the dead-node count and one line
    /// per node with its last-heartbeat age. Returns `(ready, body)`.
    pub fn render(&self) -> (bool, String) {
        let state = self.inner.lock();
        let dead = state.nodes.iter().filter(|n| n.dead).count();
        let ready = dead == 0;
        let mut body = String::new();
        body.push_str(if ready { "ready\n" } else { "degraded\n" });
        body.push_str(&format!("dead_nodes {dead}\n"));
        for n in &state.nodes {
            body.push_str(&format!(
                "node {} age_ms {} {}\n",
                n.name,
                n.last_seen_age_ms,
                if n.dead { "dead" } else { "alive" }
            ));
        }
        (ready, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_view_is_ready() {
        let v = HealthView::new();
        let (ready, body) = v.render();
        assert!(ready);
        assert!(body.starts_with("ready\n"));
        assert!(body.contains("dead_nodes 0"));
    }

    #[test]
    fn dead_node_degrades_the_view() {
        let v = HealthView::new();
        v.update(vec![
            NodeHealth {
                name: "server0".into(),
                last_seen_age_ms: 12,
                dead: false,
            },
            NodeHealth {
                name: "server1".into(),
                last_seen_age_ms: 5000,
                dead: true,
            },
        ]);
        assert_eq!(v.dead_count(), 1);
        let (ready, body) = v.render();
        assert!(!ready);
        assert!(body.starts_with("degraded\n"));
        assert!(body.contains("dead_nodes 1"));
        assert!(body.contains("node server0 age_ms 12 alive"));
        assert!(body.contains("node server1 age_ms 5000 dead"));
    }

    #[test]
    fn clones_share_state() {
        let v = HealthView::new();
        let c = v.clone();
        c.update(vec![NodeHealth {
            name: "server0".into(),
            last_seen_age_ms: 1,
            dead: true,
        }]);
        assert_eq!(v.dead_count(), 1);
    }
}
