//! Cluster readiness shared between a supervising runtime and `/healthz`.
//!
//! A [`HealthView`] is a small thread-safe snapshot of per-node liveness:
//! the supervisor (which owns the liveness monitor) refreshes it on every
//! tick, and the introspection endpoint renders it on demand. Node names
//! are plain strings so this crate stays independent of the transport's
//! node-id type.

use std::sync::Arc;

use fluentps_util::sync::Mutex;

/// Liveness of one node as last observed by the supervisor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeHealth {
    /// Display name, e.g. `server0`.
    pub name: String,
    /// Milliseconds since the node's last heartbeat.
    pub last_seen_age_ms: u64,
    /// True once the liveness monitor declared the node dead.
    pub dead: bool,
}

/// Consensus standing of the replicated control plane as last reported by
/// its supervisor replicas. `leader: None` means no replica currently holds
/// (or can win) leadership — quorum loss — which degrades readiness: a
/// cluster whose control plane cannot act on failures is not healthy even
/// while the data plane still trains.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConsensusHealth {
    /// Highest term observed across live replicas.
    pub term: u64,
    /// Display name of the current leader replica (e.g. `supervisor1`),
    /// or `None` when leaderless.
    pub leader: Option<String>,
    /// Total supervisor replicas configured.
    pub replicas: u32,
}

#[derive(Debug, Default)]
struct HealthState {
    nodes: Vec<NodeHealth>,
    consensus: Option<ConsensusHealth>,
}

/// Shared, cloneable readiness view. All clones observe the same state.
#[derive(Debug, Clone, Default)]
pub struct HealthView {
    inner: Arc<Mutex<HealthState>>,
}

impl HealthView {
    /// An empty view (no nodes yet — reported as ready).
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the per-node snapshot wholesale (the supervisor calls this
    /// each liveness tick).
    pub fn update(&self, nodes: Vec<NodeHealth>) {
        self.inner.lock().nodes = nodes;
    }

    /// Number of nodes currently declared dead.
    pub fn dead_count(&self) -> usize {
        self.inner.lock().nodes.iter().filter(|n| n.dead).count()
    }

    /// Publish the control plane's consensus standing (supervisor replicas
    /// call this independently of the node snapshot so a leaderless replica
    /// can degrade readiness without clobbering the leader's node list).
    pub fn set_consensus(&self, consensus: Option<ConsensusHealth>) {
        self.inner.lock().consensus = consensus;
    }

    /// The last published consensus standing, if any.
    pub fn consensus(&self) -> Option<ConsensusHealth> {
        self.inner.lock().consensus.clone()
    }

    /// Render the readiness body served at `/healthz`: the first line is
    /// `ready` or `degraded`, followed by the dead-node count, one line per
    /// node with its last-heartbeat age, and — when a replicated control
    /// plane reports in — a `consensus` line with the current term and
    /// leader. Returns `(ready, body)`.
    pub fn render(&self) -> (bool, String) {
        let state = self.inner.lock();
        let dead = state.nodes.iter().filter(|n| n.dead).count();
        let leaderless = state.consensus.as_ref().is_some_and(|c| c.leader.is_none());
        let ready = dead == 0 && !leaderless;
        let mut body = String::new();
        body.push_str(if ready { "ready\n" } else { "degraded\n" });
        body.push_str(&format!("dead_nodes {dead}\n"));
        for n in &state.nodes {
            body.push_str(&format!(
                "node {} age_ms {} {}\n",
                n.name,
                n.last_seen_age_ms,
                if n.dead { "dead" } else { "alive" }
            ));
        }
        if let Some(c) = &state.consensus {
            body.push_str(&format!(
                "consensus term {} leader {} replicas {}\n",
                c.term,
                c.leader.as_deref().unwrap_or("none"),
                c.replicas
            ));
        }
        (ready, body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_view_is_ready() {
        let v = HealthView::new();
        let (ready, body) = v.render();
        assert!(ready);
        assert!(body.starts_with("ready\n"));
        assert!(body.contains("dead_nodes 0"));
    }

    #[test]
    fn dead_node_degrades_the_view() {
        let v = HealthView::new();
        v.update(vec![
            NodeHealth {
                name: "server0".into(),
                last_seen_age_ms: 12,
                dead: false,
            },
            NodeHealth {
                name: "server1".into(),
                last_seen_age_ms: 5000,
                dead: true,
            },
        ]);
        assert_eq!(v.dead_count(), 1);
        let (ready, body) = v.render();
        assert!(!ready);
        assert!(body.starts_with("degraded\n"));
        assert!(body.contains("dead_nodes 1"));
        assert!(body.contains("node server0 age_ms 12 alive"));
        assert!(body.contains("node server1 age_ms 5000 dead"));
    }

    #[test]
    fn leaderless_consensus_degrades_even_with_all_nodes_alive() {
        let v = HealthView::new();
        v.update(vec![NodeHealth {
            name: "server0".into(),
            last_seen_age_ms: 3,
            dead: false,
        }]);
        v.set_consensus(Some(ConsensusHealth {
            term: 4,
            leader: None,
            replicas: 3,
        }));
        let (ready, body) = v.render();
        assert!(!ready, "quorum loss must degrade readiness");
        assert!(body.starts_with("degraded\n"));
        assert!(body.contains("dead_nodes 0"));
        assert!(body.contains("consensus term 4 leader none replicas 3"));

        v.set_consensus(Some(ConsensusHealth {
            term: 5,
            leader: Some("supervisor1".into()),
            replicas: 3,
        }));
        let (ready, body) = v.render();
        assert!(ready, "a live leader restores readiness");
        assert!(body.contains("consensus term 5 leader supervisor1 replicas 3"));
    }

    #[test]
    fn clones_share_state() {
        let v = HealthView::new();
        let c = v.clone();
        c.update(vec![NodeHealth {
            name: "server0".into(),
            last_seen_age_ms: 1,
            dead: true,
        }]);
        assert_eq!(v.dead_count(), 1);
    }
}
