//! A small fixed-bucket histogram for synchronization wait times.
//!
//! Power-of-two buckets over integer values (iterations waited, microseconds
//! queued, …): enough resolution to report p50/p95/p99 in the experiment
//! tables without unbounded memory. Lives here (rather than in
//! `fluentps-core`) so the metrics registry and `ShardStats` share one
//! implementation; core re-exports it at its old path.

/// Histogram over `u64` values with power-of-two buckets: bucket `i` covers
/// `[2^(i−1), 2^i)` with bucket 0 covering exactly `{0}`.
///
/// ```
/// use fluentps_obs::hist::Histogram;
/// let mut h = Histogram::new();
/// for v in [1u64, 2, 4, 100] { h.record(v); }
/// assert_eq!(h.count(), 4);
/// assert!(h.quantile_upper(0.5) <= 4);
/// assert_eq!(h.max(), 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 33],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 33],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()).min(32) as usize
        }
    }

    /// Upper bound (exclusive) of bucket `i`.
    fn bucket_upper(i: usize) -> u64 {
        if i == 0 {
            1
        } else if i >= 32 {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Upper bound of the bucket containing the `q`-quantile (`q` in
    /// `[0, 1]`); an over-estimate by at most 2×. Returns 0 when empty.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return Self::bucket_upper(i).min(self.max.max(1));
            }
        }
        self.max
    }

    /// Reset to the empty state without reallocating, so ring-of-window
    /// wrappers (see `stream::WindowedHistogram`) can rotate slots in place.
    pub fn clear(&mut self) {
        self.buckets = [0; 33];
        self.count = 0;
        self.sum = 0;
        self.max = 0;
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile_upper(0.99), 0);
    }

    #[test]
    fn mean_and_max_are_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 10] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), 16.0 / 5.0);
        assert_eq!(h.max(), 10);
    }

    #[test]
    fn quantiles_bracket_true_values() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile_upper(0.5);
        let p99 = h.quantile_upper(0.99);
        // Bucketed upper bounds: within 2× of the true quantile.
        assert!((500..=1024).contains(&p50), "p50 {p50}");
        assert!((990..=1024).contains(&p99), "p99 {p99}");
        assert!(p50 <= p99);
    }

    #[test]
    fn zero_heavy_distribution() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(0);
        }
        h.record(1000);
        assert_eq!(h.quantile_upper(0.5), 1);
        assert_eq!(h.quantile_upper(1.0), 1000);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = Histogram::new();
        a.record(1);
        a.record(2);
        let mut b = Histogram::new();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 100);
        assert_eq!(a.mean(), 103.0 / 3.0);
    }

    #[test]
    fn clear_resets_to_empty() {
        let mut h = Histogram::new();
        for v in [1u64, 7, 500] {
            h.record(v);
        }
        h.clear();
        assert_eq!(h, Histogram::new());
        h.record(3);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), 3);
    }

    #[test]
    fn huge_values_do_not_overflow() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.quantile_upper(0.5) > 0);
    }
}
