//! A hand-rolled HTTP/1.1 introspection endpoint on
//! [`std::net::TcpListener`] — no external crates, per the hermetic-build
//! gate (DESIGN.md §7).
//!
//! Routes:
//!
//! * `GET /healthz` — readiness. With a [`HealthView`] attached
//!   ([`serve_with_health`]) this reports per-node last-heartbeat ages and
//!   the dead-node count as fed by the cluster's liveness monitor — `200`
//!   while every node is alive, `503` once any node is declared dead.
//!   Without one it degrades to the static `200 ok` liveness probe.
//! * `GET /metrics` — the attached [`MetricsRegistry`] in Prometheus text
//!   exposition format ([`MetricsRegistry::render_prometheus`]). When a
//!   [`TraceCollector`] is attached, per-kind event totals and the dropped
//!   count are refreshed into the registry on every scrape, so the scrape
//!   path carries the cost, not the training hot path.
//! * `GET /trace?last=N&actor=ID&kind=NAME&request=ID` — the newest `N`
//!   buffered events as JSONL (default 256), from a non-destructive
//!   snapshot. `actor=worker1`, `actor=server0` (alias `shard0`) or a bare
//!   integer filter to one actor's events, `kind=pull_deferred` to one
//!   event kind (snake-case [`crate::EventKind`] names), `request=ID` to
//!   events stamped with one causal request id; all apply before the tail
//!   is taken and compose freely. The trace may be a single process's
//!   [`TraceCollector`] or — via [`serve_source`] with
//!   [`TraceSource::Cluster`] — the live merged timeline of a whole
//!   cluster, in which case `/metrics` also exports per-node collection
//!   counters (events received/dropped, clock offset, HLC bumps,
//!   incarnations).
//! * `GET /waterfall?request=ID|slowest=N&top=P` — per-request causal
//!   waterfalls ([`crate::waterfall`]) assembled from the trace snapshot,
//!   as NDJSON: one balance header line
//!   (`retained + sampled_out == observed`), then one object per waterfall.
//!   `request=ID` returns exactly that request, `slowest=N` the N slowest
//!   retained (default 10); `top=P` (fraction, default 1) applies
//!   tail-based sampling before selection. Each scrape also refreshes the
//!   `waterfall_wire_us`/`waterfall_barrier_us` exemplar histograms into
//!   `/metrics`.
//! * `GET /slo` and `GET /alerts` — when a
//!   [`HealthEngine`](crate::stream::HealthEngine) is attached
//!   ([`serve_observed`]): the streaming health summary as greppable
//!   `key value` text, and the alert transition history plus current rule
//!   states as JSONL (`application/x-ndjson`, like `/trace`). The engine's
//!   gauges are also refreshed into `/metrics` on every scrape.
//! * `GET /profile?format=folded|speedscope&metric=time|allocs|bytes` —
//!   when a [`ProfCollector`](crate::prof::ProfCollector) is attached
//!   ([`serve_profiled`]): a live snapshot of this node's span profile, as
//!   flamegraph folded-stack text (the default; `metric` picks self time,
//!   allocation count or allocated bytes) or as speedscope JSON carrying
//!   all three metrics as separate profiles.
//!
//! Security note: callers should bind loopback (`127.0.0.1:0`) unless the
//! endpoint is deliberately exposed — everything the server reports is
//! read-only, but traces reveal workload shape. All engine and driver
//! integrations in this workspace default to loopback.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use fluentps_util::sync::Mutex;

use crate::collect::{ClusterCollector, NodeStats};
use crate::event::EventKind;
use crate::export;
use crate::health::HealthView;
use crate::metrics::MetricsRegistry;
use crate::prof::{ProfCollector, ProfMetric};
use crate::stream::HealthEngine;
use crate::tracer::{Trace, TraceCollector};
use crate::waterfall;

/// Events returned by `/trace` when no `last=N` parameter is given.
const DEFAULT_TAIL: usize = 256;

/// Waterfalls returned by `/waterfall` when neither `request=` nor
/// `slowest=` is given.
const DEFAULT_SLOWEST: usize = 10;

/// Longest request head we will read before answering 400.
const MAX_REQUEST_BYTES: usize = 8192;

/// A running introspection endpoint. Dropping it (or calling
/// [`IntrospectionServer::stop`]) shuts the listener down and joins the
/// accept thread.
#[derive(Debug)]
pub struct IntrospectionServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// What `/trace` (and the trace part of `/metrics`) is served from.
#[derive(Clone)]
pub enum TraceSource {
    /// One process's ring-buffered collector.
    Local(TraceCollector),
    /// The live merged timeline of a whole cluster, shared with a
    /// `CollectorService` (the TCP side lives in `fluentps-transport`).
    Cluster(Arc<Mutex<ClusterCollector>>),
}

impl TraceSource {
    fn snapshot(&self) -> Trace {
        match self {
            TraceSource::Local(col) => col.snapshot(),
            TraceSource::Cluster(cluster) => cluster.lock().snapshot(),
        }
    }

    fn node_stats(&self) -> Option<Vec<NodeStats>> {
        match self {
            TraceSource::Local(_) => None,
            TraceSource::Cluster(cluster) => Some(cluster.lock().node_stats()),
        }
    }
}

/// Serve `/metrics`, `/healthz` and `/trace` on `addr` until the returned
/// handle is stopped or dropped. Pass `0` as the port to let the OS pick
/// one — read it back from [`IntrospectionServer::local_addr`].
pub fn serve(
    addr: SocketAddr,
    registry: MetricsRegistry,
    collector: Option<TraceCollector>,
) -> std::io::Result<IntrospectionServer> {
    serve_with_health(addr, registry, collector, None)
}

/// [`serve`] plus a [`HealthView`]: `/healthz` becomes a readiness probe
/// reflecting the cluster's liveness monitor instead of a static `ok`.
pub fn serve_with_health(
    addr: SocketAddr,
    registry: MetricsRegistry,
    collector: Option<TraceCollector>,
    health: Option<HealthView>,
) -> std::io::Result<IntrospectionServer> {
    serve_source(addr, registry, collector.map(TraceSource::Local), health)
}

/// [`serve_with_health`] over any [`TraceSource`] — attach
/// [`TraceSource::Cluster`] to serve a collector service's live merged
/// cluster timeline instead of one process's rings.
pub fn serve_source(
    addr: SocketAddr,
    registry: MetricsRegistry,
    source: Option<TraceSource>,
    health: Option<HealthView>,
) -> std::io::Result<IntrospectionServer> {
    serve_observed(addr, registry, source, health, None)
}

/// [`serve_source`] plus a streaming [`HealthEngine`]: `/slo` and
/// `/alerts` go live, and the engine's gauges refresh into `/metrics` on
/// every scrape.
pub fn serve_observed(
    addr: SocketAddr,
    registry: MetricsRegistry,
    source: Option<TraceSource>,
    health: Option<HealthView>,
    engine: Option<HealthEngine>,
) -> std::io::Result<IntrospectionServer> {
    serve_profiled(addr, registry, source, health, engine, None)
}

/// [`serve_observed`] plus a [`ProfCollector`]: `/profile` serves live
/// folded-stack and speedscope snapshots of this node's span profile.
pub fn serve_profiled(
    addr: SocketAddr,
    registry: MetricsRegistry,
    source: Option<TraceSource>,
    health: Option<HealthView>,
    engine: Option<HealthEngine>,
    prof: Option<ProfCollector>,
) -> std::io::Result<IntrospectionServer> {
    // Every served registry carries process metadata (uptime epoch and
    // build version) so scrapes can correlate runs.
    registry.register_process_metrics();
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("fluentps-introspection".to_string())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = conn {
                    let _ = handle_connection(
                        stream,
                        &registry,
                        source.as_ref(),
                        health.as_ref(),
                        engine.as_ref(),
                        prof.as_ref(),
                    );
                }
            }
        })?;
    Ok(IntrospectionServer {
        addr: local,
        stop,
        handle: Some(handle),
    })
}

impl IntrospectionServer {
    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shut the endpoint down and join the accept thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop blocks in `incoming()`; poke it awake.
        if let Ok(stream) = TcpStream::connect(self.addr) {
            drop(stream);
        }
        let _ = handle.join();
    }
}

impl Drop for IntrospectionServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(
    mut stream: TcpStream,
    registry: &MetricsRegistry,
    source: Option<&TraceSource>,
    health: Option<&HealthView>,
    engine: Option<&HealthEngine>,
    prof: Option<&ProfCollector>,
) -> std::io::Result<()> {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let Some(head) = read_request_head(&mut stream)? else {
        return respond(&mut stream, 400, "text/plain", "bad request\n");
    };
    let Some((method, target)) = parse_request_line(&head) else {
        return respond(&mut stream, 400, "text/plain", "bad request\n");
    };
    if method != "GET" {
        return respond(&mut stream, 405, "text/plain", "method not allowed\n");
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/healthz" => match health {
            Some(view) => {
                let (ready, body) = view.render();
                respond(
                    &mut stream,
                    if ready { 200 } else { 503 },
                    "text/plain",
                    &body,
                )
            }
            None => respond(&mut stream, 200, "text/plain", "ok\n"),
        },
        "/metrics" => {
            registry.inc("introspection_scrapes_total", 1);
            if let Some(src) = source {
                refresh_trace_metrics(registry, &src.snapshot());
                if let Some(stats) = src.node_stats() {
                    refresh_collect_metrics(registry, &stats);
                }
            }
            if let Some(eng) = engine {
                eng.export_metrics(registry);
            }
            let body = registry.render_prometheus();
            respond(&mut stream, 200, "text/plain; version=0.0.4", &body)
        }
        "/slo" => match engine {
            Some(eng) => respond(&mut stream, 200, "text/plain", &eng.slo_text()),
            None => respond(&mut stream, 404, "text/plain", "no health engine\n"),
        },
        "/alerts" => match engine {
            Some(eng) => respond(
                &mut stream,
                200,
                "application/x-ndjson",
                &eng.alerts_jsonl(),
            ),
            None => respond(&mut stream, 404, "text/plain", "no health engine\n"),
        },
        "/profile" => match prof {
            Some(col) => {
                let report = col.snapshot();
                match query_param(query, "format").unwrap_or("folded") {
                    "folded" => {
                        let metric = match query_param(query, "metric") {
                            Some(raw) => match ProfMetric::parse(raw) {
                                Some(m) => m,
                                None => {
                                    return respond(
                                        &mut stream,
                                        400,
                                        "text/plain",
                                        "bad metric: expect time, allocs or bytes\n",
                                    )
                                }
                            },
                            None => ProfMetric::SelfTime,
                        };
                        respond(&mut stream, 200, "text/plain", &report.folded(metric))
                    }
                    "speedscope" => respond(
                        &mut stream,
                        200,
                        "application/json",
                        &report.speedscope("fluentps profile"),
                    ),
                    _ => respond(
                        &mut stream,
                        400,
                        "text/plain",
                        "bad format: expect folded or speedscope\n",
                    ),
                }
            }
            None => respond(&mut stream, 404, "text/plain", "no profiler\n"),
        },
        "/trace" => match source {
            Some(src) => {
                let last = query_param(query, "last")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(DEFAULT_TAIL);
                let actor = match query_param(query, "actor") {
                    Some(raw) => match parse_actor(raw) {
                        Some(f) => Some(f),
                        None => {
                            return respond(
                                &mut stream,
                                400,
                                "text/plain",
                                "bad actor: expect workerN, serverN, shardN or an id\n",
                            )
                        }
                    },
                    None => None,
                };
                let kind = match query_param(query, "kind") {
                    Some(raw) => match EventKind::ALL.iter().copied().find(|k| k.name() == raw) {
                        Some(k) => Some(k),
                        None => {
                            return respond(
                                &mut stream,
                                400,
                                "text/plain",
                                "bad kind: expect a snake_case event kind name\n",
                            )
                        }
                    },
                    None => None,
                };
                let request = match query_param(query, "request") {
                    Some(raw) => match raw.parse::<u64>() {
                        Ok(id) => Some(id),
                        Err(_) => {
                            return respond(
                                &mut stream,
                                400,
                                "text/plain",
                                "bad request id: expect a decimal u64\n",
                            )
                        }
                    },
                    None => None,
                };
                let mut trace = src.snapshot();
                if let Some(filter) = actor {
                    trace.events.retain(|ev| filter.matches(ev));
                }
                if let Some(k) = kind {
                    trace.events.retain(|ev| ev.kind == k);
                }
                if let Some(id) = request {
                    trace.events.retain(|ev| ev.request_id == id);
                }
                if trace.events.len() > last {
                    trace.events.drain(..trace.events.len() - last);
                }
                let body = export::jsonl(&trace);
                respond(&mut stream, 200, "application/x-ndjson", &body)
            }
            None => respond(&mut stream, 404, "text/plain", "no trace collector\n"),
        },
        "/waterfall" => match source {
            Some(src) => {
                let top = match query_param(query, "top") {
                    Some(raw) => match raw.parse::<f64>() {
                        Ok(f) if (0.0..=1.0).contains(&f) => f,
                        _ => {
                            return respond(
                                &mut stream,
                                400,
                                "text/plain",
                                "bad top: expect a fraction in [0, 1]\n",
                            )
                        }
                    },
                    None => 1.0,
                };
                let request = match query_param(query, "request") {
                    Some(raw) => match raw.parse::<u64>() {
                        Ok(id) => Some(id),
                        Err(_) => {
                            return respond(
                                &mut stream,
                                400,
                                "text/plain",
                                "bad request id: expect a decimal u64\n",
                            )
                        }
                    },
                    None => None,
                };
                let slowest = query_param(query, "slowest")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(DEFAULT_SLOWEST);
                let set = waterfall::assemble(&src.snapshot());
                let sampled = waterfall::tail_sample(
                    &set,
                    waterfall::SamplerConfig {
                        top_fraction: top,
                        ..waterfall::SamplerConfig::default()
                    },
                );
                // Scrapes pay the exemplar refresh, not the hot path.
                waterfall::export_metrics(registry, &sampled.retained);
                let selected: Vec<&crate::waterfall::Waterfall> = match request {
                    Some(id) => match sampled.retained.iter().find(|w| w.request_id == id) {
                        Some(w) => vec![w],
                        None => {
                            return respond(
                                &mut stream,
                                404,
                                "text/plain",
                                "request not retained\n",
                            )
                        }
                    },
                    None => {
                        let mut refs: Vec<&crate::waterfall::Waterfall> =
                            sampled.retained.iter().collect();
                        refs.sort_by(|a, b| {
                            b.total_secs()
                                .total_cmp(&a.total_secs())
                                .then(a.request_id.cmp(&b.request_id))
                        });
                        refs.truncate(slowest);
                        refs
                    }
                };
                let mut body = format!(
                    "{{\"observed\":{},\"retained\":{},\"sampled_out\":{},\
                     \"unstamped_events\":{},\"balanced\":{}}}\n",
                    sampled.observed,
                    sampled.retained.len(),
                    sampled.sampled_out,
                    set.unstamped_events,
                    sampled.balance().is_ok()
                );
                for w in selected {
                    body.push_str(&w.json());
                    body.push('\n');
                }
                respond(&mut stream, 200, "application/x-ndjson", &body)
            }
            None => respond(&mut stream, 404, "text/plain", "no trace collector\n"),
        },
        _ => respond(&mut stream, 404, "text/plain", "not found\n"),
    }
}

/// `/trace?actor=...` filter: `workerN` matches events recorded for worker
/// `N`, `serverN`/`shardN` those for shard `N`, a bare integer either side.
#[derive(Debug, Clone, Copy)]
enum ActorFilter {
    Worker(u32),
    Shard(u32),
    Either(u32),
}

impl ActorFilter {
    fn matches(self, ev: &crate::event::TraceEvent) -> bool {
        match self {
            ActorFilter::Worker(n) => ev.worker == n,
            ActorFilter::Shard(m) => ev.shard == m,
            ActorFilter::Either(id) => ev.worker == id || ev.shard == id,
        }
    }
}

fn parse_actor(raw: &str) -> Option<ActorFilter> {
    if let Some(n) = raw.strip_prefix("worker") {
        return n.parse().ok().map(ActorFilter::Worker);
    }
    if let Some(m) = raw
        .strip_prefix("server")
        .or_else(|| raw.strip_prefix("shard"))
    {
        return m.parse().ok().map(ActorFilter::Shard);
    }
    raw.parse().ok().map(ActorFilter::Either)
}

/// Per-node collection counters for the cluster source: how many events
/// each node's streamer shipped vs. lost, its estimated clock offset, HLC
/// bump count and incarnation count (a replaced server restarts its
/// stream).
fn refresh_collect_metrics(registry: &MetricsRegistry, stats: &[NodeStats]) {
    for s in stats {
        let scope = registry.scope().with("node", &s.node);
        scope.set_gauge("trace_collect_received", s.received as f64);
        scope.set_gauge("trace_collect_emitted", s.emitted as f64);
        scope.set_gauge("trace_collect_dropped", s.dropped as f64);
        scope.set_gauge("trace_collect_batches", s.batches as f64);
        scope.set_gauge("trace_collect_offset_seconds", s.offset_secs);
        scope.set_gauge("trace_collect_hlc_bumps", s.hlc_bumps as f64);
        scope.set_gauge("trace_collect_incarnations", s.incarnations as f64);
    }
    registry.set_gauge("trace_collect_nodes", stats.len() as f64);
}

/// Mirror the collector's per-kind totals and drop count into the registry
/// so `/metrics` reports trace liveness without touching the hot path.
fn refresh_trace_metrics(registry: &MetricsRegistry, trace: &Trace) {
    for kind in crate::event::EventKind::ALL {
        registry
            .scope()
            .with("kind", kind.name())
            .set_gauge("trace_events_recorded", trace.count(kind) as f64);
    }
    registry.set_gauge("trace_events_dropped", trace.dropped as f64);
}

/// Read until the end of the request head (`\r\n\r\n`) or the size cap.
/// Returns `None` when the peer sends no parseable head.
fn read_request_head(stream: &mut TcpStream) -> std::io::Result<Option<String>> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(_) => break,
        };
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST_BYTES {
            break;
        }
    }
    if buf.is_empty() {
        return Ok(None);
    }
    Ok(Some(String::from_utf8_lossy(&buf).into_owned()))
}

/// `"GET /metrics HTTP/1.1\r\n..."` → `("GET", "/metrics")`.
fn parse_request_line(head: &str) -> Option<(&str, &str)> {
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let target = parts.next()?;
    Some((method, target))
}

/// First value of `key` in an `a=1&b=2` query string.
fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then_some(v)
    })
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::tracer::RecordArgs;

    fn get(addr: SocketAddr, target: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {target} HTTP/1.1\r\nHost: x\r\n\r\n").expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let status: u16 = response
            .split_whitespace()
            .nth(1)
            .expect("status")
            .parse()
            .expect("numeric status");
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn serves_healthz_metrics_and_trace() {
        let registry = MetricsRegistry::new();
        registry.inc("pulls{shard=0}", 7);
        let collector = TraceCollector::wall(64);
        let tracer = collector.tracer();
        tracer.record(
            EventKind::PushApplied,
            RecordArgs::new().shard(0).worker(1).progress(3).v_train(2),
        );
        let server = serve(
            "127.0.0.1:0".parse().expect("addr"),
            registry.clone(),
            Some(collector),
        )
        .expect("bind");
        let addr = server.local_addr();

        let (status, body) = get(addr, "/healthz");
        assert_eq!((status, body.as_str()), (200, "ok\n"));

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("# TYPE pulls counter"));
        assert!(body.contains("pulls{shard=\"0\"} 7"));
        assert!(body.contains("trace_events_recorded{kind=\"push_applied\"} 1"));
        assert_eq!(registry.counter_value("introspection_scrapes_total"), 1);

        let (status, body) = get(addr, "/trace?last=1");
        assert_eq!(status, 200);
        assert_eq!(body.lines().count(), 1);
        assert!(body.contains("\"kind\":\"push_applied\""));

        let (status, _) = get(addr, "/nope");
        assert_eq!(status, 404);
        server.stop();
    }

    #[test]
    fn healthz_reflects_the_attached_health_view() {
        use crate::health::NodeHealth;
        let health = HealthView::new();
        let server = serve_with_health(
            "127.0.0.1:0".parse().expect("addr"),
            MetricsRegistry::new(),
            None,
            Some(health.clone()),
        )
        .expect("bind");
        let addr = server.local_addr();

        // All alive: ready.
        health.update(vec![NodeHealth {
            name: "server0".into(),
            last_seen_age_ms: 3,
            dead: false,
        }]);
        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        assert!(body.starts_with("ready\n"));
        assert!(body.contains("node server0 age_ms 3 alive"));

        // One dead: degraded, 503.
        health.update(vec![
            NodeHealth {
                name: "server0".into(),
                last_seen_age_ms: 4,
                dead: false,
            },
            NodeHealth {
                name: "server1".into(),
                last_seen_age_ms: 9000,
                dead: true,
            },
        ]);
        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 503);
        assert!(body.starts_with("degraded\n"));
        assert!(body.contains("dead_nodes 1"));
        server.stop();
    }

    #[test]
    fn trace_route_filters_by_actor() {
        let collector = TraceCollector::wall(64);
        let tracer = collector.tracer();
        tracer.record(EventKind::PushApplied, RecordArgs::new().shard(0).worker(1));
        tracer.record(EventKind::PushApplied, RecordArgs::new().shard(0).worker(2));
        tracer.record(EventKind::VTrainAdvanced, RecordArgs::new().shard(3));
        let server = serve(
            "127.0.0.1:0".parse().expect("addr"),
            MetricsRegistry::new(),
            Some(collector),
        )
        .expect("bind");
        let addr = server.local_addr();

        let (status, body) = get(addr, "/trace?actor=worker1");
        assert_eq!(status, 200);
        assert_eq!(body.lines().count(), 1);
        assert!(body.contains("\"worker\":1"));

        let (status, body) = get(addr, "/trace?actor=shard0");
        assert_eq!(status, 200);
        assert_eq!(body.lines().count(), 2);

        // Bare id matches either side; composes with last=N.
        let (status, body) = get(addr, "/trace?actor=0&last=1");
        assert_eq!(status, 200);
        assert_eq!(body.lines().count(), 1);

        let (status, _) = get(addr, "/trace?actor=bogus");
        assert_eq!(status, 400);
        server.stop();
    }

    #[test]
    fn trace_route_filters_by_kind_and_composes() {
        let collector = TraceCollector::wall(64);
        let tracer = collector.tracer();
        tracer.record(EventKind::PushApplied, RecordArgs::new().shard(0).worker(1));
        tracer.record(
            EventKind::PullRequested,
            RecordArgs::new().shard(0).worker(1),
        );
        tracer.record(
            EventKind::PullRequested,
            RecordArgs::new().shard(0).worker(2),
        );
        let server = serve(
            "127.0.0.1:0".parse().expect("addr"),
            MetricsRegistry::new(),
            Some(collector),
        )
        .expect("bind");
        let addr = server.local_addr();

        let (status, body) = get(addr, "/trace?kind=pull_requested");
        assert_eq!(status, 200);
        assert_eq!(body.lines().count(), 2);
        assert!(body
            .lines()
            .all(|l| l.contains("\"kind\":\"pull_requested\"")));

        // kind= composes with actor= and last=.
        let (status, body) = get(addr, "/trace?kind=pull_requested&actor=worker1");
        assert_eq!(status, 200);
        assert_eq!(body.lines().count(), 1);
        assert!(body.contains("\"worker\":1"));

        let (status, body) = get(addr, "/trace?kind=pull_requested&last=1");
        assert_eq!(status, 200);
        assert_eq!(body.lines().count(), 1);
        assert!(body.contains("\"worker\":2"), "tail keeps the newest");

        let (status, _) = get(addr, "/trace?kind=no_such_kind");
        assert_eq!(status, 400);
        server.stop();
    }

    /// A collector with two stamped wire round-trips (requests 5 and 6,
    /// worker 0 and 1) plus one unstamped event.
    fn stamped_collector() -> TraceCollector {
        let collector = TraceCollector::wall(64);
        let tracer = collector.tracer();
        for (rid, worker) in [(5u64, 0u32), (6, 1)] {
            tracer.record(
                EventKind::WireSend,
                RecordArgs::new()
                    .shard(0)
                    .worker(worker)
                    .bytes(58)
                    .request_id(rid),
            );
            tracer.record(
                EventKind::WireRecv,
                RecordArgs::new()
                    .shard(0)
                    .worker(worker)
                    .bytes(58)
                    .request_id(rid),
            );
        }
        tracer.record(EventKind::VTrainAdvanced, RecordArgs::new().shard(0));
        collector
    }

    #[test]
    fn trace_route_filters_by_request_and_composes() {
        let server = serve(
            "127.0.0.1:0".parse().expect("addr"),
            MetricsRegistry::new(),
            Some(stamped_collector()),
        )
        .expect("bind");
        let addr = server.local_addr();

        let (status, body) = get(addr, "/trace?request=5");
        assert_eq!(status, 200);
        assert_eq!(body.lines().count(), 2);
        assert!(body.lines().all(|l| l.contains("\"request_id\":5")));

        // request= composes with kind=, actor= and last=.
        let (status, body) = get(addr, "/trace?request=5&kind=wire_send");
        assert_eq!(status, 200);
        assert_eq!(body.lines().count(), 1);
        assert!(body.contains("\"kind\":\"wire_send\""));
        let (status, body) = get(addr, "/trace?request=6&actor=worker1&last=1");
        assert_eq!(status, 200);
        assert_eq!(body.lines().count(), 1);
        assert!(body.contains("\"kind\":\"wire_recv\""), "tail keeps newest");
        let (status, body) = get(addr, "/trace?request=6&actor=worker0");
        assert_eq!(
            (status, body.lines().count()),
            (200, 0),
            "empty intersection"
        );

        let (status, _) = get(addr, "/trace?request=notanumber");
        assert_eq!(status, 400);
        server.stop();
    }

    #[test]
    fn waterfall_route_serves_ndjson_with_balance_header() {
        let registry = MetricsRegistry::new();
        let server = serve(
            "127.0.0.1:0".parse().expect("addr"),
            registry.clone(),
            Some(stamped_collector()),
        )
        .expect("bind");
        let addr = server.local_addr();

        let (status, body) = get(addr, "/waterfall?slowest=3");
        assert_eq!(status, 200);
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 3, "balance header + two waterfalls");
        for line in &lines {
            crate::json::validate(line).expect("every line is valid JSON");
        }
        assert!(lines[0].contains("\"observed\":2"));
        assert!(lines[0].contains("\"balanced\":true"));
        assert!(lines[0].contains("\"unstamped_events\":1"));
        assert!(lines[1].contains("\"stages\":["));

        // request= narrows to one waterfall; unknown ids are 404.
        let (status, body) = get(addr, "/waterfall?request=5");
        assert_eq!(status, 200);
        assert_eq!(body.lines().count(), 2);
        assert!(body.lines().nth(1).unwrap().contains("\"request_id\":5"));
        assert_eq!(get(addr, "/waterfall?request=999").0, 404);
        assert_eq!(get(addr, "/waterfall?request=bogus").0, 400);
        assert_eq!(get(addr, "/waterfall?top=1.5").0, 400);

        // The scrape refreshed exemplar-bearing histograms into /metrics.
        let (_, metrics) = get(addr, "/metrics");
        assert!(
            metrics.contains("waterfall_wire_us_max") && metrics.contains("request_id="),
            "{metrics}"
        );
        server.stop();
    }

    #[test]
    fn waterfall_route_without_collector_is_404() {
        let server = serve(
            "127.0.0.1:0".parse().expect("addr"),
            MetricsRegistry::new(),
            None,
        )
        .expect("bind");
        assert_eq!(get(server.local_addr(), "/waterfall").0, 404);
        server.stop();
    }

    #[test]
    fn slo_and_alerts_routes_serve_the_health_engine() {
        use crate::stream::{HealthEngine, StreamConfig};
        let engine = HealthEngine::with_default_rules(StreamConfig::all_run());
        engine.observe(&crate::event::TraceEvent {
            ts: 1.0,
            kind: EventKind::NodeDeclaredDead,
            shard: 0,
            worker: crate::event::NO_ID,
            progress: 5,
            ..Default::default()
        });
        let registry = MetricsRegistry::new();
        let server = serve_observed(
            "127.0.0.1:0".parse().expect("addr"),
            registry.clone(),
            None,
            None,
            Some(engine),
        )
        .expect("bind");
        let addr = server.local_addr();

        let (status, body) = get(addr, "/slo");
        assert_eq!(status, 200);
        assert!(body.contains("slo events 1\n"), "{body}");
        assert!(body.contains("alert dead_nodes firing\n"), "{body}");

        let (status, body) = get(addr, "/alerts");
        assert_eq!(status, 200);
        assert!(body.contains("\"rule\":\"dead_nodes\""));
        assert!(body.contains("\"transition\":\"firing\""));

        // The scrape refreshes the engine's gauges into /metrics.
        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(
            body.contains("alert_active{rule=\"dead_nodes\"} 1"),
            "{body}"
        );
        server.stop();
    }

    #[test]
    fn slo_and_alerts_without_engine_are_404() {
        let server = serve(
            "127.0.0.1:0".parse().expect("addr"),
            MetricsRegistry::new(),
            None,
        )
        .expect("bind");
        let addr = server.local_addr();
        assert_eq!(get(addr, "/slo").0, 404);
        assert_eq!(get(addr, "/alerts").0, 404);
        server.stop();
    }

    #[test]
    fn cluster_source_serves_merged_trace_and_collection_metrics() {
        let mut cluster = ClusterCollector::new(1024);
        let ev = |ts: f64, worker: u32| crate::event::TraceEvent {
            ts,
            kind: EventKind::PushApplied,
            shard: 0,
            worker,
            ..Default::default()
        };
        cluster.ingest("worker0", 0.0, 1, 1, 0, &[ev(1.0, 0)]);
        cluster.ingest("worker1", 0.5, 1, 2, 1, &[ev(2.0, 1)]);
        let server = serve_source(
            "127.0.0.1:0".parse().expect("addr"),
            MetricsRegistry::new(),
            Some(TraceSource::Cluster(Arc::new(Mutex::new(cluster)))),
            None,
        )
        .expect("bind");
        let addr = server.local_addr();

        let (status, body) = get(addr, "/trace");
        assert_eq!(status, 200);
        assert_eq!(body.lines().count(), 2);

        let (status, body) = get(addr, "/trace?actor=worker1");
        assert_eq!(status, 200);
        assert_eq!(body.lines().count(), 1);

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, 200);
        assert!(body.contains("trace_collect_nodes 2"));
        assert!(body.contains("trace_collect_received{node=\"worker0\"} 1"));
        assert!(body.contains("trace_collect_dropped{node=\"worker1\"} 1"));
        assert!(body.contains("trace_collect_offset_seconds{node=\"worker1\"} 0.5"));
        server.stop();
    }

    #[test]
    fn profile_route_serves_folded_and_speedscope() {
        use crate::prof::ProfCollector;
        let col = ProfCollector::wall();
        let prof = col.profiler();
        {
            let _outer = prof.enter("server/handle");
            let _inner = prof.enter("wire/encode");
        }
        let server = serve_profiled(
            "127.0.0.1:0".parse().expect("addr"),
            MetricsRegistry::new(),
            None,
            None,
            None,
            Some(col),
        )
        .expect("bind");
        let addr = server.local_addr();

        let (status, body) = get(addr, "/profile");
        assert_eq!(status, 200);
        assert!(body.contains("server/handle;wire/encode "), "{body}");
        for line in body.lines() {
            let (_, v) = line.rsplit_once(' ').expect("`path value` line");
            v.parse::<u64>().expect("integer value");
        }

        let (status, folded_allocs) = get(addr, "/profile?format=folded&metric=allocs");
        assert_eq!(status, 200);
        assert!(folded_allocs.contains("server/handle "));

        let (status, ss) = get(addr, "/profile?format=speedscope");
        assert_eq!(status, 200);
        crate::json::validate(&ss).expect("speedscope body is valid JSON");
        assert!(ss.contains("\"$schema\""));

        assert_eq!(get(addr, "/profile?format=bogus").0, 400);
        assert_eq!(get(addr, "/profile?metric=bogus").0, 400);

        // The profiled bind also seeded process metadata.
        let (_, metrics) = get(addr, "/metrics");
        assert!(metrics.contains("process_start_seconds"), "{metrics}");
        assert!(
            metrics.contains("fluentps_build_info{version="),
            "{metrics}"
        );
        server.stop();
    }

    #[test]
    fn profile_route_without_collector_is_404() {
        let server = serve(
            "127.0.0.1:0".parse().expect("addr"),
            MetricsRegistry::new(),
            None,
        )
        .expect("bind");
        let (status, _) = get(server.local_addr(), "/profile");
        assert_eq!(status, 404);
        server.stop();
    }

    #[test]
    fn trace_route_without_collector_is_404() {
        let server = serve(
            "127.0.0.1:0".parse().expect("addr"),
            MetricsRegistry::new(),
            None,
        )
        .expect("bind");
        let (status, _) = get(server.local_addr(), "/trace");
        assert_eq!(status, 404);
    }

    #[test]
    fn stop_joins_and_frees_the_port() {
        let server = serve(
            "127.0.0.1:0".parse().expect("addr"),
            MetricsRegistry::new(),
            None,
        )
        .expect("bind");
        let addr = server.local_addr();
        server.stop();
        // The listener is gone: a fresh bind to the same port succeeds.
        let rebind = TcpListener::bind(addr);
        assert!(rebind.is_ok(), "port still held after stop");
    }
}
