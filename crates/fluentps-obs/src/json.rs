//! Minimal JSON helpers: string escaping, number formatting, and a
//! validating parser.
//!
//! The workspace is hermetic (DESIGN.md §7) — no serde — so the exporters
//! in [`crate::export`] build JSON by hand. This module keeps that honest:
//! [`escape`] and [`number`] produce valid fragments, and [`validate`]
//! checks whole documents, which CI's golden-file gate uses to guarantee
//! the Chrome-trace exporter emits JSON that `chrome://tracing` will load.

/// Escape `s` as the *contents* of a JSON string (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format `v` as a valid JSON number. JSON has no NaN/Infinity; those
/// render as 0.
pub fn number(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v}");
        // Rust's Display for f64 is already valid JSON for finite values.
        s
    }
}

/// Why a document failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error.
    pub at: usize,
    /// Human-readable cause.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.msg)
    }
}

/// Check that `s` is one complete, valid JSON value.
pub fn validate(s: &str) -> Result<(), JsonError> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<(), JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.num(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<(), JsonError> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<(), JsonError> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), JsonError> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => self.pos += 1,
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn num(&mut self) -> Result<(), JsonError> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_quotes_and_control() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn number_is_json_safe() {
        assert_eq!(number(3.0), "3");
        assert_eq!(number(0.5), "0.5");
        assert_eq!(number(f64::NAN), "0");
        assert_eq!(number(f64::INFINITY), "0");
        for v in [3.0, 0.5, -1.25, 1e-9, 123456.789] {
            validate(&number(v)).unwrap();
        }
    }

    #[test]
    fn validates_well_formed_documents() {
        for doc in [
            "null",
            "true",
            "-12.5e3",
            "\"hi\\n\"",
            "[]",
            "{}",
            "[1, 2, {\"a\": [true, null]}]",
            "{\"traceEvents\": [{\"ph\": \"X\", \"ts\": 0.5}]}",
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "\"unterminated",
            "01",
            "1.0.0",
            "nul",
            "[1] trailing",
            "{1: 2}",
        ] {
            assert!(validate(doc).is_err(), "should reject: {doc}");
        }
    }
}
