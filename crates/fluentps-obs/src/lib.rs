//! # FluentPS observability
//!
//! The paper's entire argument is about *when* things happen: a DPR deferred
//! under lazy execution releases iterations later than under the soft
//! barrier (Fig. 3), per-shard push conditions overlap where a global
//! barrier serializes (Fig. 10), and the headline metric is DPRs per 100
//! iterations of `V_train` progress (Table IV). This crate makes those
//! timelines directly inspectable:
//!
//! * [`event`] — typed trace events ([`TraceEvent`]) carrying logical time
//!   (worker iteration, shard `V_train`) plus a timestamp from whichever
//!   clock the driver runs on: wall clock for the threaded and TCP engines,
//!   the virtual clock for the discrete-event simulator.
//! * [`ring`] — bounded ring buffers; recording is a branch on a disabled
//!   [`Tracer`], so instrumented hot paths cost nothing when tracing is off.
//! * [`tracer`] — the [`TraceCollector`] (one per run) hands out per-thread
//!   [`Tracer`] handles and merges their rings into a time-ordered
//!   [`Trace`].
//! * [`clock`] — [`ClockSource`]: wall ([`std::time::Instant`]) or virtual
//!   ([`VirtualClock`], driven by the simulator's event queue).
//! * [`metrics`] — a registry of labeled counters, gauges and
//!   [`Histogram`]s with a plain-text renderer.
//! * [`export`] — Chrome trace-event JSON (open in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev)), JSONL, and a human-readable text
//!   summary. DPR defer→release pairs become duration spans.
//! * [`hist`] — the power-of-two-bucket [`Histogram`] (moved here from
//!   `fluentps-core` so both the metrics registry and `ShardStats` share
//!   one implementation).
//! * [`json`] — a tiny writer/validator so exported traces can be checked
//!   without external tools (the workspace is hermetic; see DESIGN.md §7).
//!
//! Everything is std-only: the crate depends only on `fluentps-util`.

#![warn(missing_docs)]

pub mod clock;
pub mod event;
pub mod export;
pub mod hist;
pub mod json;
pub mod metrics;
pub mod ring;
pub mod tracer;

pub use clock::{ClockSource, VirtualClock};
pub use event::{EventKind, TraceEvent, KINDS, NO_ID};
pub use hist::Histogram;
pub use metrics::{MetricsRegistry, MetricsScope};
pub use tracer::{Trace, TraceCollector, Tracer};
