//! # FluentPS observability
//!
//! The paper's entire argument is about *when* things happen: a DPR deferred
//! under lazy execution releases iterations later than under the soft
//! barrier (Fig. 3), per-shard push conditions overlap where a global
//! barrier serializes (Fig. 10), and the headline metric is DPRs per 100
//! iterations of `V_train` progress (Table IV). This crate makes those
//! timelines directly inspectable:
//!
//! * [`event`] — typed trace events ([`TraceEvent`]) carrying logical time
//!   (worker iteration, shard `V_train`) plus a timestamp from whichever
//!   clock the driver runs on: wall clock for the threaded and TCP engines,
//!   the virtual clock for the discrete-event simulator.
//! * [`ring`] — bounded ring buffers; recording is a branch on a disabled
//!   [`Tracer`], so instrumented hot paths cost nothing when tracing is off.
//! * [`tracer`] — the [`TraceCollector`] (one per run) hands out per-thread
//!   [`Tracer`] handles and merges their rings into a time-ordered
//!   [`Trace`].
//! * [`clock`] — [`ClockSource`]: wall ([`std::time::Instant`]) or virtual
//!   ([`VirtualClock`], driven by the simulator's event queue).
//! * [`collect`] — cluster-wide collection: NTP-style clock-offset
//!   estimation ([`OffsetEstimator`]), a hybrid logical clock ([`Hlc`])
//!   and the [`ClusterCollector`] that merges N per-node streams into one
//!   causally-consistent [`Trace`] with exact per-node drop accounting.
//! * [`metrics`] — a registry of labeled counters, gauges and
//!   [`Histogram`]s with a plain-text renderer.
//! * [`prof`] — the in-process cooperative profiler: RAII span guards on a
//!   per-thread stack, aggregation by full stack path into call count +
//!   self/total time + allocation deltas (via the counting allocator in
//!   `fluentps-util`), with folded-stack and speedscope exports.
//! * [`export`] — Chrome trace-event JSON (open in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev)), JSONL, and a human-readable text
//!   summary. DPR defer→release pairs become duration spans.
//! * [`analyze`] — the trace-analytics engine: per-worker time breakdowns,
//!   straggler scoreboard, per-shard sync health (DPR residence, late-push
//!   drop rate, `V_train` cadence), staleness/block-rate per gap, and
//!   critical-path extraction; plus a parser for exported JSONL traces.
//! * [`stream`] — the live counterpart of [`analyze`]: an incremental
//!   [`StreamAnalyzer`] with tumbling/sliding windows of tail latency,
//!   staleness and progress rates, and the shareable [`HealthEngine`]
//!   every layer feeds and reads.
//! * [`alert`] — declarative threshold rules over closed windows plus a
//!   logical liveness rule, producing typed firing/resolved transitions
//!   with a deterministic fingerprint.
//! * [`http`] — a hand-rolled HTTP/1.1 introspection endpoint on
//!   `std::net::TcpListener` serving `/metrics` (Prometheus text),
//!   `/healthz`, `/trace?last=N`, `/slo` and `/alerts` from a live run.
//! * [`waterfall`] — exact per-request waterfalls assembled from the causal
//!   context (`fluentps-transport`'s `CausalCtx`) every stamped event
//!   carries: duplicate-safe, order-insensitive assembly, tail-based
//!   sampling with exact drop accounting, deterministic `waterfall-` lines,
//!   and exemplar-bearing latency histograms (DESIGN.md §17).
//! * [`hist`] — the power-of-two-bucket [`Histogram`] (moved here from
//!   `fluentps-core` so both the metrics registry and `ShardStats` share
//!   one implementation).
//! * [`json`] — a tiny writer/validator so exported traces can be checked
//!   without external tools (the workspace is hermetic; see DESIGN.md §7).
//!
//! Everything is std-only: the crate depends only on `fluentps-util`.

#![warn(missing_docs)]

pub mod alert;
pub mod analyze;
pub mod clock;
pub mod collect;
pub mod event;
pub mod export;
pub mod health;
pub mod hist;
pub mod http;
pub mod json;
pub mod metrics;
pub mod prof;
pub mod ring;
pub mod stream;
pub mod tracer;
pub mod waterfall;

pub use alert::{AlertEngine, AlertMetric, AlertRule, AlertTransition};
pub use analyze::{analyze, Analysis, WireCheck};
pub use clock::{ClockSource, VirtualClock};
pub use collect::{ClusterCollector, Hlc, NodeStats, OffsetEstimator};
pub use event::{EventKind, TraceEvent, KINDS, NO_ID};
pub use health::{ConsensusHealth, HealthView, NodeHealth};
pub use hist::Histogram;
pub use http::{IntrospectionServer, TraceSource};
pub use metrics::{MetricsRegistry, MetricsScope};
pub use prof::{ProfCollector, ProfMetric, ProfileReport, Profiler, SpanGuard, SpanStat};
pub use stream::{
    HealthEngine, HealthTap, StreamAnalyzer, StreamConfig, WindowStats, WindowedHistogram,
};
pub use tracer::{CursorBatch, RecordArgs, Trace, TraceCollector, TraceCursor, Tracer};
pub use waterfall::{
    assemble, tail_sample, Sampled, SamplerConfig, Stage, Waterfall, WaterfallSet,
};
