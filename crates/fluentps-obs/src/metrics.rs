//! A small metrics registry: labeled counters, gauges and [`Histogram`]s.
//!
//! Names follow the Prometheus convention `base{label=value,...}` with
//! labels sorted by insertion through [`MetricsScope::with`]; the text
//! renderer emits one `name value` line per metric, sorted by name, so
//! output is stable for golden tests.

use std::collections::BTreeMap;
use std::sync::Arc;

use fluentps_util::sync::Mutex;

use crate::hist::Histogram;

#[derive(Debug, Clone)]
enum Metric {
    Counter(u64),
    Gauge(f64),
    Hist(Histogram),
}

/// A shared, thread-safe registry of named metrics.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
    /// Optional per-family help text for the Prometheus renderer, keyed by
    /// family base name (no labels). Families without an entry get a
    /// default derived from the name.
    help: Arc<Mutex<BTreeMap<String, String>>>,
    /// OpenMetrics-style exemplars, keyed by histogram name: the
    /// `(value, request_id)` of the largest observation recorded through
    /// [`MetricsRegistry::observe_exemplar`]. Rendered on the `_max`
    /// sample line so a scrape can link a latency bucket back to the
    /// retained request waterfall that produced it.
    exemplars: Arc<Mutex<BTreeMap<String, (u64, u64)>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register help text for the metric family `base` (the name without
    /// labels), emitted as a `# HELP` line by
    /// [`MetricsRegistry::render_prometheus`]. Families never registered
    /// here get a default derived from the name (underscores become
    /// spaces).
    pub fn set_help(&self, base: &str, text: &str) {
        self.help.lock().insert(base.to_string(), text.to_string());
    }

    /// Seed process metadata so scrapes can compute uptime and correlate
    /// runs: `process_start_seconds` (Unix time this registry's process
    /// registered metrics — set once, never overwritten) and
    /// `fluentps_build_info` (a constant `1` carrying the crate version as
    /// a label). The introspection servers call this at bind time, so
    /// every served registry carries both.
    pub fn register_process_metrics(&self) {
        {
            let mut m = self.metrics.lock();
            m.entry("process_start_seconds".to_string())
                .or_insert_with(|| {
                    let now = std::time::SystemTime::now()
                        .duration_since(std::time::UNIX_EPOCH)
                        .map(|d| d.as_secs_f64())
                        .unwrap_or(0.0);
                    Metric::Gauge(now)
                });
            m.entry(format!(
                "fluentps_build_info{{version={}}}",
                env!("CARGO_PKG_VERSION")
            ))
            .or_insert(Metric::Gauge(1.0));
        }
        let mut help = self.help.lock();
        help.entry("process_start_seconds".to_string())
            .or_insert_with(|| {
                "unix time the process registered metrics; now() minus this is uptime".to_string()
            });
        help.entry("fluentps_build_info".to_string())
            .or_insert_with(|| "constant 1, labeled with the fluentps version".to_string());
    }

    /// A scope with no labels; add them with [`MetricsScope::with`].
    pub fn scope(&self) -> MetricsScope {
        MetricsScope {
            registry: self.clone(),
            labels: String::new(),
        }
    }

    /// Add `by` to the counter `name` (created at 0).
    pub fn inc(&self, name: &str, by: u64) {
        let mut m = self.metrics.lock();
        match m.entry(name.to_string()).or_insert(Metric::Counter(0)) {
            Metric::Counter(c) => *c += by,
            other => *other = Metric::Counter(by),
        }
    }

    /// Set the gauge `name` to `value`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.metrics
            .lock()
            .insert(name.to_string(), Metric::Gauge(value));
    }

    /// Record `value` into the histogram `name` (created empty).
    pub fn observe(&self, name: &str, value: u64) {
        let mut m = self.metrics.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Hist(Histogram::new()))
        {
            Metric::Hist(h) => h.record(value),
            other => {
                let mut h = Histogram::new();
                h.record(value);
                *other = Metric::Hist(h);
            }
        }
    }

    /// Record `value` into the histogram `name` and attach `request_id` as
    /// the exemplar if this is the largest observation so far — the
    /// Prometheus renderer emits it on the `_max` sample line as
    /// `` # {request_id="..."} value``, linking the bucket to a retained
    /// request waterfall (see [`crate::waterfall::export_metrics`]).
    pub fn observe_exemplar(&self, name: &str, value: u64, request_id: u64) {
        self.observe(name, value);
        let mut ex = self.exemplars.lock();
        let entry = ex.entry(name.to_string()).or_insert((value, request_id));
        if value >= entry.0 {
            *entry = (value, request_id);
        }
    }

    /// The exemplar `(value, request_id)` attached to the histogram
    /// `name`, if any observation went through
    /// [`MetricsRegistry::observe_exemplar`].
    pub fn exemplar(&self, name: &str) -> Option<(u64, u64)> {
        self.exemplars.lock().get(name).copied()
    }

    /// Current value of the counter `name` (0 if absent or not a counter).
    pub fn counter_value(&self, name: &str) -> u64 {
        match self.metrics.lock().get(name) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// Current value of the gauge `name`, if set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        match self.metrics.lock().get(name) {
            Some(Metric::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// A copy of the histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        match self.metrics.lock().get(name) {
            Some(Metric::Hist(h)) => Some(h.clone()),
            _ => None,
        }
    }

    /// Render every metric as `name value` lines, sorted by name.
    /// Histograms render as `name_count`, `name_mean`, `name_p50`,
    /// `name_p99`, `name_max`.
    pub fn render_text(&self) -> String {
        let m = self.metrics.lock();
        let mut out = String::new();
        for (name, metric) in m.iter() {
            match metric {
                Metric::Counter(c) => out.push_str(&format!("{name} {c}\n")),
                Metric::Gauge(g) => out.push_str(&format!("{name} {g}\n")),
                Metric::Hist(h) => {
                    out.push_str(&format!("{name}_count {}\n", h.count()));
                    out.push_str(&format!("{name}_mean {:.3}\n", h.mean()));
                    out.push_str(&format!("{name}_p50 {}\n", h.quantile_upper(0.5)));
                    out.push_str(&format!("{name}_p99 {}\n", h.quantile_upper(0.99)));
                    out.push_str(&format!("{name}_max {}\n", h.max()));
                }
            }
        }
        out
    }

    /// Render every metric in the Prometheus text exposition format:
    /// one `# HELP` + `# TYPE` comment pair per metric family (help from
    /// [`MetricsRegistry::set_help`], or derived from the name), label
    /// values quoted, and histogram suffixes (`_count`, `_mean`, `_p50`,
    /// `_p99`, `_max`) attached to the base name *before* the label set.
    /// Families are grouped so every sample follows its comment lines.
    pub fn render_prometheus(&self) -> String {
        // family base name -> (type string, sample lines)
        let mut families: BTreeMap<String, (&'static str, Vec<String>)> = BTreeMap::new();
        let sample = |families: &mut BTreeMap<String, (&'static str, Vec<String>)>,
                      base: &str,
                      labels: &str,
                      ty: &'static str,
                      value: String| {
            let fam = families
                .entry(base.to_string())
                .or_insert_with(|| (ty, Vec::new()));
            fam.1.push(format!("{base}{labels} {value}\n"));
        };
        let m = self.metrics.lock();
        let exemplars = self.exemplars.lock();
        for (name, metric) in m.iter() {
            let (base, labels) = split_labels(name);
            let labels = prometheus_labels(&labels);
            match metric {
                Metric::Counter(c) => {
                    sample(&mut families, base, &labels, "counter", format!("{c}"))
                }
                Metric::Gauge(g) => sample(&mut families, base, &labels, "gauge", format!("{g}")),
                Metric::Hist(h) => {
                    // The exemplar rides the `_max` sample in OpenMetrics
                    // style: `value # {request_id="..."} exemplar_value`.
                    let max_sample = match exemplars.get(name) {
                        Some((v, rid)) => {
                            format!("{} # {{request_id=\"{rid}\"}} {v}", h.max())
                        }
                        None => format!("{}", h.max()),
                    };
                    let parts: [(&str, String); 5] = [
                        ("_count", format!("{}", h.count())),
                        ("_mean", format!("{:.3}", h.mean())),
                        ("_p50", format!("{}", h.quantile_upper(0.5))),
                        ("_p99", format!("{}", h.quantile_upper(0.99))),
                        ("_max", max_sample),
                    ];
                    for (suffix, value) in parts {
                        sample(
                            &mut families,
                            &format!("{base}{suffix}"),
                            &labels,
                            "gauge",
                            value,
                        );
                    }
                }
            }
        }
        let help = self.help.lock();
        let mut out = String::new();
        for (base, (ty, lines)) in families {
            let text = match help.get(&base) {
                Some(t) => escape_help(t),
                None => base.replace('_', " "),
            };
            out.push_str(&format!("# HELP {base} {text}\n"));
            out.push_str(&format!("# TYPE {base} {ty}\n"));
            for line in lines {
                out.push_str(&line);
            }
        }
        out
    }
}

/// Escape help text per the exposition format: backslash and line feed
/// must appear as `\\` and `\n` (help text is not quoted, so these are the
/// only escapes).
fn escape_help(t: &str) -> String {
    t.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Split a registry key `base{l=v,...}` into the base name and the raw
/// label string (`""` when unlabeled).
fn split_labels(name: &str) -> (&str, String) {
    match name.split_once('{') {
        Some((base, rest)) => (base, rest.trim_end_matches('}').to_string()),
        None => (name, String::new()),
    }
}

/// Re-render a raw `l=v,l2=v2` label string with Prometheus quoting:
/// `{l="v",l2="v2"}`.
fn prometheus_labels(raw: &str) -> String {
    if raw.is_empty() {
        return String::new();
    }
    let quoted: Vec<String> = raw
        .split(',')
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => format!("{k}=\"{}\"", escape_label_value(v)),
            None => pair.to_string(),
        })
        .collect();
    format!("{{{}}}", quoted.join(","))
}

/// Escape a label value per the Prometheus text exposition format:
/// backslash, double quote, and line feed must appear as `\\`, `\"` and
/// `\n` inside the quoted value. Backslashes go first so the escapes
/// themselves are not re-escaped.
fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// A label set bound to a registry: `scope.with("shard", "0").inc("dprs", 1)`
/// updates the metric `dprs{shard=0}`.
#[derive(Debug, Clone)]
pub struct MetricsScope {
    registry: MetricsRegistry,
    labels: String,
}

impl MetricsScope {
    /// This scope plus one more `label=value` pair.
    pub fn with(&self, label: &str, value: impl std::fmt::Display) -> MetricsScope {
        let mut labels = self.labels.clone();
        if !labels.is_empty() {
            labels.push(',');
        }
        labels.push_str(&format!("{label}={value}"));
        MetricsScope {
            registry: self.registry.clone(),
            labels,
        }
    }

    fn name(&self, base: &str) -> String {
        if self.labels.is_empty() {
            base.to_string()
        } else {
            format!("{base}{{{}}}", self.labels)
        }
    }

    /// Add `by` to the labeled counter `base`.
    pub fn inc(&self, base: &str, by: u64) {
        self.registry.inc(&self.name(base), by);
    }

    /// Set the labeled gauge `base`.
    pub fn set_gauge(&self, base: &str, value: f64) {
        self.registry.set_gauge(&self.name(base), value);
    }

    /// Record into the labeled histogram `base`.
    pub fn observe(&self, base: &str, value: u64) {
        self.registry.observe(&self.name(base), value);
    }

    /// Current value of the labeled counter `base`.
    pub fn counter_value(&self, base: &str) -> u64 {
        self.registry.counter_value(&self.name(base))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = MetricsRegistry::new();
        r.inc("pushes", 2);
        r.inc("pushes", 3);
        assert_eq!(r.counter_value("pushes"), 5);
        assert_eq!(r.counter_value("absent"), 0);
    }

    #[test]
    fn scopes_build_labeled_names() {
        let r = MetricsRegistry::new();
        let shard0 = r.scope().with("shard", 0);
        let shard1 = r.scope().with("shard", 1);
        shard0.inc("dprs", 4);
        shard1.inc("dprs", 7);
        shard0.with("worker", 2).inc("pulls", 1);
        assert_eq!(r.counter_value("dprs{shard=0}"), 4);
        assert_eq!(r.counter_value("dprs{shard=1}"), 7);
        assert_eq!(r.counter_value("pulls{shard=0,worker=2}"), 1);
    }

    #[test]
    fn gauges_overwrite() {
        let r = MetricsRegistry::new();
        r.set_gauge("live_servers", 4.0);
        r.set_gauge("live_servers", 3.0);
        assert_eq!(r.gauge_value("live_servers"), Some(3.0));
    }

    #[test]
    fn histograms_observe_and_render() {
        let r = MetricsRegistry::new();
        for v in [1u64, 2, 3, 100] {
            r.observe("dpr_wait", v);
        }
        let h = r.histogram("dpr_wait").unwrap();
        assert_eq!(h.count(), 4);
        let text = r.render_text();
        assert!(text.contains("dpr_wait_count 4"));
        assert!(text.contains("dpr_wait_max 100"));
    }

    #[test]
    fn prometheus_rendering_quotes_labels_and_types_families() {
        let r = MetricsRegistry::new();
        r.inc("pulls{shard=0,worker=2}", 3);
        r.inc("pulls{shard=1,worker=0}", 1);
        r.set_gauge("live_servers", 2.0);
        r.observe("dpr_wait{shard=0}", 7);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE pulls counter\n"));
        assert!(text.contains("pulls{shard=\"0\",worker=\"2\"} 3\n"));
        assert!(text.contains("pulls{shard=\"1\",worker=\"0\"} 1\n"));
        assert!(text.contains("# TYPE live_servers gauge\n"));
        assert!(text.contains("live_servers 2\n"));
        // Histogram suffixes attach to the base name, before the labels.
        assert!(text.contains("dpr_wait_count{shard=\"0\"} 1\n"));
        assert!(text.contains("dpr_wait_max{shard=\"0\"} 7\n"));
        // Every sample follows its family's TYPE line; a family is typed
        // exactly once.
        assert_eq!(text.matches("# TYPE pulls ").count(), 1);
        // Every family carries a HELP line immediately before its TYPE
        // line; unregistered families get a default derived from the name.
        assert!(text.contains("# HELP pulls pulls\n# TYPE pulls counter\n"));
        assert!(text.contains("# HELP live_servers live servers\n"));
        assert!(text.contains("# HELP dpr_wait_count dpr wait count\n"));
        assert_eq!(
            text.matches("# HELP ").count(),
            text.matches("# TYPE ").count()
        );
        // Stable output.
        assert_eq!(text, r.render_prometheus());
    }

    #[test]
    fn registered_help_text_wins_and_is_escaped() {
        let r = MetricsRegistry::new();
        r.inc("pulls{shard=0}", 1);
        r.set_help("pulls", "sPull requests handled\nback\\slash");
        let text = r.render_prometheus();
        assert!(
            text.contains("# HELP pulls sPull requests handled\\nback\\\\slash\n"),
            "help escaping: {text}"
        );
        // Comment lines stay one-per-line: no raw newline leaks through.
        assert!(!text.contains("handled\nback"));
    }

    #[test]
    fn process_metrics_seed_once_and_render_with_help() {
        let r = MetricsRegistry::new();
        r.register_process_metrics();
        let start = r.gauge_value("process_start_seconds").expect("seeded");
        assert!(start > 1.0e9, "unix-epoch seconds expected: {start}");
        // Idempotent: a second registration never rewinds the start time.
        std::thread::sleep(std::time::Duration::from_millis(5));
        r.register_process_metrics();
        assert_eq!(r.gauge_value("process_start_seconds"), Some(start));
        let text = r.render_prometheus();
        assert!(text.contains("# HELP process_start_seconds unix time"));
        assert!(text.contains("# TYPE fluentps_build_info gauge\n"));
        assert!(
            text.contains(&format!(
                "fluentps_build_info{{version=\"{}\"}} 1\n",
                env!("CARGO_PKG_VERSION")
            )),
            "build info sample: {text}"
        );
    }

    #[test]
    fn prometheus_rendering_escapes_label_values() {
        let r = MetricsRegistry::new();
        r.inc("errors{msg=back\\slash}", 1);
        r.inc("errors{msg=say \"hi\"}", 2);
        r.inc("errors{msg=two\nlines}", 3);
        let text = r.render_prometheus();
        assert!(
            text.contains("errors{msg=\"back\\\\slash\"} 1\n"),
            "backslash must render as \\\\: {text}"
        );
        assert!(
            text.contains("errors{msg=\"say \\\"hi\\\"\"} 2\n"),
            "quotes must render as \\\": {text}"
        );
        assert!(
            text.contains("errors{msg=\"two\\nlines\"} 3\n"),
            "newline must render as literal \\n: {text}"
        );
        // No raw newline may survive inside a sample line.
        for line in text.lines() {
            assert!(!line.is_empty());
        }
        assert!(!text.contains("two\nlines"));
    }

    #[test]
    fn exemplars_ride_the_max_sample_line() {
        let r = MetricsRegistry::new();
        r.observe_exemplar("wire_us", 10, 101);
        r.observe_exemplar("wire_us", 50, 202);
        r.observe_exemplar("wire_us", 20, 303);
        // The exemplar tracks the largest observation, not the latest.
        assert_eq!(r.exemplar("wire_us"), Some((50, 202)));
        assert_eq!(r.histogram("wire_us").unwrap().count(), 3);
        let text = r.render_prometheus();
        assert!(
            text.contains("wire_us_max 50 # {request_id=\"202\"} 50\n"),
            "exemplar on _max: {text}"
        );
        // Plain observations never grow an exemplar.
        r.observe("plain_us", 7);
        assert_eq!(r.exemplar("plain_us"), None);
        assert!(r.render_prometheus().contains("plain_us_max 7\n"));
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let r = MetricsRegistry::new();
        r.inc("b", 1);
        r.inc("a", 1);
        r.set_gauge("c", 0.5);
        assert_eq!(r.render_text(), "a 1\nb 1\nc 0.5\n");
        assert_eq!(r.render_text(), r.render_text());
    }
}
