//! In-process cooperative profiler: span-stack timing plus allocation
//! accounting, in the same mold as [`tracer`](crate::tracer).
//!
//! The tracer answers *what happened when*; this module answers *where the
//! cycles and bytes go inside a node*. Instrumented code opens named spans
//! with RAII guards:
//!
//! ```
//! # use fluentps_obs::prof::ProfCollector;
//! let collector = ProfCollector::wall();
//! let prof = collector.profiler();
//! {
//!     let _outer = prof.enter("server/handle");
//!     let _inner = prof.enter("server/apply_push");
//!     // ... work ...
//! }
//! let report = collector.snapshot();
//! assert!(report.spans.contains_key("server/handle;server/apply_push"));
//! ```
//!
//! Each thread keeps one span stack (shared by every [`Profiler`] handle,
//! so spans opened by different components nest into one call path). When a
//! guard drops, the span is aggregated under its full stack path
//! (`outer;inner;leaf`, flamegraph folded-stack style) into a call count,
//! total and self wall time, and allocation deltas read from the counting
//! global allocator in `fluentps-util::alloc`.
//!
//! The cost contract mirrors the tracer's: a *disabled* profiler is a
//! `None` — [`Profiler::enter`] and the guard drop are each a single branch,
//! no clock read, no thread-local touch, no allocation (benched as
//! `prof/disabled`, next to `tracer/disabled_record`). An *enabled* span
//! reads the clock and the thread's allocation counters twice and takes one
//! uncontended per-handle mutex at exit.
//!
//! Time comes from a pluggable [`ClockSource`], so simulator runs profile
//! deterministically under virtual time: with a [`VirtualClock`]
//! (see [`crate::clock`]) the aggregated timings — and therefore the folded
//! and speedscope exports — are bit-identical across same-seed runs.
//! Allocation counts are *not* part of that determinism contract (they
//! include allocator-internal effects of the surrounding run); see
//! DESIGN.md §15.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use fluentps_util::alloc::thread_counters;
use fluentps_util::sync::Mutex;

use crate::clock::ClockSource;
use crate::json;

/// One open span on the current thread's stack.
struct Frame {
    name: &'static str,
    start: f64,
    allocs0: u64,
    bytes0: u64,
    /// Wall time already attributed to completed children.
    child_secs: f64,
    /// Allocations already attributed to completed children.
    child_allocs: u64,
    /// Bytes already attributed to completed children.
    child_bytes: u64,
}

thread_local! {
    /// The thread's span stack. Process-wide (not per collector) so spans
    /// opened through different [`Profiler`] handles nest into one path.
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Aggregated statistics for one stack path.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStat {
    /// Times a span with this exact stack path completed.
    pub count: u64,
    /// Wall seconds between enter and exit, summed over all calls.
    pub total_secs: f64,
    /// `total_secs` minus time attributed to child spans.
    pub self_secs: f64,
    /// Heap allocations between enter and exit, summed over all calls.
    pub allocs: u64,
    /// Heap bytes allocated between enter and exit, summed over all calls.
    pub alloc_bytes: u64,
    /// `allocs` minus allocations attributed to child spans.
    pub self_allocs: u64,
    /// `alloc_bytes` minus bytes attributed to child spans.
    pub self_alloc_bytes: u64,
}

impl SpanStat {
    fn absorb(&mut self, other: &SpanStat) {
        self.count += other.count;
        self.total_secs += other.total_secs;
        self.self_secs += other.self_secs;
        self.allocs += other.allocs;
        self.alloc_bytes += other.alloc_bytes;
        self.self_allocs += other.self_allocs;
        self.self_alloc_bytes += other.self_alloc_bytes;
    }
}

type Agg = Arc<Mutex<BTreeMap<String, SpanStat>>>;

struct Shared {
    clock: ClockSource,
    aggs: Mutex<Vec<Agg>>,
}

/// Owns the aggregation maps for one profiled run; hands out [`Profiler`]
/// handles (one per thread or component, like [`TraceCollector`]
/// (crate::TraceCollector) hands out tracers) and merges them into a
/// [`ProfileReport`] on demand.
#[derive(Clone)]
pub struct ProfCollector {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for ProfCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfCollector")
            .field("handles", &self.shared.aggs.lock().len())
            .finish()
    }
}

impl ProfCollector {
    /// A collector reading time from `clock`.
    pub fn new(clock: ClockSource) -> Self {
        ProfCollector {
            shared: Arc::new(Shared {
                clock,
                aggs: Mutex::new(Vec::new()),
            }),
        }
    }

    /// A wall-clock collector whose epoch is now.
    pub fn wall() -> Self {
        Self::new(ClockSource::wall())
    }

    /// Register a new aggregation map and return an enabled profiler
    /// writing into it. Each handle aggregates independently (so exits on
    /// different threads never contend); [`ProfCollector::snapshot`] merges
    /// them by path.
    pub fn profiler(&self) -> Profiler {
        let agg: Agg = Arc::new(Mutex::new(BTreeMap::new()));
        self.shared.aggs.lock().push(Arc::clone(&agg));
        Profiler(Some(ProfInner {
            clock: self.shared.clock.clone(),
            agg,
        }))
    }

    /// Merge every handle's aggregation into one report, keyed by full
    /// stack path. Non-destructive: profilers keep aggregating afterwards.
    /// Spans still open at snapshot time are not included.
    pub fn snapshot(&self) -> ProfileReport {
        let mut spans: BTreeMap<String, SpanStat> = BTreeMap::new();
        for agg in self.shared.aggs.lock().iter() {
            for (path, stat) in agg.lock().iter() {
                spans.entry(path.clone()).or_default().absorb(stat);
            }
        }
        ProfileReport { spans }
    }
}

#[derive(Clone)]
struct ProfInner {
    clock: ClockSource,
    agg: Agg,
}

/// A per-thread (or per-component) span-recording handle.
/// [`Profiler::disabled`] is the free default: entering a span is a branch
/// on `None` and the returned guard's drop is another.
#[derive(Clone, Default)]
pub struct Profiler(Option<ProfInner>);

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Profiler")
            .field(&if self.0.is_some() {
                "enabled"
            } else {
                "disabled"
            })
            .finish()
    }
}

impl Profiler {
    /// A profiler that records nothing, at no cost.
    pub fn disabled() -> Self {
        Profiler(None)
    }

    /// Whether spans will actually be recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Open a span named `name` on this thread's stack; the returned guard
    /// closes it on drop. Span names are static so the hot path never
    /// allocates at enter; the full stack path (`a;b;c`) is materialized
    /// once at exit.
    ///
    /// Guards close in LIFO order per thread under normal RAII use. A
    /// leaked guard (`mem::forget`) leaves its frame open; the enclosing
    /// span absorbs the orphan's time into its own self time when it
    /// closes, and nothing is recorded for the leaked span.
    #[must_use = "the span closes when the guard drops"]
    pub fn enter(&self, name: &'static str) -> SpanGuard {
        match &self.0 {
            Some(inner) => {
                let start = inner.clock.now();
                let (allocs0, bytes0) = thread_counters();
                let depth = STACK.with(|s| {
                    let mut stack = s.borrow_mut();
                    stack.push(Frame {
                        name,
                        start,
                        allocs0,
                        bytes0,
                        child_secs: 0.0,
                        child_allocs: 0,
                        child_bytes: 0,
                    });
                    stack.len()
                });
                SpanGuard {
                    armed: Some((inner.clone(), depth)),
                }
            }
            None => SpanGuard { armed: None },
        }
    }
}

/// Closes its span on drop, recording the aggregate into the profiler that
/// opened it. Owns its handles, so it borrows nothing from the
/// [`Profiler`] (instrumented methods can keep using `&mut self` while a
/// guard is live).
#[must_use = "the span closes when the guard drops"]
pub struct SpanGuard {
    /// `None` for a disabled profiler: drop is a single branch.
    armed: Option<(ProfInner, usize)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((inner, depth)) = self.armed.take() else {
            return;
        };
        // Read the clock and the allocation counters before any
        // bookkeeping, so the span's own accounting (path string, map
        // entry) is excluded from its numbers. Those profiler-internal
        // allocations land in the *parent* span's self window instead —
        // the documented attribution rule (DESIGN.md §15).
        let end = inner.clock.now();
        let (allocs1, bytes1) = thread_counters();
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if stack.len() < depth {
                // Our frame was already discarded (a child guard leaked and
                // an outer span truncated past us). Record nothing.
                return;
            }
            // Discard frames of leaked child guards: their time/allocs fold
            // into this span's self numbers.
            stack.truncate(depth);
            let frame = stack.pop().expect("depth > 0 implies a frame");
            let total = (end - frame.start).max(0.0);
            let self_secs = (total - frame.child_secs).max(0.0);
            let allocs = allocs1.saturating_sub(frame.allocs0);
            let bytes = bytes1.saturating_sub(frame.bytes0);
            let self_allocs = allocs.saturating_sub(frame.child_allocs);
            let self_bytes = bytes.saturating_sub(frame.child_bytes);
            let mut path = String::new();
            for f in stack.iter() {
                path.push_str(f.name);
                path.push(';');
            }
            path.push_str(frame.name);
            if let Some(parent) = stack.last_mut() {
                parent.child_secs += total;
                parent.child_allocs += allocs;
                parent.child_bytes += bytes;
            }
            drop(stack);
            let mut agg = inner.agg.lock();
            let stat = agg.entry(path).or_default();
            stat.count += 1;
            stat.total_secs += total;
            stat.self_secs += self_secs;
            stat.allocs += allocs;
            stat.alloc_bytes += bytes;
            stat.self_allocs += self_allocs;
            stat.self_alloc_bytes += self_bytes;
        });
    }
}

/// Which per-span value an export carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProfMetric {
    /// Self wall time, in integer nanoseconds (the flamegraph default).
    #[default]
    SelfTime,
    /// Self allocation count.
    Allocs,
    /// Self allocated bytes.
    AllocBytes,
}

impl ProfMetric {
    /// Parse an export query value (`time` / `allocs` / `bytes`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "time" | "self" => Some(ProfMetric::SelfTime),
            "allocs" => Some(ProfMetric::Allocs),
            "bytes" => Some(ProfMetric::AllocBytes),
            _ => None,
        }
    }

    fn value(self, stat: &SpanStat) -> u64 {
        match self {
            ProfMetric::SelfTime => (stat.self_secs * 1e9).round() as u64,
            ProfMetric::Allocs => stat.self_allocs,
            ProfMetric::AllocBytes => stat.self_alloc_bytes,
        }
    }
}

/// A merged snapshot of one run's spans, keyed by full stack path
/// (`outer;inner;leaf`).
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    /// Per-path aggregates, in path order.
    pub spans: BTreeMap<String, SpanStat>,
}

impl ProfileReport {
    /// Sum of `total_secs` over root spans only (paths with no parent) —
    /// the wall time the profile covers without double-counting nesting.
    pub fn root_total_secs(&self) -> f64 {
        self.spans
            .iter()
            .filter(|(path, _)| !path.contains(';'))
            .map(|(_, s)| s.total_secs)
            .sum()
    }

    /// Folded-stack text, one `path value` line per span path in
    /// lexicographic path order — the format `flamegraph.pl` and most
    /// flamegraph tooling consume directly. `metric` selects the value
    /// (self nanoseconds by default).
    pub fn folded(&self, metric: ProfMetric) -> String {
        let mut out = String::new();
        for (path, stat) in &self.spans {
            let _ = writeln!(out, "{path} {}", metric.value(stat));
        }
        out
    }

    /// Speedscope JSON (<https://www.speedscope.app>): one file with three
    /// "sampled" profiles — self time (nanoseconds), self allocations, and
    /// self allocated bytes — over a shared frame table. Each aggregated
    /// stack path becomes one sample whose weight is the metric value.
    /// Validates under [`crate::json::validate`].
    pub fn speedscope(&self, name: &str) -> String {
        // Frame table: unique span names, in first-use (path-sorted) order.
        let mut frame_idx: BTreeMap<&str, usize> = BTreeMap::new();
        let mut frames: Vec<&str> = Vec::new();
        let paths: Vec<(&String, &SpanStat)> = self.spans.iter().collect();
        for (path, _) in &paths {
            for seg in path.split(';') {
                frame_idx.entry(seg).or_insert_with(|| {
                    frames.push(seg);
                    frames.len() - 1
                });
            }
        }
        let mut out = String::new();
        out.push_str("{\"$schema\":\"https://www.speedscope.app/file-format-schema.json\",");
        let _ = write!(out, "\"name\":\"{}\",", json::escape(name));
        out.push_str("\"activeProfileIndex\":0,\"exporter\":\"fluentps\",");
        out.push_str("\"shared\":{\"frames\":[");
        for (i, f) in frames.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":\"{}\"}}", json::escape(f));
        }
        out.push_str("]},\"profiles\":[");
        let profiles = [
            ("self time", "nanoseconds", ProfMetric::SelfTime),
            ("allocations", "none", ProfMetric::Allocs),
            ("allocated bytes", "bytes", ProfMetric::AllocBytes),
        ];
        for (i, (pname, unit, metric)) in profiles.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mut weights: Vec<u64> = Vec::with_capacity(paths.len());
            let mut samples = String::new();
            for (j, (path, stat)) in paths.iter().enumerate() {
                if j > 0 {
                    samples.push(',');
                }
                samples.push('[');
                for (k, seg) in path.split(';').enumerate() {
                    if k > 0 {
                        samples.push(',');
                    }
                    let _ = write!(samples, "{}", frame_idx[seg]);
                }
                samples.push(']');
                weights.push(metric.value(stat));
            }
            let end: u64 = weights.iter().sum();
            let _ = write!(
                out,
                "{{\"type\":\"sampled\",\"name\":\"{}\",\"unit\":\"{unit}\",\
                 \"startValue\":0,\"endValue\":{end},\"samples\":[{samples}],\"weights\":[",
                json::escape(pname)
            );
            for (j, w) in weights.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{w}");
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// The `n` paths with the largest self time, descending (ties broken
    /// by path, so the order is deterministic).
    pub fn top_self(&self, n: usize) -> Vec<(&str, &SpanStat)> {
        let mut rows: Vec<(&str, &SpanStat)> =
            self.spans.iter().map(|(p, s)| (p.as_str(), s)).collect();
        rows.sort_by(|a, b| {
            b.1.self_secs
                .partial_cmp(&a.1.self_secs)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(b.0))
        });
        rows.truncate(n);
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    fn virtual_pair() -> (Arc<VirtualClock>, ProfCollector) {
        let clock = VirtualClock::new();
        let col = ProfCollector::new(ClockSource::virtual_clock(Arc::clone(&clock)));
        (clock, col)
    }

    #[test]
    fn disabled_profiler_records_nothing_and_keeps_the_stack_empty() {
        let prof = Profiler::disabled();
        assert!(!prof.is_enabled());
        {
            let _g = prof.enter("a");
            let _h = prof.enter("a/b");
            STACK.with(|s| assert!(s.borrow().is_empty()));
        }
        assert!(!Profiler::default().is_enabled());
    }

    #[test]
    fn nested_spans_split_self_and_total_time() {
        let (clock, col) = virtual_pair();
        let prof = col.profiler();
        {
            let _outer = prof.enter("outer");
            clock.set(1.0);
            {
                let _inner = prof.enter("inner");
                clock.set(3.0);
            }
            clock.set(4.0);
        }
        let report = col.snapshot();
        let outer = &report.spans["outer"];
        let inner = &report.spans["outer;inner"];
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert_eq!(inner.total_secs, 2.0);
        assert_eq!(inner.self_secs, 2.0);
        assert_eq!(outer.total_secs, 4.0);
        assert_eq!(outer.self_secs, 2.0); // 4.0 total minus the child's 2.0
        assert_eq!(report.root_total_secs(), 4.0);
    }

    #[test]
    fn handles_from_one_collector_nest_on_the_shared_stack() {
        let (clock, col) = virtual_pair();
        let server = col.profiler();
        let wire = col.profiler();
        {
            let _s = server.enter("server/handle");
            clock.set(1.0);
            let _w = wire.enter("wire/encode");
            clock.set(2.0);
        }
        let report = col.snapshot();
        assert!(report.spans.contains_key("server/handle"));
        assert!(
            report.spans.contains_key("server/handle;wire/encode"),
            "paths: {:?}",
            report.spans.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn allocation_deltas_attach_to_the_open_span() {
        let col = ProfCollector::wall();
        let prof = col.profiler();
        {
            let _g = prof.enter("alloc_heavy");
            let v: Vec<u8> = Vec::with_capacity(1 << 16);
            std::hint::black_box(&v);
        }
        {
            let _g = prof.enter("alloc_free");
            std::hint::black_box(1 + 1);
        }
        let report = col.snapshot();
        let heavy = &report.spans["alloc_heavy"];
        assert!(heavy.allocs >= 1, "allocs: {heavy:?}");
        assert!(heavy.alloc_bytes >= 1 << 16, "bytes: {heavy:?}");
        assert!(heavy.self_allocs >= 1);
        let free = &report.spans["alloc_free"];
        assert_eq!(free.allocs, 0, "leaf span with no allocations: {free:?}");
    }

    #[test]
    fn repeated_calls_accumulate_counts() {
        let (clock, col) = virtual_pair();
        let prof = col.profiler();
        for i in 0..5u32 {
            let _g = prof.enter("step");
            clock.set((i + 1) as f64);
        }
        let report = col.snapshot();
        assert_eq!(report.spans["step"].count, 5);
    }

    #[test]
    fn leaked_child_guard_folds_into_the_parent() {
        let (clock, col) = virtual_pair();
        let prof = col.profiler();
        {
            let _outer = prof.enter("outer");
            clock.set(1.0);
            let inner = prof.enter("inner");
            std::mem::forget(inner);
            clock.set(3.0);
        }
        // The leaked span is not recorded; the outer span still closes
        // cleanly with the whole window as self time, and the stack is
        // empty again.
        let report = col.snapshot();
        assert!(!report.spans.contains_key("outer;inner"));
        let outer = &report.spans["outer"];
        assert_eq!(outer.total_secs, 3.0);
        assert_eq!(outer.self_secs, 3.0);
        STACK.with(|s| assert!(s.borrow().is_empty()));
    }

    #[test]
    fn folded_export_is_path_sorted_with_integer_values() {
        let (clock, col) = virtual_pair();
        let prof = col.profiler();
        {
            let _a = prof.enter("a");
            clock.set(1.0);
            let _b = prof.enter("b");
            clock.set(2.0);
        }
        let report = col.snapshot();
        let folded = report.folded(ProfMetric::SelfTime);
        assert_eq!(folded, "a 1000000000\na;b 1000000000\n");
        let allocs = report.folded(ProfMetric::Allocs);
        for line in allocs.lines() {
            let (_, v) = line.rsplit_once(' ').unwrap();
            v.parse::<u64>().unwrap();
        }
    }

    #[test]
    fn speedscope_export_validates_and_carries_all_three_profiles() {
        let (clock, col) = virtual_pair();
        let prof = col.profiler();
        {
            let _a = prof.enter("server/handle");
            clock.set(1.0);
            {
                let _b = prof.enter("wire/encode");
                clock.set(1.5);
            }
            clock.set(2.0);
        }
        let report = col.snapshot();
        let ss = report.speedscope("unit \"test\"");
        json::validate(&ss).expect("speedscope output is valid JSON");
        assert!(ss.contains("\"$schema\""));
        assert!(ss.contains("\"unit\":\"nanoseconds\""));
        assert!(ss.contains("\"unit\":\"none\""));
        assert!(ss.contains("\"unit\":\"bytes\""));
        assert!(ss.contains("unit \\\"test\\\""));
        assert!(ss.contains("\"name\":\"wire/encode\""));
    }

    #[test]
    fn top_self_orders_by_self_time_descending() {
        let (clock, col) = virtual_pair();
        let prof = col.profiler();
        {
            let _g = prof.enter("short");
            clock.set(1.0);
        }
        {
            let _g = prof.enter("long");
            clock.set(5.0);
        }
        let report = col.snapshot();
        let top = report.top_self(1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].0, "long");
        assert_eq!(report.top_self(10).len(), 2);
    }

    #[test]
    fn snapshot_merges_across_handles_and_threads() {
        let (clock, col) = virtual_pair();
        clock.set(0.0);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let prof = col.profiler();
            handles.push(std::thread::spawn(move || {
                for _ in 0..10 {
                    let _g = prof.enter("work");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let report = col.snapshot();
        assert_eq!(report.spans["work"].count, 40);
    }
}
