//! Bounded ring buffers for trace events.
//!
//! Each [`crate::Tracer`] owns one ring. Recording is O(1) and never
//! allocates after creation; when the ring is full the oldest event is
//! overwritten and `overwritten` is bumped. Per-kind `seen` totals are
//! incremented on *every* record, independent of capacity, so event counts
//! reconcile against `ShardStats` counters even when the ring dropped
//! detail.

use crate::event::{EventKind, TraceEvent, KINDS};

/// A fixed-capacity overwrite-oldest buffer of [`TraceEvent`]s.
#[derive(Debug)]
pub struct RingBuffer {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Index the next event is written at.
    next: usize,
    /// Number of live events (`<= capacity`).
    len: usize,
    /// Events overwritten because the ring was full.
    overwritten: u64,
    /// Total events ever recorded, per kind (never decremented).
    seen: [u64; KINDS],
}

impl RingBuffer {
    /// A ring holding at most `capacity` events (`capacity >= 1`).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingBuffer {
            buf: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            len: 0,
            overwritten: 0,
            seen: [0; KINDS],
        }
    }

    /// Record an event, overwriting the oldest if full.
    pub fn push(&mut self, ev: TraceEvent) {
        self.seen[ev.kind.index()] += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
            self.len += 1;
        } else {
            self.buf[self.next] = ev;
            self.overwritten += 1;
        }
        self.next = (self.next + 1) % self.capacity;
    }

    /// Live events, oldest first.
    pub fn drain_ordered(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.len);
        if self.buf.len() < self.capacity {
            out.extend_from_slice(&self.buf);
        } else {
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
        }
        out
    }

    /// Number of live events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Events lost to overwriting.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Total events ever recorded of `kind` (survives overwriting).
    pub fn seen(&self, kind: EventKind) -> u64 {
        self.seen[kind.index()]
    }

    /// The per-kind totals array, indexed by [`EventKind::index`].
    pub fn seen_all(&self) -> &[u64; KINDS] {
        &self.seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NO_ID;

    fn ev(ts: f64, kind: EventKind) -> TraceEvent {
        TraceEvent {
            ts,
            kind,
            shard: 0,
            worker: NO_ID,
            ..Default::default()
        }
    }

    #[test]
    fn fills_then_overwrites_oldest() {
        let mut r = RingBuffer::new(3);
        for i in 0..5 {
            r.push(ev(i as f64, EventKind::PushApplied));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.overwritten(), 2);
        let ts: Vec<f64> = r.drain_ordered().iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn seen_counts_survive_overwrites() {
        let mut r = RingBuffer::new(2);
        for _ in 0..10 {
            r.push(ev(0.0, EventKind::PullDeferred));
        }
        r.push(ev(0.0, EventKind::DprReleased));
        assert_eq!(r.seen(EventKind::PullDeferred), 10);
        assert_eq!(r.seen(EventKind::DprReleased), 1);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn partial_fill_is_in_order() {
        let mut r = RingBuffer::new(8);
        r.push(ev(1.0, EventKind::WireSend));
        r.push(ev(2.0, EventKind::WireRecv));
        let ts: Vec<f64> = r.drain_ordered().iter().map(|e| e.ts).collect();
        assert_eq!(ts, vec![1.0, 2.0]);
        assert_eq!(r.overwritten(), 0);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut r = RingBuffer::new(0);
        r.push(ev(1.0, EventKind::BarrierWait));
        r.push(ev(2.0, EventKind::BarrierWait));
        assert_eq!(r.len(), 1);
        assert_eq!(r.drain_ordered()[0].ts, 2.0);
    }
}
