//! Streaming windowed analytics: the live counterpart of [`crate::analyze`].
//!
//! The batch analyzer consumes a *completed* trace; the adaptive-sync
//! controller and the alerting watchdog need the same figures while the run
//! is still in flight. [`StreamAnalyzer`] consumes events one at a time —
//! fed live by [`crate::ClusterCollector`]'s merge loop, polled off a local
//! [`TraceCollector`] by a [`HealthTap`], or replayed from JSONL — and
//! maintains:
//!
//! * the exact all-run state the batch analyzer would compute (per-worker
//!   breakdowns, staleness-gap distribution with blocked/granted split),
//!   so replaying a trace with one all-run window reproduces
//!   [`crate::analyze`]'s figures *exactly* (tested below), and
//! * tumbling windows of tail latency: per-shard wire and DPR-residence
//!   histograms, barrier-wait spans, staleness at pull, per-worker progress
//!   rates and straggler spread — kept in [`WindowedHistogram`] rings so a
//!   long run holds O(windows) state, with sliding views by merging
//!   retained windows.
//!
//! ## Window semantics
//!
//! The epoch is the first timestamp [`StreamAnalyzer::advance_to`] sees;
//! window `i` covers `[epoch + i·w, epoch + (i+1)·w)`. `advance_to` is the
//! *only* thing that moves the current window — each event records into the
//! window that is current when it is ingested, so a late (clock-skewed)
//! event counts in the present rather than corrupting closed history.
//! `window_secs = ∞` ([`StreamConfig::all_run`]) keeps one never-closing
//! window: the batch-parity mode.
//!
//! [`HealthEngine`] bundles a [`StreamAnalyzer`] with an
//! [`AlertEngine`](crate::alert::AlertEngine) behind a shared handle that
//! every layer (collector ingest, HTTP `/slo` + `/alerts`, Prometheus
//! gauges, `repro watch`) can clone.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use fluentps_util::sync::Mutex;

use crate::alert::{AlertEngine, AlertRule, AlertTransition};
use crate::analyze::{GapStat, WorkerBreakdown};
use crate::event::{EventKind, TraceEvent, KINDS, NO_ID};
use crate::hist::Histogram;
use crate::metrics::MetricsRegistry;
use crate::tracer::TraceCollector;

/// Cap on windows closed per `advance_to` call: beyond this many empty
/// windows the analyzer fast-forwards, since every rule streak and ring
/// slot has long since saturated/cleared.
const MAX_CLOSES_PER_ADVANCE: u64 = 64;

/// How many closed [`WindowStats`] the analyzer keeps for `/slo`.
const CLOSED_KEPT: usize = 16;

/// A ring of [`Histogram`]s, one per tumbling window, rotated in place.
///
/// Slot `index % len` holds window `index`; rotating to a new head clears
/// only the slots being reused, so the last `len` windows stay readable
/// for sliding-window merges.
#[derive(Debug, Clone)]
pub struct WindowedHistogram {
    ring: Vec<Histogram>,
    head: u64,
    started: bool,
}

impl WindowedHistogram {
    /// Ring retaining `windows` tumbling windows (at least 1).
    pub fn new(windows: usize) -> WindowedHistogram {
        WindowedHistogram {
            ring: vec![Histogram::new(); windows.max(1)],
            head: 0,
            started: false,
        }
    }

    fn slot(&self, index: u64) -> usize {
        (index % self.ring.len() as u64) as usize
    }

    /// Make `index` the current window, clearing every slot being reused.
    /// Rotating backwards is a no-op (windows never reopen).
    pub fn rotate_to(&mut self, index: u64) {
        if !self.started {
            // All slots are empty; just adopt the head.
            self.started = true;
            self.head = index;
            return;
        }
        if index <= self.head {
            return;
        }
        let len = self.ring.len() as u64;
        let steps = (index - self.head).min(len);
        for w in (index + 1 - steps)..=index {
            let s = self.slot(w);
            self.ring[s].clear();
        }
        self.head = index;
    }

    /// Record into window `index` (clamped into the retained range after
    /// rotating the ring forward to `index` if needed).
    pub fn record(&mut self, index: u64, value: u64) {
        self.rotate_to(index);
        let oldest = (self.head + 1).saturating_sub(self.ring.len() as u64);
        let idx = index.clamp(oldest, self.head);
        let s = self.slot(idx);
        self.ring[s].record(value);
    }

    /// The current (head) window's histogram.
    pub fn current(&self) -> &Histogram {
        &self.ring[self.slot(self.head)]
    }

    /// Window `index`'s histogram, if still retained.
    pub fn window(&self, index: u64) -> Option<&Histogram> {
        let oldest = (self.head + 1).saturating_sub(self.ring.len() as u64);
        if self.started && (oldest..=self.head).contains(&index) {
            Some(&self.ring[self.slot(index)])
        } else {
            None
        }
    }

    /// Index of the current window.
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Merge of the last `k` retained windows (a sliding view).
    pub fn sliding(&self, k: usize) -> Histogram {
        let mut merged = Histogram::new();
        if !self.started {
            return merged;
        }
        let k = (k.max(1) as u64).min(self.ring.len() as u64);
        let oldest = (self.head + 1).saturating_sub(k);
        for w in oldest..=self.head {
            if let Some(h) = self.window(w) {
                merged.merge(h);
            }
        }
        merged
    }
}

/// Windowing parameters for a [`StreamAnalyzer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Tumbling window length in seconds on the trace clock.
    /// `f64::INFINITY` keeps one all-run window (batch-parity mode).
    pub window_secs: f64,
    /// How many windows each [`WindowedHistogram`] ring retains (≥ 1).
    pub windows: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            window_secs: 1.0,
            windows: 8,
        }
    }
}

impl StreamConfig {
    /// One never-closing window covering the whole run: replaying a trace
    /// in this mode reproduces the batch analyzer's figures exactly.
    pub fn all_run() -> StreamConfig {
        StreamConfig {
            window_secs: f64::INFINITY,
            windows: 1,
        }
    }
}

/// Summary of one closed tumbling window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowStats {
    /// Window index (0 = the window containing the epoch).
    pub index: u64,
    /// Window start on the trace clock (the epoch for an all-run window).
    pub start_ts: f64,
    /// Events ingested while this window was current.
    pub events: u64,
    /// `PullRequested` events in the window.
    pub pulls: u64,
    /// `PullDeferred` events in the window.
    pub deferred: u64,
    /// p99 wire latency in µs (worst shard; bucketed upper bound).
    pub wire_p99_us: u64,
    /// p99 DPR residence in µs (worst shard; bucketed upper bound).
    pub dpr_p99_us: u64,
    /// p99 `BarrierWait` span in µs (bucketed upper bound).
    pub barrier_p99_us: u64,
    /// Largest staleness gap seen at pull time in the window.
    pub max_gap: u64,
    /// Fastest-minus-slowest worker progress at window close.
    pub spread: u64,
    /// Collector drop fraction (`dropped / emitted`) at window close.
    pub drop_rate: f64,
}

impl WindowStats {
    /// Fraction of the window's pulls that were deferred.
    pub fn block_rate(&self) -> f64 {
        if self.pulls == 0 {
            0.0
        } else {
            self.deferred as f64 / self.pulls as f64
        }
    }
}

/// FIFO matcher pairing `PullRequested` gaps with `PullDeferred` events
/// per pull key, in either arrival order. Marks exactly the first
/// `min(requests, defers)` requests — the same set the batch analyzer's
/// pre-collected deferral pool consumes.
#[derive(Debug, Default)]
struct DeferMatch {
    /// `PullDeferred` events seen before their request.
    unmatched: u64,
    /// Gaps of requests awaiting a deferral, oldest first.
    pending: VecDeque<u64>,
}

/// Incremental analyzer: feed events in timestamp order via
/// [`StreamAnalyzer::advance_to`] + [`StreamAnalyzer::ingest`].
#[derive(Debug)]
pub struct StreamAnalyzer {
    cfg: StreamConfig,
    /// First timestamp ever seen; window boundaries hang off it.
    epoch: Option<f64>,
    /// Index of the currently-open window.
    current: u64,

    // ---- exact all-run state (batch parity) ----
    analyzed: [u64; KINDS],
    total: u64,
    span: (f64, f64),
    workers: BTreeMap<u32, WorkerBreakdown>,
    in_flight: HashMap<(u32, u32), VecDeque<f64>>,
    gaps: BTreeMap<u64, GapStat>,
    defers: HashMap<(u32, u32, u64), DeferMatch>,
    pending_dprs: HashMap<(u32, u32, u64), f64>,

    // ---- windowed state ----
    shard_wire_us: BTreeMap<u32, WindowedHistogram>,
    shard_dpr_us: BTreeMap<u32, WindowedHistogram>,
    barrier_us: WindowedHistogram,
    gap_hist: WindowedHistogram,
    win_events: u64,
    win_pulls: u64,
    win_deferred: u64,
    win_max_gap: u64,
    progress_now: BTreeMap<u32, u64>,
    progress_at_close: BTreeMap<u32, u64>,
    rates: BTreeMap<u32, f64>,
    closed: VecDeque<WindowStats>,
    windows_closed: u64,
    emitted: u64,
    dropped: u64,
}

impl StreamAnalyzer {
    /// Analyzer with the given windowing config.
    pub fn new(cfg: StreamConfig) -> StreamAnalyzer {
        let windows = cfg.windows.max(1);
        StreamAnalyzer {
            cfg: StreamConfig {
                window_secs: cfg.window_secs,
                windows,
            },
            epoch: None,
            current: 0,
            analyzed: [0; KINDS],
            total: 0,
            span: (0.0, 0.0),
            workers: BTreeMap::new(),
            in_flight: HashMap::new(),
            gaps: BTreeMap::new(),
            defers: HashMap::new(),
            pending_dprs: HashMap::new(),
            shard_wire_us: BTreeMap::new(),
            shard_dpr_us: BTreeMap::new(),
            barrier_us: WindowedHistogram::new(windows),
            gap_hist: WindowedHistogram::new(windows),
            win_events: 0,
            win_pulls: 0,
            win_deferred: 0,
            win_max_gap: 0,
            progress_now: BTreeMap::new(),
            progress_at_close: BTreeMap::new(),
            rates: BTreeMap::new(),
            closed: VecDeque::new(),
            windows_closed: 0,
            emitted: 0,
            dropped: 0,
        }
    }

    /// Which window `ts` falls into (0 before the epoch is set).
    fn window_of(&self, ts: f64) -> u64 {
        let Some(epoch) = self.epoch else { return 0 };
        if !self.cfg.window_secs.is_finite() || ts <= epoch {
            return 0;
        }
        ((ts - epoch) / self.cfg.window_secs) as u64
    }

    /// Move time forward to `ts`, closing every window that ended before
    /// it; returns the closed windows' stats (usually empty or one).
    pub fn advance_to(&mut self, ts: f64) -> Vec<WindowStats> {
        if self.epoch.is_none() {
            self.epoch = Some(ts);
        }
        let target = self.window_of(ts);
        let mut out = Vec::new();
        while self.current < target {
            out.push(self.close_current());
            if out.len() as u64 >= MAX_CLOSES_PER_ADVANCE {
                // A huge idle jump: the remaining windows are empty and
                // indistinguishable; skip straight to the target.
                self.current = target;
                break;
            }
        }
        out
    }

    /// Consume one event into both the all-run state and the current
    /// window. Events must arrive in the collector's merge order.
    pub fn ingest(&mut self, ev: &TraceEvent) {
        let cur = self.current;
        let nw = self.cfg.windows;
        self.analyzed[ev.kind.index()] += 1;
        self.total += 1;
        if self.total == 1 {
            self.span.0 = ev.ts;
        }
        self.span.1 = ev.ts + ev.dur.max(0.0);
        self.win_events += 1;

        if ev.worker != NO_ID {
            let p = self.progress_now.entry(ev.worker).or_insert(0);
            *p = (*p).max(ev.progress);
        }

        // Per-worker breakdown: mirrors `analyze::worker_breakdowns`
        // field by field so an all-run replay matches it exactly.
        let mut wire_latency: Option<f64> = None;
        if ev.worker != NO_ID {
            let w = self.workers.entry(ev.worker).or_insert(WorkerBreakdown {
                worker: ev.worker,
                iterations: 0,
                first_ts: ev.ts,
                last_ts: ev.ts,
                barrier_secs: 0.0,
                barrier_count: 0,
                wire_secs: 0.0,
                bytes_sent: 0,
                bytes_recvd: 0,
                pulls: 0,
                deferred: 0,
            });
            w.first_ts = w.first_ts.min(ev.ts);
            w.last_ts = w.last_ts.max(ev.ts + ev.dur);
            w.iterations = w.iterations.max(ev.progress + 1);
            match ev.kind {
                EventKind::BarrierWait => {
                    w.barrier_secs += ev.dur;
                    w.barrier_count += 1;
                }
                EventKind::WireSend => {
                    w.bytes_sent += ev.bytes;
                    self.in_flight
                        .entry((ev.shard, ev.worker))
                        .or_default()
                        .push_back(ev.ts);
                }
                EventKind::WireRecv => {
                    w.bytes_recvd += ev.bytes;
                    if let Some(queue) = self.in_flight.get_mut(&(ev.shard, ev.worker)) {
                        if let Some(sent) = queue.pop_front() {
                            let lat = (ev.ts - sent).max(0.0);
                            w.wire_secs += lat;
                            wire_latency = Some(lat);
                        }
                    }
                }
                EventKind::PullRequested => w.pulls += 1,
                EventKind::PullDeferred => w.deferred += 1,
                _ => {}
            }
        }

        // Staleness-gap distribution with the blocked/granted split. The
        // batch analyzer pre-collects every deferral, then marks the first
        // min(requests, defers) requests per pull key; the FIFO matcher
        // reproduces that set without lookahead.
        match ev.kind {
            EventKind::PullRequested => {
                let gap = ev.progress.saturating_sub(ev.v_train);
                let stat = self.gaps.entry(gap).or_insert(GapStat {
                    gap,
                    pulls: 0,
                    deferred: 0,
                });
                stat.pulls += 1;
                self.win_pulls += 1;
                self.win_max_gap = self.win_max_gap.max(gap);
                self.gap_hist.record(cur, gap);
                let dm = self
                    .defers
                    .entry((ev.shard, ev.worker, ev.progress))
                    .or_default();
                if dm.unmatched > 0 {
                    dm.unmatched -= 1;
                    stat.deferred += 1;
                } else {
                    dm.pending.push_back(gap);
                }
            }
            EventKind::PullDeferred => {
                self.win_deferred += 1;
                let dm = self
                    .defers
                    .entry((ev.shard, ev.worker, ev.progress))
                    .or_default();
                if let Some(gap) = dm.pending.pop_front() {
                    if let Some(stat) = self.gaps.get_mut(&gap) {
                        stat.deferred += 1;
                    }
                } else {
                    dm.unmatched += 1;
                }
                if ev.shard != NO_ID {
                    self.pending_dprs
                        .insert((ev.shard, ev.worker, ev.progress), ev.ts);
                }
            }
            EventKind::DprReleased => {
                if let Some(deferred_at) =
                    self.pending_dprs
                        .remove(&(ev.shard, ev.worker, ev.progress))
                {
                    let residence = (ev.ts - deferred_at).max(0.0);
                    self.shard_dpr_us
                        .entry(ev.shard)
                        .or_insert_with(|| WindowedHistogram::new(nw))
                        .record(cur, (residence * 1e6) as u64);
                }
            }
            EventKind::BarrierWait => {
                self.barrier_us.record(cur, (ev.dur.max(0.0) * 1e6) as u64);
            }
            _ => {}
        }
        if let Some(lat) = wire_latency {
            if ev.shard != NO_ID {
                self.shard_wire_us
                    .entry(ev.shard)
                    .or_insert_with(|| WindowedHistogram::new(nw))
                    .record(cur, (lat * 1e6) as u64);
            }
        }
    }

    /// Close the currently-open window and open the next one.
    fn close_current(&mut self) -> WindowStats {
        let idx = self.current;
        self.barrier_us.rotate_to(idx);
        self.gap_hist.rotate_to(idx);
        let mut wire_p99 = 0u64;
        for h in self.shard_wire_us.values_mut() {
            h.rotate_to(idx);
            wire_p99 = wire_p99.max(h.current().quantile_upper(0.99));
        }
        let mut dpr_p99 = 0u64;
        for h in self.shard_dpr_us.values_mut() {
            h.rotate_to(idx);
            dpr_p99 = dpr_p99.max(h.current().quantile_upper(0.99));
        }
        let epoch = self.epoch.unwrap_or(0.0);
        let start_ts = if self.cfg.window_secs.is_finite() {
            epoch + idx as f64 * self.cfg.window_secs
        } else {
            epoch
        };
        for (&w, &p) in &self.progress_now {
            let prev = self.progress_at_close.get(&w).copied().unwrap_or(0);
            let rate = if self.cfg.window_secs.is_finite() && self.cfg.window_secs > 0.0 {
                (p.saturating_sub(prev)) as f64 / self.cfg.window_secs
            } else {
                0.0
            };
            self.rates.insert(w, rate);
        }
        self.progress_at_close = self.progress_now.clone();
        let stats = WindowStats {
            index: idx,
            start_ts,
            events: self.win_events,
            pulls: self.win_pulls,
            deferred: self.win_deferred,
            wire_p99_us: wire_p99,
            dpr_p99_us: dpr_p99,
            barrier_p99_us: self.barrier_us.current().quantile_upper(0.99),
            max_gap: self.win_max_gap,
            spread: self.spread(),
            drop_rate: self.drop_rate(),
        };
        self.win_events = 0;
        self.win_pulls = 0;
        self.win_deferred = 0;
        self.win_max_gap = 0;
        self.closed.push_back(stats);
        while self.closed.len() > CLOSED_KEPT {
            self.closed.pop_front();
        }
        self.windows_closed += 1;
        self.current = idx + 1;
        stats
    }

    /// Close the final (possibly partial) window and return its stats.
    pub fn finish(&mut self) -> WindowStats {
        self.close_current()
    }

    /// Latest collector emit/drop totals (monotone; from
    /// [`crate::ClusterCollector`] node stats or a
    /// [`crate::tracer::TraceCursor`] batch).
    pub fn set_drop_totals(&mut self, emitted: u64, dropped: u64) {
        self.emitted = self.emitted.max(emitted);
        self.dropped = self.dropped.max(dropped);
    }

    /// Per-worker breakdown over everything ingested, sorted by worker id
    /// — identical to [`crate::analyze`]'s on the same events.
    pub fn worker_breakdowns(&self) -> Vec<WorkerBreakdown> {
        self.workers.values().cloned().collect()
    }

    /// Pull outcomes per staleness gap over everything ingested, sorted by
    /// gap — identical to [`crate::analyze`]'s on the same events.
    pub fn gap_stats(&self) -> Vec<GapStat> {
        self.gaps.values().copied().collect()
    }

    /// Events of `kind` ingested so far.
    pub fn count(&self, kind: EventKind) -> u64 {
        self.analyzed[kind.index()]
    }

    /// Total events ingested so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// First event's timestamp and the last event's span end.
    pub fn span(&self) -> (f64, f64) {
        self.span
    }

    /// How many windows have closed.
    pub fn windows_closed(&self) -> u64 {
        self.windows_closed
    }

    /// Index of the currently-open window.
    pub fn current_window(&self) -> u64 {
        self.current
    }

    /// The most recent closed windows, oldest first.
    pub fn recent_windows(&self) -> Vec<WindowStats> {
        self.closed.iter().copied().collect()
    }

    /// Per-worker progress rate (iterations/second) over the last closed
    /// window.
    pub fn progress_rates(&self) -> Vec<(u32, f64)> {
        self.rates.iter().map(|(&w, &r)| (w, r)).collect()
    }

    /// Fastest-minus-slowest worker progress right now.
    pub fn spread(&self) -> u64 {
        let min = self.progress_now.values().min().copied().unwrap_or(0);
        let max = self.progress_now.values().max().copied().unwrap_or(0);
        max - min
    }

    /// Collector drop fraction (`dropped / emitted`; 0 when unknown).
    pub fn drop_rate(&self) -> f64 {
        if self.emitted == 0 {
            0.0
        } else {
            self.dropped as f64 / self.emitted as f64
        }
    }

    /// Sliding merge of shard `shard`'s wire-latency windows.
    pub fn wire_hist(&self, shard: u32, windows: usize) -> Option<Histogram> {
        self.shard_wire_us.get(&shard).map(|h| h.sliding(windows))
    }

    /// Sliding merge of shard `shard`'s DPR-residence windows.
    pub fn dpr_hist(&self, shard: u32, windows: usize) -> Option<Histogram> {
        self.shard_dpr_us.get(&shard).map(|h| h.sliding(windows))
    }

    /// Shards with wire-latency observations, sorted.
    pub fn wire_shards(&self) -> Vec<u32> {
        self.shard_wire_us.keys().copied().collect()
    }

    /// Shards with DPR-residence observations, sorted.
    pub fn dpr_shards(&self) -> Vec<u32> {
        self.shard_dpr_us.keys().copied().collect()
    }

    /// Sliding merge of the staleness-at-pull histogram.
    pub fn staleness_hist(&self, windows: usize) -> Histogram {
        self.gap_hist.sliding(windows)
    }

    /// Sliding merge of the barrier-wait histogram.
    pub fn barrier_hist(&self, windows: usize) -> Histogram {
        self.barrier_us.sliding(windows)
    }
}

struct HealthInner {
    analyzer: StreamAnalyzer,
    alerts: AlertEngine,
    finished: bool,
}

/// Shared, thread-safe handle bundling a [`StreamAnalyzer`] with an
/// [`AlertEngine`]: the collector feeds it, HTTP and Prometheus read it.
#[derive(Clone)]
pub struct HealthEngine {
    inner: Arc<Mutex<HealthInner>>,
}

impl std::fmt::Debug for HealthEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.inner.lock();
        f.debug_struct("HealthEngine")
            .field("events", &g.analyzer.total())
            .field("windows_closed", &g.analyzer.windows_closed())
            .field("finished", &g.finished)
            .finish()
    }
}

impl HealthEngine {
    /// Engine with explicit windowing and rules.
    pub fn new(cfg: StreamConfig, rules: Vec<AlertRule>) -> HealthEngine {
        HealthEngine {
            inner: Arc::new(Mutex::new(HealthInner {
                analyzer: StreamAnalyzer::new(cfg),
                alerts: AlertEngine::new(rules),
                finished: false,
            })),
        }
    }

    /// Engine with [`AlertRule::defaults`].
    pub fn with_default_rules(cfg: StreamConfig) -> HealthEngine {
        HealthEngine::new(cfg, AlertRule::defaults())
    }

    /// Feed one event: advances the window clock to the event's timestamp
    /// (evaluating rules on every window that closes), then ingests it.
    /// Ignored after [`HealthEngine::finish`].
    pub fn observe(&self, ev: &TraceEvent) {
        let mut g = self.inner.lock();
        if g.finished {
            return;
        }
        let inner = &mut *g;
        for ws in inner.analyzer.advance_to(ev.ts) {
            inner.alerts.on_window(&ws);
        }
        inner.analyzer.ingest(ev);
        inner.alerts.on_event(ev);
    }

    /// Feed a batch under one lock acquisition. Ignored after
    /// [`HealthEngine::finish`].
    pub fn observe_all(&self, events: &[TraceEvent]) {
        if events.is_empty() {
            return;
        }
        let mut g = self.inner.lock();
        if g.finished {
            return;
        }
        let inner = &mut *g;
        for ev in events {
            for ws in inner.analyzer.advance_to(ev.ts) {
                inner.alerts.on_window(&ws);
            }
            inner.analyzer.ingest(ev);
            inner.alerts.on_event(ev);
        }
    }

    /// Update collector emit/drop totals (monotone).
    pub fn set_drop_totals(&self, emitted: u64, dropped: u64) {
        self.inner.lock().analyzer.set_drop_totals(emitted, dropped);
    }

    /// Close the final window and run the rules on it once. Idempotent:
    /// later calls (and later `observe`s) are ignored after the first.
    pub fn finish(&self) {
        let mut g = self.inner.lock();
        if g.finished {
            return;
        }
        g.finished = true;
        let inner = &mut *g;
        let ws = inner.analyzer.finish();
        inner.alerts.on_window(&ws);
    }

    /// The alert engine's deterministic fingerprint (logical transitions
    /// only; see [`crate::alert`]).
    pub fn fingerprint(&self) -> u64 {
        self.inner.lock().alerts.fingerprint()
    }

    /// Every alert transition so far, in order.
    pub fn transitions(&self) -> Vec<AlertTransition> {
        self.inner.lock().alerts.transitions().to_vec()
    }

    /// `true` while any alert is firing.
    pub fn any_firing(&self) -> bool {
        self.inner.lock().alerts.any_firing()
    }

    /// The `/alerts` JSONL payload (transition history + current states).
    pub fn alerts_jsonl(&self) -> String {
        self.inner.lock().alerts.render_jsonl()
    }

    /// The `/slo` plain-text payload: greppable `key value` lines covering
    /// window progress, tail latencies, staleness, progress rates,
    /// straggler spread, drop rate and alert states.
    pub fn slo_text(&self) -> String {
        let g = self.inner.lock();
        let a = &g.analyzer;
        let k = a.cfg.windows;
        let mut out = String::new();
        out.push_str(&format!("slo windows_closed {}\n", a.windows_closed()));
        out.push_str(&format!("slo events {}\n", a.total()));
        out.push_str(&format!("slo drop_rate {:.6}\n", a.drop_rate()));
        out.push_str(&format!("slo progress_spread {}\n", a.spread()));
        for shard in a.wire_shards() {
            if let Some(h) = a.wire_hist(shard, k) {
                out.push_str(&format!(
                    "slo shard{shard} wire_us p50 {} p99 {} max {}\n",
                    h.quantile_upper(0.5),
                    h.quantile_upper(0.99),
                    h.max()
                ));
            }
        }
        for shard in a.dpr_shards() {
            if let Some(h) = a.dpr_hist(shard, k) {
                out.push_str(&format!(
                    "slo shard{shard} dpr_residence_us p50 {} p99 {} max {}\n",
                    h.quantile_upper(0.5),
                    h.quantile_upper(0.99),
                    h.max()
                ));
            }
        }
        let b = a.barrier_hist(k);
        if b.count() > 0 {
            out.push_str(&format!(
                "slo barrier_us p50 {} p99 {} max {}\n",
                b.quantile_upper(0.5),
                b.quantile_upper(0.99),
                b.max()
            ));
        }
        let s = a.staleness_hist(k);
        if s.count() > 0 {
            out.push_str(&format!(
                "slo staleness_gap p50 {} p99 {} max {}\n",
                s.quantile_upper(0.5),
                s.quantile_upper(0.99),
                s.max()
            ));
        }
        for (w, rate) in a.progress_rates() {
            out.push_str(&format!("slo worker{w} progress_rate {rate:.3}\n"));
        }
        for wb in a.worker_breakdowns() {
            out.push_str(&format!(
                "slo worker{} iterations {}\n",
                wb.worker, wb.iterations
            ));
        }
        for ws in a.recent_windows() {
            out.push_str(&format!(
                "slo window {} events {} pulls {} deferred {} wire_p99_us {} max_gap {}\n",
                ws.index, ws.events, ws.pulls, ws.deferred, ws.wire_p99_us, ws.max_gap
            ));
        }
        out.push_str(&g.alerts.render_states());
        out
    }

    /// Publish the live view as Prometheus gauges on `registry`.
    pub fn export_metrics(&self, registry: &MetricsRegistry) {
        let g = self.inner.lock();
        let a = &g.analyzer;
        let k = a.cfg.windows;
        registry.set_gauge("slo_windows_closed", a.windows_closed() as f64);
        registry.set_gauge("slo_events_total", a.total() as f64);
        registry.set_gauge("slo_drop_rate", a.drop_rate());
        registry.set_gauge("slo_progress_spread", a.spread() as f64);
        for shard in a.wire_shards() {
            if let Some(h) = a.wire_hist(shard, k) {
                registry
                    .scope()
                    .with("shard", shard)
                    .set_gauge("slo_wire_p99_us", h.quantile_upper(0.99) as f64);
            }
        }
        for shard in a.dpr_shards() {
            if let Some(h) = a.dpr_hist(shard, k) {
                registry
                    .scope()
                    .with("shard", shard)
                    .set_gauge("slo_dpr_residence_p99_us", h.quantile_upper(0.99) as f64);
            }
        }
        let b = a.barrier_hist(k);
        if b.count() > 0 {
            registry.set_gauge("slo_barrier_p99_us", b.quantile_upper(0.99) as f64);
        }
        if let Some(last) = a.recent_windows().last() {
            registry.set_gauge("slo_block_rate", last.block_rate());
            registry.set_gauge("slo_staleness_max_gap", last.max_gap as f64);
        }
        for (w, rate) in a.progress_rates() {
            registry
                .scope()
                .with("worker", w)
                .set_gauge("slo_progress_rate", rate);
        }
        g.alerts.export_metrics(registry);
    }

    /// Spawn a [`HealthTap`] polling `collector`'s cursor into this engine
    /// every `poll`. Use for in-process runs with no remote collector;
    /// never combine with [`crate::ClusterCollector::attach_health`] on
    /// the same engine (events would double-count).
    pub fn attach_to(&self, collector: &TraceCollector, poll: Duration) -> HealthTap {
        let mut cursor = collector.cursor();
        let engine = self.clone();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_thread = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("fluentps-health-tap".to_string())
            .spawn(move || loop {
                // Read the flag *before* polling: one final drain happens
                // after stop() is requested, so no event is left behind.
                let done = stop_thread.load(Ordering::SeqCst);
                let batch = cursor.poll();
                engine.set_drop_totals(batch.emitted, batch.dropped);
                engine.observe_all(&batch.events);
                if done {
                    break;
                }
                thread::sleep(poll);
            })
            .expect("spawn health tap");
        HealthTap {
            stop,
            handle: Some(handle),
        }
    }
}

/// Background thread draining a local [`TraceCollector`] cursor into a
/// [`HealthEngine`]. Stopping performs one final drain first.
#[derive(Debug)]
pub struct HealthTap {
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl HealthTap {
    /// Request a final drain and wait for the tap thread to exit.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for HealthTap {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::analyze;
    use crate::clock::{ClockSource, VirtualClock};
    use crate::tracer::{RecordArgs, TraceCollector};
    use std::sync::Arc;

    fn at(shard: u32, worker: u32, progress: u64, v_train: u64) -> RecordArgs {
        RecordArgs::new()
            .shard(shard)
            .worker(worker)
            .progress(progress)
            .v_train(v_train)
    }

    /// A busy little trace: wire traffic, deferred pulls, DPR releases,
    /// barrier spans, recovery events, on two shards and three workers.
    fn busy_trace() -> crate::tracer::Trace {
        let clock = VirtualClock::new();
        let col = TraceCollector::new(ClockSource::virtual_clock(Arc::clone(&clock)), 4096);
        let t = col.tracer();
        let mut ts = 1.0;
        for i in 0..20u64 {
            for w in 0..3u32 {
                let shard = (w % 2) as u32;
                clock.set(ts);
                t.record(EventKind::WireSend, at(shard, w, i, i / 2).bytes(100));
                ts += 0.01;
                clock.set(ts);
                t.record(EventKind::WireRecv, at(shard, w, i, i / 2).bytes(80));
                t.record(EventKind::PullRequested, at(shard, w, i, i / 2));
                if i % 3 == 0 {
                    t.record(EventKind::PullDeferred, at(shard, w, i, i / 2));
                    ts += 0.05;
                    clock.set(ts);
                    t.record(EventKind::DprReleased, at(shard, w, i, i / 2 + 1));
                }
                let start = t.now();
                ts += 0.02;
                clock.set(ts);
                t.record_span(EventKind::BarrierWait, start, at(shard, w, i, i / 2));
                t.record(EventKind::PushApplied, at(shard, w, i, i / 2).bytes(256));
            }
            if i == 7 {
                clock.set(ts);
                t.record(
                    EventKind::NodeDeclaredDead,
                    RecordArgs::new().shard(0).progress(i),
                );
            }
            if i == 9 {
                clock.set(ts);
                t.record(
                    EventKind::CheckpointRestored,
                    RecordArgs::new().shard(0).progress(i).v_train(4),
                );
            }
            ts += 0.01;
        }
        col.snapshot()
    }

    #[test]
    fn all_run_replay_matches_batch_analyzer_exactly() {
        let trace = busy_trace();
        let batch = analyze(&trace);
        let mut s = StreamAnalyzer::new(StreamConfig::all_run());
        for ev in &trace.events {
            s.advance_to(ev.ts);
            s.ingest(ev);
        }
        assert_eq!(s.worker_breakdowns(), batch.workers, "worker parity");
        assert_eq!(s.gap_stats(), batch.gaps, "staleness-gap parity");
        assert_eq!(s.span(), batch.span, "span parity");
        for kind in EventKind::ALL {
            assert_eq!(
                s.count(kind),
                batch.analyzed[kind.index()],
                "count parity for {}",
                kind.name()
            );
        }
        // All-run mode never closes a window until finish().
        assert_eq!(s.windows_closed(), 0);
        let final_window = s.finish();
        assert_eq!(final_window.events, s.total());
        assert_eq!(final_window.pulls, trace.count(EventKind::PullRequested));
    }

    #[test]
    fn parity_holds_when_defer_precedes_request_in_merge_order() {
        // A collector merge can interleave a shard's PullDeferred before
        // the worker's PullRequested for the same key; the batch analyzer
        // is order-insensitive here and streaming must be too.
        let clock = VirtualClock::new();
        let col = TraceCollector::new(ClockSource::virtual_clock(Arc::clone(&clock)), 64);
        let t = col.tracer();
        clock.set(1.0);
        t.record(EventKind::PullDeferred, at(0, 1, 4, 1));
        clock.set(1.1);
        t.record(EventKind::PullRequested, at(0, 1, 4, 1));
        clock.set(1.2);
        t.record(EventKind::PullRequested, at(0, 0, 2, 2));
        let trace = col.snapshot();
        let batch = analyze(&trace);
        let mut s = StreamAnalyzer::new(StreamConfig::all_run());
        for ev in &trace.events {
            s.advance_to(ev.ts);
            s.ingest(ev);
        }
        assert_eq!(s.gap_stats(), batch.gaps);
        let g3 = s.gap_stats();
        assert_eq!(g3.iter().map(|g| g.deferred).sum::<u64>(), 1);
    }

    #[test]
    fn windows_close_on_advance_and_carry_stats() {
        let mut s = StreamAnalyzer::new(StreamConfig {
            window_secs: 1.0,
            windows: 4,
        });
        let ev = |ts: f64, kind, gap: u64| TraceEvent {
            ts,
            kind,
            shard: 0,
            worker: 0,
            progress: gap,
            ..Default::default()
        };
        assert!(s.advance_to(0.1).is_empty());
        s.ingest(&ev(0.1, EventKind::PullRequested, 2));
        assert!(s.advance_to(0.9).is_empty(), "same window");
        let closed = s.advance_to(1.5);
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].index, 0);
        assert_eq!(closed[0].pulls, 1);
        assert_eq!(closed[0].max_gap, 2);
        s.ingest(&ev(1.5, EventKind::PullRequested, 7));
        let closed = s.advance_to(4.2);
        assert_eq!(closed.len(), 3, "windows 1..=3 close");
        assert_eq!(closed[0].pulls, 1);
        assert_eq!(closed[0].max_gap, 7);
        assert_eq!(closed[1].pulls, 0, "empty window");
        assert_eq!(s.windows_closed(), 4);
        assert_eq!(s.current_window(), 4);
    }

    #[test]
    fn huge_idle_jump_fast_forwards() {
        let mut s = StreamAnalyzer::new(StreamConfig {
            window_secs: 0.001,
            windows: 2,
        });
        s.advance_to(0.0);
        let closed = s.advance_to(1e6);
        assert_eq!(closed.len() as u64, MAX_CLOSES_PER_ADVANCE);
        assert_eq!(s.current_window(), s.window_of(1e6));
    }

    #[test]
    fn windowed_histogram_rotates_and_slides() {
        let mut wh = WindowedHistogram::new(3);
        wh.record(0, 10);
        wh.record(1, 20);
        wh.record(2, 30);
        assert_eq!(wh.window(0).unwrap().max(), 10);
        assert_eq!(wh.sliding(3).count(), 3);
        assert_eq!(wh.sliding(1).max(), 30);
        // Window 3 reuses slot 0: window 0 is gone.
        wh.record(3, 40);
        assert!(wh.window(0).is_none());
        assert_eq!(wh.window(3).unwrap().max(), 40);
        assert_eq!(wh.sliding(3).count(), 3);
        assert_eq!(wh.sliding(3).max(), 40);
        // A jump far ahead clears everything retained.
        wh.rotate_to(100);
        assert_eq!(wh.sliding(3).count(), 0);
        assert_eq!(wh.head(), 100);
        // Recording into an evicted window clamps into range.
        wh.record(5, 7);
        assert_eq!(wh.sliding(3).count(), 1);
    }

    #[test]
    fn progress_rates_and_spread_track_workers() {
        let mut s = StreamAnalyzer::new(StreamConfig {
            window_secs: 2.0,
            windows: 4,
        });
        let ev = |ts: f64, worker: u32, progress: u64| TraceEvent {
            ts,
            kind: EventKind::PushApplied,
            shard: 0,
            worker,
            progress,
            ..Default::default()
        };
        s.advance_to(0.0);
        s.ingest(&ev(0.0, 0, 0));
        s.ingest(&ev(0.5, 0, 4));
        s.ingest(&ev(0.5, 1, 1));
        let closed = s.advance_to(2.5);
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].spread, 3, "worker0@4 vs worker1@1");
        let rates = s.progress_rates();
        assert_eq!(rates.len(), 2);
        assert_eq!(rates[0], (0, 2.0), "4 iterations / 2s");
        assert_eq!(rates[1], (1, 0.5));
    }

    #[test]
    fn health_engine_feeds_alerts_and_renders() {
        let engine = HealthEngine::with_default_rules(StreamConfig::default());
        let dead = TraceEvent {
            ts: 0.5,
            kind: EventKind::NodeDeclaredDead,
            shard: 0,
            worker: NO_ID,
            progress: 3,
            ..Default::default()
        };
        let restored = TraceEvent {
            kind: EventKind::CheckpointRestored,
            ts: 0.9,
            progress: 4,
            ..dead
        };
        engine.observe(&dead);
        assert!(engine.any_firing());
        engine.observe(&restored);
        assert!(!engine.any_firing());
        engine.set_drop_totals(100, 1);
        engine.finish();
        engine.finish(); // idempotent
        let slo = engine.slo_text();
        assert!(slo.contains("slo windows_closed 1\n"), "{slo}");
        assert!(slo.contains("slo drop_rate 0.010000\n"), "{slo}");
        assert!(slo.contains("alert dead_nodes ok\n"), "{slo}");
        let jsonl = engine.alerts_jsonl();
        assert!(jsonl.contains("\"rule\":\"dead_nodes\""));
        assert_eq!(engine.transitions().len(), 2);
        let registry = MetricsRegistry::new();
        engine.export_metrics(&registry);
        assert_eq!(registry.gauge_value("slo_windows_closed"), Some(1.0));
        assert_eq!(
            registry.gauge_value("alert_active{rule=dead_nodes}"),
            Some(0.0)
        );
    }

    #[test]
    fn same_events_same_fingerprint() {
        let run = || {
            let engine = HealthEngine::new(StreamConfig::default(), AlertRule::defaults());
            for ev in &busy_trace().events {
                engine.observe(ev);
            }
            engine.finish();
            engine.fingerprint()
        };
        assert_eq!(run(), run());
        // The kill→restore pair produced exactly one fire/resolve pair.
        let engine = HealthEngine::new(StreamConfig::default(), Vec::new());
        for ev in &busy_trace().events {
            engine.observe(ev);
        }
        let ts = engine.transitions();
        assert_eq!(ts.len(), 2);
        assert!(ts[0].firing && !ts[1].firing);
    }

    #[test]
    fn health_tap_drains_collector_on_stop() {
        let col = TraceCollector::wall(1024);
        let engine = HealthEngine::with_default_rules(StreamConfig::default());
        let tap = engine.attach_to(&col, Duration::from_millis(5));
        let t = col.tracer();
        for i in 0..50u64 {
            t.record(EventKind::PullRequested, at(0, 0, i, i));
        }
        tap.stop();
        let slo = engine.slo_text();
        assert!(slo.contains("slo events 50\n"), "final drain: {slo}");
    }
}
