//! The collector/tracer pair: one [`TraceCollector`] per run hands out
//! cheap [`Tracer`] handles (one per thread or per shard), and merges their
//! ring buffers into a time-ordered [`Trace`] at the end.
//!
//! The cost contract: a *disabled* tracer is a `None` — every `record` call
//! is a single branch, no clock read, no lock, no allocation. An *enabled*
//! tracer reads the clock and takes an uncontended per-ring mutex (each
//! thread records into its own ring; the collector only touches the rings
//! at snapshot time).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fluentps_util::sync::Mutex;

use crate::clock::ClockSource;
use crate::event::{EventKind, TraceEvent, KINDS, NO_ID};
use crate::ring::RingBuffer;

/// The payload of one recorded event: which ids it concerns plus its
/// logical-time and size fields. The default is "nothing applies" —
/// [`NO_ID`] ids and zeroed fields — so call sites set only what the
/// event kind actually carries:
///
/// ```
/// # use fluentps_obs::{RecordArgs, Tracer, EventKind};
/// # let tracer = Tracer::disabled();
/// tracer.record(
///     EventKind::PushApplied,
///     RecordArgs::new().shard(0).worker(2).progress(7).v_train(5),
/// );
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecordArgs {
    /// Shard the event concerns, or [`NO_ID`].
    pub shard: u32,
    /// Worker the event concerns, or [`NO_ID`].
    pub worker: u32,
    /// Worker iteration (clock value) at the event.
    pub progress: u64,
    /// Shard `V_train` at the event.
    pub v_train: u64,
    /// Payload bytes, for wire events.
    pub bytes: u64,
    /// Causal request id from the wire context, or 0 for "no context".
    pub request_id: u64,
    /// Retry ordinal of the request (0 = first attempt).
    pub attempt: u32,
    /// Span id within the request that caused the event, or [`NO_ID`].
    pub parent_span: u32,
}

impl Default for RecordArgs {
    fn default() -> Self {
        RecordArgs {
            shard: NO_ID,
            worker: NO_ID,
            progress: 0,
            v_train: 0,
            bytes: 0,
            request_id: 0,
            attempt: 0,
            parent_span: NO_ID,
        }
    }
}

impl RecordArgs {
    /// An empty payload: both ids [`NO_ID`], all fields zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the shard id.
    pub fn shard(mut self, shard: u32) -> Self {
        self.shard = shard;
        self
    }

    /// Set the worker id.
    pub fn worker(mut self, worker: u32) -> Self {
        self.worker = worker;
        self
    }

    /// Set the worker iteration.
    pub fn progress(mut self, progress: u64) -> Self {
        self.progress = progress;
        self
    }

    /// Set the shard `V_train`.
    pub fn v_train(mut self, v_train: u64) -> Self {
        self.v_train = v_train;
        self
    }

    /// Set the payload byte count.
    pub fn bytes(mut self, bytes: u64) -> Self {
        self.bytes = bytes;
        self
    }

    /// Set the causal request id.
    pub fn request_id(mut self, request_id: u64) -> Self {
        self.request_id = request_id;
        self
    }

    /// Set the retry ordinal.
    pub fn attempt(mut self, attempt: u32) -> Self {
        self.attempt = attempt;
        self
    }

    /// Set the causing span id.
    pub fn parent_span(mut self, parent_span: u32) -> Self {
        self.parent_span = parent_span;
        self
    }

    /// Set the full causal context (`(request_id, attempt, parent_span)`)
    /// in one call, for call sites that carry it as a tuple.
    pub fn ctx(mut self, request_id: u64, attempt: u32, parent_span: u32) -> Self {
        self.request_id = request_id;
        self.attempt = attempt;
        self.parent_span = parent_span;
        self
    }
}

struct Shared {
    clock: ClockSource,
    capacity: usize,
    rings: Mutex<Vec<Arc<Mutex<RingBuffer>>>>,
    seq: AtomicU64,
}

/// Owns the rings for one traced run; hands out [`Tracer`]s and merges
/// their events into a [`Trace`].
#[derive(Clone)]
pub struct TraceCollector {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for TraceCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCollector")
            .field("capacity", &self.shared.capacity)
            .field("rings", &self.shared.rings.lock().len())
            .finish()
    }
}

impl TraceCollector {
    /// A collector reading time from `clock`, with `capacity` events per
    /// tracer ring.
    pub fn new(clock: ClockSource, capacity: usize) -> Self {
        TraceCollector {
            shared: Arc::new(Shared {
                clock,
                capacity,
                rings: Mutex::new(Vec::new()),
                seq: AtomicU64::new(0),
            }),
        }
    }

    /// A wall-clock collector whose epoch is now.
    pub fn wall(capacity: usize) -> Self {
        Self::new(ClockSource::wall(), capacity)
    }

    /// Register a new ring and return an enabled tracer writing into it.
    pub fn tracer(&self) -> Tracer {
        let ring = Arc::new(Mutex::new(RingBuffer::new(self.shared.capacity)));
        self.shared.rings.lock().push(Arc::clone(&ring));
        Tracer(Some(TracerInner {
            ring,
            shared: Arc::clone(&self.shared),
        }))
    }

    /// Seconds since the trace epoch on this collector's clock.
    pub fn now(&self) -> f64 {
        self.shared.clock.now()
    }

    /// An incremental reader over this collector's rings, for streaming
    /// events out while the run is live. Each cursor tracks its own
    /// watermark; use one cursor per consumer.
    pub fn cursor(&self) -> TraceCursor {
        TraceCursor {
            shared: Arc::clone(&self.shared),
            last_seq: None,
            delivered: 0,
        }
    }

    /// Merge every ring into one trace, ordered by `(ts, seq)`.
    ///
    /// Non-destructive: tracers keep recording afterwards.
    pub fn snapshot(&self) -> Trace {
        let rings = self.shared.rings.lock();
        let mut events = Vec::new();
        let mut counts = [0u64; KINDS];
        let mut dropped = 0;
        for ring in rings.iter() {
            let r = ring.lock();
            events.extend(r.drain_ordered());
            for (total, n) in counts.iter_mut().zip(r.seen_all()) {
                *total += n;
            }
            dropped += r.overwritten();
        }
        events.sort_by(|a, b| {
            a.ts.partial_cmp(&b.ts)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.seq.cmp(&b.seq))
        });
        Trace {
            events,
            counts,
            dropped,
        }
    }
}

/// Incremental reader over a [`TraceCollector`]'s rings: each
/// [`TraceCursor::poll`] returns only the events recorded since the last
/// poll, together with exact emit/loss accounting. This is what a trace
/// streamer drains on its batching cadence — polling never blocks
/// recorders for longer than a snapshot would.
pub struct TraceCursor {
    shared: Arc<Shared>,
    /// Highest `seq` delivered so far (`None` before the first poll).
    last_seq: Option<u64>,
    /// Cumulative events delivered across polls.
    delivered: u64,
}

/// One [`TraceCursor::poll`] result.
#[derive(Debug, Clone, Default)]
pub struct CursorBatch {
    /// Fresh events since the previous poll, in `seq` order.
    pub events: Vec<TraceEvent>,
    /// Total events ever recorded on the collector, as of this poll.
    pub emitted: u64,
    /// Events lost before this cursor could deliver them (ring
    /// overwrites). Monotone across polls; after the final poll of an
    /// orderly shutdown, `emitted == delivered + dropped` exactly.
    pub dropped: u64,
}

impl TraceCursor {
    /// Drain everything recorded since the last poll.
    pub fn poll(&mut self) -> CursorBatch {
        let rings = self.shared.rings.lock();
        let mut fresh = Vec::new();
        let mut emitted = 0u64;
        for ring in rings.iter() {
            let r = ring.lock();
            emitted += r.seen_all().iter().sum::<u64>();
            for ev in r.drain_ordered() {
                if self.last_seq.is_none_or(|s| ev.seq > s) {
                    fresh.push(ev);
                }
            }
        }
        drop(rings);
        fresh.sort_by_key(|e| e.seq);
        if let Some(last) = fresh.last() {
            self.last_seq = Some(last.seq);
        }
        self.delivered += fresh.len() as u64;
        // Every event counted in `emitted` is either delivered (now or in a
        // previous poll) or gone for good — overwritten before delivery, or
        // sequenced behind the watermark by a racing recorder. Neither kind
        // can be delivered later, so this difference is exact and monotone.
        let dropped = emitted.saturating_sub(self.delivered);
        CursorBatch {
            events: fresh,
            emitted,
            dropped,
        }
    }

    /// Cumulative events delivered by this cursor.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }
}

struct TracerInner {
    ring: Arc<Mutex<RingBuffer>>,
    shared: Arc<Shared>,
}

/// A per-thread (or per-shard) recording handle. `Tracer::disabled()` is
/// the free default: every method is a branch on `None`.
#[derive(Default)]
pub struct Tracer(Option<TracerInner>);

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Tracer")
            .field(&if self.0.is_some() {
                "enabled"
            } else {
                "disabled"
            })
            .finish()
    }
}

impl Clone for Tracer {
    /// A clone shares the same ring as the original.
    fn clone(&self) -> Self {
        Tracer(self.0.as_ref().map(|inner| TracerInner {
            ring: Arc::clone(&inner.ring),
            shared: Arc::clone(&inner.shared),
        }))
    }
}

impl Tracer {
    /// A tracer that records nothing, at no cost.
    pub fn disabled() -> Self {
        Tracer(None)
    }

    /// Whether events will actually be recorded.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Seconds since the trace epoch; 0 when disabled. Use to bracket a
    /// span for [`Tracer::record_span`].
    pub fn now(&self) -> f64 {
        match &self.0 {
            Some(inner) => inner.shared.clock.now(),
            None => 0.0,
        }
    }

    /// Record an instantaneous event carrying `args` (ids default to
    /// [`NO_ID`] — set only what applies).
    pub fn record(&self, kind: EventKind, args: RecordArgs) {
        if let Some(inner) = &self.0 {
            let ts = inner.shared.clock.now();
            inner.push(TraceEvent {
                ts,
                dur: 0.0,
                kind,
                shard: args.shard,
                worker: args.worker,
                progress: args.progress,
                v_train: args.v_train,
                bytes: args.bytes,
                seq: 0,
                request_id: args.request_id,
                attempt: args.attempt,
                parent_span: args.parent_span,
            });
        }
    }

    /// Record a duration span started at `start_ts` (a prior
    /// [`Tracer::now`]) and ending now.
    pub fn record_span(&self, kind: EventKind, start_ts: f64, args: RecordArgs) {
        if let Some(inner) = &self.0 {
            let end = inner.shared.clock.now();
            inner.push(TraceEvent {
                ts: start_ts,
                dur: (end - start_ts).max(0.0),
                kind,
                shard: args.shard,
                worker: args.worker,
                progress: args.progress,
                v_train: args.v_train,
                bytes: args.bytes,
                seq: 0,
                request_id: args.request_id,
                attempt: args.attempt,
                parent_span: args.parent_span,
            });
        }
    }
}

impl TracerInner {
    fn push(&self, mut ev: TraceEvent) {
        ev.seq = self.shared.seq.fetch_add(1, Ordering::Relaxed);
        self.ring.lock().push(ev);
    }
}

/// A merged, time-ordered view of one run's events.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Events ordered by `(ts, seq)`. May be a suffix of the run if rings
    /// overflowed — check [`Trace::dropped`].
    pub events: Vec<TraceEvent>,
    /// Total events recorded per kind (indexed by [`EventKind::index`]),
    /// counted even when the event itself was overwritten.
    pub counts: [u64; KINDS],
    /// Events lost to ring overwriting (`counts` still include them).
    pub dropped: u64,
}

impl Trace {
    /// Total events of `kind` ever recorded (robust to ring overflow).
    pub fn count(&self, kind: EventKind) -> u64 {
        self.counts[kind.index()]
    }

    /// Total events ever recorded, across kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;
    use crate::event::NO_ID;

    fn ev(shard: u32, worker: u32, progress: u64, v_train: u64) -> RecordArgs {
        RecordArgs::new()
            .shard(shard)
            .worker(worker)
            .progress(progress)
            .v_train(v_train)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.record(EventKind::PushApplied, ev(0, 0, 1, 1));
        t.record_span(EventKind::BarrierWait, 0.0, ev(0, 0, 1, 1));
        assert_eq!(t.now(), 0.0);
    }

    #[test]
    fn record_args_default_is_no_id() {
        let args = RecordArgs::new();
        assert_eq!(args.shard, NO_ID);
        assert_eq!(args.worker, NO_ID);
        assert_eq!((args.progress, args.v_train, args.bytes), (0, 0, 0));
        assert_eq!(args.bytes(9).bytes, 9);
    }

    #[test]
    fn default_tracer_is_disabled() {
        assert!(!Tracer::default().is_enabled());
    }

    #[test]
    fn events_merge_in_virtual_time_order() {
        let clock = VirtualClock::new();
        let col = TraceCollector::new(ClockSource::virtual_clock(Arc::clone(&clock)), 64);
        let t1 = col.tracer();
        let t2 = col.tracer();

        clock.set(1.0);
        t2.record(EventKind::PullRequested, ev(0, 1, 5, 0));
        clock.set(2.0);
        t1.record(EventKind::PullDeferred, ev(0, 1, 5, 0));
        clock.set(3.0);
        t2.record(EventKind::DprReleased, ev(0, 1, 5, 1));

        let trace = col.snapshot();
        assert_eq!(trace.events.len(), 3);
        let kinds: Vec<EventKind> = trace.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::PullRequested,
                EventKind::PullDeferred,
                EventKind::DprReleased
            ]
        );
        assert_eq!(trace.count(EventKind::PullDeferred), 1);
        assert_eq!(trace.total(), 3);
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn counts_survive_ring_overflow() {
        let col = TraceCollector::wall(4);
        let t = col.tracer();
        for i in 0..100 {
            t.record(
                EventKind::WireSend,
                RecordArgs::new().worker(0).progress(i).bytes(64),
            );
        }
        let trace = col.snapshot();
        assert_eq!(trace.events.len(), 4);
        assert_eq!(trace.count(EventKind::WireSend), 100);
        assert_eq!(trace.dropped, 96);
    }

    #[test]
    fn spans_carry_duration() {
        let clock = VirtualClock::new();
        let col = TraceCollector::new(ClockSource::virtual_clock(Arc::clone(&clock)), 8);
        let t = col.tracer();
        clock.set(1.0);
        let start = t.now();
        clock.set(1.5);
        t.record_span(
            EventKind::BarrierWait,
            start,
            RecordArgs::new().worker(2).progress(7),
        );
        let trace = col.snapshot();
        assert_eq!(trace.events.len(), 1);
        assert_eq!(trace.events[0].ts, 1.0);
        assert_eq!(trace.events[0].dur, 0.5);
    }

    #[test]
    fn cursor_delivers_incrementally_and_accounts_for_overwrites() {
        let col = TraceCollector::wall(4);
        let t = col.tracer();
        let mut cur = col.cursor();

        t.record(EventKind::PushApplied, ev(0, 0, 1, 1));
        t.record(EventKind::PushApplied, ev(0, 0, 2, 2));
        let b = cur.poll();
        assert_eq!(b.events.len(), 2);
        assert_eq!((b.emitted, b.dropped), (2, 0));

        // Nothing new: empty batch, accounting unchanged.
        let b = cur.poll();
        assert!(b.events.is_empty());
        assert_eq!((b.emitted, b.dropped), (2, 0));

        // Overflow the ring between polls: capacity 4, 10 new events, so 6
        // are gone before this cursor could see them.
        for i in 0..10 {
            t.record(EventKind::WireSend, ev(0, 0, i, 0));
        }
        let b = cur.poll();
        assert_eq!(b.events.len(), 4);
        assert_eq!((b.emitted, b.dropped), (12, 6));
        assert_eq!(cur.delivered(), 6);
        assert_eq!(b.emitted, cur.delivered() + b.dropped);

        // Events are in seq order and strictly newer than the watermark.
        let seqs: Vec<u64> = b.events.iter().map(|e| e.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
    }

    #[test]
    fn cursor_sees_rings_registered_after_creation() {
        let col = TraceCollector::wall(8);
        let mut cur = col.cursor();
        assert!(cur.poll().events.is_empty());
        let t = col.tracer();
        t.record(EventKind::PullRequested, ev(1, 2, 3, 4));
        let b = cur.poll();
        assert_eq!(b.events.len(), 1);
        assert_eq!(b.events[0].shard, 1);
    }

    #[test]
    fn cloned_tracer_shares_its_ring() {
        let col = TraceCollector::wall(8);
        let t = col.tracer();
        let u = t.clone();
        t.record(EventKind::PushApplied, ev(0, 0, 1, 1));
        u.record(EventKind::PushApplied, ev(0, 0, 2, 2));
        let trace = col.snapshot();
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.dropped, 0);
    }
}
